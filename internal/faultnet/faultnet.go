// Package faultnet is a deterministic network fault-injection plane for
// tests. It wraps real TCP listeners and dialers so a multi-node cluster
// talking over genuine sockets can be partitioned, delayed, throttled, or
// reset from a test script, reproducibly from a single seed.
//
// Endpoints are named ("m", "s0", "sched"). A process listens through
// Network.Listen(name, addr) and dials through the function returned by
// Network.Dialer(name); the Network maps the dialed address back to the
// listener's name, so every connection knows its (from, to) route. Faults
// are per-directed-route rules:
//
//	nw.Partition("sched", "m")   // symmetric: no bytes either way
//	nw.PartitionOneWay("m", "s0")// m's sends to s0 stall; replies still flow
//	nw.Isolate("m")              // every route touching m is cut
//	nw.SetDelay("sched", "s1", 5*time.Millisecond, time.Millisecond)
//	nw.SetBandwidth("m", "s0", 64<<10)
//	nw.SetDrop("m", "s1", 0.01)  // seeded: each delivery may blackhole the conn
//	nw.ResetLink("sched", "m")   // mid-stream RST: both ends see a conn error
//	nw.Heal("sched", "m") / nw.HealAll()
//
// Semantics mirror a real network as seen by a stream transport: a cut
// route does not error — bytes simply stop moving until the route heals or
// the connection is closed, which is exactly the stall that RPC deadlines
// must bound. A drop decision blackholes the whole connection (a lost TCP
// segment stalls the stream; retransmits into the fault keep failing).
// Dialing across a cut fails fast with a timeout-flavored net.Error, the
// moral equivalent of a SYN timing out.
//
// Determinism: scripted faults (Partition/Heal/...) are exact, so a test
// that drives them at fixed points produces the same observable event
// order every run; the only randomness — jitter spread and drop decisions
// — comes from the Network's seeded generator.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// route is one direction of a link: bytes flowing from -> to.
type route struct{ from, to string }

// Rule is the fault policy for one directed route. The zero Rule is a
// healthy link.
type Rule struct {
	Cut         bool          // stall all bytes until healed
	Drop        float64       // per-delivery probability of blackholing the conn
	Delay       time.Duration // fixed one-way latency
	Jitter      time.Duration // uniform extra latency in [0, Jitter)
	BytesPerSec int           // bandwidth cap; 0 = unlimited
}

// Network owns the endpoint registry and the per-route fault rules.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand        // guarded by mu; sole randomness source
	names map[string]string // guarded by mu; listen addr -> endpoint name
	rules map[route]Rule    // guarded by mu
	cut   map[string]bool   // guarded by mu; isolated endpoints
	conns map[*Conn]bool    // guarded by mu; live wrapped conns
	// change is closed and replaced on every rule mutation so conns
	// blocked on a cut route re-evaluate. Guarded by mu.
	change chan struct{}
}

// New returns a Network whose jitter and drop decisions derive only from
// seed.
func New(seed int64) *Network {
	return &Network{
		rng:    rand.New(rand.NewSource(seed)),
		names:  make(map[string]string),
		rules:  make(map[route]Rule),
		cut:    make(map[string]bool),
		conns:  make(map[*Conn]bool),
		change: make(chan struct{}),
	}
}

// errPartitioned is returned from dials across a cut route. It reports
// Timeout() true so callers treat it like a SYN that never completed.
type timeoutError struct{ msg string }

func (e *timeoutError) Error() string   { return e.msg }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// ErrReset is the error surfaced by reads and writes on a connection torn
// down by ResetLink or a drop decision.
var ErrReset = errors.New("faultnet: connection reset by fault injection")

// Listen opens a real TCP listener for the named endpoint and registers
// its address so dials can be attributed to the route.
func (nw *Network) Listen(name, addr string) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	nw.mu.Lock()
	nw.names[lis.Addr().String()] = name
	nw.mu.Unlock()
	return lis, nil
}

// Dialer returns a dial function attributed to the named endpoint,
// suitable for transport.ClientOptions.Dial. Connections it produces are
// policed on both directions of their route: writes under the from->to
// rule, reads under the to->from rule (the server side stays unwrapped,
// so each direction is applied exactly once).
func (nw *Network) Dialer(from string) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		nw.mu.Lock()
		to, known := nw.names[addr]
		blocked := known && (nw.ruleLocked(from, to).Cut || nw.ruleLocked(to, from).Cut)
		nw.mu.Unlock()
		if blocked {
			return nil, &net.OpError{Op: "dial", Net: network, Err: &timeoutError{
				msg: fmt.Sprintf("faultnet: %s -> %s partitioned", from, to),
			}}
		}
		raw, err := net.DialTimeout(network, addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		if !known {
			// Unregistered destination (e.g. an external service in the
			// same test): pass through unpoliced.
			return raw, nil
		}
		c := &Conn{Conn: raw, nw: nw, from: from, to: to, closed: make(chan struct{})}
		nw.mu.Lock()
		nw.conns[c] = true
		nw.mu.Unlock()
		return c, nil
	}
}

// ruleLocked resolves the effective rule for a directed route, folding in
// endpoint isolation. Callers hold nw.mu.
func (nw *Network) ruleLocked(from, to string) Rule {
	r := nw.rules[route{from, to}]
	if nw.cut[from] || nw.cut[to] {
		r.Cut = true
	}
	return r
}

// bumpLocked wakes every conn blocked on a cut route so it re-evaluates
// the rules. Callers hold nw.mu.
func (nw *Network) bumpLocked() {
	close(nw.change)
	nw.change = make(chan struct{})
}

// Partition cuts both directions between a and b.
func (nw *Network) Partition(a, b string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	ra, rb := nw.rules[route{a, b}], nw.rules[route{b, a}]
	ra.Cut, rb.Cut = true, true
	nw.rules[route{a, b}], nw.rules[route{b, a}] = ra, rb
	nw.bumpLocked()
}

// PartitionOneWay cuts only the from->to direction.
func (nw *Network) PartitionOneWay(from, to string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := nw.rules[route{from, to}]
	r.Cut = true
	nw.rules[route{from, to}] = r
	nw.bumpLocked()
}

// Isolate cuts every route touching the named endpoint.
func (nw *Network) Isolate(name string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.cut[name] = true
	nw.bumpLocked()
}

// Rejoin undoes Isolate.
func (nw *Network) Rejoin(name string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	delete(nw.cut, name)
	nw.bumpLocked()
}

// Heal clears the cut in both directions between a and b (other rule
// fields are preserved).
func (nw *Network) Heal(a, b string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	ra, rb := nw.rules[route{a, b}], nw.rules[route{b, a}]
	ra.Cut, rb.Cut = false, false
	nw.rules[route{a, b}], nw.rules[route{b, a}] = ra, rb
	nw.bumpLocked()
}

// HealAll removes every rule and isolation.
func (nw *Network) HealAll() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules = make(map[route]Rule)
	nw.cut = make(map[string]bool)
	nw.bumpLocked()
}

// SetDelay adds one-way latency (plus seeded uniform jitter) to from->to.
func (nw *Network) SetDelay(from, to string, delay, jitter time.Duration) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := nw.rules[route{from, to}]
	r.Delay, r.Jitter = delay, jitter
	nw.rules[route{from, to}] = r
	nw.bumpLocked()
}

// SetBandwidth caps from->to throughput in bytes per second.
func (nw *Network) SetBandwidth(from, to string, bytesPerSec int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := nw.rules[route{from, to}]
	r.BytesPerSec = bytesPerSec
	nw.rules[route{from, to}] = r
	nw.bumpLocked()
}

// SetDrop makes each from->to delivery blackhole the connection with
// probability p, decided by the seeded generator.
func (nw *Network) SetDrop(from, to string, p float64) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := nw.rules[route{from, to}]
	r.Drop = p
	nw.rules[route{from, to}] = r
	nw.bumpLocked()
}

// ResetLink closes every live connection between a and b mid-stream, in
// either direction; both ends observe a hard connection error, unlike a
// partition, which only stalls.
func (nw *Network) ResetLink(a, b string) {
	nw.mu.Lock()
	var victims []*Conn
	for c := range nw.conns {
		if (c.from == a && c.to == b) || (c.from == b && c.to == a) {
			victims = append(victims, c)
		}
	}
	nw.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
}

// Conn is one policed client-side connection.
type Conn struct {
	net.Conn
	nw        *Network
	from, to  string
	closeOnce sync.Once
	closed    chan struct{} // closed exactly once by Close/reset

	mu       sync.Mutex // guards wasReset and dead below
	wasReset bool       // torn down by fault injection, not by the caller
	dead     bool       // blackholed by a drop decision: stalls until closed
}

// Close releases the connection and wakes any operation stalled in a cut.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nw.mu.Lock()
		delete(c.nw.conns, c)
		c.nw.mu.Unlock()
	})
	return c.Conn.Close()
}

func (c *Conn) reset() {
	c.mu.Lock()
	c.wasReset = true
	c.mu.Unlock()
	_ = c.Close()
}

// Write applies the from->to rule, then forwards to the real socket.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(c.from, c.to, len(p)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Read forwards to the real socket, then applies the to->from rule before
// releasing the bytes: data that "arrived" during a cut is held until the
// route heals, like a queue in a partitioned switch.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		c.mu.Lock()
		wasReset := c.wasReset
		c.mu.Unlock()
		if wasReset {
			return 0, ErrReset
		}
		return n, err
	}
	if gerr := c.gate(c.to, c.from, 0); gerr != nil {
		return 0, gerr
	}
	return n, nil
}

// gate blocks while the directed route is cut or the conn is blackholed,
// rolls the drop dice, and charges latency and bandwidth. nbytes is 0 for
// the read direction (bandwidth is charged once, on the sender's side).
func (c *Conn) gate(from, to string, nbytes int) error {
	for {
		c.nw.mu.Lock()
		c.mu.Lock()
		dead := c.dead
		c.mu.Unlock()
		r := c.nw.ruleLocked(from, to)
		if !r.Cut && !dead {
			if nbytes > 0 && r.Drop > 0 && c.nw.rng.Float64() < r.Drop {
				// Lost segment: the stream stalls from here on.
				c.mu.Lock()
				c.dead = true
				c.mu.Unlock()
				c.nw.mu.Unlock()
				continue
			}
			sleep := r.Delay
			if r.Jitter > 0 {
				sleep += time.Duration(c.nw.rng.Int63n(int64(r.Jitter)))
			}
			if r.BytesPerSec > 0 && nbytes > 0 {
				sleep += time.Duration(float64(nbytes) / float64(r.BytesPerSec) * float64(time.Second))
			}
			c.nw.mu.Unlock()
			if sleep > 0 {
				t := time.NewTimer(sleep)
				select {
				case <-t.C:
				case <-c.closed:
					t.Stop()
					return c.closeErr()
				}
			}
			return nil
		}
		ch := c.nw.change
		c.nw.mu.Unlock()
		select {
		case <-ch: // rules changed; re-evaluate
		case <-c.closed:
			return c.closeErr()
		}
	}
}

func (c *Conn) closeErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wasReset {
		return ErrReset
	}
	return net.ErrClosed
}
