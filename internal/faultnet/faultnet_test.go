package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"dmv/internal/harness"
)

// echoServer accepts connections on the listener and echoes every byte
// back until the connection closes.
func echoServer(t *testing.T, lis net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
}

func dialEcho(t *testing.T, nw *Network, from string, addr string) net.Conn {
	t.Helper()
	conn, err := nw.Dialer(from)("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// roundTrip writes msg and reads it back, with a deadline enforced by the
// caller's goroutine. Returns any error.
func roundTrip(conn net.Conn, msg string) error {
	if _, err := conn.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	_, err := io.ReadFull(conn, buf)
	return err
}

func TestHealthyRoundTrip(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	if err := roundTrip(conn, "hello"); err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}
}

func TestPartitionStallsAndHeals(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())

	nw.Partition("cli", "srv")
	done := make(chan error, 1)
	go func() { done <- roundTrip(conn, "stalled?") }()
	select {
	case err := <-done:
		t.Fatalf("round trip completed across a partition (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// expected: stalled, no error
	}
	nw.Heal("cli", "srv")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("round trip after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("round trip still stalled after heal")
	}
}

func TestOneWayPartitionHoldsReplies(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())

	// Cut only the reply direction: the request goes out, the echo is held.
	nw.PartitionOneWay("srv", "cli")
	done := make(chan error, 1)
	go func() { done <- roundTrip(conn, "oneway") }()
	select {
	case err := <-done:
		t.Fatalf("reply crossed a one-way partition (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	nw.Heal("cli", "srv")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("still stalled after heal")
	}
}

func TestDialAcrossPartitionFailsFast(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	nw.Isolate("srv")
	start := time.Now()
	_, err = nw.Dialer("cli")("tcp", lis.Addr().String())
	if err == nil {
		t.Fatal("dial succeeded into an isolated endpoint")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout-flavored net.Error, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("partitioned dial took %v; want fast failure", d)
	}
	nw.Rejoin("srv")
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	if err := roundTrip(conn, "rejoined"); err != nil {
		t.Fatalf("after rejoin: %v", err)
	}
}

func TestResetLinkSurfacesHardError(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	if err := roundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}
	nw.ResetLink("cli", "srv")
	// The stream is torn down mid-flight: the next operation errors rather
	// than stalling.
	errc := make(chan error, 1)
	go func() { errc <- roundTrip(conn, "after-reset") }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("round trip succeeded across a reset link")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reset link stalled instead of erroring")
	}
}

func TestDropBlackholesDeterministically(t *testing.T) {
	// With the same seed, the drop decision lands on the same delivery in
	// both runs: the count of successful round trips before the stall must
	// match exactly.
	run := func(seed int64) int {
		nw := New(seed)
		lis, err := nw.Listen("srv", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		echoServer(t, lis)
		conn, err := nw.Dialer("cli")("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		nw.SetDrop("cli", "srv", 0.2)
		ok := 0
		for i := 0; i < 100; i++ {
			errc := make(chan error, 1)
			go func() { errc <- roundTrip(conn, "x") }()
			select {
			case err := <-errc:
				if err != nil {
					return ok
				}
				ok++
			case <-time.After(200 * time.Millisecond):
				return ok // blackholed: stream stalled
			}
		}
		return ok
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different drop point: %d vs %d", a, b)
	}
	if a == 100 {
		t.Fatalf("drop rule never fired in 100 deliveries at p=0.2")
	}
}

func TestDelayAddsLatency(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	nw.SetDelay("cli", "srv", 30*time.Millisecond, 0)
	start := time.Now()
	if err := roundTrip(conn, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("round trip %v; want >= 30ms of injected delay", d)
	}
}

func TestCloseWakesStalledWriter(t *testing.T) {
	nw := New(1)
	lis, err := nw.Listen("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	echoServer(t, lis)
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	nw.Partition("cli", "srv")
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Write([]byte("never"))
		errc <- err
	}()
	harness.RealClock{}.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("write across partition succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the stalled writer")
	}
}
