package bench

import (
	"fmt"
	"math/rand"
	"os"

	"dmv/internal/exec"
	"dmv/internal/experiments"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/replica"
	"dmv/internal/tpcw"
	"dmv/internal/transport"
	"dmv/internal/value"
	"dmv/internal/wal"
)

// --- tpcw-scaling: Figure 3 WIPS grid ----------------------------------------

// TPCWScenarios converts Figure-3 rows into schema scenarios, one per
// mix×config cell ("tpcw/<mix>/<config>"). WIPS is the primary
// regression-gated metric; speedup, abort rates by cause, and txn-latency
// quantiles ride along. cmd/tpcw-bench reuses this for its -json output so
// the two emitters cannot drift.
func TPCWScenarios(d experiments.Durations, rows []experiments.Fig3Row) []Scenario {
	out := make([]Scenario, 0, len(rows))
	for _, r := range rows {
		s := Scenario{
			Name:            fmt.Sprintf("tpcw/%s/%s", r.Mix, r.Config),
			Kind:            "tpcw",
			Seed:            d.Seed,
			DurationSeconds: d.Measure.Seconds(),
			WIPS:            r.WIPS,
			Values: map[string]float64{
				"speedup": r.Speedup,
			},
		}
		if r.Config != "innodb" {
			s.Values["abort_pct"] = r.AbortPct
		}
		if len(r.Aborts) > 0 {
			s.Aborts = r.Aborts
		}
		if r.TxnLatency.Count > 0 {
			s.LatencyUS = map[string]obs.HistSummary{obs.SchedTxnUS: r.TxnLatency}
		}
		out = append(out, s)
	}
	return out
}

// runTPCWScaling wraps experiments.Figure3 over the configured mixes and
// tier sizes, including the stand-alone InnoDB baseline rows.
func runTPCWScaling(cfg Config, seed int64) ([]Scenario, error) {
	d := cfg.durations(seed)
	opts := experiments.DefaultFig3Opts(d)
	opts.SlaveCounts = cfg.SlaveCounts
	opts.Mixes = cfg.Mixes
	rows, err := experiments.Figure3(opts)
	if err != nil {
		return nil, err
	}
	return TPCWScenarios(d, rows), nil
}

// --- failover suites: Figures 4 & 5 stage timings ----------------------------

// FailoverScenario folds one fail-over experiment result into a scenario:
// stage durations from the cluster's obs event timeline plus the robust
// throughput metrics around the fault. cmd/failover-bench reuses this for
// its -json output.
func FailoverScenario(name string, d experiments.Durations, r *experiments.FailoverResult) Scenario {
	s := Scenario{
		Name:            name,
		Kind:            "failover",
		Seed:            d.Seed,
		DurationSeconds: d.Measure.Seconds(),
		StageSeconds:    map[string]float64{},
		Values: map[string]float64{
			"baseline_wips":  r.Baseline,
			"dip_wips":       r.DipMin,
			"postfault_wips": r.PostMean,
			"recovery_sec":   r.Recovery.Seconds(),
		},
	}
	for stage, dur := range r.Stages {
		s.StageSeconds[stage] = dur.Seconds()
	}
	if r.TxnLatency.Count > 0 {
		s.LatencyUS = map[string]obs.HistSummary{obs.SchedTxnUS: r.TxnLatency}
	}
	return s
}

// runFailoverStaleSpare wraps experiments.Figure5DMV: kill the master with
// a stale spare standing by; recovery, migration, and spare-activation
// stage durations come off the obs timeline.
func runFailoverStaleSpare(cfg Config, seed int64) ([]Scenario, error) {
	d := cfg.durations(seed)
	r, err := experiments.Figure5DMV(tpcw.FailoverScale(), d)
	if err != nil {
		return nil, err
	}
	return []Scenario{FailoverScenario("failover/fig5-dmv-stale", d, r)}, nil
}

// runFailoverReintegration wraps experiments.Figure4: kill the master,
// reboot it after a compressed downtime, reintegrate via page-delta
// migration; restart and reintegration stages come off the obs timeline.
func runFailoverReintegration(cfg Config, seed int64) ([]Scenario, error) {
	d := cfg.durations(seed)
	downtime := d.Measure / 4 // compressed stand-in for the reboot, as in failover-bench
	r, err := experiments.Figure4(tpcw.FailoverScale(), d, downtime)
	if err != nil {
		return nil, err
	}
	return []Scenario{FailoverScenario("failover/fig4-reintegration", d, r)}, nil
}

// --- overload-openloop: admission-control stampede sweep ----------------------

// OverloadScenarios converts one sweep result into schema scenarios, one
// per arm×multiplier cell ("overload/<arm>/x<mult>"). Goodput rides in the
// WIPS slot so the comparator's throughput tolerance gates it; shed rate,
// deadline expiries, and admitted-latency quantiles ride along. A
// "overload/plateau" scenario records the closed-loop anchor.
func OverloadScenarios(d experiments.Durations, r *experiments.OverloadResult) []Scenario {
	out := []Scenario{{
		Name:            "overload/plateau",
		Kind:            "overload",
		Seed:            d.Seed,
		DurationSeconds: d.Measure.Seconds(),
		WIPS:            r.PlateauGoodput,
	}}
	for _, arm := range []experiments.OverloadArm{r.Admit, r.NoAdmit} {
		for _, p := range arm.Points {
			s := Scenario{
				Name:            fmt.Sprintf("overload/%s/x%.1f", arm.Name, p.Multiplier),
				Kind:            "overload",
				Seed:            d.Seed,
				DurationSeconds: d.Measure.Seconds(),
				WIPS:            p.Open.Goodput,
				Values: map[string]float64{
					"offered_rate":     p.OfferedRate,
					"goodput":          p.Open.Goodput,
					"shed_rate":        p.Open.ShedRate,
					"deadline_expired": float64(p.Open.Expired),
					"errors":           float64(p.Open.Errors),
					"p95_admitted_us":  float64(p.Open.P95Latency.Microseconds()),
					"p50_admitted_us":  float64(p.Open.P50Latency.Microseconds()),
				},
			}
			out = append(out, s)
		}
	}
	return out
}

// runOverloadOpenLoop wraps experiments.OverloadSweep: measure the
// closed-loop plateau, then offer 0.5x, 1x, and 2x of it open-loop with and
// without the admission queue.
func runOverloadOpenLoop(cfg Config, seed int64) ([]Scenario, error) {
	d := cfg.durations(seed)
	r, err := experiments.OverloadSweep(experiments.OverloadOpts{Dur: d})
	if err != nil {
		return nil, err
	}
	return OverloadScenarios(d, r), nil
}

// --- wal-fsync micro ----------------------------------------------------------

// runWALFsync measures the durable-append path: SyncAlways group commit,
// one Append+WaitDurable per iteration, latency from dmv_wal_fsync_us. The
// record payload is seeded noise so compression or dedup in the filesystem
// cannot flatter the numbers.
func runWALFsync(cfg Config, seed int64) ([]Scenario, error) {
	iters := cfg.iterations(4096, 1024, 32)
	dir, err := os.MkdirTemp("", "dmv-bench-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	reg := obs.New()
	w, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways, Obs: reg})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 128)
	for i := 0; i < iters; i++ {
		rng.Read(payload)
		seq, err := w.Append(payload)
		if err != nil {
			_ = w.Close()
			return nil, err
		}
		if err := w.WaitDurable(seq); err != nil {
			_ = w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	return []Scenario{{
		Name:      "micro/wal-fsync",
		LatencyUS: map[string]obs.HistSummary{obs.WalFsyncUS: snap.Summary(obs.WalFsyncUS)},
		Values: map[string]float64{
			"appends":        float64(iters),
			"payload_bytes":  float64(len(payload)),
			"appended_bytes": float64(snap.Counter(obs.WalBytes)),
		},
	}}, nil
}

// --- transport-rpc micro ------------------------------------------------------

// runTransportRPC measures the gob/net/rpc commit path over loopback TCP:
// each iteration is one ping plus one remote update transaction
// (TxBegin/TxExec/TxCommit) against a single promoted node, latency from
// the client-side dmv_transport_rpc_us histogram. This is the baseline the
// planned binary wire protocol must beat.
func runTransportRPC(cfg Config, seed int64) ([]Scenario, error) {
	iters := cfg.iterations(2048, 512, 32)
	const rows = 64
	e := heap.NewEngine(heap.Options{PageCap: 8})
	if err := exec.ExecDDL(e, `CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(32))`); err != nil {
		return nil, err
	}
	tid, _ := e.TableID("kv")
	load := make([]value.Row, 0, rows)
	for i := 1; i <= rows; i++ {
		load = append(load, value.Row{value.NewInt(int64(i)), value.NewString("init")})
	}
	if err := e.Load(tid, load); err != nil {
		return nil, err
	}
	node := replica.NewNode(replica.Options{ID: "bench", Engine: e})
	if err := node.Promote([]int{0}); err != nil {
		return nil, err
	}
	srv, err := transport.ServeNode(node, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	reg := obs.New()
	peer, err := transport.DialNodeOpts("bench", srv.Addr(), transport.ClientOptions{Obs: reg, Seed: seed})
	if err != nil {
		return nil, err
	}
	for i := 0; i < iters; i++ {
		if err := peer.Ping(); err != nil {
			return nil, err
		}
		txID, err := peer.TxBegin(false, nil, 0, obs.TraceContext{})
		if err != nil {
			return nil, err
		}
		if _, err := peer.TxExec(txID, `UPDATE kv SET v = ? WHERE k = ?`,
			[]value.Value{value.NewString("bench"), value.NewInt(int64(i%rows + 1))}); err != nil {
			return nil, err
		}
		if _, err := peer.TxCommit(txID); err != nil {
			return nil, err
		}
	}
	snap := reg.Snapshot()
	sum := snap.Summary(obs.TransportRPCUS)
	return []Scenario{{
		Name:      "micro/transport-rpc",
		LatencyUS: map[string]obs.HistSummary{obs.TransportRPCUS: sum},
		Values: map[string]float64{
			"iterations": float64(iters),
			"rpc_calls":  float64(sum.Count),
		},
	}}, nil
}
