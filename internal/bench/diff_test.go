package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"dmv/internal/obs"
)

// loadGolden loads one of the checked-in reference reports.
func loadGolden(t *testing.T, name string) *Report {
	t.Helper()
	r, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return r
}

// findDelta returns the named metric delta within a scenario diff, failing
// the test when either level is absent.
func findDelta(t *testing.T, d *Diff, scenario, metric string) Delta {
	t.Helper()
	for _, sd := range d.Scenarios {
		if sd.Name != scenario {
			continue
		}
		for _, dl := range sd.Deltas {
			if dl.Metric == metric {
				return dl
			}
		}
		t.Fatalf("scenario %s has no delta %q (got %+v)", scenario, metric, sd.Deltas)
	}
	t.Fatalf("diff has no scenario %q", scenario)
	return Delta{}
}

func scenarioStatus(t *testing.T, d *Diff, name string) ScenarioStatus {
	t.Helper()
	for _, sd := range d.Scenarios {
		if sd.Name == name {
			return sd.Status
		}
	}
	t.Fatalf("diff has no scenario %q", name)
	return ""
}

// TestCompareGolden pins the comparator against the checked-in golden pair:
// one WIPS regression past the band, one latency improvement, one new
// scenario, one missing scenario, and in-band changes staying quiet.
func TestCompareGolden(t *testing.T) {
	base := loadGolden(t, "BENCH_0006.json")
	next := loadGolden(t, "BENCH_0007.json")
	d, err := Compare(base, next, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}

	// tpcw/shopping/dmv-2 dropped 120 -> 90 WIPS: -25% exceeds the 20% band.
	if dl := findDelta(t, d, "tpcw/shopping/dmv-2", "wips"); dl.Verdict != VerdictRegression {
		t.Errorf("wips 120->90 verdict = %s, want regression (%+v)", dl.Verdict, dl)
	}
	// wal-fsync p95 9000 -> 2000us: shrank beyond the x3 band.
	if dl := findDelta(t, d, "micro/wal-fsync", obs.WalFsyncUS+"/p95"); dl.Verdict != VerdictImprovement {
		t.Errorf("fsync p95 9000->2000 verdict = %s, want improvement", dl.Verdict)
	}
	// transport-rpc p95 2000 -> 2400us: within the x3 band.
	if dl := findDelta(t, d, "micro/transport-rpc", obs.TransportRPCUS+"/p95"); dl.Verdict != VerdictOK {
		t.Errorf("rpc p95 2000->2400 verdict = %s, want ok", dl.Verdict)
	}
	// recovery stage 1.2 -> 1.5s: within the x3 band.
	if dl := findDelta(t, d, "failover/fig5-dmv-stale", "stage/recovery"); dl.Verdict != VerdictOK {
		t.Errorf("stage 1.2->1.5 verdict = %s, want ok", dl.Verdict)
	}
	if got := scenarioStatus(t, d, "tpcw/browsing/dmv-4"); got != StatusNew {
		t.Errorf("browsing/dmv-4 status = %s, want new", got)
	}
	if got := scenarioStatus(t, d, "tpcw/shopping/gone"); got != StatusMissing {
		t.Errorf("shopping/gone status = %s, want missing", got)
	}

	if d.Regressions != 1 || d.Improvements != 1 || d.NewCount != 1 || d.MissingCount != 1 {
		t.Errorf("counts = %d reg / %d imp / %d new / %d missing, want 1/1/1/1",
			d.Regressions, d.Improvements, d.NewCount, d.MissingCount)
	}
	if !d.HasRegressions() {
		t.Error("HasRegressions() = false despite a WIPS regression")
	}

	var b strings.Builder
	d.Render(&b, false)
	out := b.String()
	for _, want := range []string{
		"REGRESSION",
		"tpcw/shopping/dmv-2",
		"MISSING",
		"tpcw/shopping/gone",
		"verdict: FAIL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestCompareSelf: a report diffed against itself is clean.
func TestCompareSelf(t *testing.T) {
	base := loadGolden(t, "BENCH_0006.json")
	d, err := Compare(base, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 || d.Improvements != 0 || d.NewCount != 0 || d.MissingCount != 0 {
		t.Errorf("self-diff not clean: %d reg / %d imp / %d new / %d missing",
			d.Regressions, d.Improvements, d.NewCount, d.MissingCount)
	}
	if d.HasRegressions() {
		t.Error("self-diff HasRegressions() = true")
	}
	var b strings.Builder
	d.Render(&b, false)
	if !strings.Contains(b.String(), "verdict: ok") {
		t.Errorf("self-diff verdict not ok:\n%s", b.String())
	}
}

// TestMissingScenarioGates: lost coverage alone fails the gate unless
// AllowMissing tolerates it.
func TestMissingScenarioGates(t *testing.T) {
	base := loadGolden(t, "BENCH_0006.json")
	trimmed := *base
	trimmed.Scenarios = base.Scenarios[:len(base.Scenarios)-1]

	d, err := Compare(base, &trimmed, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 {
		t.Errorf("trimmed diff has %d metric regressions, want 0", d.Regressions)
	}
	if d.MissingCount != 1 || !d.HasRegressions() {
		t.Errorf("missing=%d HasRegressions=%v, want 1/true", d.MissingCount, d.HasRegressions())
	}

	tol := DefaultTolerance()
	tol.AllowMissing = true
	d, err = Compare(base, &trimmed, tol)
	if err != nil {
		t.Fatal(err)
	}
	if d.HasRegressions() {
		t.Error("AllowMissing diff still gates")
	}
}

// TestLatencyFloor: micro-latency jitter under the floor is informational
// even at a huge ratio.
func TestLatencyFloor(t *testing.T) {
	mk := func(p95 int64) *Report {
		return &Report{Schema: SchemaVersion, Scenarios: []Scenario{{
			Name:      "micro/x",
			Kind:      "micro",
			LatencyUS: map[string]Quantiles{obs.WalFsyncUS: {Count: 10, P95: p95}},
		}}}
	}
	d, err := Compare(mk(20), mk(400), DefaultTolerance()) // 20x growth, both < 500us
	if err != nil {
		t.Fatal(err)
	}
	if dl := findDelta(t, d, "micro/x", obs.WalFsyncUS+"/p95"); dl.Verdict != VerdictInfo {
		t.Errorf("sub-floor 20x growth verdict = %s, want info", dl.Verdict)
	}
	d, err = Compare(mk(600), mk(6000), DefaultTolerance()) // 10x growth above floor
	if err != nil {
		t.Fatal(err)
	}
	if dl := findDelta(t, d, "micro/x", obs.WalFsyncUS+"/p95"); dl.Verdict != VerdictRegression {
		t.Errorf("above-floor 10x growth verdict = %s, want regression", dl.Verdict)
	}
}

// TestStageFloor mirrors TestLatencyFloor for fail-over stage durations.
func TestStageFloor(t *testing.T) {
	mk := func(sec float64) *Report {
		return &Report{Schema: SchemaVersion, Scenarios: []Scenario{{
			Name:         "failover/x",
			Kind:         "failover",
			StageSeconds: map[string]float64{"recovery": sec},
		}}}
	}
	d, err := Compare(mk(0.001), mk(0.04), DefaultTolerance()) // 40x, both < 0.05s
	if err != nil {
		t.Fatal(err)
	}
	if dl := findDelta(t, d, "failover/x", "stage/recovery"); dl.Verdict != VerdictInfo {
		t.Errorf("sub-floor stage growth verdict = %s, want info", dl.Verdict)
	}
	d, err = Compare(mk(0.1), mk(1.0), DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if dl := findDelta(t, d, "failover/x", "stage/recovery"); dl.Verdict != VerdictRegression {
		t.Errorf("above-floor stage growth verdict = %s, want regression", dl.Verdict)
	}
}

// TestSchemaMismatchRefused: the comparator refuses cross-version diffs.
func TestSchemaMismatchRefused(t *testing.T) {
	a := &Report{Schema: SchemaVersion}
	b := &Report{Schema: SchemaVersion + 1}
	if _, err := Compare(a, b, DefaultTolerance()); err == nil {
		t.Error("Compare accepted mismatched schema versions")
	}
}
