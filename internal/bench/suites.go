package bench

import (
	"fmt"
	"regexp"
	"time"

	"dmv/internal/experiments"
	"dmv/internal/harness"
	"dmv/internal/tpcw"
)

// Mode is the duration envelope of a run.
type Mode string

// Run modes. Smoke exists so scripts/check.sh can validate the whole
// pipeline (scenario planning, JSON emission, comparator) in seconds: only
// the count-bounded micro suites run, and no perf assertion is made.
const (
	ModeFull  Mode = "full"  // FullDurations: the reference-run envelope
	ModeQuick Mode = "quick" // QuickDurations: seconds per configuration
	ModeSmoke Mode = "smoke" // micro suites only, tiny counts
)

// Config parameterizes one bench run.
type Config struct {
	// Seed is the root seed; every suite seed derives from it (default 7).
	Seed int64
	// PR stamps the report (BENCH_%04d.json ordinal).
	PR int
	// Mode selects the duration envelope (default ModeQuick).
	Mode Mode
	// Filter, when non-nil, restricts the plan to matching suite names.
	Filter *regexp.Regexp
	// MeasureOverride replaces the mode's measured period per scenario run
	// (0 = the mode default). Warmup and fault offsets keep their mode
	// values; they are part of the experiment shape, not its length.
	MeasureOverride time.Duration
	// Clock paces the workload runs (nil = harness.RealClock).
	Clock harness.Clock
	// SlaveCounts are the DMV tier sizes for the scaling suite
	// (default 1, 2, 4 — three tier sizes per mix).
	SlaveCounts []int
	// Mixes are the TPC-W mixes for the scaling suite (default all three).
	Mixes []tpcw.Mix
	// Commit stamps the report's provenance block (may be empty).
	Commit string
	// Logf, when non-nil, receives progress lines during a run.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Mode == "" {
		c.Mode = ModeQuick
	}
	if len(c.SlaveCounts) == 0 {
		c.SlaveCounts = []int{1, 2, 4}
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []tpcw.Mix{tpcw.BrowsingMix, tpcw.ShoppingMix, tpcw.OrderingMix}
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// durations maps the mode onto an experiments envelope, applying the seed,
// clock, and measured-period override.
func (c Config) durations(seed int64) experiments.Durations {
	var d experiments.Durations
	switch c.Mode {
	case ModeFull:
		d = experiments.FullDurations()
	default:
		d = experiments.QuickDurations()
	}
	if c.MeasureOverride > 0 {
		// Scale the fault offset and timeline window with the measured
		// period so the experiment keeps its shape (fault mid-run, ~same
		// bucket count) instead of the fault sliding past the end.
		ratio := float64(c.MeasureOverride) / float64(d.Measure)
		d.Measure = c.MeasureOverride
		d.FaultAt = time.Duration(float64(d.FaultAt) * ratio)
		d.Window = time.Duration(float64(d.Window) * ratio)
		if d.Window < 50*time.Millisecond {
			d.Window = 50 * time.Millisecond
		}
	}
	d.Seed = seed
	d.Clock = c.Clock
	return d
}

// iterations scales a count-bounded micro suite to the mode.
func (c Config) iterations(full, quick, smoke int) int {
	switch c.Mode {
	case ModeFull:
		return full
	case ModeSmoke:
		return smoke
	default:
		return quick
	}
}

// Suite is one registered measurement driver. A suite emits one or more
// scenarios per run (the scaling suite emits a whole mix×config grid).
type Suite struct {
	// Name identifies the suite in plans and -run filters.
	Name string
	// Kind groups the suite's scenarios ("tpcw", "failover", "micro").
	Kind string
	// Desc is the one-line description shown by -list.
	Desc string
	// InSmoke marks suites cheap and deterministic enough for the check.sh
	// smoke leg (count-bounded micros; never the workload-driven suites).
	InSmoke bool
	// Run executes the suite under the derived seed.
	Run func(cfg Config, seed int64) ([]Scenario, error)
}

// Suites returns the registry in fixed order. The order is part of the
// smoke-determinism contract: plans list suites exactly as declared here.
func Suites() []Suite {
	return []Suite{
		{
			Name:    "tpcw-scaling",
			Kind:    "tpcw",
			Desc:    "TPC-W WIPS per mix x tier size vs stand-alone InnoDB (Figure 3)",
			InSmoke: false,
			Run:     runTPCWScaling,
		},
		{
			Name:    "failover-stale-spare",
			Kind:    "failover",
			Desc:    "master kill onto a stale spare: stage timings + throughput dip (Figure 5)",
			InSmoke: false,
			Run:     runFailoverStaleSpare,
		},
		{
			Name:    "failover-reintegration",
			Kind:    "failover",
			Desc:    "master kill, reboot, page-delta reintegration: stage timings (Figure 4)",
			InSmoke: false,
			Run:     runFailoverReintegration,
		},
		{
			Name:    "overload-openloop",
			Kind:    "overload",
			Desc:    "open-loop stampede sweep: goodput/shed/latency vs offered load, admission on & off",
			InSmoke: false,
			Run:     runOverloadOpenLoop,
		},
		{
			Name:    "wal-fsync",
			Kind:    "micro",
			Desc:    "group-commit WAL append+WaitDurable latency (dmv_wal_fsync_us)",
			InSmoke: true,
			Run:     runWALFsync,
		},
		{
			Name:    "transport-rpc",
			Kind:    "micro",
			Desc:    "loopback-TCP RPC round-trip latency (dmv_transport_rpc_us)",
			InSmoke: true,
			Run:     runTransportRPC,
		},
	}
}

// Planned is one suite scheduled for a run, with its derived seed.
type Planned struct {
	Suite Suite
	Seed  int64
}

// Plan resolves the configuration into the ordered suite list that Run
// would execute, with per-suite seeds derived from the root. Planning is a
// pure function of the configuration: same config, same plan — the
// property the smoke-determinism test pins down.
func Plan(cfg Config) []Planned {
	cfg = cfg.withDefaults()
	var out []Planned
	for _, s := range Suites() {
		if cfg.Mode == ModeSmoke && !s.InSmoke {
			continue
		}
		if cfg.Filter != nil && !cfg.Filter.MatchString(s.Name) {
			continue
		}
		out = append(out, Planned{Suite: s, Seed: harness.DeriveSeed(cfg.Seed, s.Name)})
	}
	return out
}

// NewReport builds an empty report shell with host provenance, for
// emitters that run their own scenarios (cmd/tpcw-bench, cmd/failover-bench
// with -json) instead of the suite runner.
func NewReport(pr int, mode Mode, seed int64) *Report {
	meta := HostMeta()
	meta.Seed = seed
	meta.Mode = string(mode)
	return &Report{Schema: SchemaVersion, PR: pr, Meta: meta}
}

// Run executes the planned suites and assembles the report. Suites run
// sequentially — they each saturate the host's cores by design, so
// overlapping them would corrupt every number.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	plan := Plan(cfg)
	if len(plan) == 0 {
		return nil, fmt.Errorf("bench: no suites match the configuration")
	}
	meta := HostMeta()
	meta.Seed = cfg.Seed
	meta.Commit = cfg.Commit
	meta.Mode = string(cfg.Mode)
	rep := &Report{Schema: SchemaVersion, PR: cfg.PR, Meta: meta}
	start := time.Now()
	for _, p := range plan {
		cfg.logf("suite %s (seed %d)", p.Suite.Name, p.Seed)
		scs, err := p.Suite.Run(cfg, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: suite %s: %w", p.Suite.Name, err)
		}
		for i := range scs {
			scs[i].Kind = p.Suite.Kind
			scs[i].Seed = p.Seed
		}
		rep.Scenarios = append(rep.Scenarios, scs...)
	}
	rep.Meta.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}
