package bench

import (
	"fmt"
	"io"
	"sort"
)

// Tolerance holds the per-metric bands inside which a change is noise, not
// a verdict. EXPERIMENTS.md documents ±10–15% run-to-run WIPS variance on
// compressed timelines, so the default throughput band sits just above it;
// latency quantiles come from log2-bucket histograms whose adjacent bounds
// differ 2×, so they are compared by ratio, not fraction.
type Tolerance struct {
	// WIPSFrac is the relative WIPS change treated as noise (default 0.20:
	// a drop below old×0.80 is a regression).
	WIPSFrac float64
	// LatencyRatio flags a latency-quantile regression when the new p95
	// exceeds old×ratio (default 3.0 — one log2 bucket of slack plus
	// scheduling noise).
	LatencyRatio float64
	// LatencyFloorUS ignores latency diffs where both p95s sit below this
	// bound (default 500µs): micro-latencies jitter with host load.
	LatencyFloorUS int64
	// StageRatio flags a fail-over stage regression when the new duration
	// exceeds old×ratio (default 3.0).
	StageRatio float64
	// StageFloorSec ignores stage diffs where both durations sit below
	// this bound (default 0.05s).
	StageFloorSec float64
	// AllowMissing downgrades scenarios present in the baseline but absent
	// from the new report from regression to note (for filtered runs).
	AllowMissing bool
}

// DefaultTolerance returns the bands used by make bench-diff.
func DefaultTolerance() Tolerance {
	return Tolerance{
		WIPSFrac:       0.20,
		LatencyRatio:   3.0,
		LatencyFloorUS: 500,
		StageRatio:     3.0,
		StageFloorSec:  0.05,
	}
}

func (t Tolerance) withDefaults() Tolerance {
	d := DefaultTolerance()
	if t.WIPSFrac <= 0 {
		t.WIPSFrac = d.WIPSFrac
	}
	if t.LatencyRatio <= 1 {
		t.LatencyRatio = d.LatencyRatio
	}
	if t.LatencyFloorUS <= 0 {
		t.LatencyFloorUS = d.LatencyFloorUS
	}
	if t.StageRatio <= 1 {
		t.StageRatio = d.StageRatio
	}
	if t.StageFloorSec <= 0 {
		t.StageFloorSec = d.StageFloorSec
	}
	return t
}

// Verdict classifies one compared metric.
type Verdict string

// Metric verdicts.
const (
	VerdictRegression  Verdict = "regression"
	VerdictImprovement Verdict = "improvement"
	VerdictOK          Verdict = "ok"
	VerdictInfo        Verdict = "info" // shown, never gated
)

// Delta is one compared metric within a scenario.
type Delta struct {
	Metric  string
	Old     float64
	New     float64
	Verdict Verdict
	Note    string
}

// ScenarioStatus classifies scenario coverage between two reports.
type ScenarioStatus string

// Scenario statuses.
const (
	StatusCompared ScenarioStatus = "compared"
	StatusNew      ScenarioStatus = "new"     // in new report only
	StatusMissing  ScenarioStatus = "missing" // in baseline only
)

// ScenarioDiff is the comparison of one scenario name across two reports.
type ScenarioDiff struct {
	Name   string
	Status ScenarioStatus
	Deltas []Delta
}

// Diff is the full comparison of two reports.
type Diff struct {
	OldPR, NewPR int
	Tol          Tolerance
	Scenarios    []ScenarioDiff

	Regressions  int
	Improvements int
	NewCount     int
	MissingCount int
	Compared     int // metrics compared under a gate
}

// HasRegressions reports whether the diff should fail a gate: any metric
// regression, or (unless tolerated) lost scenario coverage.
func (d *Diff) HasRegressions() bool {
	return d.Regressions > 0 || (!d.Tol.AllowMissing && d.MissingCount > 0)
}

// Compare diffs two reports scenario-by-scenario. Both must carry the same
// schema version (Load enforces it for files).
func Compare(oldR, newR *Report, tol Tolerance) (*Diff, error) {
	if oldR.Schema != newR.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline v%d vs new v%d", oldR.Schema, newR.Schema)
	}
	tol = tol.withDefaults()
	d := &Diff{OldPR: oldR.PR, NewPR: newR.PR, Tol: tol}

	names := map[string]bool{}
	for _, s := range oldR.Scenarios {
		names[s.Name] = true
	}
	for _, s := range newR.Scenarios {
		names[s.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	for _, name := range ordered {
		o, inOld := oldR.Scenario(name)
		n, inNew := newR.Scenario(name)
		switch {
		case !inNew:
			d.MissingCount++
			d.Scenarios = append(d.Scenarios, ScenarioDiff{Name: name, Status: StatusMissing})
		case !inOld:
			d.NewCount++
			d.Scenarios = append(d.Scenarios, ScenarioDiff{Name: name, Status: StatusNew})
		default:
			sd := ScenarioDiff{Name: name, Status: StatusCompared}
			sd.Deltas = compareScenario(o, n, tol)
			for _, dl := range sd.Deltas {
				switch dl.Verdict {
				case VerdictRegression:
					d.Regressions++
					d.Compared++
				case VerdictImprovement:
					d.Improvements++
					d.Compared++
				case VerdictOK:
					d.Compared++
				}
			}
			d.Scenarios = append(d.Scenarios, sd)
		}
	}
	return d, nil
}

// compareScenario emits the gated deltas (WIPS, latency p95 per histogram,
// stage durations) plus informational ones (scalar values).
func compareScenario(o, n Scenario, tol Tolerance) []Delta {
	var out []Delta

	if o.WIPS > 0 || n.WIPS > 0 {
		dl := Delta{Metric: "wips", Old: o.WIPS, New: n.WIPS, Verdict: VerdictOK}
		switch {
		case o.WIPS <= 0:
			dl.Verdict, dl.Note = VerdictInfo, "no baseline WIPS"
		case n.WIPS < o.WIPS*(1-tol.WIPSFrac):
			dl.Verdict = VerdictRegression
			dl.Note = fmt.Sprintf("%+.1f%% exceeds the ±%.0f%% band", pct(o.WIPS, n.WIPS), tol.WIPSFrac*100)
		case n.WIPS > o.WIPS*(1+tol.WIPSFrac):
			dl.Verdict = VerdictImprovement
			dl.Note = fmt.Sprintf("%+.1f%%", pct(o.WIPS, n.WIPS))
		default:
			dl.Note = fmt.Sprintf("%+.1f%% within band", pct(o.WIPS, n.WIPS))
		}
		out = append(out, dl)
	}

	for _, hist := range sortedKeys2(o.LatencyUS, n.LatencyUS) {
		os_, inO := o.LatencyUS[hist]
		ns, inN := n.LatencyUS[hist]
		if !inO || !inN {
			continue // coverage noted at scenario level; a lone summary gates nothing
		}
		dl := Delta{Metric: hist + "/p95", Old: float64(os_.P95), New: float64(ns.P95), Verdict: VerdictOK}
		switch {
		case os_.P95 < tol.LatencyFloorUS && ns.P95 < tol.LatencyFloorUS:
			dl.Verdict, dl.Note = VerdictInfo, fmt.Sprintf("below %dus floor", tol.LatencyFloorUS)
		case float64(ns.P95) > float64(os_.P95)*tol.LatencyRatio:
			dl.Verdict = VerdictRegression
			dl.Note = fmt.Sprintf("grew beyond the x%.1f band", tol.LatencyRatio)
		case float64(ns.P95)*tol.LatencyRatio < float64(os_.P95):
			dl.Verdict = VerdictImprovement
		}
		out = append(out, dl)
	}

	for _, stage := range sortedKeys2(o.StageSeconds, n.StageSeconds) {
		ov, inO := o.StageSeconds[stage]
		nv, inN := n.StageSeconds[stage]
		if !inO || !inN {
			// Stages are data-dependent (a run without a spare activation
			// records none); presence changes are informational.
			out = append(out, Delta{Metric: "stage/" + stage, Old: ov, New: nv, Verdict: VerdictInfo, Note: "stage present in one report only"})
			continue
		}
		dl := Delta{Metric: "stage/" + stage, Old: ov, New: nv, Verdict: VerdictOK}
		switch {
		case ov < tol.StageFloorSec && nv < tol.StageFloorSec:
			dl.Verdict, dl.Note = VerdictInfo, fmt.Sprintf("below %.2fs floor", tol.StageFloorSec)
		case nv > ov*tol.StageRatio:
			dl.Verdict = VerdictRegression
			dl.Note = fmt.Sprintf("grew beyond the x%.1f band", tol.StageRatio)
		case nv*tol.StageRatio < ov:
			dl.Verdict = VerdictImprovement
		}
		out = append(out, dl)
	}

	for _, k := range sortedKeys2(o.Values, n.Values) {
		ov, inO := o.Values[k]
		nv, inN := n.Values[k]
		if inO && inN && ov != nv {
			out = append(out, Delta{Metric: "value/" + k, Old: ov, New: nv, Verdict: VerdictInfo})
		}
	}
	return out
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return 100 * (newV - oldV) / oldV
}

// sortedKeys2 returns the sorted union of two maps' keys.
func sortedKeys2[V any](a, b map[string]V) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render writes the human-readable diff report. Regressions and coverage
// losses print unconditionally; in-band metrics print only under verbose.
func (d *Diff) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "bench diff: %s -> %s\n", FileName(d.OldPR), FileName(d.NewPR))
	fmt.Fprintf(w, "tolerance: wips ±%.0f%%, latency p95 x%.1f (floor %dus), stages x%.1f (floor %.2fs)\n\n",
		d.Tol.WIPSFrac*100, d.Tol.LatencyRatio, d.Tol.LatencyFloorUS, d.Tol.StageRatio, d.Tol.StageFloorSec)
	for _, sd := range d.Scenarios {
		switch sd.Status {
		case StatusMissing:
			if d.Tol.AllowMissing {
				fmt.Fprintf(w, "  missing     %-32s in baseline, absent from new report (tolerated)\n", sd.Name)
			} else {
				fmt.Fprintf(w, "  MISSING     %-32s in baseline, absent from new report\n", sd.Name)
			}
		case StatusNew:
			fmt.Fprintf(w, "  new         %-32s no baseline to compare\n", sd.Name)
		default:
			for _, dl := range sd.Deltas {
				switch dl.Verdict {
				case VerdictRegression:
					fmt.Fprintf(w, "  REGRESSION  %-32s %-28s %12.1f -> %-12.1f %s\n", sd.Name, dl.Metric, dl.Old, dl.New, dl.Note)
				case VerdictImprovement:
					fmt.Fprintf(w, "  improvement %-32s %-28s %12.1f -> %-12.1f %s\n", sd.Name, dl.Metric, dl.Old, dl.New, dl.Note)
				default:
					if verbose {
						fmt.Fprintf(w, "  %-11s %-32s %-28s %12.1f -> %-12.1f %s\n", dl.Verdict, sd.Name, dl.Metric, dl.Old, dl.New, dl.Note)
					}
				}
			}
		}
	}
	fmt.Fprintf(w, "\nsummary: %d regression(s), %d improvement(s), %d new, %d missing (%d gated metrics compared)\n",
		d.Regressions, d.Improvements, d.NewCount, d.MissingCount, d.Compared)
	if d.HasRegressions() {
		fmt.Fprintf(w, "verdict: FAIL — performance regressed beyond tolerance\n")
	} else {
		fmt.Fprintf(w, "verdict: ok\n")
	}
}
