package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRoundTripStable: Load -> Marshal -> Load -> Marshal yields identical
// bytes, and those bytes match the checked-in golden file. This is the
// diff-friendliness contract: re-recording an unchanged run produces an
// empty git diff.
func TestRoundTripStable(t *testing.T) {
	path := filepath.Join("testdata", "BENCH_0006.json")
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, golden) {
		t.Errorf("Marshal differs from the golden bytes:\n--- golden ---\n%s\n--- marshal ---\n%s", golden, a)
	}

	dir := t.TempDir()
	out := filepath.Join(dir, FileName(r.PR))
	if err := r.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("second round trip changed the bytes")
	}
}

// TestMarshalSortsScenarios: scenario order in memory does not leak into
// the persisted form.
func TestMarshalSortsScenarios(t *testing.T) {
	r := &Report{Schema: SchemaVersion, Scenarios: []Scenario{
		{Name: "b", Kind: "micro"},
		{Name: "a", Kind: "micro"},
	}}
	blob, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if ai, bi := bytes.Index(blob, []byte(`"a"`)), bytes.Index(blob, []byte(`"b"`)); ai < 0 || bi < 0 || ai > bi {
		t.Errorf("scenarios not sorted in output (a at %d, b at %d)", ai, bi)
	}
}

// TestLoadRejects: the loader refuses malformed reports instead of letting
// the comparator chew on them.
func TestLoadRejects(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "BENCH_0001.json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"wrong schema":   `{"schema": 99, "pr": 1, "meta": {}, "scenarios": []}`,
		"empty name":     `{"schema": 1, "pr": 1, "meta": {}, "scenarios": [{"name": "", "kind": "micro"}]}`,
		"duplicate name": `{"schema": 1, "pr": 1, "meta": {}, "scenarios": [{"name": "x", "kind": "micro"}, {"name": "x", "kind": "micro"}]}`,
		"not json":       `wips go brrr`,
	}
	for label, body := range cases {
		if _, err := Load(write(t, body)); err == nil {
			t.Errorf("Load accepted a report with %s", label)
		}
	}
}

// TestFileNameRoundTrip pins the trajectory-file naming convention.
func TestFileNameRoundTrip(t *testing.T) {
	if got := FileName(7); got != "BENCH_0007.json" {
		t.Errorf("FileName(7) = %q", got)
	}
	if got := PRFromFileName("BENCH_0007.json"); got != 7 {
		t.Errorf("PRFromFileName = %d, want 7", got)
	}
	if got := PRFromFileName("/some/dir/BENCH_0012.json"); got != 12 {
		t.Errorf("PRFromFileName with dir = %d, want 12", got)
	}
	for _, bad := range []string{"BENCH_7.json", "bench_0007.json", "BENCH_0007.json.bak", "notes.md"} {
		if got := PRFromFileName(bad); got != -1 {
			t.Errorf("PRFromFileName(%q) = %d, want -1", bad, got)
		}
	}
}

// TestLatestBaseline: the newest strictly-older report wins; no baseline
// means "", not an error.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"BENCH_0003.json", "BENCH_0005.json", "BENCH_0007.json", "README.md"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0005.json" {
		t.Errorf("LatestBaseline(pr=7) = %q, want BENCH_0005.json", got)
	}
	got, err = LatestBaseline(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0007.json" {
		t.Errorf("LatestBaseline(any) = %q, want BENCH_0007.json", got)
	}
	got, err = LatestBaseline(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("LatestBaseline(pr=3) = %q, want none", got)
	}
}
