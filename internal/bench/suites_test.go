package bench

import (
	"reflect"
	"regexp"
	"testing"
)

// TestPlanDeterministic: planning is a pure function of the configuration —
// the property the check.sh smoke leg's double-plan comparison relies on.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Mode: ModeSmoke}
	a, b := Plan(cfg), Plan(cfg)
	if !reflect.DeepEqual(planKey(a), planKey(b)) {
		t.Errorf("two plans of one config differ:\n%v\n%v", planKey(a), planKey(b))
	}
	if len(a) == 0 {
		t.Fatal("smoke plan is empty")
	}
	for _, p := range a {
		if !p.Suite.InSmoke {
			t.Errorf("smoke plan includes non-smoke suite %s", p.Suite.Name)
		}
		if p.Seed == 0 {
			t.Errorf("suite %s got the zero seed", p.Suite.Name)
		}
	}
}

// planKey reduces a plan to its comparable identity (name, seed) pairs.
func planKey(plan []Planned) [][2]any {
	out := make([][2]any, 0, len(plan))
	for _, p := range plan {
		out = append(out, [2]any{p.Suite.Name, p.Seed})
	}
	return out
}

// TestPlanSeedsDiffer: distinct suites and distinct roots derive distinct
// seeds, so no two scenarios ever share a random stream by accident.
func TestPlanSeedsDiffer(t *testing.T) {
	full := Plan(Config{Seed: 7, Mode: ModeQuick})
	seen := map[int64]string{}
	for _, p := range full {
		if prev, dup := seen[p.Seed]; dup {
			t.Errorf("suites %s and %s derived the same seed %d", prev, p.Suite.Name, p.Seed)
		}
		seen[p.Seed] = p.Suite.Name
	}
	other := Plan(Config{Seed: 8, Mode: ModeQuick})
	for i := range full {
		if full[i].Seed == other[i].Seed {
			t.Errorf("suite %s derived the same seed under roots 7 and 8", full[i].Suite.Name)
		}
	}
}

// TestPlanFilter: -run restricts the plan by suite name.
func TestPlanFilter(t *testing.T) {
	plan := Plan(Config{Seed: 7, Filter: regexp.MustCompile(`^wal-`)})
	if len(plan) != 1 || plan[0].Suite.Name != "wal-fsync" {
		t.Errorf("filtered plan = %v, want just wal-fsync", planKey(plan))
	}
}

// TestSmokeRunDeterministicScenarioSet: two smoke runs under one seed emit
// the identical scenario set with identical seeds (the measured numbers
// vary, the identity must not).
func TestSmokeRunDeterministicScenarioSet(t *testing.T) {
	cfg := Config{Seed: 7, Mode: ModeSmoke}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := scenarioIdentity(a), scenarioIdentity(b)
	if !reflect.DeepEqual(ka, kb) {
		t.Errorf("smoke scenario sets differ across runs:\n%v\n%v", ka, kb)
	}
	if len(a.Scenarios) == 0 {
		t.Fatal("smoke run emitted no scenarios")
	}
	for _, s := range a.Scenarios {
		if len(s.LatencyUS) == 0 {
			t.Errorf("smoke scenario %s has no latency summaries", s.Name)
		}
	}
}

// scenarioIdentity reduces a report to (name, kind, seed) triples.
func scenarioIdentity(r *Report) [][3]any {
	out := make([][3]any, 0, len(r.Scenarios))
	for _, s := range r.Scenarios {
		out = append(out, [3]any{s.Name, s.Kind, s.Seed})
	}
	return out
}

// TestMeasureOverrideKeepsShape: shrinking the measured period drags the
// fault offset and timeline window with it, so the fault still lands inside
// the run instead of sliding past its end.
func TestMeasureOverrideKeepsShape(t *testing.T) {
	cfg := Config{Seed: 7, Mode: ModeQuick, MeasureOverride: 1_000_000_000}.withDefaults() // 1s
	d := cfg.durations(42)
	if d.Measure != cfg.MeasureOverride {
		t.Errorf("Measure = %v, want the override", d.Measure)
	}
	if d.FaultAt >= d.Measure {
		t.Errorf("FaultAt %v not inside the measured period %v", d.FaultAt, d.Measure)
	}
	if d.Window <= 0 {
		t.Errorf("Window collapsed to %v", d.Window)
	}
	if d.Seed != 42 {
		t.Errorf("Seed = %d, want 42", d.Seed)
	}
}
