// Package bench is the machine-readable perf-trajectory subsystem: a
// registry of measurement scenarios wrapping the existing experiment
// drivers (TPC-W scaling, fail-over stage timings, WAL fsync and transport
// RPC micro-benchmarks), a versioned JSON report schema persisted as
// BENCH_<pr>.json at the repository root, and a comparator that diffs two
// reports scenario-by-scenario under per-metric tolerance bands so a perf
// claim — or a silent regression — shows up as a number, not prose.
//
// The report files form the repository's perf trajectory: one per PR that
// changes performance, committed alongside the change. cmd/dmv-bench is the
// driver; `make bench-json` and the check.sh smoke leg are the entry
// points.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"

	"dmv/internal/obs"
)

// Quantiles is the latency-summary block of the schema (count, mean,
// p50/p95/p99 in the histogram's unit — microseconds for every catalogue
// histogram). It is obs.HistSummary: the schema serializes the exact
// summaries the observability plane computes, no translation layer.
type Quantiles = obs.HistSummary

// SchemaVersion is bumped whenever a field changes meaning or is removed;
// adding fields is backward compatible and does not bump it. The comparator
// refuses to diff reports with different schema versions.
const SchemaVersion = 1

// Report is one recorded bench run — the unit persisted as BENCH_<pr>.json.
type Report struct {
	// Schema is the report format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// PR is the pull-request ordinal the report baselines (BENCH_%04d.json).
	PR int `json:"pr"`
	// Meta records everything needed to reproduce or discount the run.
	Meta Meta `json:"meta"`
	// Scenarios are the measured scenarios, sorted by name.
	Scenarios []Scenario `json:"scenarios"`
}

// Meta is the run provenance block.
type Meta struct {
	// Seed is the root seed every scenario seed was derived from.
	Seed int64 `json:"seed"`
	// Commit is the git commit the run was taken at (empty if unknown).
	Commit string `json:"commit,omitempty"`
	// GoVersion/GOOS/GOARCH/GOMAXPROCS describe the host toolchain.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Mode is the duration envelope: "full", "quick", or "smoke".
	Mode string `json:"mode"`
	// WallSeconds is the total wall-clock duration of the run.
	WallSeconds float64 `json:"wall_seconds"`
}

// Scenario is one measured scenario. Which fields are populated depends on
// the scenario kind; absent maps are omitted from the JSON.
type Scenario struct {
	// Name uniquely identifies the scenario across reports; the comparator
	// matches old and new scenarios by it (e.g. "tpcw/shopping/dmv-2").
	Name string `json:"name"`
	// Kind groups scenarios: "tpcw", "failover", or "micro".
	Kind string `json:"kind"`
	// Seed is the scenario's derived seed (harness.DeriveSeed(root, name)).
	Seed int64 `json:"seed"`
	// DurationSeconds is the measured period (0 for count-bounded micros).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// WIPS is throughput in web interactions per second (tpcw kind).
	WIPS float64 `json:"wips,omitempty"`
	// Aborts counts aborted transactions by cause, from the run's obs
	// registry (keys are the names.go abort counter names).
	Aborts map[string]int64 `json:"aborts,omitempty"`
	// LatencyUS maps an obs histogram name to its quantile summary in
	// microseconds (e.g. dmv_sched_txn_us, dmv_wal_fsync_us).
	LatencyUS map[string]obs.HistSummary `json:"latency_us,omitempty"`
	// StageSeconds maps fail-over stage labels (experiments.StageBreakdown
	// naming) to their duration in seconds.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	// Values holds scalar extras (speedup, abort_pct, baseline_wips, ...).
	Values map[string]float64 `json:"values,omitempty"`
}

// Marshal renders the report as stable, diff-friendly JSON: scenarios
// sorted by name, struct fields in declaration order, map keys sorted
// (encoding/json guarantees the latter), two-space indent, trailing
// newline. Writing the same report twice yields identical bytes.
func (r *Report) Marshal() ([]byte, error) {
	sort.Slice(r.Scenarios, func(i, j int) bool { return r.Scenarios[i].Name < r.Scenarios[j].Name })
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile persists the report to path.
func (r *Report) WriteFile(path string) error {
	blob, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// Scenario returns the named scenario and whether it exists.
func (r *Report) Scenario(name string) (Scenario, bool) {
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Load parses a report file, validating the schema version and the
// invariants the comparator relies on (unique, sorted scenario names).
func Load(path string) (*Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, this tool reads %d", path, r.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(r.Scenarios))
	for _, s := range r.Scenarios {
		if s.Name == "" {
			return nil, fmt.Errorf("%s: scenario with empty name", path)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("%s: duplicate scenario %q", path, s.Name)
		}
		seen[s.Name] = true
	}
	sort.Slice(r.Scenarios, func(i, j int) bool { return r.Scenarios[i].Name < r.Scenarios[j].Name })
	return &r, nil
}

// benchFileRE matches the trajectory files at the repository root.
var benchFileRE = regexp.MustCompile(`^BENCH_(\d{4})\.json$`)

// FileName renders the canonical trajectory file name for a PR ordinal.
func FileName(pr int) string { return fmt.Sprintf("BENCH_%04d.json", pr) }

// PRFromFileName extracts the PR ordinal from a BENCH_%04d.json basename
// (-1 if the name does not match).
func PRFromFileName(name string) int {
	m := benchFileRE.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return -1
	}
	var pr int
	fmt.Sscanf(m[1], "%d", &pr)
	return pr
}

// LatestBaseline returns the path of the highest-numbered BENCH_*.json in
// dir with PR ordinal strictly below pr (pr < 0 means "any"). It returns
// "" when no baseline exists — the first recorded run has nothing to diff
// against.
func LatestBaseline(dir string, pr int) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestPR := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		n := PRFromFileName(e.Name())
		if n < 0 || (pr >= 0 && n >= pr) {
			continue
		}
		if n > bestPR {
			best, bestPR = filepath.Join(dir, e.Name()), n
		}
	}
	return best, nil
}

// HostMeta fills the toolchain fields of a Meta from the running process.
func HostMeta() Meta {
	return Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
