package lockorder

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestHierarchyAndCycles(t *testing.T) {
	cfg := &Config{
		Levels: map[string]int{
			"lockorder.G1.mu": 10,
			"lockorder.G2.mu": 20,
			"lockorder.B1.mu": 10,
			"lockorder.B2.mu": 20,
		},
	}
	analysistest.Run(t, "testdata", New(cfg), "lockorder", "cycle")
}
