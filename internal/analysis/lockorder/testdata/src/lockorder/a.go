// Fixture for the lockorder hierarchy checks. The test declares
// lockorder.G1.mu / lockorder.B1.mu at level 10 (outer) and
// lockorder.G2.mu / lockorder.B2.mu at level 20 (inner).
package lockorder

import "sync"

// G1/G2 exercise the compliant path; B1/B2 the violations. Separate pairs
// keep the acquisition graph acyclic so the cycle detector stays quiet
// here (it has its own fixture).
type G1 struct{ mu sync.Mutex }

type G2 struct{ mu sync.Mutex }

type B1 struct{ mu sync.Mutex }

type B2 struct{ mu sync.Mutex }

func good(o *G1, i *G2) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

func goodDeferred(o *G1, i *G2) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	defer i.mu.Unlock()
	return 1
}

// earlyUnlock releases the outer lock on one branch only; the inner
// acquisition below is still in order on the fall-through path.
func earlyUnlock(o *G1, i *G2, skip bool) {
	o.mu.Lock()
	if skip {
		o.mu.Unlock()
		return
	}
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

func inverted(o *B1, i *B2) {
	i.mu.Lock()
	o.mu.Lock() // want `acquires lockorder\.B1\.mu \(level 10\) while holding lockorder\.B2\.mu \(level 20\)`
	o.mu.Unlock()
	i.mu.Unlock()
}

func reentrant(o *B1) {
	o.mu.Lock()
	o.mu.Lock() // want `acquires o\.mu while already holding it`
	o.mu.Unlock()
	o.mu.Unlock()
}

func lockB1(o *B1) {
	o.mu.Lock()
	o.mu.Unlock()
}

// callInverted holds the inner lock and calls a helper that acquires the
// outer one: the inversion is only visible through the call summary.
func callInverted(o *B1, i *B2) {
	i.mu.Lock()
	lockB1(o) // want `calls lockB1 \(acquires locks at level 10\) while holding lockorder\.B2\.mu \(level 20\)`
	i.mu.Unlock()
}

// callInOrder holds the outer lock while the helper takes the inner one.
func lockB2(i *B2) {
	i.mu.Lock()
	i.mu.Unlock()
}

func callInOrder(o *B1, i *B2) {
	o.mu.Lock()
	lockB2(i)
	o.mu.Unlock()
}
