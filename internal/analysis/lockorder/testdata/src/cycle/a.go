// Fixture for the cycle detector: two locks with no declared levels,
// acquired in opposite orders by two functions. Neither site violates a
// declared hierarchy, but together they deadlock; only the graph sees it.
package cycle

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-acquisition edge cycle\.A\.mu -> cycle\.B\.mu participates in a cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-acquisition edge cycle\.B\.mu -> cycle\.A\.mu participates in a cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// onlyOneDirection acquires a third lock pair in a single order; no cycle.
type C struct{ mu sync.Mutex }

func ac(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}
