package lockorder

// This file is the single declaration of DMV's lock hierarchy. Lower
// levels are outer locks: code holding a lock may only acquire locks with
// a strictly greater level. The bands mirror the layering of the system —
// cluster orchestration on the outside, then scheduler routing state,
// then per-node replica state, the transport, the storage engine
// (engine -> table -> index), page latches, and finally the version
// clocks, which are leaf locks acquired with page latches held during the
// master pre-commit (heap.UpdateTx.Commit ticks the clock while the
// transaction's page locks are still down).
//
// Same-level locks are exempt from ordering so that ordered same-class
// acquisition stays legal (2PL acquires many page latches; the innodb
// tier locks its table mutexes in sorted order), but re-acquiring the
// same instance is always flagged.
//
// DESIGN.md ("Concurrency invariants") documents the bands; dmv-vet
// enforces them.

// Hierarchy bands. Gaps leave room for new locks without renumbering.
const (
	levelFence     = 5  // scheduler commit fence: held across fail-over rollback, outermost
	levelCluster   = 10 // cluster orchestration (membership, event log)
	levelPersist   = 12 // persistence tier (commit log, backend apply state)
	levelWAL       = 16 // write-ahead log + fault-injected storage beneath it
	levelScheduler = 20 // scheduler routing state
	levelReplica   = 30 // per-node replica state (sessions, subscribers)
	levelTransport = 35 // RPC client/server bookkeeping
	levelFaultnet  = 36 // fault-injection net wrappers (under transport conns)
	levelEngine    = 40 // heap engine catalog
	levelTable     = 44 // per-table directory / row-location / allocator
	levelIndex     = 48 // versioned secondary indexes
	levelPage      = 50 // page latches (2PL; many held at once)
	levelDisk      = 55 // simdisk buffer-cache state: the engine's access
	// observer (Disk.PageAccess) fires under page latches (heap.tx.observe
	// runs with the transaction's 2PL locks down), so the disk lock nests
	// inside page and outside the clocks.
	levelClock = 60 // version clocks: innermost, held for a few loads
	levelObs   = 70 // observability registry/tracer/timeline: innermost of
	// all — metric registration, span recording, and event appends may run
	// with any other lock held, and obs code never calls back out under its
	// own locks (timeline hooks fire after unlock; snapshot gauge callbacks
	// run with no registry lock held).
)

// DefaultConfig declares every annotated mutex in the tree. A lock absent
// from this table is ignored by the hierarchy check (but still feeds the
// cycle detector), so new locks fail open until declared here.
var DefaultConfig = &Config{
	Levels: map[string]int{
		// cluster (the former evMu event log now lives in obs.Timeline)
		"dmv/internal/cluster.Cluster.mu": levelCluster,

		// persistence tier. OnCommit appends to the WAL under Tier.mu, so
		// Tier.mu sits outside WAL.mu; the applier takes Backend.applyMu
		// (quiescing the engine for complete fuzzy checkpoints) and under it
		// the prepared-statement cache (stmtMu) and the progress-mark lock
		// (Backend.mu).
		"dmv/internal/persist.Tier.mu":         levelPersist,
		"dmv/internal/persist.Backend.applyMu": levelPersist + 1,
		"dmv/internal/persist.Backend.mu":      levelPersist + 2,
		"dmv/internal/persist.Tier.stmtMu":     levelPersist + 3,

		// WAL and the seeded fault-injection disk beneath it: segment file
		// operations run against faultdisk files whose durability model is
		// guarded by Disk.mu, always entered with WAL.mu ordering above it.
		"dmv/internal/wal.WAL.mu":        levelWAL,
		"dmv/internal/faultdisk.Disk.mu": levelWAL + 1,

		// scheduler
		"dmv/internal/scheduler.Scheduler.commitFence": levelFence,
		"dmv/internal/scheduler.Scheduler.mu":          levelScheduler,
		"dmv/internal/scheduler.classState.mu":         levelScheduler + 1,
		"dmv/internal/scheduler.replicaState.verMu":    levelScheduler + 2,
		"dmv/internal/scheduler.Scheduler.rngMu":       levelScheduler + 3,
		"dmv/internal/scheduler.Scheduler.stmtMu":      levelScheduler + 3,
		// Admission queue: entered before any routing state on the begin
		// path and never held across a replica call; waiter wakeups, gauge
		// writes, timeline events, and flight triggers all fire after
		// unlock, so only obs-band locks may nest inside it.
		"dmv/internal/scheduler.Admitter.mu": levelScheduler + 4,
		// Scrubber sweep serialization: entered only from the cluster's
		// scrub ticker with no locks held, and held across the whole sweep
		// (routing-state reads, digest RPCs, quarantine flips), so it shares
		// the scheduler band as an outermost scheduler-layer lock.
		"dmv/internal/scheduler.Scrubber.mu": levelScheduler,

		// replica. TxCommit fixes the order session.mu -> commitMu ->
		// (broadcast) subsMu; sessMu is released before any session.mu is
		// taken, but sits outside it for clarity.
		"dmv/internal/replica.Node.joinMu":   levelReplica,
		"dmv/internal/replica.Node.sessMu":   levelReplica + 1,
		"dmv/internal/replica.session.mu":    levelReplica + 2,
		"dmv/internal/replica.Node.commitMu": levelReplica + 3,
		"dmv/internal/replica.Node.subsMu":   levelReplica + 4,
		"dmv/internal/replica.Node.roleMu":   levelReplica + 4,
		"dmv/internal/replica.Node.stmtMu":   levelReplica + 4,
		"dmv/internal/replica.Node.cpMu":     levelReplica + 4,
		"dmv/internal/replica.Node.stallMu":  levelReplica + 4,

		// transport
		"dmv/internal/transport.Server.connMu":    levelTransport,
		"dmv/internal/transport.RemoteNode.mu":    levelTransport,
		"dmv/internal/transport.RemoteNode.trMu":  levelTransport,
		"dmv/internal/transport.RemoteNode.rngMu": levelTransport,

		// faultnet: Network.mu is taken outer to Conn.mu (reset sweeps walk
		// the conn table under the network lock), and transport writes land
		// in these conns with transport locks already held.
		"dmv/internal/faultnet.Network.mu": levelFaultnet,
		"dmv/internal/faultnet.Conn.mu":    levelFaultnet + 1,

		// heap storage engine
		"dmv/internal/heap.Engine.mu":      levelEngine,
		"dmv/internal/heap.Engine.txSeqMu": levelEngine + 1,
		"dmv/internal/heap.Table.allocMu":  levelTable,
		"dmv/internal/heap.Table.dirMu":    levelTable + 1,
		"dmv/internal/heap.Table.rlMu":     levelTable + 2,
		"dmv/internal/heap.Table.idxMu":    levelTable + 3,
		"dmv/internal/heap.Index.mu":       levelIndex,

		// page latches
		"dmv/internal/page.Page.mu": levelPage,

		// simdisk buffer-cache model (see levelDisk: entered under page
		// latches via the engine's access observer)
		"dmv/internal/simdisk.Disk.mu": levelDisk,

		// version clocks (leaves)
		"dmv/internal/vclock.Clock.mu":  levelClock,
		"dmv/internal/vclock.Merged.mu": levelClock,

		// observability (innermost; see levelObs)
		"dmv/internal/obs.Registry.mu":   levelObs,
		"dmv/internal/obs.Tracer.mu":     levelObs,
		"dmv/internal/obs.Timeline.mu":   levelObs,
		"dmv/internal/obs.Aggregator.mu": levelObs,

		// flight recorder: ring appends and trigger enqueues share the obs
		// band so any subsystem may call them under its own locks. Dump
		// assembly (registry snapshot + peer RPCs) runs only on the
		// recorder's worker goroutine with neither lock held.
		"dmv/internal/obs/flight.Recorder.mu":      levelObs,
		"dmv/internal/obs/flight.Recorder.peersMu": levelObs,
	},
	Callees: map[string]int{
		// Cross-package entry points that acquire locks internally; calling
		// one of these while holding a lock of a *higher* level inverts the
		// hierarchy even though the acquisition is not visible in the
		// calling package.
		"dmv/internal/vclock.Clock.Tick":           levelClock,
		"dmv/internal/vclock.Clock.Current":        levelClock,
		"dmv/internal/vclock.Clock.Advance":        levelClock,
		"dmv/internal/vclock.Clock.ResetTo":        levelClock,
		"dmv/internal/vclock.Merged.Report":        levelClock,
		"dmv/internal/vclock.Merged.Latest":        levelClock,
		"dmv/internal/vclock.Merged.Reset":         levelClock,
		"dmv/internal/wal.WAL.Append":              levelWAL,
		"dmv/internal/wal.WAL.WaitDurable":         levelWAL,
		"dmv/internal/wal.WAL.Flush":               levelWAL,
		"dmv/internal/wal.WAL.TruncateTo":          levelWAL,
		"dmv/internal/heap.Engine.table":           levelEngine,
		"dmv/internal/heap.Engine.allTables":       levelEngine,
		"dmv/internal/heap.Engine.AppliedVersions": levelEngine,

		// anti-entropy scrub entry points (DESIGN.md §15): each walks the
		// catalog and takes table/page locks internally, so callers must
		// hold nothing at or above the engine band.
		"dmv/internal/heap.Engine.TableDigestAt":    levelEngine,
		"dmv/internal/heap.Engine.PageImages":       levelEngine,
		"dmv/internal/heap.Engine.RepairPages":      levelEngine,
		"dmv/internal/heap.Engine.CorruptPage":      levelEngine,
		"dmv/internal/heap.Engine.CorruptRandomRow": levelEngine,

		// obs entry points: metric registration and hot-path recording take
		// only obs locks, so they are safe under anything. Snapshot is the
		// exception — it invokes gauge callbacks (outside the registry lock)
		// that may take Cluster.mu, so it carries the cluster level.
		"dmv/internal/obs.Registry.Counter":   levelObs,
		"dmv/internal/obs.Registry.Gauge":     levelObs,
		"dmv/internal/obs.Registry.Histogram": levelObs,
		"dmv/internal/obs.Registry.GaugeFunc": levelObs,
		"dmv/internal/obs.Registry.Snapshot":  levelCluster,
		"dmv/internal/obs.Tracer.Begin":       levelObs,
		"dmv/internal/obs.Tracer.BeginChild":  levelObs,
		"dmv/internal/obs.Tracer.Total":       levelObs,
		"dmv/internal/obs.Tracer.Dump":        levelObs,
		"dmv/internal/obs.Aggregator.Update":  levelObs,
		"dmv/internal/obs.Aggregator.Current": levelObs,
		"dmv/internal/obs.Span.Finish":        levelObs,
		"dmv/internal/obs.Timeline.Record":    levelObs,
		"dmv/internal/obs.Timeline.Events":    levelObs,
		"dmv/internal/obs.Timeline.OnEvent":   levelObs,
		"dmv/internal/obs.Timeline.Start":     levelObs,
		"dmv/internal/obs.Stage.End":          levelObs,

		// flight recorder entry points: Trigger/Record* touch only the
		// recorder's own obs-band state, so they are safe under anything
		// (fail-over fires Trigger while holding the commit fence).
		// NodeDump snapshots the registry, so like Registry.Snapshot it
		// carries the cluster level and must not run under subsystem locks.
		"dmv/internal/obs/flight.Recorder.Trigger":      levelObs,
		"dmv/internal/obs/flight.Recorder.RecordSpan":   levelObs,
		"dmv/internal/obs/flight.Recorder.RecordEvent":  levelObs,
		"dmv/internal/obs/flight.Recorder.RecordHealth": levelObs,
		"dmv/internal/obs/flight.Recorder.NodeDump":     levelCluster,
	},
}
