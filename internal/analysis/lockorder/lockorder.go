// Package lockorder flags lock acquisitions that violate DMV's declared
// lock hierarchy and cycles in the per-package lock-acquisition graph.
//
// The checker walks every function with the branch-aware lock tracker,
// records an edge A -> B whenever lock B is acquired while A is held, and
// reports: (1) acquisitions whose declared level is lower (more outer)
// than a lock already held — the classic inversion that deadlocks two
// goroutines locking in opposite orders; (2) calls to functions known to
// acquire low-level locks while a higher-level lock is held, using
// package-local call summaries plus the declared cross-package table; and
// (3) cycles in the aggregated acquisition graph, which catch inversions
// split across two functions even when neither site is annotated.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dmv/internal/analysis"
)

// Config declares the lock hierarchy the analyzer enforces.
type Config struct {
	// Levels maps a lock site key ("pkgpath.Type.field") to its level.
	// Lower levels are outer locks: while holding level L, only locks with
	// level strictly greater than L may be acquired (equal levels are
	// tolerated for ordered same-class acquisition, e.g. sorted page or
	// table locks).
	Levels map[string]int
	// Callees maps a qualified function or interface-method name
	// ("pkgpath.Type.Method" or "pkgpath.Func") to the minimum lock level
	// it may acquire, covering calls that cross package boundaries where
	// the per-package summary cannot see the callee's body.
	Callees map[string]int
}

// New returns a lockorder analyzer enforcing cfg.
func New(cfg *Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockorder",
		Doc:  "check lock acquisitions against the declared DMV lock hierarchy and find acquisition cycles",
	}
	a.Run = func(pass *analysis.Pass) error { return run(pass, cfg) }
	return a
}

// Analyzer enforces the repository's default hierarchy (hierarchy.go).
var Analyzer = New(DefaultConfig)

type edge struct {
	from, to string
	pos      token.Pos
}

func run(pass *analysis.Pass, cfg *Config) error {
	summaries := buildSummaries(pass, cfg)
	var edges []edge
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			v := &visitor{pass: pass, cfg: cfg, summaries: summaries, edges: &edges}
			analysis.WalkFunc(pass.TypesInfo, fd.Body, v)
		}
	}
	reportCycles(pass, edges)
	return nil
}

type visitor struct {
	pass      *analysis.Pass
	cfg       *Config
	summaries map[*types.Func]int
	edges     *[]edge
}

func (v *visitor) Acquire(call *ast.CallExpr, h analysis.Held, held []analysis.Held) {
	for _, g := range held {
		if g.Key != "" && h.Key != "" && g.Key != h.Key {
			*v.edges = append(*v.edges, edge{from: g.Key, to: h.Key, pos: call.Pos()})
		}
		// Re-acquiring the same mutex instance exclusively self-deadlocks
		// (Go sync mutexes are not reentrant).
		if g.Key == h.Key && g.Inst == h.Inst && !(g.RLock && h.RLock) {
			v.pass.Reportf(call.Pos(), "acquires %s.%s while already holding it (sync mutexes are not reentrant)", h.Inst, h.Field)
			continue
		}
		lh, okH := v.cfg.Levels[h.Key]
		lg, okG := v.cfg.Levels[g.Key]
		if okH && okG && lh < lg {
			v.pass.Reportf(call.Pos(), "acquires %s (level %d) while holding %s (level %d): violates the declared lock hierarchy", short(h.Key), lh, short(g.Key), lg)
		}
	}
}

func (v *visitor) Visit(n ast.Node, held []analysis.Held) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall || len(held) == 0 {
		return
	}
	if _, _, isLockCall := analysis.ClassifyLockCall(v.pass.TypesInfo, call); isLockCall {
		return
	}
	fn := calleeFunc(v.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	floor, known := v.summaries[fn]
	if !known {
		floor, known = v.cfg.Callees[funcKey(fn)]
	}
	if !known {
		return
	}
	for _, g := range held {
		if lg, okG := v.cfg.Levels[g.Key]; okG && floor < lg {
			v.pass.Reportf(call.Pos(), "calls %s (acquires locks at level %d) while holding %s (level %d): violates the declared lock hierarchy", fn.Name(), floor, short(g.Key), lg)
		}
	}
}

// buildSummaries computes, per package-local function, the minimum
// declared level of any lock it may (transitively, within the package)
// acquire. Functions that acquire nothing relevant are absent.
func buildSummaries(pass *analysis.Pass, cfg *Config) map[*types.Func]int {
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			if fn, isDef := pass.TypesInfo.Defs[fd.Name].(*types.Func); isDef {
				bodies[fn] = fd
			}
		}
	}
	direct := make(map[*types.Func]int)
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range bodies {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if op, h, isLockCall := analysis.ClassifyLockCall(pass.TypesInfo, call); isLockCall {
				if op == analysis.OpLock || op == analysis.OpRLock {
					if lvl, declared := cfg.Levels[h.Key]; declared {
						setMin(direct, fn, lvl)
					}
				}
				return true
			}
			if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
				if _, local := bodies[callee]; local {
					calls[fn] = append(calls[fn], callee)
				} else if lvl, declared := cfg.Callees[funcKey(callee)]; declared {
					setMin(direct, fn, lvl)
				}
			}
			return true
		})
	}
	// Propagate to a fixed point (the package call graph is tiny).
	summaries := make(map[*types.Func]int, len(direct))
	for fn, lvl := range direct {
		summaries[fn] = lvl
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				if lvl, known := summaries[callee]; known {
					if cur, has := summaries[fn]; !has || lvl < cur {
						summaries[fn] = lvl
						changed = true
					}
				}
			}
		}
	}
	return summaries
}

func setMin(m map[*types.Func]int, fn *types.Func, lvl int) {
	if cur, has := m[fn]; !has || lvl < cur {
		m[fn] = lvl
	}
}

// calleeFunc resolves a call expression to its static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey renders a function as "pkgpath.Recv.Name" / "pkgpath.Name".
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, isSig := fn.Type().(*types.Signature)
	if isSig && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// short trims the module path prefix from a lock key for messages.
func short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// reportCycles runs Tarjan's SCC over the aggregated acquisition graph and
// reports every edge inside a non-trivial strongly connected component.
func reportCycles(pass *analysis.Pass, edges []edge) {
	adj := make(map[string][]string)
	firstPos := make(map[[2]string]token.Pos)
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if _, seen := firstPos[key]; !seen {
			firstPos[key] = e.pos
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, ncomp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	nodes := make([]string, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sizes := make(map[int]int)
	for _, c := range comp {
		sizes[c]++
	}
	reported := make(map[[2]string]bool)
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if reported[key] {
			continue
		}
		cf, okF := comp[e.from]
		ct, okT := comp[e.to]
		if okF && okT && cf == ct && sizes[cf] > 1 {
			reported[key] = true
			pass.Report(analysis.Diagnostic{
				Pos:      firstPos[key],
				Analyzer: "lockorder",
				Message:  fmt.Sprintf("lock-acquisition edge %s -> %s participates in a cycle: goroutines can deadlock by locking in opposite orders", short(e.from), short(e.to)),
			})
		}
	}
}
