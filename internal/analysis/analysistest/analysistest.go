// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest with the standard library
// alone. Fixtures live under <testdata>/src/<pkg>/; imports are resolved
// from sibling fixture directories first and from the real source importer
// (standard library) otherwise.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dmv/internal/analysis"
)

// Run applies the analyzer to each fixture package and reports any
// mismatch between actual diagnostics and // want expectations. Fixtures
// see the full driver semantics: one Begin state shared across the listed
// packages, Finish diagnostics after all packages ran, and //dmv:ignore
// suppression (malformed ignores surface as "dmvignore" diagnostics, so a
// fixture can assert them with a want comment).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		fset:     token.NewFileSet(),
		root:     filepath.Join(testdata, "src"),
		imported: make(map[string]*fixture),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	ignores := analysis.NewIgnoreIndex()
	var state any
	if a.Begin != nil {
		state = a.Begin()
	}
	var diags, malformed []analysis.Diagnostic
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		fx, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("load fixture %s: %v", pkg, err)
		}
		allFiles = append(allFiles, fx.files...)
		for _, f := range fx.files {
			malformed = append(malformed, ignores.AddFile(ld.fset, f)...)
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     fx.files,
			Pkg:       fx.pkg,
			TypesInfo: fx.info,
			State:     state,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: run on %s: %v", a.Name, pkg, err)
		}
	}
	if a.Finish != nil {
		if err := a.Finish(state, func(d analysis.Diagnostic) { diags = append(diags, d) }); err != nil {
			t.Fatalf("%s: finish: %v", a.Name, err)
		}
	}
	diags = ignores.Filter(ld.fset, diags)
	diags = append(diags, malformed...)
	check(t, ld.fset, allFiles, diags)
}

type fixture struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset     *token.FileSet
	root     string
	fallback types.Importer
	imported map[string]*fixture
}

// Import lets fixture packages import sibling fixtures by bare path.
func (l *loader) Import(path string) (*types.Package, error) {
	if fx, err := l.load(path); err == nil {
		return fx.pkg, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*fixture, error) {
	if fx, done := l.imported[path]; done {
		return fx, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files", path)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture %s: %w", path, err)
	}
	fx := &fixture{pkg: pkg, files: files, info: info}
	l.imported[path] = fx
	return fx, nil
}

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`^//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"` + "|`[^`]*`" + `))+)\s*$`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// check compares diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	got := make(map[lineKey][]analysis.Diagnostic)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{file: pos.Filename, line: pos.Line}
		got[key] = append(got[key], d)
	}
	keys := make(map[lineKey]struct{})
	for k := range wants {
		keys[k] = struct{}{}
	}
	for k := range got {
		keys[k] = struct{}{}
	}
	sorted := make([]lineKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].line < sorted[j].line
	})
	for _, k := range sorted {
		msgs := got[k]
		used := make([]bool, len(msgs))
		for _, re := range wants[k] {
			matched := false
			for i, d := range msgs {
				if !used[i] && re.MatchString(d.Message) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re.String())
			}
		}
		for i, d := range msgs {
			if !used[i] {
				t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", k.file, k.line, d.Analyzer, d.Message)
			}
		}
	}
}
