package metricname

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "obs", "app")
}
