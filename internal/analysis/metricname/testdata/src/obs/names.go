// The metric-name catalogue fixture: every name the fixture app registers
// must be declared here, and a declared name nobody uses is dead.
package obs

const (
	Good      = "dmv_good_total"
	PrefixFam = "dmv_fam_"       // alive: used as a Labeled base name
	Dead      = "dmv_dead_total" // want `metric name constant Dead is declared in names\.go but never registered or referenced`

	//dmv:ignore(metricname) fixture: demonstrating a suppressed dead name
	Parked = "dmv_parked_total"
)
