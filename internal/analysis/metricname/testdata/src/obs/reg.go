package obs

// Registry mirrors the real obs registry surface.
type Registry struct{}

func (r *Registry) Counter(name string) *Counter             { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                 { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram         { return &Histogram{} }
func (r *Registry) GaugeFunc(name string, fn func() float64) {}

// Counter, Gauge, and Histogram are opaque instruments.
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

// Labeled derives a labeled series name from a catalogued base.
func Labeled(name string, kv ...string) string { return name }
