// Package app is the metricname fixture for registration sites: names
// come from the obs catalogue, directly or through Labeled.
package app

import "obs"

var dynamicName = "custom_series_total"

func register(r *obs.Registry) {
	r.Counter(obs.Good)                                                // fine: catalogued constant
	r.Histogram(obs.Labeled(obs.PrefixFam, "k", "v"))                  // fine: Labeled over a catalogued base
	r.Gauge("dmv_bad_total")                                           // want `Gauge registered with string literal "dmv_bad_total"; declare it in names\.go`
	r.Counter(dynamicName)                                             // want `Counter registered with a non-catalogue name`
	r.GaugeFunc(obs.Labeled(dynamicName), func() float64 { return 0 }) // want `GaugeFunc registered with a non-catalogue name`
}

func stray() string {
	return "dmv_stray_bytes" // want `metric-name literal "dmv_stray_bytes" outside names\.go`
}

func suppressed(r *obs.Registry) {
	//dmv:ignore(metricname) fixture: demonstrating a documented suppression
	r.Counter("dmv_suppressed_total")
}
