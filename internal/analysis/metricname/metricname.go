// Package metricname replaces the old grep lint on metric names with a
// real analyzer: the observability registry is the cluster's public
// telemetry surface, and dashboards/scrapers key on exact metric names, so
// every name must be a constant declared in the obs names file — a single
// reviewable catalogue — rather than a string literal scattered at a
// registration site where a typo silently forks a time series.
//
// Three rules:
//
//  1. Every Registry registration (Counter, Gauge, Histogram, GaugeFunc)
//     must pass a constant declared in the obs package, either directly or
//     through obs.Labeled(<const>, ...). Literals get a "declare it in
//     names.go" diagnostic; arbitrary expressions are flagged too.
//  2. Any string literal starting with the metric prefix ("dmv_") outside
//     the names file is a scattered name, registration site or not.
//  3. A name declared in the names file but never referenced outside it is
//     dead — flagged at the declaration (cross-package, via the analyzer's
//     Finish hook). Dead-name detection is only meaningful when the whole
//     module is analyzed (./...); analyzing the obs package alone would
//     report every name dead.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dmv/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// ObsPkg is the observability package (PkgMatch semantics) declaring
	// Registry, Labeled, and the name constants.
	ObsPkg string
	// NamesFile is the basename of the file that must hold every name
	// constant.
	NamesFile string
	// Prefix is the metric-name prefix that marks a string as a metric
	// name.
	Prefix string
	// RegistryType and RegisterFuncs identify registration call sites.
	RegistryType  string
	RegisterFuncs []string
	// LabeledFunc is the name-deriving helper whose first argument must
	// itself be a catalogued constant.
	LabeledFunc string
}

// DefaultConfig matches this repository's internal/obs layout.
var DefaultConfig = Config{
	ObsPkg:        "obs",
	NamesFile:     "names.go",
	Prefix:        "dmv_", //dmv:ignore(metricname) the analyzer's own prefix configuration, not a metric registration
	RegistryType:  "Registry",
	RegisterFuncs: []string{"Counter", "Gauge", "Histogram", "GaugeFunc"},
	LabeledFunc:   "Labeled",
}

// state is the cross-package census for rule 3.
type state struct {
	mu sync.Mutex
	// declared maps const name -> its declaration, for consts in the names
	// file whose value carries the metric prefix.
	declared map[string]token.Pos
	// referenced holds const names used anywhere outside the names file.
	referenced map[string]bool
}

// Analyzer flags uncatalogued and dead metric names.
var Analyzer = &analysis.Analyzer{
	Name:  "metricname",
	Doc:   "require obs metric registrations to use constants from the names catalogue, and flag catalogued names that are never used",
	Begin: func() any { return &state{declared: make(map[string]token.Pos), referenced: make(map[string]bool)} },
	Run:   func(pass *analysis.Pass) error { return run(pass, DefaultConfig) },
	Finish: func(st any, report func(analysis.Diagnostic)) error {
		return finish(st.(*state), DefaultConfig, report)
	},
}

func run(pass *analysis.Pass, cfg Config) error {
	st := pass.State.(*state)
	register := make(map[string]bool, len(cfg.RegisterFuncs))
	for _, n := range cfg.RegisterFuncs {
		register[n] = true
	}
	// Positions already diagnosed by rule 1, so rule 2 does not double-fire
	// on the same literal.
	flagged := make(map[token.Pos]bool)

	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		inNamesFile := base == cfg.NamesFile && analysis.PkgMatch(pass.Pkg.Path(), cfg.ObsPkg)
		if inNamesFile {
			collectDeclared(pass, cfg, f, st)
			continue // the catalogue itself may hold prefix literals
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkRegistration(pass, cfg, node, register, flagged)
			case *ast.Ident:
				recordUse(pass, cfg, node, st)
			}
			return true
		})
		// Rule 2, after rule 1 marked its positions.
		ast.Inspect(f, func(n ast.Node) bool {
			lit, isLit := n.(*ast.BasicLit)
			if !isLit || lit.Kind != token.STRING || flagged[lit.Pos()] {
				return true
			}
			if val, tv := litValue(pass, lit); tv && strings.HasPrefix(val, cfg.Prefix) {
				pass.Reportf(lit.Pos(), "metric-name literal %q outside %s; declare it as a constant in the catalogue", val, cfg.NamesFile)
			}
			return true
		})
	}
	return nil
}

// collectDeclared records the catalogue's metric-name constants.
func collectDeclared(pass *analysis.Pass, cfg Config, f *ast.File, st *state) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, decl := range f.Decls {
		gd, isGen := decl.(*ast.GenDecl)
		if !isGen || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, isVal := spec.(*ast.ValueSpec)
			if !isVal {
				continue
			}
			for _, name := range vs.Names {
				obj, isConst := pass.TypesInfo.Defs[name].(*types.Const)
				if !isConst || obj.Val().Kind() != constant.String {
					continue
				}
				if strings.HasPrefix(constant.StringVal(obj.Val()), cfg.Prefix) {
					st.declared[name.Name] = name.Pos()
				}
			}
		}
	}
}

// recordUse marks catalogue constants referenced outside the names file.
func recordUse(pass *analysis.Pass, cfg Config, id *ast.Ident, st *state) {
	obj, isConst := pass.TypesInfo.Uses[id].(*types.Const)
	if !isConst || obj.Pkg() == nil || !analysis.PkgMatch(obj.Pkg().Path(), cfg.ObsPkg) {
		return
	}
	st.mu.Lock()
	st.referenced[obj.Name()] = true
	st.mu.Unlock()
}

// checkRegistration enforces rule 1 on one call.
func checkRegistration(pass *analysis.Pass, cfg Config, call *ast.CallExpr, register map[string]bool, flagged map[token.Pos]bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !register[fn.Name()] || len(call.Args) == 0 {
		return
	}
	if analysis.RecvTypeName(fn) != cfg.RegistryType || fn.Pkg() == nil ||
		!analysis.PkgMatch(fn.Pkg().Path(), cfg.ObsPkg) {
		return
	}
	arg := call.Args[0]
	if catalogueName(pass, cfg, arg) {
		return
	}
	// obs.Labeled(<const>, ...) derives a labeled series from a catalogued
	// base name.
	if inner, isCall := arg.(*ast.CallExpr); isCall {
		ifn := analysis.CalleeFunc(pass.TypesInfo, inner)
		if analysis.FuncFromPkg(ifn, cfg.ObsPkg, cfg.LabeledFunc) &&
			len(inner.Args) > 0 && catalogueName(pass, cfg, inner.Args[0]) {
			return
		}
	}
	flagged[arg.Pos()] = true
	if lit, isLit := arg.(*ast.BasicLit); isLit && lit.Kind == token.STRING {
		val, _ := litValue(pass, lit)
		pass.Reportf(arg.Pos(), "%s registered with string literal %q; declare it in %s so the telemetry surface stays a single catalogue", fn.Name(), val, cfg.NamesFile)
		return
	}
	pass.Reportf(arg.Pos(), "%s registered with a non-catalogue name; use a constant from %s (or %s over one)", fn.Name(), cfg.NamesFile, cfg.LabeledFunc)
}

// catalogueName reports whether expr is (possibly parenthesized) a use of
// a constant declared in the obs package.
func catalogueName(pass *analysis.Pass, cfg Config, expr ast.Expr) bool {
	for {
		paren, isParen := expr.(*ast.ParenExpr)
		if !isParen {
			break
		}
		expr = paren.X
	}
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, isConst := pass.TypesInfo.Uses[id].(*types.Const)
	return isConst && obj.Pkg() != nil && analysis.PkgMatch(obj.Pkg().Path(), cfg.ObsPkg)
}

func litValue(pass *analysis.Pass, lit *ast.BasicLit) (string, bool) {
	tv, known := pass.TypesInfo.Types[ast.Expr(lit)]
	if !known || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// finish reports rule 3: catalogued names never referenced anywhere.
func finish(st *state, cfg Config, report func(analysis.Diagnostic)) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.declared))
	for name := range st.declared {
		if !st.referenced[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		report(analysis.Diagnostic{
			Pos:      st.declared[name],
			Analyzer: "metricname",
			Message:  "metric name constant " + name + " is declared in " + cfg.NamesFile + " but never registered or referenced; delete it or wire it up (meaningful only when analyzing the whole module)",
		})
	}
	return nil
}
