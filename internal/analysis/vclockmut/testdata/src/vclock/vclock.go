// Stub of dmv/internal/vclock for the vclockmut fixtures: the analyzer
// matches the type by name and package name, so a minimal double keeps
// the fixture free of module-path imports.
package vclock

// Vector is a version vector.
type Vector []uint64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Merge writes the element-wise maximum through v's backing array.
func (v Vector) Merge(o Vector) Vector {
	for i, x := range o {
		if i < len(v) && x > v[i] {
			v[i] = x
		}
	}
	return v
}

// MinInto lowers v element-wise.
func (v Vector) MinInto(o Vector) Vector {
	for i := range v {
		if i < len(o) && o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}
