// Fixture for vclockmut: vectors may be mutated freely until they escape
// (channel send, composite-literal publication, marshalling call); after
// that every in-place write is a finding. Write-set version fields are
// immutable unconditionally.
package vclockmut

import "vclock"

// WriteSet doubles dmv/internal/heap.WriteSet (matched by type name).
type WriteSet struct {
	TxID    uint64
	Version vclock.Vector
}

func sendThenMutate(ch chan vclock.Vector, v vclock.Vector) {
	v[0] = 7 // ok: not escaped yet
	ch <- v
	v[0] = 8 // want `writes element of version vector "v" after it escaped`
}

func publishThenMerge(v, o vclock.Vector) *WriteSet {
	ws := &WriteSet{TxID: 1, Version: v}
	v.Merge(o) // want `calls Merge on version vector "v" after it escaped`
	return ws
}

func marshalThenMinInto(v, o vclock.Vector) {
	marshalVector(v)
	v.MinInto(o) // want `calls MinInto on version vector "v" after it escaped`
}

func marshalVector(v vclock.Vector) []byte {
	return nil
}

func writeSetStamp(ws *WriteSet) {
	ws.Version[0]++ // want `writes element of ws\.Version: write-set version vectors are immutable`
}

func writeSetMerge(ws *WriteSet, o vclock.Vector) {
	ws.Version.Merge(o) // want `calls Merge on ws\.Version: write-set version vectors are immutable`
}

func cloneBeforeSend(ch chan vclock.Vector, v vclock.Vector) {
	ch <- v.Clone()
	v[0] = 9 // ok: the clone escaped, not v
}

func fieldPublish(dst *WriteSet, v vclock.Vector) {
	dst.Version = v
	v[0] = 1 // want `writes element of version vector "v" after it escaped`
}

func rebindClears(ch chan vclock.Vector, v vclock.Vector) {
	ch <- v
	v = vclock.Vector{1, 2}
	v[0] = 3 // ok: v was re-bound to a fresh vector after the send
}
