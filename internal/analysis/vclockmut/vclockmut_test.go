package vclockmut_test

import (
	"testing"

	"dmv/internal/analysis/analysistest"
	"dmv/internal/analysis/vclockmut"
)

func TestVclockMut(t *testing.T) {
	analysistest.Run(t, "testdata", vclockmut.Analyzer, "vclockmut")
}
