// Package vclockmut enforces the paper's "stamped at pre-commit, immutable
// thereafter" rule for version vectors: once a vclock.Vector value has
// escaped the producing function — sent on a channel, published into a
// struct field or composite literal, or handed to a marshalling /
// broadcasting call — mutating it in place (index writes, Merge, MinInto)
// races with every reader of the published value and silently rewrites the
// database version a committed transaction was stamped with.
//
// Mutation through a WriteSet's Version field is flagged unconditionally:
// a write-set is by construction already published to the replication
// stream.
//
// The escape analysis is intraprocedural and tracks variables by identity
// in source order; aliases created through plain assignment are not
// followed (Clone the vector instead).
package vclockmut

import (
	"go/ast"
	"go/types"
	"regexp"

	"dmv/internal/analysis"
)

// Analyzer flags in-place mutation of escaped version vectors.
var Analyzer = &analysis.Analyzer{
	Name: "vclockmut",
	Doc:  "flag mutation of version vectors after they escape (publication makes them immutable)",
	Run:  run,
}

// publishRE matches call names that hand a value to the replication or
// serialization machinery.
var publishRE = regexp.MustCompile(`(?i)^(marshal|encode|send|broadcast|publish|report|gob)`)

// mutators are vclock.Vector methods that write through the receiver.
var mutators = map[string]bool{"Merge": true, "MinInto": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	escaped := make(map[*types.Var]bool)
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			// ch <- v, ch <- T{..., v, ...}: the vector is now shared with
			// the receiving goroutine.
			markVectors(info, st.Value, escaped)
		case *ast.CompositeLit:
			// Building a struct or slice around the vector aliases it into
			// a value that typically outlives this frame (write-sets,
			// commit records, RPC argument structs).
			for _, elt := range st.Elts {
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					markVectors(info, kv.Value, escaped)
				} else {
					markVectors(info, elt, escaped)
				}
			}
		case *ast.CallExpr:
			if name := callName(st); publishRE.MatchString(name) {
				for _, a := range st.Args {
					markVectors(info, a, escaped)
				}
			}
			// v.Merge(o) / v.MinInto(o) write through v's backing array.
			if fsel, isSel := st.Fun.(*ast.SelectorExpr); isSel && mutators[fsel.Sel.Name] && isVector(info.TypeOf(fsel.X)) {
				if vr := rootVar(info, fsel.X); vr != nil && escaped[vr] {
					pass.Reportf(st.Pos(), "calls %s on version vector %q after it escaped: published vectors are immutable, Clone first", fsel.Sel.Name, vr.Name())
				}
				if ws := writeSetField(info, fsel.X); ws != "" {
					pass.Reportf(st.Pos(), "calls %s on %s: write-set version vectors are immutable once published", fsel.Sel.Name, ws)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkMutation(pass, lhs, escaped)
			}
			// Publishing into a field of an existing object (p.Version = v)
			// escapes the vector; re-binding the whole variable (v = ...)
			// starts a fresh value.
			for i, lhs := range st.Lhs {
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if i < len(st.Rhs) {
						markVectors(info, st.Rhs[i], escaped)
					}
					_ = l
				case *ast.Ident:
					if vr, isVar := objOf(info, l).(*types.Var); isVar && isVector(vr.Type()) {
						delete(escaped, vr)
					}
				}
			}
		case *ast.IncDecStmt:
			checkMutation(pass, st.X, escaped)
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				markVectors(info, r, escaped)
			}
		}
		return true
	})
}

// checkMutation reports lhs if it is an index write into an escaped or
// write-set-owned vector. Assign/IncDec on v[i] both route here.
func checkMutation(pass *analysis.Pass, lhs ast.Expr, escaped map[*types.Var]bool) {
	ix, isIndex := lhs.(*ast.IndexExpr)
	if !isIndex || !isVector(pass.TypesInfo.TypeOf(ix.X)) {
		return
	}
	if vr := rootVar(pass.TypesInfo, ix.X); vr != nil && escaped[vr] {
		pass.Reportf(lhs.Pos(), "writes element of version vector %q after it escaped: published vectors are immutable, Clone first", vr.Name())
	}
	if ws := writeSetField(pass.TypesInfo, ix.X); ws != "" {
		pass.Reportf(lhs.Pos(), "writes element of %s: write-set version vectors are immutable once published", ws)
	}
}

// markVectors marks every vector-typed identifier reachable in e escaped.
// Call expressions are not descended into: their results are fresh values
// (ch <- v.Clone() escapes the clone, not v).
func markVectors(info *types.Info, e ast.Expr, escaped map[*types.Var]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isCall := n.(*ast.CallExpr); isCall {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if vr, isVar := objOf(info, id).(*types.Var); isVar && isVector(vr.Type()) {
			escaped[vr] = true
		}
		return true
	})
}

// isVector reports whether t is the version-vector type: a named type
// called Vector or VC declared in a package named vclock.
func isVector(t types.Type) bool {
	if t == nil {
		return false
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == "vclock" && (obj.Name() == "Vector" || obj.Name() == "VC")
}

// writeSetField renders "ws.Version" when e selects a vector field out of
// a WriteSet-typed value; "" otherwise.
func writeSetField(info *types.Info, e ast.Expr) string {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return ""
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return ""
	}
	owner := derefNamed(s.Recv())
	if owner == nil || owner.Obj().Name() != "WriteSet" {
		return ""
	}
	return types.ExprString(sel)
}

func derefNamed(t types.Type) *types.Named {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// rootVar resolves e to the variable it denotes (identifiers only).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	id, isIdent := e.(*ast.Ident)
	if !isIdent {
		return nil
	}
	vr, _ := objOf(info, id).(*types.Var)
	return vr
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj, found := info.Uses[id]; found {
		return obj
	}
	return info.Defs[id]
}

// callName extracts the called function's bare name.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
