// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository: an Analyzer is
// a named check with a Run function, a Pass hands it one type-checked
// package, and diagnostics are positioned messages. The subset exists
// because the DMV invariant checkers (lockorder, vclockmut, guardedfield,
// copylockws) must build with the standard library alone; the API mirrors
// x/tools so the analyzers port verbatim if the dependency ever lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { out = append(out, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(out, func(i, j int) bool {
			pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return out[i].Analyzer < out[j].Analyzer
		})
	}
	return out, nil
}
