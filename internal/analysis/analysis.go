// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository: an Analyzer is
// a named check with a Run function, a Pass hands it one type-checked
// package, and diagnostics are positioned messages. The subset exists
// because the DMV invariant checkers (lockorder, vclockmut, guardedfield,
// copylockws, and the protocol-invariant suite rpcdeadline, commitretry,
// ackdurable, detrand, metricname) must build with the standard library
// alone; the API mirrors x/tools so the analyzers port verbatim if the
// dependency ever lands.
//
// Beyond the x/tools subset this package adds three things the protocol
// analyzers need: cross-package session state (Begin/Finish, e.g. the
// metricname registration census), analyzer-scoped loading of _test.go
// files (TestScope), and a central //dmv:ignore suppression layer applied
// when diagnostics are collected (see ignore.go).
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, on the command line, and
	// in dmv:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Begin, if non-nil, allocates one analysis session's cross-package
	// state before any pass runs; the value reaches every Pass via
	// Pass.State and Finish as its argument. Passes may run concurrently,
	// so the state must synchronize its own mutation.
	Begin func() any
	// Finish, if non-nil, runs once after every package's Run completed —
	// the hook for whole-session findings such as declared-but-never-used
	// names. Reported diagnostics pass through the same suppression filter
	// as per-package ones.
	Finish func(state any, report func(Diagnostic)) error
	// TestScope lists import-path patterns (PkgMatch semantics) whose
	// _test.go files the analyzer also wants to see. Empty means the
	// analyzer runs on non-test packages only. The driver unions the
	// scopes of enabled analyzers into the loader's test set.
	TestScope []string
}

// Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// State is the session value from Analyzer.Begin (nil without one).
	State any
	// TestVariant marks a package loaded with its _test.go files; only
	// analyzers whose TestScope matches the package see such passes, and
	// only their test-file diagnostics are kept (the base files were
	// already analyzed in the normal pass).
	TestVariant bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// RunOptions tunes RunAnalyzers.
type RunOptions struct {
	// Parallel caps concurrently analyzed packages; <= 0 means GOMAXPROCS.
	// Loading stays sequential (the source importer is not concurrency
	// safe); this parallelizes the analyzer passes themselves.
	Parallel int
}

// RunAnalyzers applies every analyzer to every package (honoring test
// scoping), runs Finish hooks, applies //dmv:ignore suppression, and
// returns the surviving findings sorted by file position. Malformed ignore
// comments are returned as "dmvignore" diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset

	ignores := NewIgnoreIndex()
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			malformed = append(malformed, ignores.AddFile(fset, f)...)
		}
	}

	states := make(map[*Analyzer]any, len(analyzers))
	for _, a := range analyzers {
		if a.Begin != nil {
			states[a] = a.Begin()
		}
	}

	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu   sync.Mutex
		out  []Diagnostic
		errs []error
		wg   sync.WaitGroup
		work = make(chan *Package)
	)
	analyzeOne := func(pkg *Package) {
		for _, a := range analyzers {
			if pkg.TestVariant && !PkgMatchAny(pkg.PkgPath, a.TestScope) {
				continue
			}
			var local []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				State:       states[a],
				TestVariant: pkg.TestVariant,
				Report:      func(d Diagnostic) { local = append(local, d) },
			}
			err := a.Run(pass)
			if pkg.TestVariant {
				// Base files were analyzed in the normal pass; keep only
				// what the test files themselves triggered.
				kept := local[:0]
				for _, d := range local {
					if IsTestFileName(fset.Position(d.Pos).Filename) {
						kept = append(kept, d)
					}
				}
				local = kept
			}
			mu.Lock()
			out = append(out, local...)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err))
			}
			mu.Unlock()
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range work {
				analyzeOne(pkg)
			}
		}()
	}
	for _, pkg := range pkgs {
		work <- pkg
	}
	close(work)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(states[a], func(d Diagnostic) { out = append(out, d) }); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
	}

	out = ignores.Filter(fset, out)
	out = append(out, malformed...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
