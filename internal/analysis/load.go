package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TestVariant marks a package re-checked with its _test.go files
	// included (both in-package and external test files). The base
	// (non-test) variant of the same import path is always present too.
	TestVariant bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string // _test.go files in the package itself
	XTestGoFiles []string // _test.go files in the external pkg_test package
	Error        *struct{ Err string }
}

// LoadOptions tunes package loading.
type LoadOptions struct {
	// Tests lists import-path patterns (PkgMatch semantics) whose _test.go
	// files should also be loaded, as additional TestVariant packages.
	Tests []string
}

// Load resolves the given package patterns with `go list` (run in dir) and
// type-checks each matched package from source. Imports — standard library
// and module-local alike — are resolved by the compiler's source importer,
// so the loader needs nothing beyond the go toolchain already present for
// builds.
func Load(dir string, patterns []string) ([]*Package, error) {
	return LoadPkgs(dir, patterns, LoadOptions{})
}

// LoadPkgs is Load with options.
func LoadPkgs(dir string, patterns []string, opts LoadOptions) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	parse := func(pkgDir string, names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(pkgDir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-check %s: %w", path, err)
		}
		return tpkg, info, nil
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files, err := parse(lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
		if !PkgMatchAny(lp.ImportPath, opts.Tests) {
			continue
		}
		// In-package test variant: base files plus TestGoFiles, checked
		// under the same import path (a distinct types.Package instance, so
		// the base one stays untouched).
		if len(lp.TestGoFiles) > 0 {
			tfiles, err := parse(lp.Dir, lp.TestGoFiles)
			if err != nil {
				return nil, err
			}
			all := append(append([]*ast.File{}, files...), tfiles...)
			vpkg, vinfo, err := check(lp.ImportPath, all)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				PkgPath:     lp.ImportPath,
				Dir:         lp.Dir,
				Fset:        fset,
				Files:       all,
				Types:       vpkg,
				Info:        vinfo,
				TestVariant: true,
			})
		}
		// External test package (package foo_test): its own compilation
		// unit importing the base package normally.
		if len(lp.XTestGoFiles) > 0 {
			xfiles, err := parse(lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpkg, xinfo, err := check(lp.ImportPath+"_test", xfiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				PkgPath:     lp.ImportPath,
				Dir:         lp.Dir,
				Fset:        fset,
				Files:       xfiles,
				Types:       xpkg,
				Info:        xinfo,
				TestVariant: true,
			})
		}
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
