package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the given package patterns with `go list` (run in dir) and
// type-checks each matched package from source. Imports — standard library
// and module-local alike — are resolved by the compiler's source importer,
// so the loader needs nothing beyond the go toolchain already present for
// builds.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
