// Package copylockws flags by-value copies of replication-critical
// buffers: heap.WriteSet (the shipped modification list — a copy aliases
// Records while forking TxID/Version bookkeeping) and page.Page (which
// embeds the page latch; a copy tears the latch from the rows it guards).
// Like the standard copylocks vet check, it inspects parameters, results,
// receivers, assignments, dereferences, and range clauses.
package copylockws

import (
	"go/ast"
	"go/types"

	"dmv/internal/analysis"
)

// Analyzer flags by-value copies of WriteSet and Page values.
var Analyzer = &analysis.Analyzer{
	Name: "copylockws",
	Doc:  "flag by-value copies of WriteSet / page buffers that alias shipped modification lists",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, node.Recv, "receiver")
				if node.Type.Params != nil {
					checkFieldList(pass, node.Type.Params, "parameter")
				}
				if node.Type.Results != nil {
					checkFieldList(pass, node.Type.Results, "result")
				}
			case *ast.FuncLit:
				if node.Type.Params != nil {
					checkFieldList(pass, node.Type.Params, "parameter")
				}
				if node.Type.Results != nil {
					checkFieldList(pass, node.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					checkCopyExpr(pass, rhs)
				}
			case *ast.GenDecl:
				for _, spec := range node.Specs {
					if vs, isVal := spec.(*ast.ValueSpec); isVal {
						for _, val := range vs.Values {
							checkCopyExpr(pass, val)
						}
					}
				}
			case *ast.RangeStmt:
				if node.Value != nil {
					if name := protectedName(info.TypeOf(node.Value)); name != "" {
						pass.Reportf(node.Value.Pos(), "range clause copies %s by value per iteration; iterate over pointers or index the slice", name)
					}
				}
			case *ast.CallExpr:
				for _, arg := range node.Args {
					checkCopyExpr(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

// checkFieldList flags declared values (params/results/receivers) of a
// protected type passed by value.
func checkFieldList(pass *analysis.Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		if name := protectedName(pass.TypesInfo.TypeOf(field.Type)); name != "" {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value: the copy aliases the shipped modification list; use *%s", kind, name, name)
		}
	}
}

// checkCopyExpr flags expressions whose evaluation copies an existing
// protected value: identifiers, selectors, index expressions, and
// dereferences. Composite literals and call results construct fresh
// values and are allowed.
func checkCopyExpr(pass *analysis.Pass, e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if name := protectedName(pass.TypesInfo.TypeOf(e)); name != "" {
		pass.Reportf(e.Pos(), "copies %s by value: the copy aliases the shipped modification list; use *%s", name, name)
	}
}

// protectedName reports the type name when t is a protected buffer type
// copied by value: WriteSet (any package) or Page from a package named
// "page".
func protectedName(t types.Type) string {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	switch {
	case obj.Name() == "WriteSet":
		return "WriteSet"
	case obj.Name() == "Page" && obj.Pkg().Name() == "page":
		return "Page"
	}
	return ""
}
