package copylockws_test

import (
	"testing"

	"dmv/internal/analysis/analysistest"
	"dmv/internal/analysis/copylockws"
)

func TestCopyLockWS(t *testing.T) {
	analysistest.Run(t, "testdata", copylockws.Analyzer, "copylockws")
}
