// Fixture for copylockws: WriteSet and page.Page must travel by pointer.
package copylockws

import "page"

// WriteSet doubles dmv/internal/heap.WriteSet (matched by type name).
type WriteSet struct {
	TxID    uint64
	Records []int
}

func byValue(ws WriteSet) uint64 { // want `parameter passes WriteSet by value`
	return ws.TxID
}

func byPointer(ws *WriteSet) uint64 {
	return ws.TxID
}

func returnsValue() WriteSet { // want `result passes WriteSet by value`
	return WriteSet{}
}

func deref(p *WriteSet) uint64 {
	w := *p // want `copies WriteSet by value`
	return w.TxID
}

func callCopies(p *WriteSet) uint64 {
	return byPointer(p) + byValue(*p) // want `copies WriteSet by value`
}

func ranged(list []WriteSet) uint64 {
	var total uint64
	for _, ws := range list { // want `range clause copies WriteSet by value per iteration`
		total += ws.TxID
	}
	for i := range list { // ok: indexing does not copy
		total += list[i].TxID
	}
	return total
}

func pageByValue(p page.Page) int { // want `parameter passes Page by value`
	return p.Rows()
}

func pageDeref(p *page.Page) {
	q := *p // want `copies Page by value`
	_ = q.Rows()
}

func pointersOK(list []*WriteSet, p *page.Page) uint64 {
	var total uint64
	for _, ws := range list { // ok: pointer elements
		total += ws.TxID
	}
	_ = p.Rows()
	return total
}
