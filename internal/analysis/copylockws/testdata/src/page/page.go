// Stub of dmv/internal/page for the copylockws fixtures.
package page

import "sync"

// Page is a versioned memory page with an embedded latch.
type Page struct {
	mu   sync.RWMutex
	rows map[uint64][]byte
}

// Rows returns the row count.
func (p *Page) Rows() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rows)
}
