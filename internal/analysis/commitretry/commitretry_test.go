package commitretry

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestCommitRetry(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "sched", "transport")
}
