// Package transport is the commitretry fixture for rule 1: the
// idempotent-retry helper must never carry a Tx method string.
package transport

// Node mirrors the transport client.
type Node struct{}

func (n *Node) callOnce(method string, args, reply any) error { return nil }
func (n *Node) callIdem(method string, args, reply any) error { return nil }

func (n *Node) TxCommit(args, reply any) error {
	return n.callIdem("Node.TxCommit", args, reply) // want `callIdem routes non-idempotent Node\.TxCommit through the idempotent-retry helper`
}

func (n *Node) TxExec(args, reply any) error {
	return n.callOnce("Node.TxExec", args, reply) // fine: single attempt
}

func (n *Node) Status(args, reply any) error {
	return n.callIdem("Node.Status", args, reply) // fine: idempotent
}
