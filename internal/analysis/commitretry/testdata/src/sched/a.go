// Package sched is the commitretry fixture for the loop-shape and
// retry-helper rules around non-idempotent Tx calls.
package sched

import "errors"

// Peer mirrors the replica peer interface.
type Peer struct{}

func (p *Peer) TxExec(q string) error   { return nil }
func (p *Peer) TxCommit(id int) error   { return nil }
func (p *Peer) Status() (string, error) { return "", nil }

var errUncertain = errors.New("commit uncertain")

// retryLoopCond is shape A: the loop condition consults the call's error.
func retryLoopCond(p *Peer) {
	err := p.TxCommit(1)
	for err != nil {
		err = p.TxCommit(1) // want `TxCommit retried until its error clears`
	}
}

// retryContinue is shape B: continue under an error test.
func retryContinue(p *Peer) error {
	for i := 0; i < 3; i++ {
		err := p.TxExec("UPDATE t") // want `TxExec retried via continue under an error test`
		if err != nil {
			continue
		}
		return nil
	}
	return errUncertain
}

// retryBreakOnSuccess is shape C: loop until err == nil.
func retryBreakOnSuccess(p *Peer) {
	for {
		err := p.TxCommit(2) // want `TxCommit looped until success`
		if err == nil {
			break
		}
	}
}

// hammer discards the result inside a bare for loop.
func hammer(p *Peer) {
	for {
		p.TxCommit(3) // want `TxCommit result discarded inside a for loop`
	}
}

// viaHelper passes a committing closure to a retry helper.
func retryN(n int, f func() error) error { return f() }

func viaHelper(p *Peer) error {
	return retryN(3, func() error {
		return p.TxCommit(4) // want `TxCommit call inside a closure passed to retry helper retryN`
	})
}

// broadcast is the legal shape: one call per peer, error handled.
func broadcast(peers []*Peer) error {
	for _, p := range peers {
		if err := p.TxExec("UPDATE t"); err != nil {
			return err
		}
	}
	return nil
}

// idempotentRetry is legal: Status is replay-safe.
func idempotentRetry(p *Peer) {
	for {
		_, err := p.Status()
		if err == nil {
			break
		}
	}
}

// wholeTxnRetry is the blessed recovery: re-run the transaction as a new
// session; no Tx call appears lexically inside the loop.
func runOnce(p *Peer) error { return p.TxCommit(5) }

func wholeTxnRetry(p *Peer) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = runOnce(p); err == nil || errors.Is(err, errUncertain) {
			return err
		}
	}
	return err
}

// suppressed documents a reviewed exception.
func suppressed(p *Peer) {
	for {
		//dmv:ignore(commitretry) fixture: demonstrating a documented suppression
		p.TxCommit(6)
	}
}
