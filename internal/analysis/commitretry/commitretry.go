// Package commitretry statically enforces the ErrCommitUncertain
// discipline: TxExec and TxCommit are not idempotent (a lost reply leaves
// the outcome genuinely unknown — the peer may have committed), so their
// call sites must never be wrapped in a blind retry. Retrying a commit
// whose first attempt landed produces a duplicate commit; the only safe
// recovery is surfacing ErrCommitUncertain and re-running the whole
// transaction as a new session.
//
// Three rules:
//
//  1. Inside the transport packages, routing a Tx method through the
//     idempotent-retry helper (callIdem with a "…TxExec"/"…TxCommit"/
//     "…TxBegin" method string) re-sends the request on transport failure —
//     exactly the duplicate-commit bug.
//  2. A TxExec/TxCommit method call inside a for/range loop whose shape is
//     a retry — the loop condition consults the call's error, the body
//     `continue`s under an error test, the body `break`s on success
//     (err == nil), or the result is discarded inside a bare for loop.
//     Whole-transaction retry loops (scheduler.Run) are legal and are not
//     matched: they re-invoke a function that starts a fresh session, so no
//     Tx call appears lexically inside the loop.
//  3. Passing a closure that performs TxExec/TxCommit to any helper whose
//     name contains "retry" — the helper's contract is re-invocation.
//
// The loop-shape matching is lexical and intraprocedural: it recognizes
// the standard retry idioms rather than proving domination, which keeps
// false positives near zero on broadcast loops (ranging over peers calls
// TxExec once per peer, not twice per peer, and matches none of the retry
// shapes).
package commitretry

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"dmv/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// TransportPkgs locate the retry helper (rule 1).
	TransportPkgs []string
	// RetryHelpers are the idempotent-retry primitives whose method-string
	// argument must never name a Tx call.
	RetryHelpers []string
	// NonIdem are the non-idempotent methods that rules 2 and 3 protect
	// from re-invocation.
	NonIdem []string
	// MethodStrings are the substrings of a method-name argument that mark
	// it as non-idempotent for rule 1.
	MethodStrings []string
}

// DefaultConfig matches this repository's transport/scheduler layout.
var DefaultConfig = Config{
	TransportPkgs: []string{"transport"},
	RetryHelpers:  []string{"callIdem"},
	NonIdem:       []string{"TxExec", "TxCommit"},
	MethodStrings: []string{"TxExec", "TxCommit", "TxBegin"},
}

// Analyzer flags retry wrappers around non-idempotent commit RPCs.
var Analyzer = &analysis.Analyzer{
	Name: "commitretry",
	Doc:  "flag retry loops and retry helpers around non-idempotent TxExec/TxCommit calls (ErrCommitUncertain discipline)",
	Run:  func(pass *analysis.Pass) error { return run(pass, DefaultConfig) },
}

var retryNameRE = regexp.MustCompile(`(?i)retry`)

func run(pass *analysis.Pass, cfg Config) error {
	inTransport := analysis.PkgMatchAny(pass.Pkg.Path(), cfg.TransportPkgs)
	helper := make(map[string]bool, len(cfg.RetryHelpers))
	for _, n := range cfg.RetryHelpers {
		helper[n] = true
	}
	nonIdem := make(map[string]bool, len(cfg.NonIdem))
	for _, n := range cfg.NonIdem {
		nonIdem[n] = true
	}

	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			// Rule 1: callIdem("Node.TxCommit", ...) inside transport.
			if inTransport && helper[fn.Name()] && len(call.Args) > 0 {
				if lit, isLit := call.Args[0].(*ast.BasicLit); isLit && lit.Kind == token.STRING {
					for _, m := range cfg.MethodStrings {
						if strings.Contains(lit.Value, m) {
							pass.Reportf(call.Pos(), "%s routes non-idempotent %s through the idempotent-retry helper; a replayed commit is a duplicate commit — use the single-attempt path and surface ErrCommitUncertain", fn.Name(), strings.Trim(lit.Value, "`\""))
							break
						}
					}
				}
			}
			// Rule 3: retryFn(func() { ... TxCommit ... }).
			if retryNameRE.MatchString(fn.Name()) {
				for _, arg := range call.Args {
					flit, isLit := arg.(*ast.FuncLit)
					if !isLit {
						continue
					}
					for inner := range txCallsIn(pass, flit.Body, nonIdem) {
						pass.Reportf(inner.Pos(), "%s call inside a closure passed to retry helper %s; commits must not be re-invoked — surface ErrCommitUncertain instead", calleeName(pass, inner), fn.Name())
					}
				}
			}
			// Rule 2: Tx method call under a retry-shaped loop.
			if nonIdem[fn.Name()] && analysis.RecvTypeName(fn) != "" {
				checkLoopRetry(pass, call, fn.Name(), stack)
			}
			return true
		})
	}
	return nil
}

func checkLoopRetry(pass *analysis.Pass, call *ast.CallExpr, name string, stack []ast.Node) {
	loop := analysis.EnclosingLoop(stack)
	if loop == nil {
		return
	}
	errObj := analysis.AssignedErrObj(pass.TypesInfo, call, stack)
	if errObj == nil {
		// Discarded result inside a bare for loop: the classic
		// for { peer.TxCommit(...) } hammer.
		if _, isFor := loop.(*ast.ForStmt); isFor {
			pass.Reportf(call.Pos(), "%s result discarded inside a for loop; a repeated commit attempt is a duplicate commit — handle the error and surface ErrCommitUncertain", name)
		}
		return
	}
	forStmt, isFor := loop.(*ast.ForStmt)
	// Shape A: for err != nil { ... } — the loop condition consults err.
	if isFor && forStmt.Cond != nil && analysis.MentionsObj(pass.TypesInfo, forStmt.Cond, errObj) {
		pass.Reportf(call.Pos(), "%s retried until its error clears (loop condition tests the call's error); a lost reply may have committed — surface ErrCommitUncertain instead of retrying", name)
		return
	}
	// Shapes B and C: branch-driven retries in the loop body.
	body := loopBody(loop)
	if body == nil {
		return
	}
	flagged := false
	analysis.WalkStack(body, func(n ast.Node, inner []ast.Node) bool {
		if flagged {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			if n != ast.Node(body) {
				return false // branches below target the nested loop
			}
		}
		ifStmt, isIf := n.(*ast.IfStmt)
		if !isIf || !analysis.MentionsObj(pass.TypesInfo, ifStmt.Cond, errObj) {
			return true
		}
		// Shape B: if <err test> { ... continue } — retry on failure.
		if containsBranch(ifStmt.Body, token.CONTINUE) {
			pass.Reportf(call.Pos(), "%s retried via continue under an error test; a lost reply may have committed — surface ErrCommitUncertain instead of retrying", name)
			flagged = true
			return false
		}
		// Shape C: if err == nil { ... break } — loop until success.
		if isNilEquality(ifStmt.Cond) && containsBranch(ifStmt.Body, token.BREAK) {
			pass.Reportf(call.Pos(), "%s looped until success (break under err == nil); a lost reply may have committed — surface ErrCommitUncertain instead of retrying", name)
			flagged = true
			return false
		}
		return true
	})
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch s := loop.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// containsBranch reports whether block contains a continue/break targeting
// the enclosing loop (nested loops and closures are not descended into).
func containsBranch(block *ast.BlockStmt, tok token.Token) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch b := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if b.Tok == tok && b.Label == nil {
				found = true
			}
		}
		return true
	})
	return found
}

// isNilEquality reports whether cond has the shape `x == nil`.
func isNilEquality(cond ast.Expr) bool {
	bin, isBin := cond.(*ast.BinaryExpr)
	if !isBin || bin.Op != token.EQL {
		return false
	}
	return isNilIdent(bin.X) || isNilIdent(bin.Y)
}

func isNilIdent(e ast.Expr) bool {
	id, isIdent := e.(*ast.Ident)
	return isIdent && id.Name == "nil"
}

// txCallsIn yields the CallExprs inside body whose callee is a
// non-idempotent Tx method.
func txCallsIn(pass *analysis.Pass, body ast.Node, nonIdem map[string]bool) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn != nil && nonIdem[fn.Name()] && analysis.RecvTypeName(fn) != "" {
			out[call] = true
		}
		return true
	})
	return out
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "Tx"
}
