package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// JSONDiagnostic is the machine-readable diagnostic shape emitted by
// dmv-vet -json: one object per finding, file paths relative to the
// invocation directory so output diffs cleanly across checkouts.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// JSONDiagnostics converts positioned diagnostics, relativizing file paths
// against baseDir when possible.
func JSONDiagnostics(fset *token.FileSet, diags []Diagnostic, baseDir string) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
		}
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// EncodeJSON writes ds as a JSON array with one element per line (stable,
// diff-friendly). An empty slice encodes as "[]".
func EncodeJSON(w io.Writer, ds []JSONDiagnostic) error {
	if len(ds) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, d := range ds {
		b, err := json.Marshal(d)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(ds)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// FormatJSON reads a -json diagnostics array from r and writes the
// diff-friendly text rendering ("file:line:col: [analyzer] message", one
// line per finding, sorted) to w. It returns the number of findings.
func FormatJSON(r io.Reader, w io.Writer) (int, error) {
	var ds []JSONDiagnostic
	if err := json.NewDecoder(r).Decode(&ds); err != nil {
		return 0, fmt.Errorf("decode diagnostics: %w", err)
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
	for _, d := range ds {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message); err != nil {
			return 0, err
		}
	}
	return len(ds), nil
}
