package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Shared call-graph and dataflow helpers for the protocol-invariant
// analyzers. Everything here is deliberately syntactic-plus-types: the
// analyzers run per package with no cross-package facts, so callee
// resolution is static (no interface devirtualization) and "dataflow" means
// structural position, not SSA. The analyzers document the resulting
// approximations in their package comments.

// CalleeFunc resolves a call expression to its static callee, if any.
// Interface-method calls resolve to the interface's *types.Func.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// FuncKey renders a function as "pkgpath.Recv.Name" or "pkgpath.Name".
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, isSig := fn.Type().(*types.Signature)
	if isSig && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// RecvTypeName returns the bare receiver type name of a method ("Registry"
// for func (r *Registry) Counter), or "" for plain functions.
func RecvTypeName(fn *types.Func) string {
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	switch t := recv.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return ""
	}
	return ""
}

// PkgMatch reports whether pkgPath is pattern or ends with "/"+pattern, so
// configs can name repository packages ("transport", "internal/persist")
// and still match the analysistest fixture paths ("transport").
func PkgMatch(pkgPath, pattern string) bool {
	return pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern)
}

// PkgMatchAny reports whether pkgPath matches any of the patterns.
func PkgMatchAny(pkgPath string, patterns []string) bool {
	for _, p := range patterns {
		if PkgMatch(pkgPath, p) {
			return true
		}
	}
	return false
}

// FuncFromPkg reports whether fn is the named function or method declared
// in a package matching pkgPattern (PkgMatch semantics).
func FuncFromPkg(fn *types.Func, pkgPattern, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && PkgMatch(fn.Pkg().Path(), pkgPattern)
}

// NonPositiveConst reports whether expr is a compile-time numeric constant
// with value <= 0 (the shape of a disabled or zero deadline).
func NonPositiveConst(info *types.Info, expr ast.Expr) bool {
	tv, known := info.Types[expr]
	if !known || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) <= 0
	}
	return false
}

// ContainsCallTo reports whether the subtree rooted at n contains a call
// whose static callee is the named function from the given package.
func ContainsCallTo(info *types.Info, n ast.Node, pkgPattern, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, isCall := m.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if fn := CalleeFunc(info, call); FuncFromPkg(fn, pkgPattern, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// IsTestFileName reports whether the base of filename marks a Go test file.
func IsTestFileName(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// WalkStack traverses root in source order, invoking fn with each node and
// the stack of its ancestors (outermost first, excluding n itself). fn
// returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			// ast.Inspect still calls us with nil for this node only if we
			// return true, so balance the stack manually when pruning.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFuncName returns the name of the innermost enclosing function
// declaration on the stack ("" inside a function literal or at top level).
func EnclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return d.Name.Name
		}
	}
	return ""
}

// EnclosingLoop returns the innermost for/range statement on the stack
// (nil if the node is not inside a loop within its function: the search
// stops at function-literal boundaries, since a loop outside a closure
// does not re-execute statements inside it on its own).
func EnclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// AssignedErrObj returns the object bound to the final (error-position)
// result of call, by finding the nearest enclosing assignment on the stack
// whose RHS is exactly call. Returns nil for discarded results.
func AssignedErrObj(info *types.Info, call *ast.CallExpr, stack []ast.Node) types.Object {
	for i := len(stack) - 1; i >= 0; i-- {
		asg, isAsg := stack[i].(*ast.AssignStmt)
		if !isAsg {
			if _, isIf := stack[i].(*ast.IfStmt); isIf {
				continue // if ...; err := f() { — keep looking outward
			}
			switch stack[i].(type) {
			case *ast.BlockStmt, *ast.ExprStmt, *ast.ParenExpr:
				continue
			}
			return nil
		}
		if len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
			return nil
		}
		last := asg.Lhs[len(asg.Lhs)-1]
		id, isIdent := last.(*ast.Ident)
		if !isIdent || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// MentionsObj reports whether the expression subtree references obj.
func MentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, isIdent := m.(*ast.Ident); isIdent && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// PosBetween reports lo < p < hi.
func PosBetween(p, lo, hi token.Pos) bool { return p > lo && p < hi }
