package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression comments. A diagnostic can be silenced at its source line (or
// from the line directly above) with
//
//	//dmv:ignore(<analyzer>[,<analyzer>...]) <reason>
//
// The reason is mandatory: an ignore without one is itself a diagnostic
// (analyzer name "dmvignore"), so every suppression in the tree documents
// why the invariant does not apply. All analyzers honor the comment; it is
// applied centrally when diagnostics are collected, never inside an
// analyzer's Run.

// IgnoreAnalyzerName tags diagnostics produced by malformed ignore
// comments themselves; they cannot be suppressed.
const IgnoreAnalyzerName = "dmvignore"

var ignoreRE = regexp.MustCompile(`^//\s*dmv:ignore\(([^)]*)\)(.*)$`)

type ignoreKey struct {
	file string
	line int
}

// IgnoreIndex records which analyzers are suppressed on which lines.
type IgnoreIndex struct {
	byLine map[ignoreKey]map[string]bool
	seen   map[string]bool // files already indexed (test variants re-parse sources)
}

// NewIgnoreIndex returns an empty index.
func NewIgnoreIndex() *IgnoreIndex {
	return &IgnoreIndex{byLine: make(map[ignoreKey]map[string]bool), seen: make(map[string]bool)}
}

// AddFile scans one file's comments into the index and returns a
// diagnostic for every malformed ignore (missing reason or empty analyzer
// list). A file already indexed (same name) is skipped, so loading a
// package and its test variant does not double-report.
func (ix *IgnoreIndex) AddFile(fset *token.FileSet, f *ast.File) []Diagnostic {
	name := fset.Position(f.Pos()).Filename
	if ix.seen[name] {
		return nil
	}
	ix.seen[name] = true
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			names := splitIgnoreNames(m[1])
			reason := strings.TrimSpace(m[2])
			if len(names) == 0 {
				bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: IgnoreAnalyzerName,
					Message: "dmv:ignore() names no analyzer; write //dmv:ignore(<analyzer>) <reason>"})
				continue
			}
			if reason == "" {
				bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: IgnoreAnalyzerName,
					Message: "dmv:ignore(" + m[1] + ") has no reason; a suppression must say why the invariant does not apply"})
				continue
			}
			pos := fset.Position(c.Pos())
			key := ignoreKey{file: pos.Filename, line: pos.Line}
			if ix.byLine[key] == nil {
				ix.byLine[key] = make(map[string]bool, len(names))
			}
			for _, n := range names {
				ix.byLine[key][n] = true
			}
		}
	}
	return bad
}

func splitIgnoreNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Suppressed reports whether d is silenced: an ignore naming d's analyzer
// sits on the same line (trailing comment) or on the line above
// (standalone comment).
func (ix *IgnoreIndex) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := ix.byLine[ignoreKey{file: pos.Filename, line: line}]; names[d.Analyzer] {
			return true
		}
	}
	return false
}

// Filter returns the diagnostics not suppressed by the index.
func (ix *IgnoreIndex) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !ix.Suppressed(fset, d) {
			out = append(out, d)
		}
	}
	return out
}
