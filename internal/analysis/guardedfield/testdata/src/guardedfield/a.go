// Fixture for guardedfield: the subs/sessions fields carry the
// `// guarded by <mu>` annotation; accesses must hold the named lock on
// the same receiver, writes need the exclusive lock, and constructors /
// *Locked helpers are exempt.
package guardedfield

import "sync"

type Node struct {
	mu sync.RWMutex
	// subs is the replication subscriber list.
	subs []string // guarded by mu

	sessMu   sync.Mutex
	sessions map[uint64]string // guarded by sessMu
}

func (n *Node) Good() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(n.subs))
	copy(out, n.subs)
	return out
}

func (n *Node) GoodWrite(s string) {
	n.mu.Lock()
	n.subs = append(n.subs, s)
	n.mu.Unlock()
}

func (n *Node) Bad() int {
	return len(n.subs) // want `access to n\.subs \(guarded by mu\) without holding n\.mu`
}

func (n *Node) BadWrite() {
	n.mu.RLock()
	n.subs = nil // want `write to n\.subs \(guarded by mu\) while holding only the read lock`
	n.mu.RUnlock()
}

func (n *Node) WrongLock(id uint64) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.sessions[id] // want `access to n\.sessions \(guarded by sessMu\) without holding n\.sessMu`
}

func (n *Node) BadDelete(id uint64) {
	delete(n.sessions, id) // want `write to n\.sessions \(guarded by sessMu\) without holding n\.sessMu`
}

func (n *Node) appendLocked(s string) {
	n.subs = append(n.subs, s) // ok: *Locked functions hold the lock by contract
}

func NewNode() *Node {
	n := &Node{sessions: make(map[uint64]string)}
	n.subs = []string{"seed"} // ok: n is unshared until returned
	return n
}

func (n *Node) EarlyUnlock(skip bool) int {
	n.mu.Lock()
	if skip {
		n.mu.Unlock()
		return 0
	}
	total := len(n.subs) // ok: the lock is still held on this path
	n.mu.Unlock()
	return total
}

func (n *Node) BadAfterUnlock() int {
	n.mu.Lock()
	n.mu.Unlock()
	return len(n.subs) // want `access to n\.subs \(guarded by mu\) without holding n\.mu`
}

// BadGoroutine accesses the field from a closure that outlives the lock.
func (n *Node) BadGoroutine() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		_ = n.subs // want `access to n\.subs \(guarded by mu\) without holding n\.mu`
	}()
}
