// Package guardedfield checks the `// guarded by <mu>` comment convention:
// a struct field carrying that comment may only be read while some lock on
// the same receiver named <mu> is held (RLock suffices) and only be
// written under the exclusive lock.
//
// The analysis walks each function with the branch-aware lock tracker, so
// early-unlock-and-return branches, deferred unlocks, and switch arms are
// modelled. Exemptions: functions whose name ends in "Locked" (callers
// hold the lock by contract), and accesses through objects freshly
// constructed in the same function (composite literal or new), which are
// unshared by definition.
package guardedfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"dmv/internal/analysis"
)

// Analyzer enforces // guarded by annotations.
var Analyzer = &analysis.Analyzer{
	Name: "guardedfield",
	Doc:  "check that fields annotated `// guarded by <mu>` are accessed only under their lock",
	Run:  run,
}

var guardRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			v := &visitor{
				pass:   pass,
				guards: guards,
				fresh:  make(map[types.Object]bool),
				writes: collectWrites(fd.Body),
			}
			analysis.WalkFunc(pass.TypesInfo, fd.Body, v)
		}
	}
	return nil
}

// collectGuards maps annotated field objects to their guard mutex name.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, isStruct := n.(*ast.StructType)
			if !isStruct {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if vr, isVar := pass.TypesInfo.Defs[name].(*types.Var); isVar {
						guards[vr] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectWrites gathers the selector nodes that appear in a mutating
// position: assignment targets (including index writes through the
// field), ++/--, and delete() calls.
func collectWrites(body *ast.BlockStmt) map[ast.Node]bool {
	writes := make(map[ast.Node]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				writes[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.CallExpr:
			if id, isIdent := st.Fun.(*ast.Ident); isIdent && id.Name == "delete" && len(st.Args) > 0 {
				mark(st.Args[0])
			}
		}
		return true
	})
	return writes
}

type visitor struct {
	pass   *analysis.Pass
	guards map[*types.Var]string
	fresh  map[types.Object]bool
	writes map[ast.Node]bool
}

func (v *visitor) Acquire(call *ast.CallExpr, h analysis.Held, held []analysis.Held) {}

func (v *visitor) Visit(n ast.Node, held []analysis.Held) {
	switch node := n.(type) {
	case *ast.AssignStmt:
		// x := &T{...} / T{...} / new(T): x is unshared in this frame.
		for i, lhs := range node.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || i >= len(node.Rhs) {
				continue
			}
			if isFreshValue(node.Rhs[i]) {
				if obj := v.pass.TypesInfo.Defs[id]; obj != nil {
					v.fresh[obj] = true
				}
			}
		}
	case *ast.SelectorExpr:
		v.checkAccess(node, held)
	}
}

func (v *visitor) checkAccess(sel *ast.SelectorExpr, held []analysis.Held) {
	s, found := v.pass.TypesInfo.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return
	}
	field, isVar := s.Obj().(*types.Var)
	if !isVar {
		return
	}
	guard, guarded := v.guards[field]
	if !guarded {
		return
	}
	if root := rootIdent(sel.X); root != nil {
		if obj := objOf(v.pass.TypesInfo, root); obj != nil && v.fresh[obj] {
			return
		}
	}
	base := types.ExprString(sel.X)
	isWrite := v.writes[sel]
	var readHeld bool
	for _, h := range held {
		if h.Field != guard || h.Inst != base {
			continue
		}
		if !h.RLock {
			return // exclusive lock covers reads and writes
		}
		readHeld = true
	}
	if isWrite {
		if readHeld {
			v.pass.Reportf(sel.Pos(), "write to %s.%s (guarded by %s) while holding only the read lock", base, field.Name(), guard)
		} else {
			v.pass.Reportf(sel.Pos(), "write to %s.%s (guarded by %s) without holding %s.%s", base, field.Name(), guard, base, guard)
		}
		return
	}
	if !readHeld {
		v.pass.Reportf(sel.Pos(), "access to %s.%s (guarded by %s) without holding %s.%s", base, field.Name(), guard, base, guard)
	}
}

// isFreshValue reports whether e constructs a brand-new object.
func isFreshValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := x.X.(*ast.CompositeLit)
		return x.Op.String() == "&" && isLit
	case *ast.CallExpr:
		id, isIdent := x.Fun.(*ast.Ident)
		return isIdent && id.Name == "new"
	}
	return false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj, found := info.Uses[id]; found {
		return obj
	}
	return info.Defs[id]
}
