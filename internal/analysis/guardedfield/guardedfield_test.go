package guardedfield_test

import (
	"testing"

	"dmv/internal/analysis/analysistest"
	"dmv/internal/analysis/guardedfield"
)

func TestGuardedField(t *testing.T) {
	analysistest.Run(t, "testdata", guardedfield.Analyzer, "guardedfield")
}
