package ackdurable

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestAckDurable(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "wal", "persist")
}
