// Package persist is the ackdurable fixture: OnCommit's return is the
// acknowledgement, so every variant here exercises one ack-vs-durability
// ordering.
package persist

import "wal"

// Good appends then waits: ack-after-fsync.
type Good struct{ w *wal.WAL }

func (t *Good) OnCommit(rec []byte) {
	if t.w == nil {
		return // fine: nothing appended yet
	}
	seq, err := t.w.Append(rec)
	if err == nil {
		_ = t.w.WaitDurable(seq)
	}
}

// NoWait never awaits durability.
type NoWait struct{ w *wal.WAL }

func (t *NoWait) OnCommit(rec []byte) {
	_, _ = t.w.Append(rec) // want `OnCommit appends the commit record but never calls wal\.WaitDurable`
}

// EarlyAck returns on an error path between append and wait.
type EarlyAck struct{ w *wal.WAL }

func (t *EarlyAck) OnCommit(rec []byte) {
	seq, err := t.w.Append(rec)
	if err != nil {
		return // want `return between Append and WaitDurable acknowledges the commit before it is durable`
	}
	_ = t.w.WaitDurable(seq)
}

// WrongOrder waits on a stale sequence before appending.
type WrongOrder struct {
	w    *wal.WAL
	last uint64
}

func (t *WrongOrder) OnCommit(rec []byte) {
	_ = t.w.WaitDurable(t.last) // want `wal\.WaitDurable precedes the Append`
	seq, _ := t.w.Append(rec)
	t.last = seq
}

// Async hands the wait to a goroutine closure; the closure's calls are not
// the ack path, so this is a missing wait.
type Async struct{ w *wal.WAL }

func (t *Async) OnCommit(rec []byte) {
	seq, _ := t.w.Append(rec) // want `OnCommit appends the commit record but never calls wal\.WaitDurable`
	go func() {
		_ = t.w.WaitDurable(seq)
	}()
}

// NotAnAck is not an acknowledging function; no rules apply.
type NotAnAck struct{ w *wal.WAL }

func (t *NotAnAck) Preload(rec []byte) {
	_, _ = t.w.Append(rec)
}

// Suppressed documents a reviewed exception.
type Suppressed struct{ w *wal.WAL }

func (t *Suppressed) OnCommit(rec []byte) {
	//dmv:ignore(ackdurable) fixture: demonstrating a documented suppression
	_, _ = t.w.Append(rec)
}
