// Package wal is the support fixture providing the durability primitives
// the ackdurable analyzer recognizes.
package wal

// WAL mirrors the real write-ahead log surface.
type WAL struct{}

// Append frames one record and returns its sequence number.
func (w *WAL) Append(payload []byte) (uint64, error) { return 0, nil }

// WaitDurable blocks until an fsync covers seq.
func (w *WAL) WaitDurable(seq uint64) error { return nil }
