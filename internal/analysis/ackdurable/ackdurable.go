// Package ackdurable enforces ack-after-fsync in the persistence tier:
// returning from the commit hook IS the acknowledgement (the scheduler
// treats OnCommit's return as "the backend has this"), so any path that
// appends a commit record to the WAL and returns before awaiting
// durability silently reintroduces acked-commit loss — the fsyncgate bug
// class where a crash between ack and fsync drops a transaction the
// client was told is committed.
//
// Within each acknowledging function the analyzer checks three things:
//
//  1. A WAL Append with no WaitDurable anywhere in the function — the
//     record may never be fsynced before the ack.
//  2. WaitDurable positioned before the first Append — the wait covers a
//     prior record, not the one just written.
//  3. A return statement between the first Append and the first
//     WaitDurable — an early ack on some path (an error branch, a fast
//     path) that skips the durability barrier.
//
// The check is positional (source order approximates control-flow order
// in the straight-line commit hooks it guards); conditional Append sites
// behind `if wal != nil` guards match naturally since the return-between
// rule only fires for returns lexically inside the window.
package ackdurable

import (
	"go/ast"
	"go/token"

	"dmv/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// ScopePkgs are the persistence packages whose ack functions are
	// checked (PkgMatch semantics).
	ScopePkgs []string
	// AckFuncs are the function/method names whose return acknowledges a
	// commit.
	AckFuncs []string
	// WalPkg is the package providing the durability primitives.
	WalPkg string
	// AppendFunc and DurableFunc name the write and barrier primitives.
	AppendFunc  string
	DurableFunc string
}

// DefaultConfig matches this repository's persist/wal layout.
var DefaultConfig = Config{
	ScopePkgs:   []string{"persist"},
	AckFuncs:    []string{"OnCommit"},
	WalPkg:      "wal",
	AppendFunc:  "Append",
	DurableFunc: "WaitDurable",
}

// Analyzer flags commit acknowledgements not dominated by a durability wait.
var Analyzer = &analysis.Analyzer{
	Name: "ackdurable",
	Doc:  "flag commit-ack paths in the persistence tier that return before WaitDurable covers the appended record (ack-after-fsync)",
	Run:  func(pass *analysis.Pass) error { return run(pass, DefaultConfig) },
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PkgMatchAny(pass.Pkg.Path(), cfg.ScopePkgs) {
		return nil
	}
	ackFunc := make(map[string]bool, len(cfg.AckFuncs))
	for _, n := range cfg.AckFuncs {
		ackFunc[n] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil || !ackFunc[fd.Name.Name] {
				continue
			}
			checkAckFunc(pass, cfg, fd)
		}
	}
	return nil
}

func checkAckFunc(pass *analysis.Pass, cfg Config, fd *ast.FuncDecl) {
	var firstAppend, firstWait token.Pos
	var returns []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			// A closure's body does not run inline on the ack path; its
			// returns are not acks and its calls are not this function's.
			return false
		case *ast.ReturnStmt:
			returns = append(returns, node.Pos())
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, node)
			if fn == nil || fn.Pkg() == nil || !analysis.PkgMatch(fn.Pkg().Path(), cfg.WalPkg) {
				return true
			}
			switch fn.Name() {
			case cfg.AppendFunc:
				if !firstAppend.IsValid() {
					firstAppend = node.Pos()
				}
			case cfg.DurableFunc:
				if !firstWait.IsValid() {
					firstWait = node.Pos()
				}
			}
		}
		return true
	})
	if !firstAppend.IsValid() {
		return // no commit record written; nothing to make durable
	}
	if !firstWait.IsValid() {
		pass.Reportf(firstAppend, "%s appends the commit record but never calls %s.%s; returning acknowledges a commit that may not be fsynced", fd.Name.Name, cfg.WalPkg, cfg.DurableFunc)
		return
	}
	if firstWait < firstAppend {
		pass.Reportf(firstWait, "%s.%s precedes the %s; the durability wait covers an earlier record, not the one being acknowledged", cfg.WalPkg, cfg.DurableFunc, cfg.AppendFunc)
		return
	}
	for _, ret := range returns {
		if analysis.PosBetween(ret, firstAppend, firstWait) {
			pass.Reportf(ret, "return between %s and %s acknowledges the commit before it is durable", cfg.AppendFunc, cfg.DurableFunc)
		}
	}
}
