package detrand

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "faultnet", "other")
}
