// Package faultnet is the detrand fixture: a scope package whose entropy
// must come from a threaded seeded source and whose pacing must flow
// through the injectable clock.
package faultnet

import (
	"math/rand"
	"time"
)

func globalSource() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global source`
}

func globalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from time\.Now`
}

func seededOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func methodOK(r *rand.Rand) int {
	return r.Intn(10) // fine: draws from the threaded source
}

func bareSleep() {
	time.Sleep(time.Millisecond) // want `bare time\.Sleep couples the schedule to host timing`
}

func selectAfterOK(stop chan struct{}) {
	select {
	case <-stop:
	case <-time.After(time.Millisecond): // fine: races against other channels
	}
}

func suppressedSleep() {
	//dmv:ignore(detrand) fixture: demonstrating a documented suppression
	time.Sleep(time.Millisecond)
}

// A reason-less ignore being itself a diagnostic is asserted in the driver
// test (cmd/dmv-vet), where the dmvignore diagnostic can be observed
// directly; expressing it as a // want here would turn the want text into
// the ignore's reason.
