// A chaos-named test file is in the detrand scope regardless of its
// package: chaos schedules must replay from their seed.
package other

import (
	"math/rand"
	"testing"
	"time"
)

func TestChaosSim(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // fine: seeded from configuration
	_ = rng.Intn(10)
	_ = rand.Intn(10)            // want `rand\.Intn draws from the process-global source`
	time.Sleep(time.Millisecond) // want `bare time\.Sleep couples the schedule to host timing`
}
