// Package other is outside the detrand scope: ordinary code may sleep and
// use convenience randomness; only fault-injection and chaos code must be
// deterministic.
package other

import (
	"math/rand"
	"time"
)

func jitter() {
	time.Sleep(time.Duration(rand.Intn(10)) * time.Millisecond) // fine: out of scope
}
