// Package detrand enforces seeded determinism in the fault-injection and
// chaos-harness code: every chaos leg must reproduce byte-for-byte from
// its seed, so the packages that schedule failures may not draw entropy
// from the math/rand global source, seed from the wall clock, or pace
// themselves with bare time.Sleep (which couples the schedule to host
// timing instead of the injected clock).
//
// In scope are the configured fault/harness packages — including their
// _test.go files, loaded via the analyzer's TestScope — plus any file
// named chaos*_test.go in any analyzed package. Within scope:
//
//   - calls to math/rand (or math/rand/v2) package-level functions are
//     banned except the source constructors (New, NewSource, NewPCG,
//     NewChaCha8): rand.Intn and friends draw from the process-global
//     source, which other goroutines also consume, so replaying a seed
//     does not replay the schedule;
//   - seeding a constructor from time.Now (rand.NewSource(
//     time.Now().UnixNano()) and variants) is banned: the seed must come
//     from configuration so the log line "seed=N" suffices to reproduce;
//   - bare time.Sleep is banned in favor of the injectable clock
//     (time.After inside a select remains legal — it races against other
//     channels rather than pacing the schedule).
package detrand

import (
	"go/ast"
	"path/filepath"
	"strings"

	"dmv/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// ScopePkgs are the packages (PkgMatch semantics) whose entire source —
	// tests included — must be deterministic.
	ScopePkgs []string
	// ChaosFilePrefix marks test files in ANY package as in scope when the
	// basename starts with it (chaos_test.go and friends).
	ChaosFilePrefix string
}

// DefaultConfig matches this repository's fault-injection layout.
var DefaultConfig = Config{
	ScopePkgs:       []string{"faultnet", "faultdisk", "harness"},
	ChaosFilePrefix: "chaos",
}

// randCtors are the constructor calls exempt from the global-source ban
// (they produce the threaded seeded source).
var randCtors = map[string]bool{
	"New": true, "NewSource": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// Analyzer flags nondeterminism in the fault-injection packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "flag math/rand global-source use, wall-clock seeds, and bare time.Sleep in fault-injection and chaos code (seeded determinism)",
	Run:  func(pass *analysis.Pass) error { return run(pass, DefaultConfig) },
	TestScope: []string{
		"dmv", // chaos_test.go lives in the root package's external tests
		"internal/faultnet",
		"internal/faultdisk",
		"internal/harness",
	},
}

func run(pass *analysis.Pass, cfg Config) error {
	pkgInScope := analysis.PkgMatchAny(pass.Pkg.Path(), cfg.ScopePkgs)
	for _, f := range pass.Files {
		if !pkgInScope && !chaosFile(pass, f, cfg) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch {
			case isMathRand(path) && analysis.RecvTypeName(fn) == "":
				if !randCtors[name] {
					pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; thread the seeded *rand.Rand so the chaos schedule replays from its seed", name)
				} else if seedArg := wallClockSeedArg(pass, call); seedArg != nil {
					pass.Reportf(seedArg.Pos(), "rand.%s seeded from time.Now; the seed must come from configuration so a logged seed reproduces the run", name)
				}
			case path == "time" && name == "Sleep" && analysis.RecvTypeName(fn) == "":
				pass.Reportf(call.Pos(), "bare time.Sleep couples the schedule to host timing; use the injectable clock")
			}
			return true
		})
	}
	return nil
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// chaosFile reports whether f is a chaos-named test file.
func chaosFile(pass *analysis.Pass, f *ast.File, cfg Config) bool {
	base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
	return strings.HasPrefix(base, cfg.ChaosFilePrefix) && analysis.IsTestFileName(base)
}

// wallClockSeedArg returns the offending argument of a rand constructor
// whose seed derives from time.Now, or nil. Nested constructor calls are
// skipped so rand.New(rand.NewSource(time.Now().UnixNano())) reports once,
// at the inner NewSource.
func wallClockSeedArg(pass *analysis.Pass, ctor *ast.CallExpr) ast.Expr {
	for _, arg := range ctor.Args {
		if containsNestedCtor(pass, arg) {
			continue
		}
		if analysis.ContainsCallTo(pass.TypesInfo, arg, "time", "Now") {
			return arg
		}
	}
	return nil
}

func containsNestedCtor(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, isCall := m.(*ast.CallExpr)
		if !isCall {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && isMathRand(fn.Pkg().Path()) && randCtors[fn.Name()] {
			found = true
			return false
		}
		return true
	})
	return found
}
