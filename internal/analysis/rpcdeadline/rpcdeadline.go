// Package rpcdeadline enforces the bounded-deadline discipline on the RPC
// client layer: availability under partial failure (the paper's
// continuous-availability argument) requires that no request can block a
// scheduler goroutine forever, so every client call must flow through the
// transport wrappers that arm a deadline.
//
// Four rules:
//
//  1. Outside the transport packages, importing net/rpc at all is a
//     violation — raw clients have no deadline machinery, and the
//     transport layer exists precisely to wrap them.
//  2. Inside the transport packages, the raw (*rpc.Client).Call / Go
//     methods may appear only in the blessed single-attempt primitive
//     (callOnce); every other function must compose it.
//  3. Writing a compile-time constant <= 0 into a ClientOptions deadline
//     field (CallTimeout, PingTimeout, DialTimeout) is a violation: zero
//     is a redundant spelling of "default" at best, and negative disables
//     the deadline entirely — a production call path must never encode
//     either in source. (Tests that genuinely need an unbounded call keep
//     the negative escape hatch behind a dmv:ignore with a reason.)
//  4. Passing a constant <= 0 deadline argument directly to callOnce /
//     callIdem is the same violation one layer lower.
//
// The analysis is per-package and syntactic-plus-types: it proves every
// call SITE is deadline-armed, not every dynamic path (a variable deadline
// computed as zero at runtime is out of scope).
package rpcdeadline

import (
	"go/ast"
	"go/types"
	"strconv"

	"dmv/internal/analysis"
)

// Config scopes the analyzer to a repository's transport layer.
type Config struct {
	// TransportPkgs are the packages (PkgMatch semantics) that implement
	// the deadline-armed client; only they may touch net/rpc.
	TransportPkgs []string
	// AllowRawIn names the functions inside TransportPkgs allowed to call
	// (*rpc.Client).Call / Go directly.
	AllowRawIn []string
	// OptionsType is the client-options struct whose deadline fields rule 3
	// guards.
	OptionsType string
	// TimeoutFields are the duration fields of OptionsType that must not be
	// set to a constant <= 0.
	TimeoutFields []string
	// DeadlineArg maps transport primitive names to the index of their
	// deadline parameter.
	DeadlineArg map[string]int
}

// DefaultConfig matches this repository's internal/transport layout.
var DefaultConfig = Config{
	TransportPkgs: []string{"transport"},
	AllowRawIn:    []string{"callOnce"},
	OptionsType:   "ClientOptions",
	TimeoutFields: []string{"CallTimeout", "PingTimeout", "DialTimeout"},
	DeadlineArg:   map[string]int{"callOnce": 3, "callIdem": 3},
}

// Analyzer flags RPC call sites that can run without a deadline.
var Analyzer = &analysis.Analyzer{
	Name: "rpcdeadline",
	Doc:  "flag RPC client paths that bypass the transport deadline machinery (raw net/rpc use, zero or negative timeouts)",
	Run:  func(pass *analysis.Pass) error { return run(pass, DefaultConfig) },
}

func run(pass *analysis.Pass, cfg Config) error {
	inTransport := analysis.PkgMatchAny(pass.Pkg.Path(), cfg.TransportPkgs)
	allowRaw := make(map[string]bool, len(cfg.AllowRawIn))
	for _, n := range cfg.AllowRawIn {
		allowRaw[n] = true
	}
	timeoutField := make(map[string]bool, len(cfg.TimeoutFields))
	for _, n := range cfg.TimeoutFields {
		timeoutField[n] = true
	}

	for _, f := range pass.Files {
		if !inTransport {
			// Rule 1: one diagnostic per net/rpc import.
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "net/rpc" {
					pass.Reportf(imp.Pos(), "package %s imports net/rpc directly; raw clients have no deadline — route calls through the transport layer", pass.Pkg.Path())
				}
			}
		}
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, cfg, node, stack, inTransport, allowRaw)
			case *ast.CompositeLit:
				checkOptionsLit(pass, cfg, node, timeoutField)
			case *ast.AssignStmt:
				checkOptionsAssign(pass, cfg, node, timeoutField)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, cfg Config, call *ast.CallExpr, stack []ast.Node, inTransport bool, allowRaw map[string]bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	// Rule 2: raw Call/Go on *rpc.Client only inside the blessed primitive.
	if inTransport && fn.Pkg() != nil && fn.Pkg().Path() == "net/rpc" &&
		analysis.RecvTypeName(fn) == "Client" && (fn.Name() == "Call" || fn.Name() == "Go") {
		if enc := analysis.EnclosingFuncName(stack); !allowRaw[enc] {
			pass.Reportf(call.Pos(), "raw (*rpc.Client).%s outside %s; only the blessed single-attempt primitive may bypass the deadline wrapper", fn.Name(), quoteList(cfg.AllowRawIn))
		}
	}
	// Rule 4: constant <= 0 deadline argument to a transport primitive.
	if idx, isPrim := cfg.DeadlineArg[fn.Name()]; isPrim &&
		analysis.PkgMatchAny(pkgPathOf(fn), cfg.TransportPkgs) && idx < len(call.Args) {
		if analysis.NonPositiveConst(pass.TypesInfo, call.Args[idx]) {
			pass.Reportf(call.Args[idx].Pos(), "%s called with non-positive constant deadline; an unbounded RPC can wedge its caller forever", fn.Name())
		}
	}
}

// checkOptionsLit flags ClientOptions{..., CallTimeout: 0, ...}.
func checkOptionsLit(pass *analysis.Pass, cfg Config, lit *ast.CompositeLit, timeoutField map[string]bool) {
	if !isOptionsType(pass.TypesInfo.TypeOf(lit), cfg) {
		return
	}
	for _, el := range lit.Elts {
		kv, isKV := el.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		key, isIdent := kv.Key.(*ast.Ident)
		if !isIdent || !timeoutField[key.Name] {
			continue
		}
		if analysis.NonPositiveConst(pass.TypesInfo, kv.Value) {
			pass.Reportf(kv.Pos(), "%s.%s set to non-positive constant; deadlines must stay armed (omit the field for the default)", cfg.OptionsType, key.Name)
		}
	}
}

// checkOptionsAssign flags opts.CallTimeout = 0 style writes.
func checkOptionsAssign(pass *analysis.Pass, cfg Config, asg *ast.AssignStmt, timeoutField map[string]bool) {
	for i, lhs := range asg.Lhs {
		if i >= len(asg.Rhs) {
			break
		}
		sel, isSel := lhs.(*ast.SelectorExpr)
		if !isSel || !timeoutField[sel.Sel.Name] {
			continue
		}
		if !isOptionsType(pass.TypesInfo.TypeOf(sel.X), cfg) {
			continue
		}
		if analysis.NonPositiveConst(pass.TypesInfo, asg.Rhs[i]) {
			pass.Reportf(asg.Pos(), "%s.%s assigned non-positive constant; deadlines must stay armed", cfg.OptionsType, sel.Sel.Name)
		}
	}
}

func isOptionsType(t types.Type, cfg Config) bool {
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != cfg.OptionsType || named.Obj().Pkg() == nil {
		return false
	}
	return analysis.PkgMatchAny(named.Obj().Pkg().Path(), cfg.TransportPkgs)
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func quoteList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
