package rpcdeadline

import (
	"testing"

	"dmv/internal/analysis/analysistest"
)

func TestRPCDeadline(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "transport", "client")
}
