// Package transport is the rpcdeadline fixture for the rules scoped to the
// transport layer itself: raw net/rpc confined to the blessed primitive,
// and no constant non-positive deadlines in options or arguments.
package transport

import (
	"net/rpc"
	"time"
)

// ClientOptions mirrors the real transport options struct.
type ClientOptions struct {
	DialTimeout time.Duration
	CallTimeout time.Duration
	PingTimeout time.Duration
}

// Node is a minimal client wrapper.
type Node struct {
	c    *rpc.Client
	opts ClientOptions
}

// callOnce is the blessed raw-call site.
func (n *Node) callOnce(method string, args, reply any, d time.Duration) error {
	return n.c.Call(method, args, reply) // allowed: inside callOnce
}

// callIdem is a retry wrapper that composes callOnce.
func (n *Node) callIdem(method string, args, reply any, d time.Duration) error {
	return n.callOnce(method, args, reply, d)
}

func (n *Node) rawCall(method string, args, reply any) error {
	return n.c.Call(method, args, reply) // want `raw \(\*rpc\.Client\)\.Call outside callOnce`
}

func (n *Node) rawGo(method string, args, reply any) {
	n.c.Go(method, args, reply, nil) // want `raw \(\*rpc\.Client\)\.Go outside callOnce`
}

func (n *Node) rawSuppressed(method string, args, reply any) error {
	//dmv:ignore(rpcdeadline) fixture: demonstrating a documented suppression
	return n.c.Call(method, args, reply)
}

func badOptions() ClientOptions {
	return ClientOptions{
		CallTimeout: 0,  // want `ClientOptions\.CallTimeout set to non-positive constant`
		PingTimeout: -1, // want `ClientOptions\.PingTimeout set to non-positive constant`
	}
}

func badAssign(o *ClientOptions) {
	o.CallTimeout = -1 * time.Second // want `ClientOptions\.CallTimeout assigned non-positive constant`
	o.DialTimeout = 2 * time.Second  // fine: positive
}

func goodOptions() ClientOptions {
	return ClientOptions{CallTimeout: 5 * time.Second}
}

func badDeadlineArg(n *Node) {
	_ = n.callOnce("Node.Ping", nil, nil, 0)           // want `callOnce called with non-positive constant deadline`
	_ = n.callIdem("Node.Status", nil, nil, -1)        // want `callIdem called with non-positive constant deadline`
	_ = n.callOnce("Node.Ping", nil, nil, time.Second) // fine: bounded
}
