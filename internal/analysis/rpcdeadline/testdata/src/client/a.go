// Package client is the rpcdeadline fixture for rule 1: outside the
// transport layer, importing net/rpc at all bypasses the deadline
// machinery.
package client

import (
	"net/rpc" // want `package client imports net/rpc directly`

	"transport"
)

func dial() (*rpc.Client, error) {
	return rpc.Dial("tcp", "localhost:0")
}

func good() transport.ClientOptions {
	return transport.ClientOptions{CallTimeout: 1000000}
}
