package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Held is one mutex the walker believes is held at a program point.
type Held struct {
	// Key names the lock site: "pkgpath.Type.field" for struct-field
	// mutexes, "pkgpath.var" for package-level mutexes, "local:name" for
	// function-local ones, "" when the site cannot be resolved.
	Key string
	// Field is the mutex field or variable name (e.g. "mu").
	Field string
	// Inst renders the receiver base expression ("s" for s.mu), so two
	// locks of the same type on different objects stay distinguishable.
	Inst string
	// RLock marks a shared (read) acquisition.
	RLock bool
	// Deferred marks a lock whose release is deferred to function exit.
	Deferred bool
	// Pos is the acquisition site.
	Pos token.Pos
}

// LockVisitor observes the walk. Visit fires pre-order for every statement
// and expression with the current held set; Acquire fires for each lock
// acquisition with the set held just before it.
type LockVisitor interface {
	Visit(n ast.Node, held []Held)
	Acquire(call *ast.CallExpr, h Held, held []Held)
}

// LockOp classifies a sync.(RW)Mutex method call.
type LockOp int

const (
	OpNone LockOp = iota
	OpLock
	OpRLock
	OpUnlock
	OpRUnlock
)

// ClassifyLockCall reports whether call is a (possibly promoted)
// sync.Mutex/sync.RWMutex lock-family method call and resolves its site.
func ClassifyLockCall(info *types.Info, call *ast.CallExpr) (op LockOp, h Held, ok bool) {
	fsel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return OpNone, h, false
	}
	switch fsel.Sel.Name {
	case "Lock", "TryLock":
		op = OpLock
	case "RLock", "TryRLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return OpNone, h, false
	}
	fn, isFn := info.Uses[fsel.Sel].(*types.Func)
	if !isFn || !isSyncMutexMethod(fn) {
		return OpNone, h, false
	}
	h = lockSite(info, fsel.X)
	h.Pos = call.Pos()
	h.RLock = op == OpRLock || op == OpRUnlock
	return op, h, true
}

func isSyncMutexMethod(fn *types.Func) bool {
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

// lockSite resolves the mutex expression x (the receiver of Lock/Unlock)
// to a stable site key plus instance rendering.
func lockSite(info *types.Info, x ast.Expr) Held {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel, found := info.Selections[e]; found && sel.Kind() == types.FieldVal {
			field := sel.Obj().(*types.Var)
			if owner := namedOf(sel.Recv()); owner != nil && owner.Obj().Pkg() != nil {
				return Held{
					Key:   owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name(),
					Field: field.Name(),
					Inst:  types.ExprString(e.X),
				}
			}
			return Held{Field: field.Name(), Inst: types.ExprString(e.X)}
		}
		// Qualified package-level var: pkg.Mu.Lock().
		if vr, isVar := info.Uses[e.Sel].(*types.Var); isVar && vr.Pkg() != nil {
			return Held{Key: vr.Pkg().Path() + "." + vr.Name(), Field: vr.Name()}
		}
	case *ast.Ident:
		if vr, isVar := info.Uses[e].(*types.Var); isVar {
			if vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
				return Held{Key: vr.Pkg().Path() + "." + vr.Name(), Field: vr.Name()}
			}
			return Held{Key: "local:" + vr.Name(), Field: vr.Name()}
		}
	case *ast.ParenExpr:
		return lockSite(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockSite(info, e.X)
		}
	case *ast.StarExpr:
		return lockSite(info, e.X)
	}
	// Embedded mutex (t.Lock() where T embeds sync.Mutex), index
	// expressions, call results: fall back to the receiver type.
	if tv, found := info.Types[x]; found {
		if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() != nil {
			if named.Obj().Pkg().Path() == "sync" {
				// Bare mutex reached through an index/call; identify by text.
				return Held{Inst: types.ExprString(x)}
			}
			return Held{
				Key:   named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".Mutex",
				Field: "Mutex",
				Inst:  types.ExprString(x),
			}
		}
	}
	return Held{Inst: types.ExprString(x)}
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// WalkFunc walks one function body tracking the held-lock set with a small
// branch-aware abstract interpretation: if/else and switch arms merge by
// intersection, arms ending in return/break/continue/panic do not leak
// their lock-state past the branch, deferred unlocks pin a lock to
// function exit, and function literals are walked separately with an empty
// held set (their bodies run at another time, on another goroutine, or
// after the frame returns).
func WalkFunc(info *types.Info, body *ast.BlockStmt, v LockVisitor) {
	w := &lockWalker{info: info, v: v}
	w.stmt(body)
	for len(w.lits) > 0 {
		lit := w.lits[0]
		w.lits = w.lits[1:]
		w.held = nil
		w.stmt(lit.Body)
	}
}

type lockWalker struct {
	info *types.Info
	v    LockVisitor
	held []Held
	lits []*ast.FuncLit
}

func (w *lockWalker) snapshot() []Held { return append([]Held(nil), w.held...) }

func (w *lockWalker) stmtList(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// terminates reports whether the statement list ends in a statement that
// never falls through to the code after the enclosing block.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// intersect keeps the held entries present in every branch outcome.
func intersect(outcomes [][]Held) []Held {
	if len(outcomes) == 0 {
		return nil
	}
	out := make([]Held, 0, len(outcomes[0]))
	for _, h := range outcomes[0] {
		inAll := true
		for _, o := range outcomes[1:] {
			found := false
			for _, g := range o {
				if g.Key == h.Key && g.Inst == h.Inst && g.RLock == h.RLock {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, h)
		}
	}
	return out
}

func (w *lockWalker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	w.v.Visit(s, w.held)
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.stmtList(st.List)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, isGen := st.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		w.expr(st.Value)
		w.expr(st.Chan)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		saved := w.snapshot()
		w.stmt(st.Body)
		thenHeld, thenTerm := w.snapshot(), terminates(st.Body.List)
		elseHeld, elseTerm := saved, false
		if st.Else != nil {
			w.held = append([]Held(nil), saved...)
			w.stmt(st.Else)
			elseHeld = w.snapshot()
			if eb, isBlock := st.Else.(*ast.BlockStmt); isBlock {
				elseTerm = terminates(eb.List)
			} else if ei, isIf := st.Else.(*ast.IfStmt); isIf {
				elseTerm = terminates([]ast.Stmt{ei})
			}
		}
		switch {
		case thenTerm && elseTerm:
			w.held = saved
		case thenTerm:
			w.held = elseHeld
		case elseTerm:
			w.held = thenHeld
		default:
			w.held = intersect([][]Held{thenHeld, elseHeld})
		}
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		saved := w.snapshot()
		w.stmt(st.Body)
		w.stmt(st.Post)
		w.held = saved
	case *ast.RangeStmt:
		w.expr(st.X)
		saved := w.snapshot()
		w.stmt(st.Body)
		w.held = saved
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.expr(st.Tag)
		w.caseClauses(st.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		w.caseClauses(st.Body)
	case *ast.SelectStmt:
		w.caseClauses(st.Body)
	case *ast.DeferStmt:
		w.deferStmt(st)
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			w.expr(a)
		}
		if lit, isLit := st.Call.Fun.(*ast.FuncLit); isLit {
			w.lits = append(w.lits, lit)
		} else {
			w.expr(st.Call.Fun)
		}
	}
}

// caseClauses processes a switch/select body: every arm starts from the
// pre-switch state and the fall-through arms merge by intersection.
func (w *lockWalker) caseClauses(body *ast.BlockStmt) {
	saved := w.snapshot()
	outcomes := [][]Held{}
	hasDefault := false
	for _, cs := range body.List {
		w.held = append([]Held(nil), saved...)
		var list []ast.Stmt
		switch clause := cs.(type) {
		case *ast.CaseClause:
			if clause.List == nil {
				hasDefault = true
			}
			for _, e := range clause.List {
				w.expr(e)
			}
			list = clause.Body
		case *ast.CommClause:
			if clause.Comm == nil {
				hasDefault = true
			}
			w.stmt(clause.Comm)
			list = clause.Body
		}
		w.stmtList(list)
		if !terminates(list) {
			outcomes = append(outcomes, w.snapshot())
		}
	}
	if !hasDefault {
		outcomes = append(outcomes, saved)
	}
	if len(outcomes) == 0 {
		w.held = saved
		return
	}
	w.held = intersect(outcomes)
}

// deferStmt handles `defer mu.Unlock()` (and the closure form) by pinning
// the matching held entry to function exit instead of releasing it.
func (w *lockWalker) deferStmt(st *ast.DeferStmt) {
	for _, a := range st.Call.Args {
		w.expr(a)
	}
	if op, h, isLockCall := ClassifyLockCall(w.info, st.Call); isLockCall && (op == OpUnlock || op == OpRUnlock) {
		w.pinDeferred(h, op == OpRUnlock)
		return
	}
	if lit, isLit := st.Call.Fun.(*ast.FuncLit); isLit {
		// A deferred closure that releases a lock keeps it held to exit.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, isCall := n.(*ast.CallExpr); isCall {
				if op, h, isLockCall := ClassifyLockCall(w.info, call); isLockCall && (op == OpUnlock || op == OpRUnlock) {
					w.pinDeferred(h, op == OpRUnlock)
				}
			}
			return true
		})
		w.lits = append(w.lits, lit)
		return
	}
	w.expr(st.Call.Fun)
}

func (w *lockWalker) pinDeferred(h Held, runlock bool) {
	for i := len(w.held) - 1; i >= 0; i-- {
		g := &w.held[i]
		if g.Key == h.Key && g.Inst == h.Inst && g.RLock == runlock && !g.Deferred {
			g.Deferred = true
			return
		}
	}
}

func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch ex := e.(type) {
	case *ast.FuncLit:
		w.v.Visit(ex, w.held)
		w.lits = append(w.lits, ex)
		return
	case *ast.CallExpr:
		w.v.Visit(ex, w.held)
		// Evaluate receiver/args first, then apply the lock transition.
		if fsel, isSel := ex.Fun.(*ast.SelectorExpr); isSel {
			w.expr(fsel.X)
		} else {
			w.expr(ex.Fun)
		}
		for _, a := range ex.Args {
			w.expr(a)
		}
		op, h, isLockCall := ClassifyLockCall(w.info, ex)
		if !isLockCall {
			return
		}
		switch op {
		case OpLock, OpRLock:
			w.v.Acquire(ex, h, w.held)
			w.held = append(w.held, h)
		case OpUnlock, OpRUnlock:
			w.release(h, op == OpRUnlock)
		}
		return
	}
	w.v.Visit(e, w.held)
	switch ex := e.(type) {
	case *ast.SelectorExpr:
		w.expr(ex.X)
	case *ast.IndexExpr:
		w.expr(ex.X)
		w.expr(ex.Index)
	case *ast.IndexListExpr:
		w.expr(ex.X)
	case *ast.SliceExpr:
		w.expr(ex.X)
		w.expr(ex.Low)
		w.expr(ex.High)
		w.expr(ex.Max)
	case *ast.StarExpr:
		w.expr(ex.X)
	case *ast.UnaryExpr:
		w.expr(ex.X)
	case *ast.BinaryExpr:
		w.expr(ex.X)
		w.expr(ex.Y)
	case *ast.ParenExpr:
		w.expr(ex.X)
	case *ast.TypeAssertExpr:
		w.expr(ex.X)
	case *ast.CompositeLit:
		for _, elt := range ex.Elts {
			w.expr(elt)
		}
	case *ast.KeyValueExpr:
		w.expr(ex.Key)
		w.expr(ex.Value)
	}
}

// release drops the most recent non-deferred matching acquisition.
func (w *lockWalker) release(h Held, runlock bool) {
	for i := len(w.held) - 1; i >= 0; i-- {
		g := w.held[i]
		if g.Key == h.Key && g.Inst == h.Inst && g.RLock == runlock && !g.Deferred {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}
