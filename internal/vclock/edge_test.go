package vclock

import (
	"sync"
	"testing"
)

// Zero-length vectors appear in real traffic: a commit with an empty table
// set, or a scheduler that has not yet seen any master report.

func TestZeroLengthVectors(t *testing.T) {
	var zero Vector

	if got := zero.Get(0); got != 0 {
		t.Fatalf("zero.Get(0) = %d, want 0", got)
	}
	if got := zero.Get(-1); got != 0 {
		t.Fatalf("zero.Get(-1) = %d, want 0", got)
	}
	if c := zero.Clone(); len(c) != 0 {
		t.Fatalf("zero.Clone() has length %d, want 0", len(c))
	}
	if !zero.Equal(nil) {
		t.Fatal("zero vector must equal nil vector")
	}
	if !zero.Equal(Vector{0, 0, 0}) {
		t.Fatal("zero vector must equal an all-zero vector of any length")
	}
	if !zero.DominatesOrEqual(nil) {
		t.Fatal("zero vector must dominate nil")
	}
	if !(Vector{}).DominatesOrEqual(Vector{0, 0}) {
		t.Fatal("zero vector must dominate an all-zero longer vector")
	}
	if zero.DominatesOrEqual(Vector{0, 1}) {
		t.Fatal("zero vector must not dominate a non-zero vector")
	}
	if got := zero.Merge(nil); len(got) != 0 {
		t.Fatalf("nil.Merge(nil) has length %d, want 0", len(got))
	}
	if got := zero.MinInto(Vector{5}); len(got) != 0 {
		t.Fatalf("nil.MinInto non-empty has length %d, want 0", len(got))
	}
	if got := zero.String(); got != "[]" {
		t.Fatalf("zero.String() = %q, want %q", got, "[]")
	}
}

// Mismatched table counts happen when a cluster's schema grows: vectors
// stamped before the new table are one entry short.

func TestMismatchedLengths(t *testing.T) {
	short := Vector{3, 7}
	long := Vector{1, 9, 4}

	merged := short.Clone().Merge(long)
	if want := (Vector{3, 9, 4}); !merged.Equal(want) {
		t.Fatalf("short.Merge(long) = %v, want %v", merged, want)
	}
	if len(merged) != 3 {
		t.Fatalf("merge must grow to the longer length, got %d", len(merged))
	}

	merged = long.Clone().Merge(short)
	if want := (Vector{3, 9, 4}); !merged.Equal(want) {
		t.Fatalf("long.Merge(short) = %v, want %v", merged, want)
	}

	// Merging a shorter vector must keep the longer one's tail intact.
	if got := (Vector{0, 0, 5}).Merge(Vector{2}); !got.Equal(Vector{2, 0, 5}) {
		t.Fatalf("tail lost in merge: %v", got)
	}

	// MinInto treats missing entries of o as zero: the low-water mark of a
	// reader that predates table 2 pins table 2 at version 0.
	lowered := Vector{4, 4, 4}.MinInto(Vector{9, 2})
	if want := (Vector{4, 2, 0}); !lowered.Equal(want) {
		t.Fatalf("MinInto short = %v, want %v", lowered, want)
	}

	// Domination across lengths: a short vector's missing entries are zero.
	if !long.DominatesOrEqual(Vector{1, 2}) {
		t.Fatal("long must dominate a shorter, smaller vector")
	}
	if (Vector{9, 9}).DominatesOrEqual(Vector{0, 0, 1}) {
		t.Fatal("short vector must not dominate where the longer one's tail is ahead")
	}
	if short.Equal(long) {
		t.Fatal("distinct vectors reported equal")
	}
	if !(Vector{3, 7}).Equal(Vector{3, 7, 0}) {
		t.Fatal("trailing zeros must not break equality")
	}
}

func TestClockIgnoresOutOfRangeTables(t *testing.T) {
	c := NewClock(2)
	got := c.Tick([]int{-1, 0, 5})
	if want := (Vector{1, 0}); !got.Equal(want) {
		t.Fatalf("Tick with out-of-range tables = %v, want %v", got, want)
	}
}

// Concurrent comparison and merge traffic; meaningful under -race, where any
// unsynchronized access to the shared accumulators trips the detector.

func TestConcurrentCompareAndMerge(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		tables  = 4
	)
	clock := NewClock(tables)
	merged := NewMerged(tables)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ver := clock.Tick([]int{w % tables})
				merged.Report(ver)
				latest := merged.Latest()
				if !latest.DominatesOrEqual(ver) && !ver.DominatesOrEqual(latest) {
					// Concurrent merges may interleave, but the merged
					// vector can never be element-wise behind a reported
					// one for the entries this worker just advanced.
					if latest.Get(w%tables) > ver.Get(w%tables) {
						continue
					}
				}
				_ = latest.Equal(ver)
				_ = latest.Clone().Merge(ver)
			}
		}(w)
	}
	wg.Wait()

	final := merged.Latest()
	if !final.Equal(clock.Current()) {
		t.Fatalf("after quiescence merged %v != clock %v", final, clock.Current())
	}
	var total uint64
	for i := 0; i < tables; i++ {
		total += final.Get(i)
	}
	if total != workers*rounds {
		t.Fatalf("lost ticks: merged total %d, want %d", total, workers*rounds)
	}
}
