//go:build dmvdebug

package vclock

import "testing"

// Runs only under -tags dmvdebug (scripts/check.sh has a leg for it).

func TestSealedVectorMutationPanics(t *testing.T) {
	v := Vector{1, 2, 3}
	Seal(v)
	CheckSealed(v) // untouched: must pass

	v[1] = 99
	defer func() {
		if recover() == nil {
			t.Fatal("CheckSealed did not panic on a mutated sealed vector")
		}
	}()
	CheckSealed(v)
}

func TestUnsealedVectorPasses(t *testing.T) {
	v := Vector{4, 5}
	v[0] = 6
	CheckSealed(v) // never sealed: no panic

	// A clone of a sealed vector is a fresh value and stays mutable.
	s := Vector{7, 8}
	Seal(s)
	c := s.Clone()
	c[0] = 0
	CheckSealed(c)
	CheckSealed(s)
}
