//go:build dmvdebug

package vclock

import (
	"fmt"
	"sync"
)

// Debug build: Seal fingerprints a vector at publication time and
// CheckSealed re-fingerprints it at every consumption point, panicking on
// any drift. Vectors are keyed by the address of their backing array; the
// map entry keeps the array reachable, so an address is never reused for a
// different sealed vector while its entry exists. The registry grows for
// the life of the process — acceptable for the test runs this tag exists
// for, never for production builds.

var (
	sealMu sync.Mutex
	sealed = make(map[*uint64]uint64)
)

// Seal records v as published: any later in-place mutation makes
// CheckSealed panic.
func Seal(v Vector) {
	if len(v) == 0 {
		return
	}
	sealMu.Lock()
	sealed[&v[0]] = fingerprint(v)
	sealMu.Unlock()
}

// CheckSealed panics if v was sealed and has since been mutated in place.
// Vectors that were never sealed pass.
func CheckSealed(v Vector) {
	if len(v) == 0 {
		return
	}
	sealMu.Lock()
	want, isSealed := sealed[&v[0]]
	sealMu.Unlock()
	if !isSealed {
		return
	}
	if got := fingerprint(v); got != want {
		panic(fmt.Sprintf("vclock: sealed vector %v was mutated after publication (fingerprint %#x, sealed as %#x)", v, got, want))
	}
}

// fingerprint is FNV-1a over the vector's length and elements.
func fingerprint(v Vector) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(len(v)))
	for _, x := range v {
		mix(x)
	}
	return h
}
