//go:build !dmvdebug

package vclock

// Seal and CheckSealed implement the paper's "stamped at pre-commit,
// immutable thereafter" invariant as a runtime assertion. In release builds
// they compile to nothing; build with -tags dmvdebug to activate the
// fingerprint registry in debug_on.go.

// Seal records v as published. No-op unless built with -tags dmvdebug.
func Seal(Vector) {}

// CheckSealed panics if a sealed vector has been mutated since Seal. No-op
// unless built with -tags dmvdebug.
func CheckSealed(Vector) {}
