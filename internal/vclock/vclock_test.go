package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMergeProperties(t *testing.T) {
	// Commutativity under Equal.
	comm := func(a, b []uint64) bool {
		x := Vector(a).Clone().Merge(Vector(b))
		y := Vector(b).Clone().Merge(Vector(a))
		return x.Equal(y)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	// Idempotence.
	idem := func(a []uint64) bool {
		v := Vector(a)
		return v.Clone().Merge(v).Equal(v)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("idempotence: %v", err)
	}
	// Merge dominates both inputs.
	dom := func(a, b []uint64) bool {
		m := Vector(a).Clone().Merge(Vector(b))
		return m.DominatesOrEqual(Vector(a)) && m.DominatesOrEqual(Vector(b))
	}
	if err := quick.Check(dom, nil); err != nil {
		t.Errorf("domination: %v", err)
	}
}

func TestTickUniqueAndMonotonic(t *testing.T) {
	c := NewClock(4)
	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := c.Tick([]int{w % 4})
				mu.Lock()
				key := v.String()
				if seen[key] {
					t.Errorf("duplicate vector %s", key)
				}
				seen[key] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	cur := c.Current()
	var total uint64
	for _, x := range cur {
		total += x
	}
	if total != 800 {
		t.Fatalf("total ticks = %d, want 800", total)
	}
}

func TestTickMultiTableAtomic(t *testing.T) {
	c := NewClock(3)
	v := c.Tick([]int{0, 2})
	if v.Get(0) != 1 || v.Get(1) != 0 || v.Get(2) != 1 {
		t.Fatalf("vector = %v", v)
	}
	v = c.Tick([]int{0})
	if v.Get(0) != 2 || v.Get(2) != 1 {
		t.Fatalf("vector = %v", v)
	}
}

func TestAdvanceAndReset(t *testing.T) {
	c := NewClock(2)
	c.Advance(Vector{5, 1})
	c.Advance(Vector{3, 7}) // merge: keeps the max per entry
	if got := c.Current(); got.Get(0) != 5 || got.Get(1) != 7 {
		t.Fatalf("after advance: %v", got)
	}
	c.ResetTo(Vector{2, 2})
	if got := c.Current(); got.Get(0) != 2 || got.Get(1) != 2 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestMergedAccumulator(t *testing.T) {
	m := NewMerged(2)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Report(Vector{uint64(i), uint64(10 - i)})
		}(i)
	}
	wg.Wait()
	got := m.Latest()
	if got.Get(0) != 9 || got.Get(1) != 10 {
		t.Fatalf("merged = %v", got)
	}
}

func TestShortVectorSemantics(t *testing.T) {
	long := Vector{1, 2, 3}
	short := Vector{1, 2}
	if !long.DominatesOrEqual(short) {
		t.Error("long should dominate its prefix")
	}
	if short.DominatesOrEqual(long) {
		t.Error("short lacks entry 3 (reads as zero)")
	}
	if short.Get(5) != 0 {
		t.Error("missing entries read as zero")
	}
	if !short.Equal(Vector{1, 2, 0}) {
		t.Error("trailing zeros do not affect equality")
	}
}

func TestSortTablesCopies(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortTables(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("sorted = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
