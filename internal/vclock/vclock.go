// Package vclock implements the per-table database version vectors of
// Dynamic Multiversioning.
//
// Each committed update transaction advances the entries of the tables it
// wrote; the resulting vector names a consistent database state ("DBVersion"
// in the paper). Schedulers merge vectors arriving from the conflict-class
// masters and tag read-only transactions with the merged vector.
package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Vector is a database version vector with one entry per table, indexed by
// table id. Vectors are value types; use Clone before sharing across
// goroutines that mutate.
type Vector []uint64

// New returns a zero vector sized for n tables.
func New(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Get returns the entry for table t, tolerating short vectors (missing
// entries read as zero).
func (v Vector) Get(t int) uint64 {
	if t < 0 || t >= len(v) {
		return 0
	}
	return v[t]
}

// Merge sets v to the element-wise maximum of v and o, growing v if needed,
// and returns the (possibly re-allocated) result.
func (v Vector) Merge(o Vector) Vector {
	if len(o) > len(v) {
		grown := make(Vector, len(o))
		copy(grown, v)
		v = grown
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
	return v
}

// MinInto lowers v element-wise to min(v, o) and returns v. Used to compute
// the garbage-collection low-water mark across active readers.
func (v Vector) MinInto(o Vector) Vector {
	for i := range v {
		if x := o.Get(i); x < v[i] {
			v[i] = x
		}
	}
	return v
}

// DominatesOrEqual reports whether every entry of v is >= the corresponding
// entry of o, i.e. the state named by v includes the state named by o.
func (v Vector) DominatesOrEqual(o Vector) bool {
	for i, x := range o {
		if v.Get(i) < x {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality (missing entries read as zero).
func (v Vector) Equal(o Vector) bool {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if v.Get(i) != o.Get(i) {
			return false
		}
	}
	return true
}

// String renders the vector compactly for logs: [t0:3 t2:7] (zero entries
// are omitted).
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for i, x := range v {
		if x == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "t%d:%d", i, x)
	}
	b.WriteByte(']')
	return b.String()
}

// Clock is a thread-safe version vector with atomic multi-entry increments,
// used by a master database to stamp commits (Figure 2 of the paper: the
// increment of the DBVersion vector is atomic so every committed transaction
// obtains a unique vector).
type Clock struct {
	mu  sync.Mutex
	cur Vector // guarded by mu
}

// NewClock returns a clock over n tables starting at the zero vector.
func NewClock(n int) *Clock { return &Clock{cur: New(n)} }

// NewClockAt returns a clock primed with an existing vector (used when a
// slave is promoted to master after a failure).
func NewClockAt(v Vector) *Clock { return &Clock{cur: v.Clone()} }

// Tick atomically increments the entries for the written tables and returns
// the full resulting vector. The returned vector is a private copy.
func (c *Clock) Tick(tables []int) Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tables {
		if t >= 0 && t < len(c.cur) {
			c.cur[t]++
		}
	}
	return c.cur.Clone()
}

// Current returns a copy of the current vector.
func (c *Clock) Current() Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Clone()
}

// Advance merges o into the clock (used by slaves tracking the master's
// commits, and by a new master adopting the highest version it has seen).
func (c *Clock) Advance(o Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur = c.cur.Merge(o)
}

// ResetTo replaces the clock value (element-wise minimum with the given
// vector is NOT taken: the caller is rolling the tier back to exactly v
// during master fail-over).
func (c *Clock) ResetTo(v Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur = v.Clone()
}

// Merged is a thread-safe merge accumulator used by the scheduler: masters
// report commit vectors, readers take the latest merged vector.
type Merged struct {
	mu  sync.RWMutex
	cur Vector // guarded by mu
}

// NewMerged returns an accumulator over n tables.
func NewMerged(n int) *Merged { return &Merged{cur: New(n)} }

// Report merges a commit vector from a master.
func (m *Merged) Report(v Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = m.cur.Merge(v)
}

// Latest returns a copy of the latest merged vector.
func (m *Merged) Latest() Vector {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.Clone()
}

// Reset replaces the accumulator state (used during scheduler fail-over when
// a peer reconstructs state from master reports).
func (m *Merged) Reset(v Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = v.Clone()
}

// SortTables returns a sorted copy of a table-id set; masters lock conflict
// classes in this order to keep multi-table commits deadlock free.
func SortTables(tables []int) []int {
	out := make([]int, len(tables))
	copy(out, tables)
	sort.Ints(out)
	return out
}
