package faultdisk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dmv/internal/wal"
)

func openWAL(t *testing.T, dir string, d *Disk) (*wal.WAL, wal.Recovery) {
	t.Helper()
	w, rec, err := wal.Open(wal.Options{Dir: dir, FS: d})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, rec
}

func appendDurable(t *testing.T, w *wal.WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("payload-%06d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := w.WaitDurable(seq); err != nil {
			t.Fatalf("durable %d: %v", i, err)
		}
	}
}

func TestCrashDropsUnsyncedTailDeterministically(t *testing.T) {
	// Two runs of the same seed must recover the identical record count.
	counts := make([]int, 2)
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		d := New(1234)
		w, _ := openWAL(t, dir, d)
		appendDurable(t, w, 10)
		// The next writes are never fsynced: the disk may keep any seeded
		// fragment of them after the crash.
		d.LoseSyncs(true)
		for i := 0; i < 10; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("volatile-%06d", i))); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush (lost): %v", err)
		}
		if err := d.Crash(); err != nil {
			t.Fatalf("crash: %v", err)
		}
		_ = w.Close() // post-crash close; in-memory WAL is dead either way

		d.PowerOn()
		w2, rec := openWAL(t, dir, d)
		if len(rec.Records) < 10 {
			t.Fatalf("recovered %d records, want >= 10 (synced prefix lost)", len(rec.Records))
		}
		for i := 0; i < 10; i++ {
			if want := fmt.Sprintf("payload-%06d", i); string(rec.Records[i]) != want {
				t.Fatalf("record %d = %q, want %q", i, rec.Records[i], want)
			}
		}
		counts[run] = len(rec.Records)
		w2.Close()
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed recovered %d vs %d records", counts[0], counts[1])
	}
}

func TestFailSyncsInjectsError(t *testing.T) {
	d := New(7)
	w, _ := openWAL(t, t.TempDir(), d)
	defer w.Close()
	appendDurable(t, w, 3)
	d.FailSyncs(1)
	seq, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.WaitDurable(seq); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("durable err = %v, want ErrSyncFailed", err)
	}
	// fsyncgate: the failure is sticky — the WAL refuses further appends
	// rather than pretend a later fsync can cover the lost pages.
	if _, err := w.Append([]byte("after")); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("append after failed fsync = %v, want sticky ErrSyncFailed", err)
	}
}

func TestBitFlipCaughtByChecksum(t *testing.T) {
	dir := t.TempDir()
	d := New(99)
	w, _ := openWAL(t, dir, d)
	appendDurable(t, w, 20)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Heavy read corruption: recovery must never return a damaged payload —
	// every surviving record's checksum vouched for it on this read.
	d.SetBitFlip(0.02)
	w2, rec, err := wal.Open(wal.Options{Dir: dir, FS: d})
	if err != nil {
		// Mid-log corruption is a legitimate outcome of flipped reads.
		if !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("open: %v", err)
		}
		return
	}
	defer w2.Close()
	for i, p := range rec.Records {
		if want := fmt.Sprintf("payload-%06d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q (bit flip leaked through CRC)", i, p, want)
		}
	}
}

func TestShortReadsTolerated(t *testing.T) {
	dir := t.TempDir()
	d := New(5)
	w, _ := openWAL(t, dir, d)
	appendDurable(t, w, 50)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d.SetShortRead(0.3)
	w2, rec, err := wal.Open(wal.Options{Dir: dir, FS: d})
	if err != nil {
		t.Fatalf("open under short reads: %v", err)
	}
	defer w2.Close()
	if len(rec.Records) != 50 {
		t.Fatalf("recovered %d, want 50 (short reads are not data loss)", len(rec.Records))
	}
}

func TestCorruptAtTargetsOneByte(t *testing.T) {
	dir := t.TempDir()
	d := New(3)
	w, _ := openWAL(t, dir, d)
	appendDurable(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("segments: %v %d", err, len(ents))
	}
	// Damage an early record's payload: recovery must refuse (mid-log).
	if err := d.CorruptAt(filepath.Join(dir, ents[0].Name()), 30); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, _, err = wal.Open(wal.Options{Dir: dir, FS: d})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open = %v, want ErrCorrupt", err)
	}
}

func TestCrashedDiskRefusesOps(t *testing.T) {
	dir := t.TempDir()
	d := New(1)
	w, _ := openWAL(t, dir, d)
	if err := d.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("append on crashed disk succeeded")
	}
	_ = w.Close()
	if _, err := d.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open = %v, want ErrCrashed", err)
	}
	d.PowerOn()
	w2, _ := openWAL(t, dir, d)
	defer w2.Close()
	appendDurable(t, w2, 1)
}

func TestCountsSeeWritesAndSyncs(t *testing.T) {
	d := New(8)
	w, _ := openWAL(t, t.TempDir(), d)
	defer w.Close()
	appendDurable(t, w, 5)
	writes, syncs := d.Counts()
	if writes == 0 || syncs == 0 {
		t.Fatalf("counts = %d writes / %d syncs, want both > 0", writes, syncs)
	}
}
