// Package faultdisk is a deterministic storage fault injector: a wal.FS
// that passes every file operation through to the real filesystem while a
// seeded script decides what to sabotage. It is the storage twin of
// internal/faultnet — all randomness flows from one seeded rand.Rand, so
// any failing schedule replays exactly from its seed.
//
// The disk tracks, per file, how many bytes have been written and how many
// are covered by a successful fsync. Crash() then models power loss: every
// file is truncated back to its synced size plus a seeded torn fragment of
// the unsynced tail — exactly the state a real disk may expose after the
// plug is pulled mid-write. Scriptable faults:
//
//   - FailSyncs(n): the next n Sync calls return an error (the WAL must
//     treat this as a sticky durability loss — fsyncgate semantics).
//   - LoseSyncs(on): Sync returns nil but durability is NOT recorded, so a
//     later Crash() still drops the data — a lying disk.
//   - SetBitFlip(p): each read byte is independently flipped with
//     probability p (checksum validation must catch it).
//   - SetShortRead(p): each Read returns a truncated count with
//     probability p (framing must tolerate partial reads).
//   - CorruptAt(path, off): flip one byte on disk right now — targeted
//     mid-log corruption for recovery tests.
//
// Faults apply only to files opened through the Disk; the test owns the
// real directory underneath.
package faultdisk

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"

	"dmv/internal/wal"
)

// ErrCrashed reports an operation on a handle or disk that crashed.
var ErrCrashed = errors.New("faultdisk: disk crashed")

// ErrSyncFailed is the scripted error returned by a failed fsync.
var ErrSyncFailed = errors.New("faultdisk: injected fsync failure")

// fileState tracks durability per path. Both fields are read and written
// only under the owning Disk's mu (a cross-struct guard the `guarded by`
// annotation cannot name).
type fileState struct {
	size   int64 // under Disk.mu; bytes written to the file
	synced int64 // under Disk.mu; bytes covered by a successful, honest fsync
}

// Disk is a wal.FS with scriptable, seeded storage faults. Safe for
// concurrent use.
type Disk struct {
	mu        sync.Mutex
	rng       *rand.Rand            // guarded by mu; sole randomness source
	files     map[string]*fileState // guarded by mu; path -> durability state
	failSyncs int                   // guarded by mu; Syncs left to fail
	loseSyncs bool                  // guarded by mu; Syncs lie (nil but not durable)
	bitFlipP  float64               // guarded by mu; per-byte read corruption probability
	shortP    float64               // guarded by mu; per-call short-read probability
	crashed   bool                  // guarded by mu; post-crash, pre-PowerOn
	syncs     int                   // guarded by mu; honest Syncs observed
	writes    int                   // guarded by mu; Write calls observed
}

// New returns a Disk whose faults are driven by the given seed.
func New(seed int64) *Disk {
	return &Disk{
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*fileState),
	}
}

// FailSyncs makes the next n Sync calls fail with ErrSyncFailed.
func (d *Disk) FailSyncs(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failSyncs = n
}

// LoseSyncs toggles lying fsyncs: Sync returns nil without durability.
func (d *Disk) LoseSyncs(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loseSyncs = on
}

// SetBitFlip sets the per-byte probability that a read byte is flipped.
func (d *Disk) SetBitFlip(p float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bitFlipP = p
}

// SetShortRead sets the per-call probability that a Read is truncated.
func (d *Disk) SetShortRead(p float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shortP = p
}

// Counts returns how many Write calls and honest Sync calls the disk has
// seen — group-commit tests assert syncs « writes.
func (d *Disk) Counts() (writes, syncs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.syncs
}

// CorruptAt flips one bit of the byte at off in path, on the real disk,
// bypassing the fault model — targeted mid-log corruption.
func (d *Disk) CorruptAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x40
	_, err = f.WriteAt(b[:], off)
	return err
}

// Crash models power loss: every tracked file is truncated to its synced
// size plus a seeded fragment of the unsynced tail (a torn write), and all
// handles plus the disk itself start failing until PowerOn. The WAL being
// tested must be discarded — like a real crash, in-memory state is gone.
func (d *Disk) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.crashed = true
	for path, st := range d.files {
		keep := st.synced
		if st.size > st.synced {
			// A torn fragment of the unsynced suffix may have reached the
			// platter; its length comes from the seed.
			keep += d.rng.Int63n(st.size - st.synced + 1)
		}
		if err := os.Truncate(path, keep); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("faultdisk: crash-truncate %s: %w", path, err)
		}
	}
	return nil
}

// PowerOn clears the crashed state so a fresh WAL can reopen the files.
// Durability tracking restarts from whatever is on disk.
func (d *Disk) PowerOn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.files = make(map[string]*fileState)
}

// OpenFile implements wal.FS.
func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return nil, ErrCrashed
	}
	d.mu.Unlock()
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d.mu.Lock()
	fs, ok := d.files[name]
	if !ok {
		// Preexisting bytes survived earlier incarnations; treat them as
		// durable so Crash only threatens what this run wrote.
		fs = &fileState{size: st.Size(), synced: st.Size()}
		d.files[name] = fs
	}
	if flag&os.O_TRUNC != 0 {
		fs.size, fs.synced = 0, 0
	}
	d.mu.Unlock()
	return &file{d: d, f: f, path: name, append: flag&os.O_APPEND != 0}, nil
}

// ReadDir implements wal.FS.
func (d *Disk) ReadDir(dir string) ([]string, error) {
	if d.isCrashed() {
		return nil, ErrCrashed
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// Remove implements wal.FS.
func (d *Disk) Remove(name string) error {
	if d.isCrashed() {
		return ErrCrashed
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	d.mu.Lock()
	delete(d.files, name)
	d.mu.Unlock()
	return nil
}

// MkdirAll implements wal.FS.
func (d *Disk) MkdirAll(dir string, perm os.FileMode) error {
	if d.isCrashed() {
		return ErrCrashed
	}
	return os.MkdirAll(dir, perm)
}

// Rename implements wal.FS.
func (d *Disk) Rename(oldpath, newpath string) error {
	if d.isCrashed() {
		return ErrCrashed
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	d.mu.Lock()
	if st, ok := d.files[oldpath]; ok {
		delete(d.files, oldpath)
		d.files[newpath] = st
	}
	d.mu.Unlock()
	return nil
}

func (d *Disk) isCrashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// file wraps one *os.File with the Disk's fault script.
type file struct {
	d      *Disk
	f      *os.File
	path   string
	append bool
}

// Read implements wal.File, injecting seeded bit flips and short reads.
func (fl *file) Read(p []byte) (int, error) {
	d := fl.d
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	short := d.shortP > 0 && len(p) > 1 && d.rng.Float64() < d.shortP
	var cut int
	if short {
		cut = 1 + d.rng.Intn(len(p)-1)
	}
	d.mu.Unlock()
	if short {
		p = p[:cut]
	}
	n, err := fl.f.Read(p)
	if n > 0 {
		d.mu.Lock()
		if d.bitFlipP > 0 {
			for i := 0; i < n; i++ {
				if d.rng.Float64() < d.bitFlipP {
					p[i] ^= 1 << uint(d.rng.Intn(8))
				}
			}
		}
		d.mu.Unlock()
	}
	return n, err
}

// Write implements wal.File. Bytes land in the OS file (page cache) but
// count as volatile until an honest Sync covers them.
func (fl *file) Write(p []byte) (int, error) {
	d := fl.d
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	d.writes++
	d.mu.Unlock()
	n, err := fl.f.Write(p)
	if n > 0 {
		d.mu.Lock()
		if st, ok := d.files[fl.path]; ok {
			if fl.append {
				st.size += int64(n)
			} else if pos, perr := fl.f.Seek(0, io.SeekCurrent); perr == nil && pos > st.size {
				st.size = pos
			}
		}
		d.mu.Unlock()
	}
	return n, err
}

// Sync implements wal.File, honoring FailSyncs and LoseSyncs scripts.
func (fl *file) Sync() error {
	d := fl.d
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	if d.failSyncs > 0 {
		d.failSyncs--
		d.mu.Unlock()
		return ErrSyncFailed
	}
	if d.loseSyncs {
		d.mu.Unlock()
		return nil // lie: report durable, record nothing
	}
	d.mu.Unlock()
	if err := fl.f.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	if st, ok := d.files[fl.path]; ok {
		st.synced = st.size
	}
	d.syncs++
	d.mu.Unlock()
	return nil
}

// Truncate implements wal.File.
func (fl *file) Truncate(size int64) error {
	d := fl.d
	if d.isCrashed() {
		return ErrCrashed
	}
	if err := fl.f.Truncate(size); err != nil {
		return err
	}
	d.mu.Lock()
	if st, ok := d.files[fl.path]; ok {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	d.mu.Unlock()
	return nil
}

// Close implements wal.File. Closing is allowed after a crash (the WAL's
// shutdown path closes handles); the data fate was already decided.
func (fl *file) Close() error { return fl.f.Close() }
