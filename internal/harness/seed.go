package harness

// DeriveSeed maps a root seed and a scenario name to a stable per-scenario
// seed. The bench subsystem derives every scenario's seed from one
// user-supplied root so that (a) two runs with the same root seed plan the
// identical seed set — the determinism the smoke-mode test asserts — and
// (b) scenarios never share a seed, which would correlate their random
// streams. FNV-1a folds the name, splitmix64 decorrelates the result; both
// are fixed algorithms, so derived seeds are portable across hosts and Go
// versions.
func DeriveSeed(root int64, name string) int64 {
	// FNV-1a over the scenario name.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// splitmix64 finalizer over root ⊕ name-hash.
	z := uint64(root) ^ h
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Seeds of 0 mean "use the default" to several consumers (harness.Run,
	// transport backoff); avoid handing one out.
	if z == 0 {
		z = 1
	}
	return int64(z)
}
