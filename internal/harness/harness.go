package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/tpcw"
)

// Point is one timeline bucket.
type Point struct {
	T          float64 // seconds since measurement start
	Throughput float64 // interactions per second (WIPS)
	AvgLatency float64 // milliseconds
	Errors     int64
}

// Timeline accumulates windowed throughput/latency, the measurement behind
// every fail-over figure (the paper averages over 20-second intervals; the
// compressed-time runs here use sub-second windows).
type Timeline struct {
	mu      sync.Mutex
	start   time.Time
	window  time.Duration
	buckets []bucket
}

type bucket struct {
	count   int64
	errs    int64
	latSumN int64 // latency sum in nanoseconds
}

// NewTimeline starts a timeline with the given bucket width.
func NewTimeline(window time.Duration) *Timeline {
	return &Timeline{start: time.Now(), window: window}
}

// Record adds one completed interaction.
func (tl *Timeline) Record(lat time.Duration, failed bool) {
	idx := int(time.Since(tl.start) / tl.window)
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for idx >= len(tl.buckets) {
		tl.buckets = append(tl.buckets, bucket{})
	}
	b := &tl.buckets[idx]
	b.count++
	b.latSumN += int64(lat)
	if failed {
		b.errs++
	}
}

// Series renders the buckets.
func (tl *Timeline) Series() []Point {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Point, len(tl.buckets))
	sec := tl.window.Seconds()
	for i, b := range tl.buckets {
		p := Point{T: float64(i) * sec, Errors: b.errs}
		p.Throughput = float64(b.count) / sec
		if b.count > 0 {
			p.AvgLatency = float64(b.latSumN) / float64(b.count) / 1e6
		}
		out[i] = p
	}
	return out
}

// RunConfig drives one closed-loop TPC-W run.
type RunConfig struct {
	Workload *tpcw.Workload
	Mix      tpcw.Mix
	Clients  int
	// Duration is the measured period; Warmup before it is discarded.
	Duration time.Duration
	Warmup   time.Duration
	// Window is the timeline bucket width (default Duration/40, min 50ms).
	Window time.Duration
	Seed   int64
	// ThinkTime between interactions (0 = closed loop at full speed).
	ThinkTime time.Duration
	// OnTick, if non-nil, is invoked once per client iteration (fault
	// injection scripting hooks poll elapsed time from it).
	OnTick func(elapsed time.Duration)
	// Clock paces the warmup and measurement phases (nil = RealClock).
	// Injecting a test clock keeps harness pacing out of the chaos
	// schedule's entropy (see the detrand analyzer).
	Clock Clock
}

// InteractionStat aggregates one interaction type over a run.
type InteractionStat struct {
	Count      int64
	Errors     int64
	AvgLatency time.Duration
}

// RunResult summarizes one run.
type RunResult struct {
	WIPS       float64 // throughput over the measured period
	AvgLatency time.Duration
	P95Latency time.Duration
	Errors     int64
	Total      int64
	Timeline   *Timeline
	Elapsed    time.Duration
	// ByInteraction breaks the measured period down per TPC-W interaction.
	ByInteraction map[string]InteractionStat
}

// Run executes the closed-loop client emulation.
func Run(cfg RunConfig) *RunResult {
	if cfg.Window <= 0 {
		cfg.Window = cfg.Duration / 40
		if cfg.Window < 50*time.Millisecond {
			cfg.Window = 50 * time.Millisecond
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	type iStat struct {
		count, errs, latSum int64
	}
	var (
		total, errs  atomic.Int64
		latSum       atomic.Int64
		samplesMu    sync.Mutex
		samples      []time.Duration
		perIx        = map[tpcw.Interaction]*iStat{}
		perIxMu      sync.Mutex
		stop         = make(chan struct{})
		tl           *Timeline
		measureStart time.Time
	)
	start := time.Now()
	var wg sync.WaitGroup
	measuring := atomic.Bool{}
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := cfg.Workload.NewSession(cfg.Seed + int64(c)*7919)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cfg.OnTick != nil {
					cfg.OnTick(time.Since(start))
				}
				it := cfg.Mix.Pick(sess.R)
				t0 := time.Now()
				err := cfg.Workload.Do(sess, it)
				lat := time.Since(t0)
				if measuring.Load() {
					total.Add(1)
					latSum.Add(int64(lat))
					if err != nil {
						errs.Add(1)
					}
					if tl != nil {
						tl.Record(lat, err != nil)
					}
					perIxMu.Lock()
					st := perIx[it]
					if st == nil {
						st = &iStat{}
						perIx[it] = st
					}
					st.count++
					st.latSum += int64(lat)
					if err != nil {
						st.errs++
					}
					perIxMu.Unlock()
					samplesMu.Lock()
					if len(samples) < 100000 {
						samples = append(samples, lat)
					}
					samplesMu.Unlock()
				}
				if cfg.ThinkTime > 0 {
					select {
					case <-stop:
						return
					case <-time.After(cfg.ThinkTime):
					}
				}
			}
		}(c)
	}
	if cfg.Warmup > 0 {
		cfg.Clock.Sleep(cfg.Warmup)
	}
	tl = NewTimeline(cfg.Window)
	measureStart = time.Now()
	measuring.Store(true)
	cfg.Clock.Sleep(cfg.Duration)
	measuring.Store(false)
	close(stop)
	wg.Wait()
	elapsed := time.Since(measureStart)

	res := &RunResult{
		Total:         total.Load(),
		Errors:        errs.Load(),
		Timeline:      tl,
		Elapsed:       elapsed,
		ByInteraction: make(map[string]InteractionStat, len(perIx)),
	}
	for it, st := range perIx {
		out := InteractionStat{Count: st.count, Errors: st.errs}
		if st.count > 0 {
			out.AvgLatency = time.Duration(st.latSum / st.count)
		}
		res.ByInteraction[it.String()] = out
	}
	if res.Total > 0 {
		res.WIPS = float64(res.Total) / elapsed.Seconds()
		res.AvgLatency = time.Duration(latSum.Load() / res.Total)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if len(samples) > 0 {
		res.P95Latency = samples[int(float64(len(samples))*0.95)]
	}
	return res
}

// StepRamp runs the workload with increasing client counts (the paper's
// step-function from 100 to 1000 clients) and returns the peak WIPS and the
// client count achieving it.
func StepRamp(cfg RunConfig, steps []int) (peak float64, atClients int, results []*RunResult) {
	for _, n := range steps {
		c := cfg
		c.Clients = n
		r := Run(c)
		results = append(results, r)
		if r.WIPS > peak {
			peak, atClients = r.WIPS, n
		}
	}
	return peak, atClients, results
}

// --- reporting ----------------------------------------------------------------

// WriteCSV emits a timeline as CSV.
func WriteCSV(w io.Writer, series []Point) error {
	if _, err := fmt.Fprintln(w, "t_sec,wips,avg_latency_ms,errors"); err != nil {
		return err
	}
	for _, p := range series {
		if _, err := fmt.Fprintf(w, "%.2f,%.2f,%.3f,%d\n", p.T, p.Throughput, p.AvgLatency, p.Errors); err != nil {
			return err
		}
	}
	return nil
}

// AsciiChart renders a throughput timeline as a fixed-width terminal chart,
// the report format of the figure binaries.
func AsciiChart(title string, series []Point, height int) string {
	if height <= 0 {
		height = 12
	}
	var maxV float64
	for _, p := range series {
		if p.Throughput > maxV {
			maxV = p.Throughput
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (peak %.1f WIPS)\n", title, maxV)
	cols := len(series)
	for row := height; row >= 1; row-- {
		threshold := maxV * float64(row) / float64(height)
		fmt.Fprintf(&b, "%8.1f |", threshold)
		for c := 0; c < cols; c++ {
			if series[c].Throughput >= threshold-1e-9 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("         +")
	b.WriteString(strings.Repeat("-", cols))
	b.WriteByte('\n')
	if cols > 0 {
		b.WriteString(fmt.Sprintf("          0s%sto %.1fs\n", strings.Repeat(" ", max(0, cols-12)), series[cols-1].T))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RecoveryTime scans a timeline after a fault at tFault and returns how long
// throughput stayed below frac*baseline — the "time to restore operation at
// peak performance" metric of Section 6.3. Throughput is smoothed with a
// 4-bucket rolling mean so single-bucket noise neither hides a sustained
// degradation nor turns a seamless fail-over into a long recovery; the
// reported time is when the smoothed series last sat below the threshold.
func RecoveryTime(series []Point, window time.Duration, tFault time.Duration, baseline, frac float64) time.Duration {
	const smooth = 4
	threshold := baseline * frac
	faultIdx := int(tFault / window)
	if faultIdx >= len(series) {
		return 0
	}
	rolling := func(i int) float64 {
		sum, n := 0.0, 0
		for j := i; j < i+smooth && j < len(series); j++ {
			sum += series[j].Throughput
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	last := -1
	for i := faultIdx; i < len(series); i++ {
		if rolling(i) < threshold {
			last = i
		}
	}
	if last < 0 {
		return 0 // never degraded below the threshold
	}
	return time.Duration(last+1-faultIdx) * window
}

// Mean computes the mean throughput of a timeline slice [from, to).
func Mean(series []Point, window time.Duration, from, to time.Duration) float64 {
	i0, i1 := int(from/window), int(to/window)
	if i1 > len(series) {
		i1 = len(series)
	}
	if i0 >= i1 {
		return 0
	}
	sum := 0.0
	for i := i0; i < i1; i++ {
		sum += series[i].Throughput
	}
	return sum / float64(i1-i0)
}

// FmtDur renders a duration rounded for reports.
func FmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return d.String()
	}
}

// Speedup formats a ratio guarding against division by zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
