package harness

import "testing"

// TestDeriveSeedStable pins the derivation so recorded BENCH_*.json seeds
// stay reproducible across releases: changing the hash silently invalidates
// every committed baseline.
func TestDeriveSeedStable(t *testing.T) {
	if a, b := DeriveSeed(7, "wal-fsync"), DeriveSeed(7, "wal-fsync"); a != b {
		t.Errorf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	if DeriveSeed(7, "wal-fsync") == DeriveSeed(7, "transport-rpc") {
		t.Error("distinct names derived the same seed")
	}
	if DeriveSeed(7, "wal-fsync") == DeriveSeed(8, "wal-fsync") {
		t.Error("distinct roots derived the same seed")
	}
	for _, name := range []string{"", "a", "tpcw-scaling"} {
		if DeriveSeed(0, name) == 0 {
			t.Errorf("DeriveSeed(0, %q) = 0; the zero seed is reserved", name)
		}
	}
}
