package harness

import (
	"testing"
	"time"

	"dmv/internal/cluster"
	"dmv/internal/innodb"
	"dmv/internal/tpcw"
)

func newDMVCluster(t *testing.T, slaves, spares int) *cluster.Cluster {
	t.Helper()
	scale := tpcw.SmallScale()
	c, err := cluster.New(cluster.Config{
		Slaves:     slaves,
		Spares:     spares,
		SchemaDDL:  tpcw.SchemaDDL(),
		Load:       scale.Load,
		MaxRetries: 20,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestAllInteractionsOnDMV executes every TPC-W interaction at least once
// against the replicated tier and checks it completes without error.
func TestAllInteractionsOnDMV(t *testing.T) {
	c := newDMVCluster(t, 2, 0)
	w := tpcw.NewWorkload(DMVStore{C: c}, tpcw.SmallScale())
	s := w.NewSession(1)
	for i := tpcw.Home; i <= tpcw.AdminConfirm; i++ {
		// ShoppingCart first so BuyConfirm has a cart sometimes; the order
		// here covers both the cart-full and cart-empty paths across runs.
		if err := w.Do(s, i); err != nil {
			t.Fatalf("interaction %s: %v", i, err)
		}
	}
	// Repeat the order-creating pair to grow state.
	for k := 0; k < 10; k++ {
		if err := w.Do(s, tpcw.ShoppingCart); err != nil {
			t.Fatalf("cart: %v", err)
		}
		if err := w.Do(s, tpcw.BuyConfirm); err != nil {
			t.Fatalf("buy: %v", err)
		}
		if err := w.Do(s, tpcw.BestSellers); err != nil {
			t.Fatalf("bestsellers: %v", err)
		}
	}
}

// TestAllInteractionsOnInnoDB runs the same workload against the on-disk
// baseline, proving the shared interaction code drives both tiers.
func TestAllInteractionsOnInnoDB(t *testing.T) {
	scale := tpcw.SmallScale()
	db, err := innodb.Open("inno", innodb.Config{
		Costs: innodb.DefaultCosts(),
	}, tpcw.SchemaDDL(), scale.Load)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w := tpcw.NewWorkload(InnoDBStore{DB: db}, scale)
	s := w.NewSession(2)
	for i := tpcw.Home; i <= tpcw.AdminConfirm; i++ {
		if err := w.Do(s, i); err != nil {
			t.Fatalf("interaction %s: %v", i, err)
		}
	}
}

// TestMixUpdateFractions asserts the three mixes match the paper's
// characterization of write intensity (5% / 20% / 50%).
func TestMixUpdateFractions(t *testing.T) {
	cases := []struct {
		mix  tpcw.Mix
		want float64
	}{
		{tpcw.BrowsingMix, 0.05},
		{tpcw.ShoppingMix, 0.20},
		{tpcw.OrderingMix, 0.50},
	}
	for _, tc := range cases {
		got := tc.mix.UpdateFraction()
		if got < tc.want-0.01 || got > tc.want+0.01 {
			t.Errorf("%s update fraction = %.3f, want %.2f", tc.mix.Name, got, tc.want)
		}
	}
}

// TestClosedLoopRun drives the emulator briefly and sanity-checks metrics.
func TestClosedLoopRun(t *testing.T) {
	c := newDMVCluster(t, 2, 0)
	w := tpcw.NewWorkload(DMVStore{C: c}, tpcw.SmallScale())
	res := Run(RunConfig{
		Workload: w,
		Mix:      tpcw.ShoppingMix,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Window:   50 * time.Millisecond,
	})
	if res.Total == 0 {
		t.Fatal("no interactions completed")
	}
	if res.Errors > res.Total/10 {
		t.Fatalf("too many errors: %d of %d", res.Errors, res.Total)
	}
	if res.WIPS <= 0 {
		t.Fatalf("WIPS = %v", res.WIPS)
	}
	if len(res.Timeline.Series()) == 0 {
		t.Fatal("empty timeline")
	}
}

// TestInnoDBTierWriteAllReadOne checks the baseline tier keeps replicas
// consistent and fails over onto the spare by binlog replay.
func TestInnoDBTierWriteAllReadOne(t *testing.T) {
	scale := tpcw.SmallScale()
	tier, err := innodb.NewTier(innodb.TierConfig{
		Actives:   2,
		WithSpare: true,
		Heartbeat: 5 * time.Millisecond,
		DB:        innodb.Config{}, // zero costs: logic-only test
		DDL:       tpcw.SchemaDDL(),
		Load:      scale.Load,
	})
	if err != nil {
		t.Fatalf("tier: %v", err)
	}
	t.Cleanup(tier.Close)
	w := tpcw.NewWorkload(InnoDBTierStore{T: tier}, scale)
	s := w.NewSession(3)
	for k := 0; k < 10; k++ {
		if err := w.Do(s, tpcw.ShoppingCart); err != nil {
			t.Fatalf("cart: %v", err)
		}
		if err := w.Do(s, tpcw.BuyConfirm); err != nil {
			t.Fatalf("buy: %v", err)
		}
	}
	tier.KillActive(0)
	deadline := time.Now().Add(2 * time.Second)
	for tier.Actives() < 2 && time.Now().Before(deadline) {
		RealClock{}.Sleep(5 * time.Millisecond)
	}
	if tier.Actives() != 2 {
		t.Fatalf("actives after failover = %d, want 2 (spare promoted)", tier.Actives())
	}
	stages := tier.Stages()
	if len(stages) != 1 || stages[0].Records == 0 {
		t.Fatalf("failover stages = %+v, want one replay with records", stages)
	}
	// The tier still serves the workload.
	for k := 0; k < 5; k++ {
		if err := w.Do(s, tpcw.BestSellers); err != nil {
			t.Fatalf("post-failover read: %v", err)
		}
		if err := w.Do(s, tpcw.BuyConfirm); err != nil {
			t.Fatalf("post-failover write: %v", err)
		}
	}
}

// TestRecoveryTimeMetric checks the timeline analysis helper.
func TestRecoveryTimeMetric(t *testing.T) {
	window := 100 * time.Millisecond
	series := []Point{
		{Throughput: 100}, {Throughput: 100}, // healthy
		{Throughput: 20}, {Throughput: 30}, {Throughput: 40}, // dip after fault
		{Throughput: 95}, {Throughput: 98}, {Throughput: 97}, // recovered
	}
	rec := RecoveryTime(series, window, 200*time.Millisecond, 100, 0.9)
	if rec != 300*time.Millisecond {
		t.Fatalf("recovery time = %v, want 300ms", rec)
	}
	if m := Mean(series, window, 0, 200*time.Millisecond); m != 100 {
		t.Fatalf("mean = %v, want 100", m)
	}
}
