package harness

import "time"

// Clock is the injectable time source the harness paces itself with. The
// detrand analyzer bans bare time.Sleep in the fault-injection and chaos
// packages; threading a Clock keeps every pause attributable to one
// injection point, so a deterministic test clock can replace wall time
// without touching call sites.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall-clock implementation and the single blessed
// time.Sleep in the seeded-determinism scope.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	time.Sleep(d) //dmv:ignore(detrand) the one blessed wall-clock sleep: every other pause must route through an injectable Clock
}
