// Package harness drives the paper's experiments: it adapts the database
// tiers (DMV cluster, stand-alone on-disk database, replicated InnoDB
// baseline) to the TPC-W workload interface, emulates closed-loop browser
// clients, records windowed throughput/latency timelines, searches for peak
// throughput under a client step function, and renders CSV and ASCII charts
// for the figure-regeneration binaries.
package harness

import (
	"dmv/internal/cluster"
	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/innodb"
	"dmv/internal/scheduler"
	"dmv/internal/tpcw"
	"dmv/internal/value"
)

// DMVStore adapts a DMV cluster to the TPC-W Store interface.
type DMVStore struct {
	C *cluster.Cluster
}

var _ tpcw.Store = DMVStore{}

// Run implements tpcw.Store.
func (s DMVStore) Run(readOnly bool, tables []string, fn func(tpcw.Querier) error) error {
	return s.C.Run(scheduler.TxnSpec{ReadOnly: readOnly, Tables: tables}, func(tx *scheduler.Txn) error {
		return fn(tx)
	})
}

// InnoDBStore adapts a stand-alone on-disk database (the Figure 3 baseline).
type InnoDBStore struct {
	DB *innodb.DB
}

var _ tpcw.Store = InnoDBStore{}

type dbQuerier struct {
	db *innodb.DB
	tx heap.Txn
}

// Exec implements tpcw.Querier.
func (q dbQuerier) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	return q.db.Exec(q.tx, stmt, params...)
}

// Run implements tpcw.Store.
func (s InnoDBStore) Run(readOnly bool, _ []string, fn func(tpcw.Querier) error) error {
	if readOnly {
		return s.DB.ReadTxn(func(tx heap.Txn) error {
			return fn(dbQuerier{db: s.DB, tx: tx})
		})
	}
	return s.DB.UpdateTxn(func(tx heap.Txn) error {
		return fn(dbQuerier{db: s.DB, tx: tx})
	})
}

// InnoDBTierStore adapts the replicated InnoDB baseline (the Figure 5a/b
// fail-over comparison).
type InnoDBTierStore struct {
	T *innodb.Tier
}

var _ tpcw.Store = InnoDBTierStore{}

// Run implements tpcw.Store.
func (s InnoDBTierStore) Run(readOnly bool, tables []string, fn func(tpcw.Querier) error) error {
	wrap := func(q innodb.Querier) error {
		return fn(querierAdapter{q})
	}
	if readOnly {
		return s.T.Read(wrap)
	}
	return s.T.Update(tables, wrap)
}

type querierAdapter struct {
	q innodb.Querier
}

// Exec implements tpcw.Querier.
func (a querierAdapter) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	return a.q.Exec(stmt, params...)
}
