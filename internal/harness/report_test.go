package harness

import (
	"strings"
	"testing"
	"time"
)

func TestTimelineBucketing(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	tl.Record(time.Millisecond, false)
	tl.Record(3*time.Millisecond, true)
	RealClock{}.Sleep(25 * time.Millisecond)
	tl.Record(2*time.Millisecond, false)
	series := tl.Series()
	if len(series) < 3 {
		t.Fatalf("buckets = %d, want >= 3", len(series))
	}
	if series[0].Errors != 1 {
		t.Fatalf("bucket0 errors = %d", series[0].Errors)
	}
	var total float64
	for _, p := range series {
		total += p.Throughput * 0.01
	}
	if total < 2.9 || total > 3.1 {
		t.Fatalf("total recorded = %.2f, want 3", total)
	}
	// Latency average is in milliseconds.
	if series[0].AvgLatency < 1.9 || series[0].AvgLatency > 2.1 {
		t.Fatalf("avg latency = %.2f ms, want 2", series[0].AvgLatency)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []Point{
		{T: 0, Throughput: 10, AvgLatency: 1.5, Errors: 0},
		{T: 0.25, Throughput: 12, AvgLatency: 2.25, Errors: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "t_sec,wips,avg_latency_ms,errors" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0.25,12.00,2.250,3") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestAsciiChartRendersPeak(t *testing.T) {
	series := []Point{{Throughput: 1}, {Throughput: 5}, {Throughput: 3}}
	chart := AsciiChart("demo", series, 5)
	if !strings.Contains(chart, "demo (peak 5.0 WIPS)") {
		t.Fatalf("chart header missing:\n%s", chart)
	}
	if !strings.Contains(chart, "#") {
		t.Fatal("no bars rendered")
	}
	// Empty series must not panic.
	_ = AsciiChart("empty", nil, 3)
}

func TestMeanRanges(t *testing.T) {
	w := 100 * time.Millisecond
	series := []Point{{Throughput: 10}, {Throughput: 20}, {Throughput: 30}}
	if m := Mean(series, w, 0, 200*time.Millisecond); m != 15 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(series, w, 0, time.Second); m != 20 { // clamped to series end
		t.Fatalf("clamped mean = %v", m)
	}
	if m := Mean(series, w, 500*time.Millisecond, time.Second); m != 0 {
		t.Fatalf("empty-range mean = %v", m)
	}
}

func TestRecoveryTimeNoDip(t *testing.T) {
	w := 100 * time.Millisecond
	flat := []Point{{Throughput: 100}, {Throughput: 99}, {Throughput: 101}, {Throughput: 100}}
	if r := RecoveryTime(flat, w, 100*time.Millisecond, 100, 0.75); r != 0 {
		t.Fatalf("flat series recovery = %v, want 0", r)
	}
	// Sustained degradation to run end counts to the end.
	degraded := []Point{{Throughput: 100}, {Throughput: 10}, {Throughput: 10}, {Throughput: 10}}
	if r := RecoveryTime(degraded, w, 100*time.Millisecond, 100, 0.75); r != 300*time.Millisecond {
		t.Fatalf("sustained recovery = %v, want 300ms", r)
	}
}

func TestStepRampFindsPeak(t *testing.T) {
	// StepRamp's mechanics are covered with a synthetic workload in the
	// experiments package; here just verify Speedup guards.
	if s := Speedup(10, 0); s <= 0 {
		t.Fatalf("speedup with zero base = %v", s)
	}
	if s := Speedup(10, 5); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if FmtDur(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("fmt = %s", FmtDur(1500*time.Millisecond))
	}
	if FmtDur(2500*time.Microsecond) != "2.5ms" {
		t.Fatalf("fmt = %s", FmtDur(2500*time.Microsecond))
	}
}
