package harness

import (
	"container/heap"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/replica"
	"dmv/internal/scheduler"
)

// OpenLoopConfig drives one open-loop (arrival-driven) run: interactions
// arrive on a seeded Poisson process regardless of how many are still in
// flight, the load pattern that actually produces stampedes. A closed loop
// self-throttles — every stalled client is one fewer offering load — so it
// can never push a system past saturation; an open loop keeps offering and
// exposes whether admission control sheds or latency collapses.
type OpenLoopConfig struct {
	// Do runs one interaction. A goroutine is spawned per arrival, so Do
	// must be safe for concurrent use. The per-arrival RNG is derived from
	// Seed and the arrival index.
	Do func(r *rand.Rand) error
	// Rate is the mean offered arrival rate per second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	Seed     int64
	// Burst episodes: every BurstEvery, the arrival rate multiplies by
	// BurstFactor for BurstLen (0 disables bursts). Bursts model the
	// stampede — a flash crowd on top of the base Poisson process.
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
	// Clock paces the arrival process (nil = RealClock).
	Clock Clock
}

// OpenLoopResult summarizes one open-loop run. Latency quantiles cover
// admitted work only — shed arrivals fail in microseconds by design and
// would make the quantiles meaningless.
type OpenLoopResult struct {
	Offered  int64   // arrivals generated
	Done     int64   // completed successfully
	Shed     int64   // fast-rejected by admission control (ErrOverloaded)
	Expired  int64   // abandoned by caller deadline (ErrDeadlineExpired)
	Errors   int64   // other failures
	Goodput  float64 // successful completions per second
	ShedRate float64 // shed / offered
	Elapsed  time.Duration

	AvgLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
}

// burstRate returns the offered rate at elapsed time t.
func burstRate(cfg *OpenLoopConfig, t time.Duration) float64 {
	rate := cfg.Rate
	if cfg.BurstEvery > 0 && cfg.BurstLen > 0 {
		if t%cfg.BurstEvery < cfg.BurstLen {
			f := cfg.BurstFactor
			if f <= 0 {
				f = 4
			}
			rate *= f
		}
	}
	return rate
}

// quantile returns the q-quantile of a sorted duration slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * q)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunOpenLoop executes the arrival-driven client emulation against live
// work. The arrival schedule is fully determined by Seed — the dispatcher
// draws inter-arrival gaps from one seeded RNG on a single goroutine — but
// completions race real concurrency, so only the schedule (not the
// outcome counts) is bit-reproducible here; SimulateOpenLoop is the
// deterministic twin.
func RunOpenLoop(cfg OpenLoopConfig) *OpenLoopResult {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	var (
		offered, done, shed, expired, errCount atomic.Int64
		latSum                                 atomic.Int64
		samplesMu                              sync.Mutex
		samples                                []time.Duration
		wg                                     sync.WaitGroup
	)
	arrivals := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var virtual time.Duration // deterministic arrival schedule position
	for i := int64(0); ; i++ {
		rate := burstRate(&cfg, virtual)
		gap := time.Duration(arrivals.ExpFloat64() / rate * float64(time.Second))
		virtual += gap
		if virtual > cfg.Duration {
			break
		}
		// Pace the wall clock to the virtual schedule; if work dispatch
		// fell behind, fire immediately (open loop never self-throttles).
		if ahead := virtual - time.Since(start); ahead > 0 {
			cfg.Clock.Sleep(ahead)
		}
		offered.Add(1)
		wg.Add(1)
		go func(idx int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + idx*7919))
			t0 := time.Now()
			err := cfg.Do(r)
			lat := time.Since(t0)
			switch {
			case err == nil:
				done.Add(1)
				latSum.Add(int64(lat))
				samplesMu.Lock()
				if len(samples) < 200000 {
					samples = append(samples, lat)
				}
				samplesMu.Unlock()
			case errors.Is(err, scheduler.ErrOverloaded):
				shed.Add(1)
			case errors.Is(err, replica.ErrDeadlineExpired):
				expired.Add(1)
			default:
				errCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &OpenLoopResult{
		Offered: offered.Load(),
		Done:    done.Load(),
		Shed:    shed.Load(),
		Expired: expired.Load(),
		Errors:  errCount.Load(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.Goodput = float64(res.Done) / elapsed.Seconds()
	}
	if res.Offered > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Offered)
	}
	if res.Done > 0 {
		res.AvgLatency = time.Duration(latSum.Load() / res.Done)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.P50Latency = quantile(samples, 0.50)
	res.P95Latency = quantile(samples, 0.95)
	res.P99Latency = quantile(samples, 0.99)
	return res
}

// --- deterministic open-loop simulation ---------------------------------------

// SimConfig parameterizes the discrete-event open-loop simulation: a
// k-server queue with exponential service, a bounded FIFO, per-arrival
// deadlines, and the scheduler's own CoDel shed law. Everything runs in
// virtual time on one goroutine, so the same seed produces bit-identical
// results — the property the determinism test asserts and the reason
// scheduler.CoDel takes explicit timestamps instead of reading the clock.
type SimConfig struct {
	Rate     float64       // mean arrivals per second
	Duration time.Duration // arrival-generation horizon (virtual)
	Seed     int64
	Servers  int           // concurrent service slots (admission Slots)
	Service  time.Duration // mean exponential service time
	QueueCap int           // bounded queue beyond the slots
	// CoDel parameters (defaults mirror scheduler.AdmissionOptions).
	Target   time.Duration
	Interval time.Duration
	// Deadline abandons arrivals still queued this long after arriving
	// (0 = none).
	Deadline time.Duration
	// Burst episodes, as in OpenLoopConfig.
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
}

// SimResult is the deterministic run summary.
type SimResult struct {
	Offered  int64
	Done     int64
	Shed     int64
	Expired  int64
	Goodput  float64 // completions per virtual second of the horizon
	MaxQueue int     // peak queue depth (bounded-memory check)
	ShedOn   int     // CoDel shed-mode entries (hysteresis check)

	AvgLatency time.Duration
	P95Latency time.Duration
}

// simEvent is one scheduled occurrence in virtual time.
type simEvent struct {
	at   time.Duration
	seq  int64 // tie-break: FIFO among simultaneous events
	kind int   // 0 arrival, 1 departure
	arr  time.Duration
}

type simHeap []simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// SimulateOpenLoop runs the open-loop overload model in virtual time.
func SimulateOpenLoop(cfg SimConfig) SimResult {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Servers
	}
	if cfg.Target <= 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := time.Unix(0, 0) // virtual epoch for the CoDel timestamps
	codel := scheduler.CoDel{Target: cfg.Target, Interval: cfg.Interval}

	var (
		res       SimResult
		events    simHeap
		seq       int64
		busy      int
		queue     []time.Duration // arrival times of queued jobs, FIFO
		latencies []time.Duration
	)
	ol := OpenLoopConfig{Rate: cfg.Rate, BurstEvery: cfg.BurstEvery, BurstLen: cfg.BurstLen, BurstFactor: cfg.BurstFactor}
	push := func(ev simEvent) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	drawService := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.Service))
	}
	// Seed the first arrival.
	first := time.Duration(rng.ExpFloat64() / burstRate(&ol, 0) * float64(time.Second))
	if first <= cfg.Duration {
		push(simEvent{at: first, kind: 0})
	}
	grant := func(now time.Duration) {
		for busy < cfg.Servers && len(queue) > 0 {
			arr := queue[0]
			queue = queue[1:]
			if cfg.Deadline > 0 && now-arr > cfg.Deadline {
				res.Expired++
				continue
			}
			wasShedding := codel.Shedding()
			codel.Observe(now-arr, base.Add(now))
			if !wasShedding && codel.Shedding() {
				res.ShedOn++
			}
			busy++
			push(simEvent{at: now + drawService(), kind: 1, arr: arr})
		}
		if len(queue) == 0 && codel.Shedding() {
			codel.OnEmpty(base.Add(now))
		}
	}
	for events.Len() > 0 {
		ev := heap.Pop(&events).(simEvent)
		now := ev.at
		switch ev.kind {
		case 0: // arrival
			res.Offered++
			// Schedule the next arrival first so RNG draw order is a pure
			// function of the arrival sequence.
			gap := time.Duration(rng.ExpFloat64() / burstRate(&ol, now) * float64(time.Second))
			if next := now + gap; next <= cfg.Duration {
				push(simEvent{at: next, kind: 0})
			}
			switch {
			case codel.Shedding():
				res.Shed++
			case busy < cfg.Servers:
				wasShedding := codel.Shedding()
				codel.Observe(0, base.Add(now))
				_ = wasShedding
				busy++
				push(simEvent{at: now + drawService(), kind: 1, arr: now})
			case len(queue) >= cfg.QueueCap:
				res.Shed++
			default:
				queue = append(queue, now)
				if len(queue) > res.MaxQueue {
					res.MaxQueue = len(queue)
				}
			}
		case 1: // departure
			busy--
			res.Done++
			latencies = append(latencies, now-ev.arr)
			grant(now)
		}
	}
	if cfg.Duration > 0 {
		res.Goodput = float64(res.Done) / cfg.Duration.Seconds()
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		res.AvgLatency = sum / time.Duration(len(latencies))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P95Latency = quantile(latencies, 0.95)
	return res
}
