package harness

import (
	"reflect"
	"testing"
	"time"
)

// overloadSim is the shared heavy-traffic configuration: ~2x the service
// capacity of 2 servers at 3ms mean service (~666/s), with bursts and a
// caller deadline — the stampede shape the admission queue exists for.
func overloadSim(seed int64) SimConfig {
	return SimConfig{
		Rate:        1300,
		Duration:    10 * time.Second,
		Seed:        seed,
		Servers:     2,
		Service:     3 * time.Millisecond,
		QueueCap:    8,
		Target:      5 * time.Millisecond,
		Interval:    100 * time.Millisecond,
		Deadline:    500 * time.Millisecond,
		BurstEvery:  4 * time.Second,
		BurstLen:    time.Second,
		BurstFactor: 3,
	}
}

// TestSimulateOpenLoopDeterminism: the simulation is a pure function of its
// seed — two runs of the identical config produce bit-identical results.
// This is the property that lets the overload smoke leg pin exact numbers,
// and it holds only because scheduler.CoDel takes explicit timestamps
// instead of reading the wall clock.
func TestSimulateOpenLoopDeterminism(t *testing.T) {
	a := SimulateOpenLoop(overloadSim(42))
	b := SimulateOpenLoop(overloadSim(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n  a = %+v\n  b = %+v", a, b)
	}
	// A different seed must actually change the trajectory, or the equality
	// above is vacuous.
	c := SimulateOpenLoop(overloadSim(43))
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical results: %+v", a)
	}
}

// TestSimulateOpenLoopOverload: at 2x saturation the model must shed rather
// than collapse — bounded queue, bounded admitted latency, shed mode
// actually engaging, and goodput near capacity.
func TestSimulateOpenLoopOverload(t *testing.T) {
	cfg := overloadSim(42)
	r := SimulateOpenLoop(cfg)
	if r.Offered == 0 || r.Done == 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	if r.Shed == 0 {
		t.Fatalf("2x overload shed nothing: %+v", r)
	}
	if r.ShedOn == 0 {
		t.Fatalf("CoDel shed mode never engaged: %+v", r)
	}
	if r.MaxQueue > cfg.QueueCap {
		t.Fatalf("queue grew past its cap: depth %d > %d", r.MaxQueue, cfg.QueueCap)
	}
	// Bounded admitted latency: p95 stays within queue-cap x service of the
	// service time itself, far under the 500ms caller deadline.
	bound := time.Duration(cfg.QueueCap+1) * cfg.Service * 4
	if r.P95Latency > bound {
		t.Fatalf("admitted p95 %v exceeds bound %v: %+v", r.P95Latency, bound, r)
	}
	// Goodput holds near capacity (2 servers / 3ms = ~666/s) instead of
	// collapsing under the excess offered load.
	capacity := float64(cfg.Servers) / cfg.Service.Seconds()
	if r.Goodput < 0.5*capacity {
		t.Fatalf("goodput %f collapsed below half of capacity %f", r.Goodput, capacity)
	}
}

// TestSimulateOpenLoopLightLoad: well under saturation nothing sheds and
// latency sits near the bare service time.
func TestSimulateOpenLoopLightLoad(t *testing.T) {
	cfg := overloadSim(42)
	cfg.Rate = 100 // ~15% of capacity
	cfg.BurstEvery = 0
	r := SimulateOpenLoop(cfg)
	if r.Shed != 0 {
		t.Fatalf("light load shed %d arrivals: %+v", r.Shed, r)
	}
	if r.Expired != 0 {
		t.Fatalf("light load expired %d arrivals: %+v", r.Expired, r)
	}
	if r.ShedOn != 0 {
		t.Fatalf("CoDel engaged under light load: %+v", r)
	}
	if r.P95Latency > 10*cfg.Service {
		t.Fatalf("light-load p95 %v is not near the service time %v", r.P95Latency, cfg.Service)
	}
}
