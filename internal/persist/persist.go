// Package persist implements the on-disk persistence tier of Section 4.6:
// the scheduler logs the update queries of every committed transaction
// (a lightweight insert into a query log) and returns to the client without
// waiting for the on-disk databases; an asynchronous applier executes the
// batched queries on one or more on-disk back-ends, and a stale back-end
// recovers by replaying the missing suffix of the log.
//
// The query log is crash-durable when the tier is opened over a WAL
// directory (see durable.go): OnCommit appends the record to the WAL and —
// under the "always" fsync policy — group-commits it before returning, so
// an acknowledged transaction survives a process crash. Checkpoint() cuts
// per-backend engine checkpoints and truncates both the WAL segments and
// the in-memory log prefix they make redundant, bounding disk and memory.
//
// Log positions are global record indexes that survive truncation: the
// in-memory slice t.log holds records [t.base, t.base+len(t.log)), and a
// backend's applied mark counts from the beginning of history.
package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
	"dmv/internal/wal"
)

// ErrClosed reports use of a closed tier.
var ErrClosed = errors.New("persist: tier closed")

// ErrLogTruncated reports a Recover target whose applied mark lies below
// the truncated log prefix: replay alone cannot rebuild it — restore the
// backend from a checkpoint manifest (RestoreBackend) first.
var ErrLogTruncated = errors.New("persist: backend predates the truncated log prefix")

// Backend is one on-disk database: an engine whose options charge the
// synthetic disk costs, plus the disk itself (for replay-read charging).
type Backend struct {
	ID   string
	Eng  *heap.Engine
	Disk *simdisk.Disk

	// applyMu serializes writers of the backend engine (applier, Recover,
	// Checkpoint). Holding it quiesces the engine, so a fuzzy checkpoint
	// taken under it is complete — no dirty pages to skip.
	applyMu sync.Mutex

	mu          sync.Mutex
	applied     int  // guarded by mu; log prefix (global index) already executed here
	quarantined bool // guarded by mu; an apply error froze this backend pending Recover
}

// Applied returns how many committed transactions this backend has executed.
func (b *Backend) Applied() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.applied
}

// Quarantined reports whether an apply error has frozen this backend.
func (b *Backend) Quarantined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.quarantined
}

// Tier is the persistence tier: a query log plus asynchronous appliers.
type Tier struct {
	mu     sync.Mutex
	cond   *sync.Cond               // guarded by mu; signals log growth and apply progress
	log    []scheduler.CommitRecord // guarded by mu; records [base, base+len)
	base   int                      // guarded by mu; global index of log[0]
	closed bool                     // guarded by mu

	// stmtMu guards only the prepared-statement cache; it is ordered below
	// Backend.applyMu because applyOne parses under the apply lock.
	stmtMu sync.Mutex
	stmts  map[string]*exec.Prepared // guarded by stmtMu

	backs   []*Backend
	done    chan struct{}
	onError func(error)
	flight  *flight.Recorder // nil-safe anomaly trigger sink

	wal       *wal.WAL // nil for a memory-only tier
	dir       string
	fs        wal.FS
	ckptEvery int // auto-checkpoint once every backend is this far past base (0 = manual)

	reg         *obs.Registry
	logged      *obs.Counter // committed transactions appended to the query log
	applied     *obs.Counter // transactions executed on a backend by the applier
	replayed    *obs.Counter // transactions replayed during backend recovery
	errs        *obs.Counter // apply/durability errors
	truncations *obs.Counter // checkpoint-coordinated truncations completed
}

// Options configure a tier.
type Options struct {
	// Backends are the on-disk databases (the paper uses "a few, e.g. two").
	Backends []*Backend
	// Log, if non-nil, makes the tier crash-durable: recovered records seed
	// the in-memory log (at the recovered base offset) and OnCommit appends
	// to the WAL before acknowledging. The tier takes ownership and closes
	// the WAL in Close.
	Log *RecoveredLog
	// CheckpointEvery, when > 0 with a durable log, auto-checkpoints once
	// every backend has applied this many records past the current base.
	CheckpointEvery int
	// OnError, if non-nil, receives apply and durability errors. An apply
	// error also quarantines the failing backend: its applied mark freezes
	// (holding the log from truncation) until Recover succeeds.
	OnError func(error)
	// Obs, if non-nil, receives the tier's counters plus a backlog gauge
	// (log entries not yet applied by the slowest backend) and per-backend
	// quarantine gauges.
	Obs *obs.Registry
	// Flight, if non-nil, receives a backend-quarantine anomaly trigger
	// whenever an apply error (or a base mismatch at construction) freezes
	// a backend, enqueueing a cluster-wide flight dump.
	Flight *flight.Recorder
}

// NewTier starts the tier's applier.
func NewTier(opts Options) *Tier {
	t := &Tier{
		stmts:     make(map[string]*exec.Prepared, 64),
		backs:     opts.Backends,
		done:      make(chan struct{}),
		onError:   opts.OnError,
		flight:    opts.Flight,
		ckptEvery: opts.CheckpointEvery,
	}
	if l := opts.Log; l != nil {
		t.wal = l.WAL
		t.dir = l.WAL.Dir()
		t.fs = l.WAL.FS()
		t.base = l.Base
		t.log = l.Records
	}
	if reg := opts.Obs; reg != nil {
		t.reg = reg
		t.logged = reg.Counter(obs.PersistLogged)
		t.applied = reg.Counter(obs.PersistApplied)
		t.replayed = reg.Counter(obs.PersistReplayed)
		t.errs = reg.Counter(obs.PersistErrors)
		t.truncations = reg.Counter(obs.PersistTruncations)
		reg.GaugeFunc(obs.PersistBacklog, t.backlog)
		for _, b := range t.backs {
			reg.GaugeFunc(obs.Labeled(obs.PersistQuarantined, "backend", b.ID), quarantineGauge(b))
		}
	}
	t.cond = sync.NewCond(&t.mu)
	// A backend whose applied mark predates the recovered base cannot be
	// caught up by replay; quarantine it immediately so the applier does
	// not index below the log.
	for _, b := range t.backs {
		b.mu.Lock()
		if b.applied < t.base {
			b.quarantined = true
			if t.onError != nil {
				t.onError(fmt.Errorf("persist: backend %s applied %d < log base %d: %w", b.ID, b.applied, t.base, ErrLogTruncated))
			}
			t.flight.Trigger(flight.CauseQuarantine, b.ID, fmt.Sprintf("applied %d below recovered log base %d", b.applied, t.base))
		}
		b.mu.Unlock()
	}
	go t.applier()
	return t
}

func quarantineGauge(b *Backend) func() float64 {
	return func() float64 {
		if b.Quarantined() {
			return 1
		}
		return 0
	}
}

// backlog reports how far the slowest backend trails the query log.
func (t *Tier) backlog() float64 {
	t.mu.Lock()
	logEnd := t.base + len(t.log)
	t.mu.Unlock()
	max := 0
	for _, b := range t.backs {
		if lag := logEnd - b.Applied(); lag > max {
			max = lag
		}
	}
	return float64(max)
}

// OnCommit is the scheduler hook: append to the query log and return. The
// log append is the "lightweight database insert"; the on-disk execution
// happens asynchronously. With a durable log the record is framed into the
// WAL under the same lock that orders the memory log (so disk order equals
// memory order), and under the "always" policy this call group-commits —
// it returns only once an fsync covers the record, so the scheduler's ack
// implies durability.
func (t *Tier) OnCommit(rec scheduler.CommitRecord) {
	var payload []byte
	if t.wal != nil {
		payload = EncodeRecord(rec) // encode outside the lock
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.log = append(t.log, rec)
	var seq uint64
	var walErr error
	if t.wal != nil {
		seq, walErr = t.wal.Append(payload)
	}
	t.logged.Inc()
	t.cond.Broadcast()
	t.mu.Unlock()
	if t.wal != nil && walErr == nil {
		walErr = t.wal.WaitDurable(seq)
	}
	if walErr != nil {
		// The record stays in the memory log (backends must not diverge
		// from what the cluster committed), but its durability is gone;
		// surface the loss loudly.
		t.errs.Inc()
		if t.onError != nil {
			t.onError(fmt.Errorf("persist: wal append: %w", walErr))
		}
	}
}

// LogLen returns the committed-transaction count in the query log since
// the beginning of history (truncated prefix included).
func (t *Tier) LogLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base + len(t.log)
}

// Base returns the global index of the first in-memory log record.
func (t *Tier) Base() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base
}

// Flush blocks until every non-quarantined backend has applied the log as
// of the call. A quarantined backend would block Flush forever (its mark
// is frozen); it is skipped and remains visible via the quarantine gauge.
func (t *Tier) Flush() {
	t.mu.Lock()
	target := t.base + len(t.log)
	t.mu.Unlock()
	for _, b := range t.backs {
		for !b.Quarantined() && b.Applied() < target {
			t.mu.Lock()
			t.cond.Wait()
			t.mu.Unlock()
		}
	}
}

// Close stops the applier and closes the WAL (the log remains readable for
// recovery; a clean Close fsyncs the tail under always/interval policies).
func (t *Tier) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	<-t.done
	if t.wal != nil {
		if err := t.wal.Close(); err != nil && t.onError != nil {
			t.onError(fmt.Errorf("persist: wal close: %w", err))
		}
	}
}

func (t *Tier) applier() {
	defer close(t.done)
	for {
		t.mu.Lock()
		for {
			if t.closed {
				t.mu.Unlock()
				return
			}
			logEnd := t.base + len(t.log)
			progress := false
			for _, b := range t.backs {
				if !b.Quarantined() && b.Applied() < logEnd {
					progress = true
				}
			}
			if progress {
				break
			}
			t.cond.Wait()
		}
		logEnd := t.base + len(t.log)
		t.mu.Unlock()

		for _, b := range t.backs {
			for {
				b.mu.Lock()
				idx, quarantined := b.applied, b.quarantined
				b.mu.Unlock()
				if quarantined || idx >= logEnd {
					break
				}
				t.mu.Lock()
				rec := t.log[idx-t.base]
				t.mu.Unlock()
				b.applyMu.Lock()
				err := t.applyOne(b, rec)
				b.applyMu.Unlock()
				if err != nil {
					// Quarantine: freeze the applied mark so the log keeps
					// every record this backend still needs, and stop
					// touching the backend until Recover clears it.
					// Skipping the record instead would silently diverge
					// the backend from the log forever.
					b.mu.Lock()
					b.quarantined = true
					b.mu.Unlock()
					t.errs.Inc()
					if t.onError != nil {
						t.onError(fmt.Errorf("persist: backend %s txn %d quarantined: %w", b.ID, idx, err))
					}
					t.flight.Trigger(flight.CauseQuarantine, b.ID, fmt.Sprintf("apply error at txn %d: %v", idx, err))
					break
				}
				t.applied.Inc()
				b.mu.Lock()
				b.applied++
				b.mu.Unlock()
			}
		}
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
		t.maybeCheckpoint()
	}
}

// maybeCheckpoint runs an automatic checkpoint when every backend has
// applied CheckpointEvery records past the current base.
func (t *Tier) maybeCheckpoint() {
	if t.ckptEvery <= 0 || t.wal == nil || len(t.backs) == 0 {
		return
	}
	t.mu.Lock()
	base := t.base
	t.mu.Unlock()
	min := -1
	for _, b := range t.backs {
		a := b.Applied()
		if min < 0 || a < min {
			min = a
		}
	}
	if min-base < t.ckptEvery {
		return
	}
	if _, err := t.Checkpoint(); err != nil && t.onError != nil {
		t.onError(fmt.Errorf("persist: auto checkpoint: %w", err))
	}
}

func (t *Tier) prepared(text string) (*exec.Prepared, error) {
	t.stmtMu.Lock()
	p, ok := t.stmts[text]
	t.stmtMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := exec.Prepare(text)
	if err != nil {
		return nil, err
	}
	t.stmtMu.Lock()
	t.stmts[text] = p
	t.stmtMu.Unlock()
	return p, nil
}

// applyOne executes one commit record on a backend. Callers hold
// b.applyMu.
func (t *Tier) applyOne(b *Backend, rec scheduler.CommitRecord) error {
	tx := b.Eng.BeginUpdate()
	for _, s := range rec.Stmts {
		p, err := t.prepared(s.Text)
		if err != nil {
			_ = tx.Rollback()
			return err
		}
		if _, err := p.Exec(tx, s.Params); err != nil {
			_ = tx.Rollback()
			return err
		}
	}
	_, err := tx.Commit(nil)
	return err
}

// Recover brings a stale backend up to date by replaying the missing suffix
// of the query log, charging the backend's replay-read disk cost, and
// clears its quarantine once it has fully caught up. Returns the number of
// transactions replayed. A backend whose applied mark predates the log
// base gets ErrLogTruncated: rebuild it from a checkpoint manifest
// (RestoreBackend) before replaying.
func (t *Tier) Recover(b *Backend) (int, error) {
	t.mu.Lock()
	base := t.base
	logEnd := t.base + len(t.log)
	t.mu.Unlock()
	b.mu.Lock()
	from := b.applied
	b.mu.Unlock()
	if from < base {
		return 0, fmt.Errorf("persist: backend %s applied %d < log base %d: %w", b.ID, from, base, ErrLogTruncated)
	}
	if b.Disk != nil {
		n := 0
		t.mu.Lock()
		for i := from; i < logEnd; i++ {
			n += len(t.log[i-t.base].Stmts)
		}
		t.mu.Unlock()
		b.Disk.ReplayRead(n)
	}
	replayed := 0
	for i := from; i < logEnd; i++ {
		t.mu.Lock()
		if i < t.base {
			// A concurrent checkpoint truncated past our cursor — only
			// possible if another path advanced this backend's mark; the
			// re-read below resyncs.
			curBase := t.base
			t.mu.Unlock()
			return replayed, fmt.Errorf("persist: backend %s replay cursor %d < log base %d: %w", b.ID, i, curBase, ErrLogTruncated)
		}
		rec := t.log[i-t.base]
		t.mu.Unlock()
		b.applyMu.Lock()
		err := t.applyOne(b, rec)
		b.applyMu.Unlock()
		if err != nil {
			t.errs.Inc()
			return replayed, err
		}
		b.mu.Lock()
		b.applied++
		b.mu.Unlock()
		replayed++
		t.replayed.Inc()
	}
	// Caught up (as of the snapshot above): lift the quarantine so the
	// applier resumes; any records committed meanwhile follow normally.
	b.mu.Lock()
	if b.quarantined && b.applied >= logEnd {
		b.quarantined = false
	}
	b.mu.Unlock()
	t.mu.Lock()
	t.cond.Broadcast()
	t.mu.Unlock()
	return replayed, nil
}

// Checkpoint cuts a durable checkpoint of every backend, advances the
// log base to the minimum applied mark, deletes dead WAL segments, and
// prunes the in-memory prefix — the truncation point that keeps both disk
// and memory bounded. Quarantined backends are included in the minimum
// (their frozen mark holds the log until they recover or are rebuilt).
// Returns the new truncation cut. Requires a durable log.
func (t *Tier) Checkpoint() (int, error) {
	if t.wal == nil {
		return 0, errors.New("persist: checkpoint requires a durable log")
	}
	if len(t.backs) == 0 {
		return 0, errors.New("persist: checkpoint requires at least one backend")
	}
	cut := -1
	for _, b := range t.backs {
		// applyMu quiesces this backend: no update transaction is in
		// flight, so the fuzzy checkpoint skips nothing and pairs exactly
		// with the applied mark read under the same hold.
		b.applyMu.Lock()
		b.mu.Lock()
		applied := b.applied
		b.mu.Unlock()
		cp := b.Eng.FuzzyCheckpoint()
		b.applyMu.Unlock()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&BackendCheckpoint{Applied: applied, Checkpoint: cp}); err != nil {
			return 0, fmt.Errorf("persist: encode checkpoint %s: %w", b.ID, err)
		}
		path := filepath.Join(t.dir, "ckpt-"+b.ID+ckptSuffix)
		if err := wal.WriteFileDurable(t.fs, path, buf.Bytes()); err != nil {
			return 0, fmt.Errorf("persist: write checkpoint %s: %w", b.ID, err)
		}
		if cut < 0 || applied < cut {
			cut = applied
		}
	}
	if err := t.wal.TruncateTo(uint64(cut)); err != nil {
		return 0, err
	}
	t.mu.Lock()
	if cut > t.base {
		// Reallocate so the dropped prefix is actually collectable rather
		// than pinned by the backing array.
		t.log = append([]scheduler.CommitRecord(nil), t.log[cut-t.base:]...)
		t.base = cut
	}
	t.mu.Unlock()
	t.truncations.Inc()
	return cut, nil
}

// NewBackend builds an on-disk backend with the given cost model and cache
// capacity, creates the schema, and loads the initial image.
func NewBackend(id string, costs simdisk.CostModel, cacheCap int, ddl []string, load func(*heap.Engine) error) (*Backend, error) {
	disk := simdisk.New(costs, cacheCap)
	eng := heap.NewEngine(heap.Options{
		Observer:    disk,
		CommitDelay: disk.CommitFsync,
	})
	for _, d := range ddl {
		if err := exec.ExecDDL(eng, d); err != nil {
			return nil, fmt.Errorf("backend %s: %w", id, err)
		}
	}
	if load != nil {
		if err := load(eng); err != nil {
			return nil, fmt.Errorf("backend %s load: %w", id, err)
		}
	}
	return &Backend{ID: id, Eng: eng, Disk: disk}, nil
}
