// Package persist implements the on-disk persistence tier of Section 4.6:
// the scheduler logs the update queries of every committed transaction
// (a lightweight insert into a query log) and returns to the client without
// waiting for the on-disk databases; an asynchronous applier executes the
// batched queries on one or more on-disk back-ends, and a stale back-end
// recovers by replaying the missing suffix of the log.
package persist

import (
	"errors"
	"fmt"
	"sync"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
)

// ErrClosed reports use of a closed tier.
var ErrClosed = errors.New("persist: tier closed")

// Backend is one on-disk database: an engine whose options charge the
// synthetic disk costs, plus the disk itself (for replay-read charging).
type Backend struct {
	ID   string
	Eng  *heap.Engine
	Disk *simdisk.Disk

	mu      sync.Mutex
	applied int // log prefix already executed here
}

// Applied returns how many committed transactions this backend has executed.
func (b *Backend) Applied() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.applied
}

// Tier is the persistence tier: a query log plus asynchronous appliers.
type Tier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	log     []scheduler.CommitRecord
	closed  bool
	stmts   map[string]*exec.Prepared
	backs   []*Backend
	done    chan struct{}
	onError func(error)

	logged   *obs.Counter // committed transactions appended to the query log
	applied  *obs.Counter // transactions executed on a backend by the applier
	replayed *obs.Counter // transactions replayed during backend recovery
	errs     *obs.Counter // apply errors (counted and dropped)
}

// Options configure a tier.
type Options struct {
	// Backends are the on-disk databases (the paper uses "a few, e.g. two").
	Backends []*Backend
	// OnError, if non-nil, receives apply errors (they are otherwise
	// counted and dropped: the log retains everything for replay).
	OnError func(error)
	// Obs, if non-nil, receives the tier's counters plus a backlog gauge
	// (log entries not yet applied by the slowest backend).
	Obs *obs.Registry
}

// NewTier starts the tier's applier.
func NewTier(opts Options) *Tier {
	t := &Tier{
		stmts:   make(map[string]*exec.Prepared, 64),
		backs:   opts.Backends,
		done:    make(chan struct{}),
		onError: opts.OnError,
	}
	if reg := opts.Obs; reg != nil {
		t.logged = reg.Counter(obs.PersistLogged)
		t.applied = reg.Counter(obs.PersistApplied)
		t.replayed = reg.Counter(obs.PersistReplayed)
		t.errs = reg.Counter(obs.PersistErrors)
		reg.GaugeFunc(obs.PersistBacklog, t.backlog)
	}
	t.cond = sync.NewCond(&t.mu)
	go t.applier()
	return t
}

// backlog reports how far the slowest backend trails the query log.
func (t *Tier) backlog() float64 {
	t.mu.Lock()
	logLen := len(t.log)
	t.mu.Unlock()
	max := 0
	for _, b := range t.backs {
		if lag := logLen - b.Applied(); lag > max {
			max = lag
		}
	}
	return float64(max)
}

// OnCommit is the scheduler hook: append to the query log and return. The
// log append is the "lightweight database insert"; the on-disk execution
// happens asynchronously.
func (t *Tier) OnCommit(rec scheduler.CommitRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.log = append(t.log, rec)
	t.logged.Inc()
	t.cond.Broadcast()
}

// LogLen returns the committed-transaction count in the query log.
func (t *Tier) LogLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.log)
}

// Flush blocks until every backend has applied the current log.
func (t *Tier) Flush() {
	t.mu.Lock()
	target := len(t.log)
	t.mu.Unlock()
	for _, b := range t.backs {
		for b.Applied() < target {
			t.mu.Lock()
			t.cond.Wait()
			t.mu.Unlock()
		}
	}
}

// Close stops the applier (the log remains readable for recovery).
func (t *Tier) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	<-t.done
}

func (t *Tier) applier() {
	defer close(t.done)
	for {
		t.mu.Lock()
		for {
			if t.closed {
				t.mu.Unlock()
				return
			}
			progress := false
			for _, b := range t.backs {
				if b.Applied() < len(t.log) {
					progress = true
				}
			}
			if progress {
				break
			}
			t.cond.Wait()
		}
		logLen := len(t.log)
		t.mu.Unlock()

		for _, b := range t.backs {
			for b.Applied() < logLen {
				b.mu.Lock()
				idx := b.applied
				b.mu.Unlock()
				t.mu.Lock()
				rec := t.log[idx]
				t.mu.Unlock()
				if err := t.applyOne(b, rec); err != nil {
					t.errs.Inc()
					if t.onError != nil {
						t.onError(fmt.Errorf("persist: backend %s txn %d: %w", b.ID, idx, err))
					}
				}
				t.applied.Inc()
				b.mu.Lock()
				b.applied++
				b.mu.Unlock()
			}
		}
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

func (t *Tier) prepared(text string) (*exec.Prepared, error) {
	t.mu.Lock()
	p, ok := t.stmts[text]
	t.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := exec.Prepare(text)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.stmts[text] = p
	t.mu.Unlock()
	return p, nil
}

func (t *Tier) applyOne(b *Backend, rec scheduler.CommitRecord) error {
	tx := b.Eng.BeginUpdate()
	for _, s := range rec.Stmts {
		p, err := t.prepared(s.Text)
		if err != nil {
			_ = tx.Rollback()
			return err
		}
		if _, err := p.Exec(tx, s.Params); err != nil {
			_ = tx.Rollback()
			return err
		}
	}
	_, err := tx.Commit(nil)
	return err
}

// Recover brings a stale backend up to date by replaying the missing suffix
// of the query log, charging the backend's replay-read disk cost. Returns
// the number of transactions replayed.
func (t *Tier) Recover(b *Backend) (int, error) {
	t.mu.Lock()
	logLen := len(t.log)
	t.mu.Unlock()
	b.mu.Lock()
	from := b.applied
	b.mu.Unlock()
	if b.Disk != nil {
		n := 0
		t.mu.Lock()
		for i := from; i < logLen; i++ {
			n += len(t.log[i].Stmts)
		}
		t.mu.Unlock()
		b.Disk.ReplayRead(n)
	}
	replayed := 0
	for i := from; i < logLen; i++ {
		t.mu.Lock()
		rec := t.log[i]
		t.mu.Unlock()
		if err := t.applyOne(b, rec); err != nil {
			t.errs.Inc()
			return replayed, err
		}
		b.mu.Lock()
		b.applied++
		b.mu.Unlock()
		replayed++
		t.replayed.Inc()
	}
	return replayed, nil
}

// NewBackend builds an on-disk backend with the given cost model and cache
// capacity, creates the schema, and loads the initial image.
func NewBackend(id string, costs simdisk.CostModel, cacheCap int, ddl []string, load func(*heap.Engine) error) (*Backend, error) {
	disk := simdisk.New(costs, cacheCap)
	eng := heap.NewEngine(heap.Options{
		Observer:    disk,
		CommitDelay: disk.CommitFsync,
	})
	for _, d := range ddl {
		if err := exec.ExecDDL(eng, d); err != nil {
			return nil, fmt.Errorf("backend %s: %w", id, err)
		}
	}
	if load != nil {
		if err := load(eng); err != nil {
			return nil, fmt.Errorf("backend %s load: %w", id, err)
		}
	}
	return &Backend{ID: id, Eng: eng, Disk: disk}, nil
}
