package persist

import (
	"sync"
	"testing"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

var testDDL = []string{
	`CREATE TABLE kv (k INT PRIMARY KEY, v INT)`,
}

func seed(e *heap.Engine) error {
	tid, _ := e.TableID("kv")
	rows := make([]value.Row, 0, 10)
	for i := 1; i <= 10; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewInt(0)})
	}
	return e.Load(tid, rows)
}

func rec(ver uint64, stmts ...scheduler.LoggedStmt) scheduler.CommitRecord {
	return scheduler.CommitRecord{Version: vclock.Vector{ver}, Stmts: stmts}
}

func set(k, v int64) scheduler.LoggedStmt {
	return scheduler.LoggedStmt{
		Text:   `UPDATE kv SET v = ? WHERE k = ?`,
		Params: []value.Value{value.NewInt(v), value.NewInt(k)},
	}
}

func kvValue(t *testing.T, b *Backend, k int64) int64 {
	t.Helper()
	tx := b.Eng.BeginRead(nil)
	res, err := exec.Run(tx, `SELECT v FROM kv WHERE k = ?`, value.NewInt(k))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) == 0 {
		return -1
	}
	return res.Rows[0][0].AsInt()
}

func newBackend(t *testing.T, id string) *Backend {
	t.Helper()
	b, err := NewBackend(id, simdisk.CostModel{}, 0, testDDL, seed)
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	return b
}

func TestAsyncApplyToAllBackends(t *testing.T) {
	b1 := newBackend(t, "d1")
	b2 := newBackend(t, "d2")
	tier := NewTier(Options{Backends: []*Backend{b1, b2}})
	defer tier.Close()

	for i := 1; i <= 20; i++ {
		tier.OnCommit(rec(uint64(i), set(int64(i%10+1), int64(i))))
	}
	tier.Flush()
	if b1.Applied() != 20 || b2.Applied() != 20 {
		t.Fatalf("applied = %d/%d, want 20/20", b1.Applied(), b2.Applied())
	}
	// Last writes win in log order on every backend.
	for k := int64(1); k <= 10; k++ {
		if kvValue(t, b1, k) != kvValue(t, b2, k) {
			t.Fatalf("backends diverged at key %d", k)
		}
	}
	if got := kvValue(t, b1, 1); got != 20 {
		t.Fatalf("k=1 -> %d, want 20 (record 20 sets key 1)", got)
	}
}

func TestConcurrentLogging(t *testing.T) {
	b := newBackend(t, "d")
	tier := NewTier(Options{Backends: []*Backend{b}})
	defer tier.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tier.OnCommit(rec(uint64(w*10+i), set(int64(w+1), int64(i))))
			}
		}(w)
	}
	wg.Wait()
	tier.Flush()
	if tier.LogLen() != 80 || b.Applied() != 80 {
		t.Fatalf("log=%d applied=%d, want 80/80", tier.LogLen(), b.Applied())
	}
}

func TestRecoverReplaysMissingSuffix(t *testing.T) {
	online := newBackend(t, "online")
	tier := NewTier(Options{Backends: []*Backend{online}})
	defer tier.Close()
	for i := 1; i <= 15; i++ {
		tier.OnCommit(rec(uint64(i), set(1, int64(i))))
	}
	tier.Flush()

	// A stale backend that missed everything recovers from the query log.
	stale := newBackend(t, "stale")
	n, err := tier.Recover(stale)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 15 {
		t.Fatalf("replayed %d, want 15", n)
	}
	if got := kvValue(t, stale, 1); got != 15 {
		t.Fatalf("recovered value = %d, want 15", got)
	}
	// Recovery is incremental: nothing left to replay.
	n, err = tier.Recover(stale)
	if err != nil || n != 0 {
		t.Fatalf("second recover = %d, %v", n, err)
	}
}

func TestCloseStopsApplier(t *testing.T) {
	b := newBackend(t, "d")
	tier := NewTier(Options{Backends: []*Backend{b}})
	tier.OnCommit(rec(1, set(1, 1)))
	tier.Flush()
	tier.Close()
	tier.Close() // idempotent
	// Commits after close are dropped (the log is owned by a live tier).
	tier.OnCommit(rec(2, set(1, 2)))
	if tier.LogLen() != 1 {
		t.Fatalf("log grew after close: %d", tier.LogLen())
	}
}

func TestApplyErrorQuarantinesBackend(t *testing.T) {
	// wide has a table narrow lacks, so one log record succeeds on wide and
	// fails on narrow: the failure must quarantine narrow (frozen applied
	// mark, log retained) without stalling wide or skipping the record.
	wide, err := NewBackend("wide", simdisk.CostModel{}, 0,
		append(append([]string(nil), testDDL...), `CREATE TABLE extra (k INT PRIMARY KEY, v INT)`), seed)
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	narrow := newBackend(t, "narrow")
	var mu sync.Mutex
	var errs []error
	tier := NewTier(Options{
		Backends: []*Backend{wide, narrow},
		OnError: func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		},
	})
	defer tier.Close()
	tier.OnCommit(rec(1, set(1, 1)))
	tier.OnCommit(rec(2, scheduler.LoggedStmt{
		Text:   `INSERT INTO extra (k, v) VALUES (?, ?)`,
		Params: []value.Value{value.NewInt(1), value.NewInt(1)},
	}))
	tier.OnCommit(rec(3, set(1, 7)))
	tier.Flush() // must not hang on the quarantined backend

	if !narrow.Quarantined() {
		t.Fatal("narrow backend not quarantined after apply error")
	}
	if wide.Quarantined() {
		t.Fatal("healthy backend quarantined")
	}
	if got := narrow.Applied(); got != 1 {
		t.Fatalf("quarantined applied mark = %d, want frozen at 1", got)
	}
	if got := wide.Applied(); got != 3 {
		t.Fatalf("healthy backend applied = %d, want 3", got)
	}
	if got := kvValue(t, wide, 1); got != 7 {
		t.Fatalf("healthy backend value = %d, want 7", got)
	}
	// The failing record was NOT skipped on the quarantined backend.
	if got := kvValue(t, narrow, 1); got != 1 {
		t.Fatalf("quarantined backend value = %d, want 1 (frozen before record 2)", got)
	}
	mu.Lock()
	n := len(errs)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("errors = %d, want 1 (quarantine reports once, not per record)", n)
	}
	// The log is retained for replay: Recover re-hits the same record and
	// reports the error instead of silently diverging.
	if _, err := tier.Recover(narrow); err == nil {
		t.Fatal("recover of incompatible backend succeeded, want apply error")
	}
	if got := narrow.Applied(); got != 1 {
		t.Fatalf("applied mark moved to %d during failed recover, want 1", got)
	}
}
