package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"dmv/internal/exec"
	"dmv/internal/faultdisk"
	"dmv/internal/wal"
)

// kvDigest hashes a backend's kv table contents in key order — a stable
// state fingerprint that two runs of the same seed must reproduce exactly.
func kvDigest(t *testing.T, b *Backend) string {
	t.Helper()
	tx := b.Eng.BeginRead(nil)
	res, err := exec.Run(tx, `SELECT k, v FROM kv`)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, fmt.Sprintf("%d=%d", r[0].AsInt(), r[1].AsInt()))
	}
	sort.Strings(rows)
	h := sha256.New()
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runSeededCrash drives one crash/recovery round for a seed: acked commits
// go through an honest fsync, a volatile suffix rides on lying fsyncs, the
// disk crashes with a seeded torn tail, and the tier is rebuilt from the
// WAL directory. It returns the recovered record count and state digest.
func runSeededCrash(t *testing.T, seed int64) (recovered int, digest string) {
	t.Helper()
	dir := t.TempDir()
	disk := faultdisk.New(seed)
	rng := rand.New(rand.NewSource(seed))

	log, err := OpenLog(DurableConfig{Dir: dir, FS: disk, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	tier := NewTier(Options{Log: log}) // zero backends: the durable log IS the tier here
	const acked = 30
	for i := 0; i < acked; i++ {
		// OnCommit under SyncAlways returns only after the fsync: every one
		// of these records is acknowledged durable.
		tier.OnCommit(rec(uint64(i+1), set(int64(rng.Intn(10)+1), int64(rng.Intn(1000)))))
	}
	// The tail of the workload hits a lying disk: fsync says yes, platter
	// says nothing. These commits are NOT acknowledged durable by the test.
	disk.LoseSyncs(true)
	volatile := 5 + rng.Intn(10)
	for i := 0; i < volatile; i++ {
		tier.OnCommit(rec(uint64(acked+i+1), set(int64(rng.Intn(10)+1), int64(rng.Intn(1000)))))
	}
	if err := disk.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	tier.Close() // post-crash close errors are expected; state is gone anyway

	// Power back on and rebuild the whole tier from the WAL directory.
	disk.PowerOn()
	log2, err := OpenLog(DurableConfig{Dir: dir, FS: disk, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	if log2.TruncatedBytes == 0 && volatile > 0 {
		t.Logf("seed %d: no torn tail this run (crash fell on a record boundary)", seed)
	}
	back := newBackend(t, "d0")
	tier2 := NewTier(Options{Backends: []*Backend{back}, Log: log2})
	defer tier2.Close()
	tier2.Flush()

	n := tier2.LogLen()
	if n < acked {
		t.Fatalf("seed %d: recovered %d records, want >= %d acked (acked-commit loss)", seed, n, acked)
	}
	if n > acked+volatile {
		t.Fatalf("seed %d: recovered %d records, more than the %d ever written", seed, n, acked+volatile)
	}
	return n, kvDigest(t, back)
}

func TestCrashRecoveryNoAckedCommitLoss(t *testing.T) {
	for _, seed := range []int64{1, 42, 7777} {
		runSeededCrash(t, seed)
	}
}

func TestSeededCrashDeterminism(t *testing.T) {
	const seed = 424242
	n1, d1 := runSeededCrash(t, seed)
	n2, d2 := runSeededCrash(t, seed)
	if n1 != n2 || d1 != d2 {
		t.Fatalf("same seed diverged: run1 = %d records %s, run2 = %d records %s", n1, d1, n2, d2)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	disk := faultdisk.New(9)
	log, err := OpenLog(DurableConfig{Dir: dir, FS: disk, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	tier := NewTier(Options{Log: log})
	for i := 0; i < 10; i++ {
		tier.OnCommit(rec(uint64(i+1), set(int64(i%10+1), int64(i))))
	}
	tier.Close()

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("segments: %v %d", err, len(ents))
	}
	// Flip a byte inside an early record: intact records follow, so this
	// must be refused as corruption, never silently truncated away.
	if err := disk.CorruptAt(filepath.Join(dir, ents[0].Name()), 40); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if _, err := OpenLog(DurableConfig{Dir: dir, FS: disk, Policy: wal.SyncAlways}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want wal.ErrCorrupt", err)
	}
}

// TestLogTruncationBoundsMemory is the regression test for the unbounded
// in-memory query log: after a checkpoint, the applied-and-durable prefix
// must leave memory while LogLen (a since-genesis count) and Recover keep
// honoring global indexes.
func TestLogTruncationBoundsMemory(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenLog(DurableConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	b := newBackend(t, "d0")
	tier := NewTier(Options{Backends: []*Backend{b}, Log: log})
	for i := 0; i < 30; i++ {
		tier.OnCommit(rec(uint64(i+1), set(int64(i%10+1), int64(i))))
	}
	tier.Flush()
	cut, err := tier.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cut != 30 {
		t.Fatalf("cut = %d, want 30", cut)
	}
	if got := tier.Base(); got != 30 {
		t.Fatalf("base = %d, want 30 (prefix still in memory)", got)
	}
	if got := tier.LogLen(); got != 30 {
		t.Fatalf("LogLen = %d, want 30 (must count the truncated prefix)", got)
	}

	// New commits land beyond the truncated prefix.
	for i := 30; i < 40; i++ {
		tier.OnCommit(rec(uint64(i+1), set(int64(i%10+1), int64(i))))
	}
	tier.Flush()
	if got := tier.LogLen(); got != 40 {
		t.Fatalf("LogLen = %d, want 40", got)
	}
	if got := b.Applied(); got != 40 {
		t.Fatalf("applied = %d, want 40", got)
	}

	// A from-scratch backend can no longer be rebuilt by replay alone.
	stale := newBackend(t, "stale")
	if _, err := tier.Recover(stale); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("recover from-scratch = %v, want ErrLogTruncated", err)
	}
	want := kvDigest(t, b)
	tier.Close()

	// Restart: the checkpoint manifest restores the backend at the cut and
	// replay covers only the suffix.
	log2, err := OpenLog(DurableConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if log2.Base != 30 || len(log2.Records) != 10 {
		t.Fatalf("recovered base=%d n=%d, want 30/10", log2.Base, len(log2.Records))
	}
	cp := log2.Checkpoint("d0")
	if cp == nil || cp.Applied != 30 {
		t.Fatalf("manifest = %+v, want Applied 30", cp)
	}
	restored, err := RestoreBackend("d0", b.Disk.Model(), 0, testDDL, cp)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	tier2 := NewTier(Options{Backends: []*Backend{restored}, Log: log2})
	defer tier2.Close()
	tier2.Flush()
	if got := restored.Applied(); got != 40 {
		t.Fatalf("restored applied = %d, want 40", got)
	}
	if got := kvDigest(t, restored); got != want {
		t.Fatalf("restored state diverged from pre-restart state")
	}
}

// TestConcurrentTierOps exercises OnCommit/Flush/Recover/Close running
// together; scripts/check.sh runs it under -race.
func TestConcurrentTierOps(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenLog(DurableConfig{Dir: dir, Policy: wal.SyncInterval})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	b := newBackend(t, "d0")
	tier := NewTier(Options{Backends: []*Backend{b}, Log: log})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tier.OnCommit(rec(uint64(g*25+i+1), set(int64(g%10+1), int64(i))))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			tier.Flush()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		stale := newBackend(t, "stale")
		for i := 0; i < 3; i++ {
			if _, err := tier.Recover(stale); err != nil {
				t.Errorf("recover: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	tier.Flush()
	if got := tier.LogLen(); got != 100 {
		t.Fatalf("LogLen = %d, want 100", got)
	}
	if got := b.Applied(); got != 100 {
		t.Fatalf("applied = %d, want 100", got)
	}
	tier.Close()
	tier.Close() // idempotent, and safe concurrently with nothing running
}
