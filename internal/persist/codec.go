package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmv/internal/scheduler"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// WAL record codec for scheduler.CommitRecord. The encoding is a fully
// deterministic binary layout (no maps, no gob type streams), so the same
// commit sequence always produces byte-identical segment files — which is
// what lets the seeded crash tests demand identical recovered state across
// two runs of one seed.
//
// Layout (all varints are unsigned LEB128 via encoding/binary unless noted):
//
//	uvarint vectorLen, then vectorLen uvarint components
//	uvarint stmtCount, then per statement:
//	    uvarint textLen, textLen bytes of SQL
//	    uvarint paramCount, then per param:
//	        1 byte kind
//	        Int:    varint (zig-zag) int64
//	        Float:  8-byte little-endian IEEE 754 bits
//	        String: uvarint len + bytes
//	        Null:   nothing

// EncodeRecord serializes one commit record for the WAL.
func EncodeRecord(rec scheduler.CommitRecord) []byte {
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Version)))
	for _, v := range rec.Version {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Stmts)))
	for _, s := range rec.Stmts {
		buf = binary.AppendUvarint(buf, uint64(len(s.Text)))
		buf = append(buf, s.Text...)
		buf = binary.AppendUvarint(buf, uint64(len(s.Params)))
		for _, p := range s.Params {
			buf = append(buf, byte(p.K))
			switch p.K {
			case value.Int:
				buf = binary.AppendVarint(buf, p.I)
			case value.Float:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.F))
			case value.String:
				buf = binary.AppendUvarint(buf, uint64(len(p.S)))
				buf = append(buf, p.S...)
			case value.Null:
				// kind byte only
			}
		}
	}
	return buf
}

// DecodeRecord parses an EncodeRecord payload. Any malformed or trailing
// bytes are an error: the WAL's CRC already vouches for media integrity,
// so a decode failure means a genuinely foreign or corrupt record.
func DecodeRecord(buf []byte) (scheduler.CommitRecord, error) {
	var rec scheduler.CommitRecord
	d := decoder{buf: buf}
	vlen := d.uvarint()
	if vlen > uint64(len(buf)) {
		return rec, fmt.Errorf("persist: record vector length %d overruns payload", vlen)
	}
	rec.Version = vclock.New(int(vlen))
	for i := range rec.Version {
		rec.Version[i] = d.uvarint()
	}
	nStmts := d.uvarint()
	if nStmts > uint64(len(buf)) {
		return rec, fmt.Errorf("persist: record statement count %d overruns payload", nStmts)
	}
	rec.Stmts = make([]scheduler.LoggedStmt, 0, nStmts)
	for i := uint64(0); i < nStmts; i++ {
		var s scheduler.LoggedStmt
		s.Text = string(d.bytes(d.uvarint()))
		nParams := d.uvarint()
		if nParams > uint64(len(buf)) {
			return rec, fmt.Errorf("persist: record param count %d overruns payload", nParams)
		}
		s.Params = make([]value.Value, 0, nParams)
		for j := uint64(0); j < nParams; j++ {
			var p value.Value
			p.K = value.Kind(d.byte())
			switch p.K {
			case value.Int:
				p.I = d.varint()
			case value.Float:
				p.F = math.Float64frombits(binary.LittleEndian.Uint64(d.bytes(8)))
			case value.String:
				p.S = string(d.bytes(d.uvarint()))
			case value.Null:
			default:
				return rec, fmt.Errorf("persist: record has unknown value kind %d", p.K)
			}
			s.Params = append(s.Params, p)
		}
		rec.Stmts = append(rec.Stmts, s)
	}
	if d.err {
		return rec, fmt.Errorf("persist: truncated record payload")
	}
	if len(d.buf) != 0 {
		return rec, fmt.Errorf("persist: %d trailing bytes after record", len(d.buf))
	}
	return rec, nil
}

// decoder consumes buf front-to-back, latching the first failure so call
// sites stay linear; the caller checks err once at the end.
type decoder struct {
	buf []byte
	err bool
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = true
		d.buf = nil
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = true
		d.buf = nil
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if len(d.buf) < 1 {
		d.err = true
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) bytes(n uint64) []byte {
	if uint64(len(d.buf)) < n {
		d.err = true
		d.buf = nil
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
