package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
	"dmv/internal/wal"
)

// Durable persistence: the query log of Section 4.6 backed by the
// crash-durable WAL in internal/wal, plus per-backend checkpoint manifests
// that coordinate log truncation. On disk a tier directory holds:
//
//	wal-<base>.seg   segment files (internal/wal framing)
//	ckpt-<id>.ckpt   one gob manifest per backend: how many log records the
//	                 backend had applied when the checkpoint was cut, plus a
//	                 complete engine checkpoint at exactly that point
//
// The WAL base and every checkpoint's Applied mark are global record
// indexes (they survive truncation); the in-memory Tier keeps the same
// indexing so LogLen/Flush/Recover agree across restarts.

const ckptSuffix = ".ckpt"

// BackendCheckpoint is the durable manifest for one backend: a complete
// checkpoint of its engine taken at a known log position.
type BackendCheckpoint struct {
	// Applied is the global log index the backend had fully applied when
	// the checkpoint was cut; replay resumes at this index.
	Applied int
	// Checkpoint is the engine state at Applied.
	Checkpoint *heap.Checkpoint
}

// DurableConfig configures OpenLog.
type DurableConfig struct {
	// Dir is the tier directory (segments + checkpoint manifests).
	Dir string
	// FS interposes on file operations (default wal.OsFS; tests pass a
	// faultdisk.Disk).
	FS wal.FS
	// Policy is the fsync policy (default wal.SyncAlways).
	Policy wal.SyncPolicy
	// FlushInterval is the background fsync period for wal.SyncInterval.
	FlushInterval time.Duration
	// SegmentBytes caps segment size (default 1 MiB).
	SegmentBytes int
	// Obs, if non-nil, receives the WAL metrics.
	Obs *obs.Registry
	// Flight, if non-nil, is notified (as a wal-sticky-fatal anomaly
	// trigger) when the opened WAL enters its sticky-fatal state, so a
	// durability loss dumps the cluster's flight rings while the evidence
	// is still in them.
	Flight *flight.Recorder
}

// RecoveredLog is an opened durable query log: the live WAL plus whatever
// survived the last incarnation, already decoded and cut down to the
// suffix the checkpoints do not cover.
type RecoveredLog struct {
	// WAL is the live log; the Tier appends to it.
	WAL *wal.WAL
	// Base is the global index of Records[0].
	Base int
	// Records are the decoded commit records from Base onward.
	Records []scheduler.CommitRecord
	// TruncatedBytes counts torn-tail bytes recovery discarded.
	TruncatedBytes int64

	checkpoints map[string]*BackendCheckpoint
}

// Checkpoint returns the recovered manifest for a backend ID, or nil.
func (r *RecoveredLog) Checkpoint(id string) *BackendCheckpoint {
	return r.checkpoints[id]
}

// CheckpointIDs returns the backend IDs that have recovered manifests.
func (r *RecoveredLog) CheckpointIDs() []string {
	ids := make([]string, 0, len(r.checkpoints))
	for id := range r.checkpoints {
		ids = append(ids, id)
	}
	return ids
}

// MinApplied returns the smallest Applied mark among recovered manifests
// and the ID holding it, or (Base, "") when there are none.
func (r *RecoveredLog) MinApplied() (int, string) {
	min, minID := -1, ""
	for id, cp := range r.checkpoints {
		if min < 0 || cp.Applied < min {
			min, minID = cp.Applied, id
		}
	}
	if min < 0 {
		return r.Base, ""
	}
	return min, minID
}

// OpenLog opens (or creates) the durable query log in cfg.Dir: recovers
// the WAL (truncating a torn tail; mid-log corruption fails with an error
// wrapping wal.ErrCorrupt), decodes the surviving records, and loads the
// checkpoint manifests. Close the returned log's WAL via Tier.Close once
// it is handed to a tier.
func OpenLog(cfg DurableConfig) (*RecoveredLog, error) {
	var onFatal func(error)
	if fr := cfg.Flight; fr != nil {
		onFatal = func(err error) { fr.Trigger(flight.CauseWALFatal, "", err.Error()) }
	}
	w, rec, err := wal.Open(wal.Options{
		Dir:           cfg.Dir,
		FS:            cfg.FS,
		Policy:        cfg.Policy,
		FlushInterval: cfg.FlushInterval,
		SegmentBytes:  cfg.SegmentBytes,
		Obs:           cfg.Obs,
		OnFatal:       onFatal,
	})
	if err != nil {
		return nil, err
	}
	out := &RecoveredLog{
		WAL:            w,
		Base:           int(rec.Base),
		TruncatedBytes: rec.TruncatedBytes,
		checkpoints:    make(map[string]*BackendCheckpoint),
	}
	out.Records = make([]scheduler.CommitRecord, 0, len(rec.Records))
	for i, payload := range rec.Records {
		cr, derr := DecodeRecord(payload)
		if derr != nil {
			// The CRC passed, so the bytes are what was written — a decode
			// failure is corruption the frame could not see.
			w.Close()
			return nil, fmt.Errorf("persist: record %d: %v: %w", out.Base+i, derr, wal.ErrCorrupt)
		}
		out.Records = append(out.Records, cr)
	}
	if err := out.loadCheckpoints(cfg); err != nil {
		w.Close()
		return nil, err
	}
	return out, nil
}

// loadCheckpoints reads every ckpt-<id>.ckpt manifest and drops the log
// prefix all of them cover (the WAL's segment-granular base may trail the
// true cut; the decoded view is exact).
func (r *RecoveredLog) loadCheckpoints(cfg DurableConfig) error {
	fs := cfg.FS
	if fs == nil {
		fs = wal.OsFS{}
	}
	names, err := fs.ReadDir(cfg.Dir)
	if err != nil {
		return fmt.Errorf("persist: scan %s: %w", cfg.Dir, err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ckptSuffix)
		blob, rerr := readAll(fs, filepath.Join(cfg.Dir, name))
		if rerr != nil {
			return fmt.Errorf("persist: read checkpoint %s: %w", name, rerr)
		}
		var cp BackendCheckpoint
		if derr := gob.NewDecoder(bytes.NewReader(blob)).Decode(&cp); derr != nil {
			return fmt.Errorf("persist: decode checkpoint %s: %v: %w", name, derr, wal.ErrCorrupt)
		}
		r.checkpoints[id] = &cp
	}
	// Drop the prefix every manifest covers: a backend restored from its
	// checkpoint replays only from its Applied mark, so records below the
	// minimum mark are dead weight in memory.
	if cut, _ := r.MinApplied(); cut > r.Base {
		if cut > r.Base+len(r.Records) {
			return fmt.Errorf("persist: checkpoint applied mark %d beyond log end %d (missing WAL segments)", cut, r.Base+len(r.Records))
		}
		r.Records = append([]scheduler.CommitRecord(nil), r.Records[cut-r.Base:]...)
		r.Base = cut
	}
	return nil
}

// readAll reads a whole file through the FS layer.
func readAll(fs wal.FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreBackend rebuilds an on-disk backend from a recovered checkpoint
// manifest: schema only (no initial load — the checkpoint IS the data),
// then the checkpoint image, with the applied mark set so Recover replays
// exactly the uncovered suffix.
func RestoreBackend(id string, costs simdisk.CostModel, cacheCap int, ddl []string, cp *BackendCheckpoint) (*Backend, error) {
	disk := simdisk.New(costs, cacheCap)
	eng := heap.NewEngine(heap.Options{
		Observer:    disk,
		CommitDelay: disk.CommitFsync,
	})
	for _, d := range ddl {
		if err := exec.ExecDDL(eng, d); err != nil {
			return nil, fmt.Errorf("backend %s: %w", id, err)
		}
	}
	if cp.Checkpoint != nil {
		if err := eng.RestoreCheckpoint(cp.Checkpoint); err != nil {
			return nil, fmt.Errorf("backend %s restore: %w", id, err)
		}
	}
	return &Backend{ID: id, Eng: eng, Disk: disk, applied: cp.Applied}, nil
}

// ReplayInto executes the statements of recs, in order, against a node
// engine (crash-restart of the in-memory cluster replays the same records
// the persistence tier recovered).
func ReplayInto(e *heap.Engine, recs []scheduler.CommitRecord) error {
	stmts := make(map[string]*exec.Prepared, 64)
	for i, rec := range recs {
		tx := e.BeginUpdate()
		for _, s := range rec.Stmts {
			p, ok := stmts[s.Text]
			if !ok {
				var err error
				if p, err = exec.Prepare(s.Text); err != nil {
					_ = tx.Rollback()
					return fmt.Errorf("persist: replay record %d: %w", i, err)
				}
				stmts[s.Text] = p
			}
			if _, err := p.Exec(tx, s.Params); err != nil {
				_ = tx.Rollback()
				return fmt.Errorf("persist: replay record %d: %w", i, err)
			}
		}
		if _, err := tx.Commit(nil); err != nil {
			return fmt.Errorf("persist: replay record %d commit: %w", i, err)
		}
	}
	return nil
}
