package tpcw

import (
	"math/rand"
	"testing"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/value"
)

func loadEngine(t *testing.T, scale Scale) *heap.Engine {
	t.Helper()
	e := heap.NewEngine(heap.Options{})
	for _, ddl := range SchemaDDL() {
		if err := exec.ExecDDL(e, ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	if err := scale.Load(e); err != nil {
		t.Fatalf("load: %v", err)
	}
	return e
}

func count(t *testing.T, e *heap.Engine, table string) int64 {
	t.Helper()
	tx := e.BeginRead(nil)
	res, err := exec.Run(tx, `SELECT COUNT(*) FROM `+table)
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	return res.Rows[0][0].AsInt()
}

func TestSchemaHasEightTables(t *testing.T) {
	e := loadEngine(t, Scale{Items: 50, Customers: 20})
	if got := e.NumTables(); got != 8 {
		t.Fatalf("tables = %d, want the paper's 8", got)
	}
	for _, name := range TableNames() {
		if _, ok := e.TableID(name); !ok {
			t.Fatalf("missing table %s", name)
		}
	}
}

func TestDataGeneratorCardinalities(t *testing.T) {
	scale := Scale{Items: 100, Customers: 40}
	e := loadEngine(t, scale)
	checks := map[string]int64{
		"item":       100,
		"customer":   40,
		"address":    80,
		"country":    92,
		"orders":     40,
		"order_line": 120,
		"cc_xacts":   40,
		"author":     25, // floor
	}
	for table, want := range checks {
		if got := count(t, e, table); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
}

// TestDataGeneratorDeterministic: two engines loaded with the same scale are
// identical (every node mmaps the same image).
func TestDataGeneratorDeterministic(t *testing.T) {
	scale := Scale{Items: 60, Customers: 25}
	a := loadEngine(t, scale)
	b := loadEngine(t, scale)
	for _, table := range TableNames() {
		ta := a.BeginRead(nil)
		tb := b.BeginRead(nil)
		ra, err := exec.Run(ta, `SELECT * FROM `+table)
		if err != nil {
			t.Fatalf("scan a.%s: %v", table, err)
		}
		rb, err := exec.Run(tb, `SELECT * FROM `+table)
		if err != nil {
			t.Fatalf("scan b.%s: %v", table, err)
		}
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("%s: %d vs %d rows", table, len(ra.Rows), len(rb.Rows))
		}
		seen := make(map[string]bool, len(ra.Rows))
		for _, r := range ra.Rows {
			seen[r.Key()] = true
		}
		for _, r := range rb.Rows {
			if !seen[r.Key()] {
				t.Fatalf("%s: row %v only in b", table, r)
			}
		}
	}
}

func TestMixPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[Interaction]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[ShoppingMix.Pick(rng)]++
	}
	updates := 0
	for it, c := range counts {
		if it.IsUpdate() {
			updates += c
		}
	}
	frac := float64(updates) / n
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("shopping update fraction = %.3f, want ~0.20", frac)
	}
	// Every interaction that has weight must show up.
	for it := Home; it <= AdminConfirm; it++ {
		if it == AdminRequest {
			continue // weight may be ~0 in some mixes
		}
		if counts[it] == 0 {
			t.Errorf("interaction %s never picked", it)
		}
	}
}

func TestInteractionTablesCoverSQL(t *testing.T) {
	// Every interaction must declare a non-empty table set (scheduler
	// routing depends on it).
	for it := Home; it <= AdminConfirm; it++ {
		if len(it.Tables()) == 0 {
			t.Errorf("%s declares no tables", it)
		}
	}
}

// storeOverEngine adapts a single engine to the Store interface for
// workload-only tests.
type storeOverEngine struct{ e *heap.Engine }

type engQuerier struct {
	e  *heap.Engine
	tx heap.Txn
}

func (q engQuerier) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	p, err := exec.Prepare(stmt)
	if err != nil {
		return nil, err
	}
	return p.Exec(q.tx, params)
}

func (s storeOverEngine) Run(readOnly bool, _ []string, fn func(Querier) error) error {
	if readOnly {
		return fn(engQuerier{e: s.e, tx: s.e.BeginRead(nil)})
	}
	tx := s.e.BeginUpdate()
	if err := fn(engQuerier{e: s.e, tx: tx}); err != nil {
		_ = tx.Rollback()
		return err
	}
	_, err := tx.Commit(nil)
	return err
}

func TestBuyConfirmMaintainsInvariants(t *testing.T) {
	scale := Scale{Items: 80, Customers: 30}
	e := loadEngine(t, scale)
	w := NewWorkload(storeOverEngine{e: e}, scale)
	s := w.NewSession(3)

	ordersBefore := count(t, e, "orders")
	for i := 0; i < 15; i++ {
		if err := w.Do(s, ShoppingCart); err != nil {
			t.Fatalf("cart: %v", err)
		}
		if err := w.Do(s, BuyConfirm); err != nil {
			t.Fatalf("buy: %v", err)
		}
	}
	ordersAfter := count(t, e, "orders")
	if ordersAfter != ordersBefore+15 {
		t.Fatalf("orders = %d, want %d", ordersAfter, ordersBefore+15)
	}
	// Every order got a credit-card transaction and >= 1 line.
	if cc := count(t, e, "cc_xacts"); cc != ordersAfter {
		t.Fatalf("cc_xacts = %d, want %d", cc, ordersAfter)
	}
	lines := count(t, e, "order_line")
	if lines < ordersAfter {
		t.Fatalf("order_line = %d < orders %d", lines, ordersAfter)
	}
	// Stock never drops below zero (restocking rule).
	tx := e.BeginRead(nil)
	res, err := exec.Run(tx, `SELECT MIN(i_stock) FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() < 0 {
		t.Fatalf("negative stock: %v", res.Rows[0][0])
	}
}

func TestCustomerRegistrationSwitchesSession(t *testing.T) {
	scale := Scale{Items: 40, Customers: 10}
	e := loadEngine(t, scale)
	w := NewWorkload(storeOverEngine{e: e}, scale)
	s := w.NewSession(4)
	before := s.Customer
	if err := w.Do(s, CustomerRegistration); err != nil {
		t.Fatalf("register: %v", err)
	}
	if s.Customer == before || s.Customer <= int64(scale.Customers) {
		t.Fatalf("session customer = %d (before %d)", s.Customer, before)
	}
	// The new customer exists and BuyRequest works for it.
	if err := w.Do(s, BuyRequest); err != nil {
		t.Fatalf("buy request for new customer: %v", err)
	}
}

func TestSequencesContinueFromPreload(t *testing.T) {
	scale := Scale{Items: 40, Customers: 10}
	w := NewWorkload(storeOverEngine{e: loadEngine(t, scale)}, scale)
	if got := w.LatestOrderID(); got != int64(scale.NumOrders()) {
		t.Fatalf("initial order seq = %d, want %d", got, scale.NumOrders())
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"browsing", "shopping", "ordering"} {
		if _, ok := MixByName(name); !ok {
			t.Errorf("missing mix %s", name)
		}
	}
	if _, ok := MixByName("nope"); ok {
		t.Error("unknown mix resolved")
	}
}
