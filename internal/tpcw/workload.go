package tpcw

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"dmv/internal/exec"
	"dmv/internal/value"
)

// Querier executes one SQL statement inside a transaction. Both the DMV
// scheduler transaction and the InnoDB-tier transaction satisfy it (via thin
// adapters in the harness).
type Querier interface {
	Exec(stmt string, params ...value.Value) (*exec.Result, error)
}

// Store runs transactions against a database tier. The TPC-W workload is
// written against this interface so the identical interaction code drives
// the DMV cluster, a stand-alone on-disk database, and the replicated
// InnoDB baseline.
type Store interface {
	Run(readOnly bool, tables []string, fn func(Querier) error) error
}

// CartLine is one shopping-cart entry (carts live in the application
// session, as in the paper's PHP implementation; the database holds the
// eight TPC-W tables only).
type CartLine struct {
	ItemID int64
	Qty    int64
	Cost   float64
}

// Session is one emulated browser's state.
type Session struct {
	R        *rand.Rand
	Customer int64
	Cart     []CartLine
}

// Workload executes TPC-W interactions against a Store.
type Workload struct {
	store Store
	scale Scale

	nextOrder atomic.Int64
	nextOL    atomic.Int64
	nextCust  atomic.Int64
	nextAddr  atomic.Int64

	hotItems     int
	hotCustomers int
}

// NewWorkload builds a workload bound to a store. The id sequences continue
// from the preloaded data.
func NewWorkload(store Store, scale Scale) *Workload {
	sc := scale.withDefaults()
	w := &Workload{store: store, scale: sc}
	w.nextOrder.Store(int64(sc.NumOrders()))
	w.nextOL.Store(int64(sc.NumOrders() * sc.LinesPerOrder))
	w.nextCust.Store(int64(sc.Customers))
	w.nextAddr.Store(int64(2 * sc.Customers))
	w.hotItems = sc.Items / 5
	if w.hotItems < 1 {
		w.hotItems = 1
	}
	w.hotCustomers = sc.Customers / 5
	if w.hotCustomers < 1 {
		w.hotCustomers = 1
	}
	return w
}

// NewSession creates an emulated-browser session.
func (w *Workload) NewSession(seed int64) *Session {
	r := rand.New(rand.NewSource(seed))
	return &Session{
		R:        r,
		Customer: int64(r.Intn(w.scale.Customers) + 1),
	}
}

// pickItem draws an item id with 80/20 locality: the benchmark's operating
// data set is a fraction of the database, which is what makes it memory
// resident (Section 5.1) and what gives buffer-cache warm-up its effect.
func (w *Workload) pickItem(r *rand.Rand) int64 {
	if r.Float64() < 0.8 {
		return int64(r.Intn(w.hotItems) + 1)
	}
	return int64(r.Intn(w.scale.Items) + 1)
}

func (w *Workload) pickCustomer(r *rand.Rand) int64 {
	if r.Float64() < 0.8 {
		return int64(r.Intn(w.hotCustomers) + 1)
	}
	return int64(r.Intn(w.scale.Customers) + 1)
}

// Do executes one interaction for the session.
func (w *Workload) Do(s *Session, i Interaction) error {
	switch i {
	case Home:
		return w.home(s)
	case NewProducts:
		return w.newProducts(s)
	case BestSellers:
		return w.bestSellers(s)
	case ProductDetail, AdminRequest:
		return w.productDetail(s)
	case SearchRequest:
		return w.searchRequest(s)
	case SearchResults:
		return w.searchResults(s)
	case ShoppingCart:
		return w.shoppingCart(s)
	case CustomerRegistration:
		return w.customerRegistration(s)
	case BuyRequest:
		return w.buyRequest(s)
	case BuyConfirm:
		return w.buyConfirm(s)
	case OrderInquiry, OrderDisplay:
		return w.orderDisplay(s)
	case AdminConfirm:
		return w.adminConfirm(s)
	default:
		return fmt.Errorf("tpcw: unknown interaction %d", int(i))
	}
}

// --- read-only interactions --------------------------------------------------

func (w *Workload) home(s *Session) error {
	cID := s.Customer
	promo := make([]int64, 5)
	for i := range promo {
		promo[i] = w.pickItem(s.R)
	}
	return w.store.Run(true, Home.Tables(), func(q Querier) error {
		if _, err := q.Exec(
			`SELECT c_fname, c_lname FROM customer WHERE c_id = ?`,
			value.NewInt(cID)); err != nil {
			return err
		}
		for _, it := range promo {
			if _, err := q.Exec(
				`SELECT i_id, i_title, i_thumbnail, i_cost FROM item WHERE i_id = ?`,
				value.NewInt(it)); err != nil {
				return err
			}
		}
		return nil
	})
}

func (w *Workload) newProducts(s *Session) error {
	subject := Subjects[s.R.Intn(len(Subjects))]
	return w.store.Run(true, NewProducts.Tables(), func(q Querier) error {
		_, err := q.Exec(`
			SELECT i.i_id, i.i_title, i.i_pub_date, a.a_fname, a.a_lname
			FROM item i JOIN author a ON i.i_a_id = a.a_id
			WHERE i.i_subject = ?
			ORDER BY i.i_pub_date DESC, i.i_title ASC
			LIMIT 50`,
			value.NewString(subject))
		return err
	})
}

func (w *Workload) bestSellers(s *Session) error {
	subject := Subjects[s.R.Intn(len(Subjects))]
	// TPC-W restricts BestSellers to the most recent 3333 orders.
	latest := w.nextOrder.Load()
	window := int64(3333)
	lo := latest - window
	if lo < 0 {
		lo = 0
	}
	// The executor joins in FROM order (no join reordering), so the query
	// leads with the subject-indexed item table and probes order lines and
	// orders through their indexes — the plan MySQL's optimizer would pick.
	return w.store.Run(true, BestSellers.Tables(), func(q Querier) error {
		_, err := q.Exec(`
			SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, SUM(ol.ol_qty) AS qty
			FROM item i
			JOIN order_line ol ON ol.ol_i_id = i.i_id
			JOIN orders o ON ol.ol_o_id = o.o_id
			JOIN author a ON i.i_a_id = a.a_id
			WHERE o.o_id > ? AND i.i_subject = ?
			GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname
			ORDER BY qty DESC
			LIMIT 50`,
			value.NewInt(lo), value.NewString(subject))
		return err
	})
}

func (w *Workload) productDetail(s *Session) error {
	itemID := w.pickItem(s.R)
	return w.store.Run(true, ProductDetail.Tables(), func(q Querier) error {
		_, err := q.Exec(`
			SELECT i.i_id, i.i_title, i.i_pub_date, i.i_publisher, i.i_subject,
			       i.i_desc, i.i_image, i.i_cost, i.i_srp, i.i_stock,
			       a.a_fname, a.a_lname
			FROM item i JOIN author a ON i.i_a_id = a.a_id
			WHERE i.i_id = ?`,
			value.NewInt(itemID))
		return err
	})
}

func (w *Workload) searchRequest(s *Session) error {
	return w.store.Run(true, SearchRequest.Tables(), func(q Querier) error {
		_, err := q.Exec(`SELECT co_id, co_name FROM country ORDER BY co_name LIMIT 20`)
		return err
	})
}

func (w *Workload) searchResults(s *Session) error {
	switch s.R.Intn(3) {
	case 0: // by author last name
		name := lastNames[s.R.Intn(len(lastNames))]
		return w.store.Run(true, SearchResults.Tables(), func(q Querier) error {
			_, err := q.Exec(`
				SELECT i.i_id, i.i_title, a.a_fname, a.a_lname
				FROM author a JOIN item i ON i.i_a_id = a.a_id
				WHERE a.a_lname LIKE ?
				ORDER BY i.i_title LIMIT 50`,
				value.NewString(name+"%"))
			return err
		})
	case 1: // by title
		frag := fmt.Sprintf("Title %03d%%", s.R.Intn(1000))
		return w.store.Run(true, SearchResults.Tables(), func(q Querier) error {
			_, err := q.Exec(`
				SELECT i.i_id, i.i_title, a.a_fname, a.a_lname
				FROM item i JOIN author a ON i.i_a_id = a.a_id
				WHERE i.i_title LIKE ?
				ORDER BY i.i_title LIMIT 50`,
				value.NewString(frag))
			return err
		})
	default: // by subject
		subject := Subjects[s.R.Intn(len(Subjects))]
		return w.store.Run(true, SearchResults.Tables(), func(q Querier) error {
			_, err := q.Exec(`
				SELECT i.i_id, i.i_title, a.a_fname, a.a_lname
				FROM item i JOIN author a ON i.i_a_id = a.a_id
				WHERE i.i_subject = ?
				ORDER BY i.i_title LIMIT 50`,
				value.NewString(subject))
			return err
		})
	}
}

func (w *Workload) shoppingCart(s *Session) error {
	itemID := w.pickItem(s.R)
	qty := int64(s.R.Intn(3) + 1)
	var cost float64
	err := w.store.Run(true, ShoppingCart.Tables(), func(q Querier) error {
		res, err := q.Exec(`SELECT i_cost, i_stock FROM item WHERE i_id = ?`, value.NewInt(itemID))
		if err != nil {
			return err
		}
		if len(res.Rows) > 0 {
			cost = res.Rows[0][0].AsFloat()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(s.Cart) < 10 {
		s.Cart = append(s.Cart, CartLine{ItemID: itemID, Qty: qty, Cost: cost})
	}
	return nil
}

func (w *Workload) buyRequest(s *Session) error {
	cID := s.Customer
	return w.store.Run(true, BuyRequest.Tables(), func(q Querier) error {
		res, err := q.Exec(`
			SELECT c.c_fname, c.c_lname, c.c_discount, a.addr_street, a.addr_city, co.co_name
			FROM customer c
			JOIN address a ON c.c_addr_id = a.addr_id
			JOIN country co ON a.addr_co_id = co.co_id
			WHERE c.c_id = ?`,
			value.NewInt(cID))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("tpcw: customer %d not found", cID)
		}
		return nil
	})
}

func (w *Workload) orderDisplay(s *Session) error {
	cID := w.pickCustomer(s.R)
	return w.store.Run(true, OrderDisplay.Tables(), func(q Querier) error {
		res, err := q.Exec(`
			SELECT o_id, o_date, o_total, o_status FROM orders
			WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1`,
			value.NewInt(cID))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return nil // customer without orders
		}
		oID := res.Rows[0][0].AsInt()
		_, err = q.Exec(`
			SELECT ol.ol_i_id, i.i_title, ol.ol_qty, ol.ol_discount
			FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id
			WHERE ol.ol_o_id = ?`,
			value.NewInt(oID))
		return err
	})
}

// --- update interactions -----------------------------------------------------

func (w *Workload) customerRegistration(s *Session) error {
	cID := w.nextCust.Add(1)
	addrID := w.nextAddr.Add(1)
	coID := int64(s.R.Intn(numCountries) + 1)
	err := w.store.Run(false, CustomerRegistration.Tables(), func(q Querier) error {
		if _, err := q.Exec(`
			INSERT INTO address (addr_id, addr_street, addr_city, addr_zip, addr_co_id)
			VALUES (?, ?, ?, ?, ?)`,
			value.NewInt(addrID),
			value.NewString("1 New St"),
			value.NewString("Newcity"),
			value.NewString("00000"),
			value.NewInt(coID)); err != nil {
			return err
		}
		_, err := q.Exec(`
			INSERT INTO customer (c_id, c_uname, c_fname, c_lname, c_addr_id,
				c_phone, c_email, c_since, c_discount, c_balance, c_ytd_pmt)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			value.NewInt(cID),
			value.NewString(fmt.Sprintf("user%06d", cID)),
			value.NewString("New"),
			value.NewString("Customer"),
			value.NewInt(addrID),
			value.NewString("555-0000000"),
			value.NewString(fmt.Sprintf("user%06d@example.com", cID)),
			value.NewInt(0),
			value.NewFloat(0.05),
			value.NewFloat(0),
			value.NewFloat(0))
		return err
	})
	if err == nil {
		s.Customer = cID
	}
	return err
}

func (w *Workload) buyConfirm(s *Session) error {
	if len(s.Cart) == 0 {
		// An emulated browser reaching BuyConfirm has filled a cart.
		n := s.R.Intn(3) + 1
		for i := 0; i < n; i++ {
			s.Cart = append(s.Cart, CartLine{
				ItemID: w.pickItem(s.R),
				Qty:    int64(s.R.Intn(3) + 1),
				Cost:   10,
			})
		}
	}
	cart := s.Cart
	s.Cart = nil
	oID := w.nextOrder.Add(1)
	cID := s.Customer
	var subTotal float64
	for _, l := range cart {
		subTotal += l.Cost * float64(l.Qty)
	}
	total := subTotal * 1.08

	return w.store.Run(false, BuyConfirm.Tables(), func(q Querier) error {
		if _, err := q.Exec(`
			INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total,
				o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			value.NewInt(oID), value.NewInt(cID), value.NewInt(0),
			value.NewFloat(subTotal), value.NewFloat(subTotal*0.08), value.NewFloat(total),
			value.NewString("AIR"), value.NewInt(3),
			value.NewInt(1), value.NewInt(1),
			value.NewString("PENDING")); err != nil {
			return err
		}
		for _, l := range cart {
			olID := w.nextOL.Add(1)
			if _, err := q.Exec(`
				INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments)
				VALUES (?, ?, ?, ?, ?, ?)`,
				value.NewInt(olID), value.NewInt(oID), value.NewInt(l.ItemID),
				value.NewInt(l.Qty), value.NewFloat(0), value.NewString("")); err != nil {
				return err
			}
			// Decrement stock; restock when it would drop below 10 (TPC-W
			// clause 2.7.3). The new stock is computed here so the logged
			// statement replays deterministically on the persistence tier.
			res, err := q.Exec(`SELECT i_stock FROM item WHERE i_id = ?`, value.NewInt(l.ItemID))
			if err != nil {
				return err
			}
			if len(res.Rows) == 0 {
				continue
			}
			stock := res.Rows[0][0].AsInt() - l.Qty
			if stock < 10 {
				stock += 21
			}
			if _, err := q.Exec(`UPDATE item SET i_stock = ? WHERE i_id = ?`,
				value.NewInt(stock), value.NewInt(l.ItemID)); err != nil {
				return err
			}
		}
		if _, err := q.Exec(`
			INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire,
				cx_xact_amt, cx_xact_date, cx_co_id)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			value.NewInt(oID), value.NewString("VISA"),
			value.NewString("4111111111111111"), value.NewString("CARD HOLDER"),
			value.NewInt(1000), value.NewFloat(total), value.NewInt(0),
			value.NewInt(1)); err != nil {
			return err
		}
		_, err := q.Exec(`UPDATE customer SET c_balance = c_balance + ? WHERE c_id = ?`,
			value.NewFloat(total), value.NewInt(cID))
		return err
	})
}

func (w *Workload) adminConfirm(s *Session) error {
	itemID := w.pickItem(s.R)
	newCost := 1 + s.R.Float64()*99
	newDate := int64(s.R.Intn(7300))
	related := w.pickItem(s.R)
	return w.store.Run(false, AdminConfirm.Tables(), func(q Querier) error {
		// The index update on (i_subject, i_pub_date) is what makes this
		// interaction expensive on the master (RB-tree rebalancing).
		_, err := q.Exec(`
			UPDATE item SET i_cost = ?, i_pub_date = ?, i_related1 = ?, i_thumbnail = ?
			WHERE i_id = ?`,
			value.NewFloat(newCost), value.NewInt(newDate), value.NewInt(related),
			value.NewString("new_thumb.gif"), value.NewInt(itemID))
		return err
	})
}

// LatestOrderID returns the newest allocated order id (diagnostics).
func (w *Workload) LatestOrderID() int64 { return w.nextOrder.Load() }

// Scale returns the workload's scale.
func (w *Workload) Scale() Scale { return w.scale }
