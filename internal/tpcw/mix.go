package tpcw

import "math/rand"

// Interaction enumerates the fourteen TPC-W web interactions.
type Interaction int

// The fourteen interactions.
const (
	Home Interaction = iota + 1
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm

	numInteractions = int(AdminConfirm)
)

// String implements fmt.Stringer.
func (i Interaction) String() string {
	names := [...]string{
		"", "Home", "NewProducts", "BestSellers", "ProductDetail",
		"SearchRequest", "SearchResults", "ShoppingCart",
		"CustomerRegistration", "BuyRequest", "BuyConfirm",
		"OrderInquiry", "OrderDisplay", "AdminRequest", "AdminConfirm",
	}
	if int(i) < 1 || int(i) >= len(names) {
		return "Unknown"
	}
	return names[i]
}

// IsUpdate reports whether the interaction runs an update transaction on
// the database tier (inserts/updates). ShoppingCart keeps its cart in the
// application session and only reads item data.
func (i Interaction) IsUpdate() bool {
	switch i {
	case CustomerRegistration, BuyConfirm, AdminConfirm:
		return true
	default:
		return false
	}
}

// Tables returns the table set the interaction touches; the scheduler uses
// it for conflict-class routing.
func (i Interaction) Tables() []string {
	switch i {
	case Home:
		return []string{"customer", "item"}
	case NewProducts:
		return []string{"item", "author"}
	case BestSellers:
		return []string{"order_line", "orders", "item", "author"}
	case ProductDetail, AdminRequest:
		return []string{"item", "author"}
	case SearchRequest:
		return []string{"country"}
	case SearchResults:
		return []string{"item", "author"}
	case ShoppingCart:
		return []string{"item"}
	case CustomerRegistration:
		return []string{"customer", "address"}
	case BuyRequest:
		return []string{"customer", "address", "country"}
	case BuyConfirm:
		return []string{"orders", "order_line", "item", "cc_xacts", "customer"}
	case OrderInquiry, OrderDisplay:
		return []string{"customer", "orders", "order_line", "item"}
	case AdminConfirm:
		return []string{"item"}
	default:
		return nil
	}
}

// Mix is a probability distribution over the interactions. Weights need not
// sum to one; Pick normalizes.
type Mix struct {
	Name    string
	weights [numInteractions + 1]float64
	total   float64
}

// NewMix builds a mix from interaction weights.
func NewMix(name string, w map[Interaction]float64) Mix {
	m := Mix{Name: name}
	for i, p := range w {
		m.weights[i] = p
		m.total += p
	}
	return m
}

// Pick draws an interaction.
func (m Mix) Pick(r *rand.Rand) Interaction {
	x := r.Float64() * m.total
	acc := 0.0
	for i := 1; i <= numInteractions; i++ {
		acc += m.weights[i]
		if x < acc {
			return Interaction(i)
		}
	}
	return Home
}

// UpdateFraction returns the probability mass on update interactions.
func (m Mix) UpdateFraction() float64 {
	u := 0.0
	for i := 1; i <= numInteractions; i++ {
		if Interaction(i).IsUpdate() {
			u += m.weights[i]
		}
	}
	return u / m.total
}

// The three standard TPC-W mixes, weighted so the update-transaction
// fractions match the paper's characterization: browsing 5%, shopping 20%,
// ordering 50%.
var (
	// BrowsingMix is dominated by the heavyweight read-only interactions.
	BrowsingMix = NewMix("browsing", map[Interaction]float64{
		Home: 0.20, NewProducts: 0.11, BestSellers: 0.11, ProductDetail: 0.18,
		SearchRequest: 0.09, SearchResults: 0.10, ShoppingCart: 0.05,
		BuyRequest: 0.02, OrderInquiry: 0.03, OrderDisplay: 0.03, AdminRequest: 0.03,
		CustomerRegistration: 0.02, BuyConfirm: 0.02, AdminConfirm: 0.01,
	})
	// ShoppingMix is the paper's (and industry's) most common mix.
	ShoppingMix = NewMix("shopping", map[Interaction]float64{
		Home: 0.14, NewProducts: 0.08, BestSellers: 0.08, ProductDetail: 0.14,
		SearchRequest: 0.07, SearchResults: 0.08, ShoppingCart: 0.08,
		BuyRequest: 0.06, OrderInquiry: 0.03, OrderDisplay: 0.02, AdminRequest: 0.02,
		CustomerRegistration: 0.06, BuyConfirm: 0.11, AdminConfirm: 0.03,
	})
	// OrderingMix is write-heavy.
	OrderingMix = NewMix("ordering", map[Interaction]float64{
		Home: 0.09, NewProducts: 0.02, BestSellers: 0.02, ProductDetail: 0.09,
		SearchRequest: 0.04, SearchResults: 0.05, ShoppingCart: 0.08,
		BuyRequest: 0.06, OrderInquiry: 0.03, OrderDisplay: 0.02, AdminRequest: 0.00,
		CustomerRegistration: 0.12, BuyConfirm: 0.30, AdminConfirm: 0.08,
	})
)

// MixByName resolves a mix by its name ("browsing", "shopping", "ordering").
func MixByName(name string) (Mix, bool) {
	switch name {
	case "browsing":
		return BrowsingMix, true
	case "shopping":
		return ShoppingMix, true
	case "ordering":
		return OrderingMix, true
	default:
		return Mix{}, false
	}
}
