// Package tpcw implements the TPC-W online-bookstore benchmark as used in
// the paper's evaluation: the eight-table schema (customer, address, orders,
// order_line, cc_xacts, item, author, country), a deterministic scalable
// data generator, the fourteen web interactions as parametrized SQL
// (including the complex BestSellers / NewProducts / Search joins), and the
// three standard workload mixes — browsing (~5% updates), shopping (~20%)
// and ordering (~50%).
package tpcw

// SchemaDDL returns the CREATE TABLE / CREATE INDEX statements for the
// TPC-W schema. Every node of the tier executes these identically.
func SchemaDDL() []string {
	return []string{
		`CREATE TABLE country (
			co_id INT PRIMARY KEY,
			co_name VARCHAR(50),
			co_currency VARCHAR(18))`,

		`CREATE TABLE address (
			addr_id INT PRIMARY KEY,
			addr_street VARCHAR(40),
			addr_city VARCHAR(30),
			addr_zip VARCHAR(10),
			addr_co_id INT)`,
		`CREATE INDEX ix_addr_co ON address (addr_co_id)`,

		`CREATE TABLE customer (
			c_id INT PRIMARY KEY,
			c_uname VARCHAR(20),
			c_fname VARCHAR(17),
			c_lname VARCHAR(17),
			c_addr_id INT,
			c_phone VARCHAR(16),
			c_email VARCHAR(50),
			c_since INT,
			c_discount FLOAT,
			c_balance FLOAT,
			c_ytd_pmt FLOAT)`,
		`CREATE UNIQUE INDEX ix_cust_uname ON customer (c_uname)`,

		`CREATE TABLE author (
			a_id INT PRIMARY KEY,
			a_fname VARCHAR(20),
			a_lname VARCHAR(20),
			a_bio VARCHAR(100))`,
		`CREATE INDEX ix_author_lname ON author (a_lname)`,

		`CREATE TABLE item (
			i_id INT PRIMARY KEY,
			i_title VARCHAR(60),
			i_a_id INT,
			i_pub_date INT,
			i_publisher VARCHAR(60),
			i_subject VARCHAR(20),
			i_desc VARCHAR(100),
			i_related1 INT,
			i_thumbnail VARCHAR(40),
			i_image VARCHAR(40),
			i_srp FLOAT,
			i_cost FLOAT,
			i_stock INT)`,
		`CREATE INDEX ix_item_author ON item (i_a_id)`,
		`CREATE INDEX ix_item_subject ON item (i_subject)`,
		`CREATE INDEX ix_item_title ON item (i_title)`,
		`CREATE INDEX ix_item_pubdate ON item (i_subject, i_pub_date)`,

		`CREATE TABLE orders (
			o_id INT PRIMARY KEY,
			o_c_id INT,
			o_date INT,
			o_sub_total FLOAT,
			o_tax FLOAT,
			o_total FLOAT,
			o_ship_type VARCHAR(10),
			o_ship_date INT,
			o_bill_addr_id INT,
			o_ship_addr_id INT,
			o_status VARCHAR(16))`,
		`CREATE INDEX ix_orders_cust ON orders (o_c_id)`,

		`CREATE TABLE order_line (
			ol_id INT PRIMARY KEY,
			ol_o_id INT,
			ol_i_id INT,
			ol_qty INT,
			ol_discount FLOAT,
			ol_comments VARCHAR(100))`,
		`CREATE INDEX ix_ol_order ON order_line (ol_o_id)`,
		`CREATE INDEX ix_ol_item ON order_line (ol_i_id)`,

		`CREATE TABLE cc_xacts (
			cx_o_id INT PRIMARY KEY,
			cx_type VARCHAR(10),
			cx_num VARCHAR(16),
			cx_name VARCHAR(31),
			cx_expire INT,
			cx_xact_amt FLOAT,
			cx_xact_date INT,
			cx_co_id INT)`,
	}
}

// TableNames lists the schema's tables in creation order.
func TableNames() []string {
	return []string{
		"country", "address", "customer", "author",
		"item", "orders", "order_line", "cc_xacts",
	}
}

// Subjects are the item subject categories (the TPC-W spec defines 24).
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS",
	"COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE",
	"MYSTERY", "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE",
	"RELIGION", "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION",
	"SPORTS", "YOUTH", "TRAVEL",
}
