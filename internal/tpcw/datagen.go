package tpcw

import (
	"fmt"
	"math/rand"

	"dmv/internal/heap"
	"dmv/internal/value"
)

// Scale parameterizes the database size. The paper's standard size is 288K
// customers and 100K items (~610 MB); the generator scales down linearly so
// the experiments run on one machine while preserving the working-set-to-
// cache ratios that drive every measured effect.
type Scale struct {
	Items     int
	Customers int
	// OrdersPerCustomer preloads this many historical orders per customer
	// (TPC-W preloads ~0.9). Default 1.
	OrdersPerCustomer int
	// LinesPerOrder is order lines per preloaded order (TPC-W averages 3).
	LinesPerOrder int
	Seed          int64
}

// SmallScale is a laptop-friendly configuration used by tests and examples.
func SmallScale() Scale { return Scale{Items: 1000, Customers: 500} }

// BenchScale is the configuration used by the figure-regeneration benches.
// Sized so real executor compute stays well under the modelled per-node
// service time — the scaling effects must come from the capacity model, not
// from saturating the host running all nodes.
func BenchScale() Scale { return Scale{Items: 400, Customers: 200} }

// FailoverScale is the larger configuration for the fail-over experiments
// (Figures 4-9): the paper uses a bigger database there precisely to
// emphasize the buffer warm-up phase (Section 6.3 switches to 400K
// customers / 800 MB for the cold-backup experiments). The working set must
// span enough pages that faulting it in takes visible time.
func FailoverScale() Scale { return Scale{Items: 2000, Customers: 1000} }

func (s Scale) withDefaults() Scale {
	if s.Items <= 0 {
		s.Items = 1000
	}
	if s.Customers <= 0 {
		s.Customers = 500
	}
	if s.OrdersPerCustomer <= 0 {
		s.OrdersPerCustomer = 1
	}
	if s.LinesPerOrder <= 0 {
		s.LinesPerOrder = 3
	}
	if s.Seed == 0 {
		s.Seed = 20070625 // DSN'07
	}
	return s
}

// NumAuthors returns the author count (TPC-W: items/4, min 25).
func (s Scale) NumAuthors() int {
	n := s.Items / 4
	if n < 25 {
		n = 25
	}
	return n
}

// NumOrders returns the preloaded order count.
func (s Scale) NumOrders() int {
	sc := s.withDefaults()
	return sc.Customers * sc.OrdersPerCustomer
}

const numCountries = 92

var firstNames = []string{
	"Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
	"Ivy", "Jack", "Karen", "Liam", "Mona", "Ned", "Olga", "Paul",
}

var lastNames = []string{
	"Abbot", "Baker", "Carver", "Dunne", "Eliot", "Forster", "Greene",
	"Hardy", "Irving", "Joyce", "Keats", "Lawrence", "Milton", "Norris",
	"Orwell", "Pound", "Quine", "Ruskin", "Swift", "Twain",
}

// Load populates an engine with the deterministic initial image. Every node
// calling Load with the same Scale builds a byte-identical database,
// modelling the shared on-disk image each node mmaps at startup.
func (s Scale) Load(e *heap.Engine) error {
	sc := s.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))

	tid := func(name string) (int, error) {
		id, ok := e.TableID(name)
		if !ok {
			return 0, fmt.Errorf("tpcw: schema missing table %q", name)
		}
		return id, nil
	}

	// country
	ct, err := tid("country")
	if err != nil {
		return err
	}
	rows := make([]value.Row, 0, numCountries)
	for i := 1; i <= numCountries; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Country-%02d", i)),
			value.NewString("CUR"),
		})
	}
	if err := e.Load(ct, rows); err != nil {
		return err
	}

	// address: 2 per customer.
	at, err := tid("address")
	if err != nil {
		return err
	}
	nAddr := 2 * sc.Customers
	rows = rows[:0]
	for i := 1; i <= nAddr; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("%d Main St", rng.Intn(9999)+1)),
			value.NewString(fmt.Sprintf("City-%03d", rng.Intn(500))),
			value.NewString(fmt.Sprintf("%05d", rng.Intn(99999))),
			value.NewInt(int64(rng.Intn(numCountries) + 1)),
		})
	}
	if err := e.Load(at, rows); err != nil {
		return err
	}

	// customer
	cu, err := tid("customer")
	if err != nil {
		return err
	}
	rows = rows[:0]
	for i := 1; i <= sc.Customers; i++ {
		fn := firstNames[rng.Intn(len(firstNames))]
		ln := lastNames[rng.Intn(len(lastNames))]
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("user%06d", i)),
			value.NewString(fn),
			value.NewString(ln),
			value.NewInt(int64(rng.Intn(nAddr) + 1)),
			value.NewString(fmt.Sprintf("555-%07d", rng.Intn(9999999))),
			value.NewString(fmt.Sprintf("user%06d@example.com", i)),
			value.NewInt(int64(rng.Intn(3650))),
			value.NewFloat(float64(rng.Intn(50)) / 100),
			value.NewFloat(0),
			value.NewFloat(0),
		})
	}
	if err := e.Load(cu, rows); err != nil {
		return err
	}

	// author
	au, err := tid("author")
	if err != nil {
		return err
	}
	nAuthors := sc.NumAuthors()
	rows = rows[:0]
	for i := 1; i <= nAuthors; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(firstNames[rng.Intn(len(firstNames))]),
			value.NewString(lastNames[rng.Intn(len(lastNames))]),
			value.NewString("bio"),
		})
	}
	if err := e.Load(au, rows); err != nil {
		return err
	}

	// item
	it, err := tid("item")
	if err != nil {
		return err
	}
	rows = rows[:0]
	for i := 1; i <= sc.Items; i++ {
		srp := 1 + rng.Float64()*99
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Title %06d %s", i, lastNames[rng.Intn(len(lastNames))])),
			value.NewInt(int64(rng.Intn(nAuthors) + 1)),
			value.NewInt(int64(rng.Intn(7300))), // pub date: days
			value.NewString("Publisher"),
			value.NewString(Subjects[rng.Intn(len(Subjects))]),
			value.NewString("desc"),
			value.NewInt(int64(rng.Intn(sc.Items) + 1)),
			value.NewString("thumb.gif"),
			value.NewString("image.gif"),
			value.NewFloat(srp),
			value.NewFloat(srp * (0.5 + rng.Float64()*0.5)),
			value.NewInt(int64(10 + rng.Intn(21))),
		})
	}
	if err := e.Load(it, rows); err != nil {
		return err
	}

	// orders + order_line + cc_xacts
	ot, err := tid("orders")
	if err != nil {
		return err
	}
	olt, err := tid("order_line")
	if err != nil {
		return err
	}
	cct, err := tid("cc_xacts")
	if err != nil {
		return err
	}
	nOrders := sc.Customers * sc.OrdersPerCustomer
	orderRows := make([]value.Row, 0, nOrders)
	lineRows := make([]value.Row, 0, nOrders*sc.LinesPerOrder)
	ccRows := make([]value.Row, 0, nOrders)
	olID := 0
	for o := 1; o <= nOrders; o++ {
		cID := int64((o-1)%sc.Customers + 1)
		sub := 1 + rng.Float64()*200
		orderRows = append(orderRows, value.Row{
			value.NewInt(int64(o)),
			value.NewInt(cID),
			value.NewInt(int64(rng.Intn(3650))),
			value.NewFloat(sub),
			value.NewFloat(sub * 0.08),
			value.NewFloat(sub * 1.08),
			value.NewString("AIR"),
			value.NewInt(int64(rng.Intn(3650))),
			value.NewInt(int64(rng.Intn(2*sc.Customers) + 1)),
			value.NewInt(int64(rng.Intn(2*sc.Customers) + 1)),
			value.NewString("SHIPPED"),
		})
		for l := 0; l < sc.LinesPerOrder; l++ {
			olID++
			lineRows = append(lineRows, value.Row{
				value.NewInt(int64(olID)),
				value.NewInt(int64(o)),
				value.NewInt(int64(rng.Intn(sc.Items) + 1)),
				value.NewInt(int64(rng.Intn(5) + 1)),
				value.NewFloat(float64(rng.Intn(30)) / 100),
				value.NewString(""),
			})
		}
		ccRows = append(ccRows, value.Row{
			value.NewInt(int64(o)),
			value.NewString("VISA"),
			value.NewString("4111111111111111"),
			value.NewString("CARD HOLDER"),
			value.NewInt(int64(rng.Intn(3650))),
			value.NewFloat(sub * 1.08),
			value.NewInt(int64(rng.Intn(3650))),
			value.NewInt(int64(rng.Intn(numCountries) + 1)),
		})
	}
	if err := e.Load(ot, orderRows); err != nil {
		return err
	}
	if err := e.Load(olt, lineRows); err != nil {
		return err
	}
	return e.Load(cct, ccRows)
}
