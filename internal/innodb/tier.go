package innodb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/value"
)

// ErrTierClosed reports use of a closed tier.
var ErrTierClosed = errors.New("innodb: tier closed")

// Querier executes statements inside a tier transaction.
type Querier interface {
	Exec(stmt string, params ...value.Value) (*exec.Result, error)
}

// binRec is one committed update transaction in the binary log.
type binRec struct {
	stmts []loggedStmt
}

type loggedStmt struct {
	text   string
	params []value.Value
}

// FailoverStages records the fail-over timing breakdown of the baseline
// (compare Figure 6: the DB-update/replay stage dominates).
type FailoverStages struct {
	Node    string
	Detect  time.Duration // failure detection
	Replay  time.Duration // binlog replay onto the spare (DB Update)
	Records int           // statements replayed
}

// TierConfig describes a replicated InnoDB tier.
type TierConfig struct {
	// Actives is the number of active nodes kept consistent by the
	// conflict-aware scheduler (the paper's baseline uses two).
	Actives int
	// WithSpare adds one passive spare backup.
	WithSpare bool
	// SpareRefresh is the period between binlog refreshes of the spare (the
	// paper's baseline refreshes every 30 minutes). Zero = never.
	SpareRefresh time.Duration
	// Heartbeat is the failure-detection period (default 10ms).
	Heartbeat time.Duration
	// DB configures each node.
	DB Config
	// DDL and Load build each node's initial state.
	DDL  []string
	Load func(*heap.Engine) error
	// Obs, if non-nil, receives the baseline tier's counters (commits,
	// binlog replay volume, fail-over replay latency).
	Obs *obs.Registry
}

// Tier is a replicated on-disk tier: write-all/read-one across the actives,
// with a periodically refreshed passive spare.
type Tier struct {
	cfg TierConfig

	mu      sync.Mutex
	actives []*DB
	spare   *DB

	binMu    sync.Mutex
	binlog   []binRec
	sparePos int

	lockMu     sync.Mutex
	tableLocks map[string]*sync.Mutex

	rrSeq atomic.Int64

	stageMu sync.Mutex
	stages  []FailoverStages

	commits       *obs.Counter   // committed update transactions
	replayedStmts *obs.Counter   // binlog statements replayed (refresh + fail-over)
	replayUS      *obs.Histogram // fail-over binlog-replay duration

	stop chan struct{}
	done chan struct{}
}

// NewTier builds and starts a replicated InnoDB tier.
func NewTier(cfg TierConfig) (*Tier, error) {
	if cfg.Actives <= 0 {
		cfg.Actives = 2
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Millisecond
	}
	t := &Tier{
		cfg:        cfg,
		tableLocks: make(map[string]*sync.Mutex, 16),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if reg := cfg.Obs; reg != nil {
		t.commits = reg.Counter(obs.InnoCommits)
		t.replayedStmts = reg.Counter(obs.InnoReplayedStmts)
		t.replayUS = reg.Histogram(obs.InnoFailoverReplayUS)
	}
	for i := 0; i < cfg.Actives; i++ {
		db, err := Open(fmt.Sprintf("inno-active%d", i), cfg.DB, cfg.DDL, cfg.Load)
		if err != nil {
			return nil, err
		}
		t.actives = append(t.actives, db)
	}
	if cfg.WithSpare {
		db, err := Open("inno-spare", cfg.DB, cfg.DDL, cfg.Load)
		if err != nil {
			return nil, err
		}
		t.spare = db
	}
	go t.monitor()
	return t, nil
}

// Close stops the background monitor.
func (t *Tier) Close() {
	select {
	case <-t.stop:
		return
	default:
	}
	close(t.stop)
	<-t.done
}

// Actives returns the live active node count.
func (t *Tier) Actives() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, db := range t.actives {
		if db.Alive() {
			n++
		}
	}
	return n
}

// Stages returns the recorded fail-over stage timings.
func (t *Tier) Stages() []FailoverStages {
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	return append([]FailoverStages(nil), t.stages...)
}

// KillActive fail-stops the i-th active node.
func (t *Tier) KillActive(i int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.actives) {
		t.actives[i].Kill()
	}
}

func (t *Tier) lockTables(tables []string) func() {
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	var locked []*sync.Mutex
	for _, tb := range sorted {
		t.lockMu.Lock()
		m, ok := t.tableLocks[tb]
		if !ok {
			m = &sync.Mutex{}
			t.tableLocks[tb] = m
		}
		t.lockMu.Unlock()
		m.Lock()
		locked = append(locked, m)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].Unlock()
		}
	}
}

func (t *Tier) liveActives() []*DB {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*DB, 0, len(t.actives))
	for _, db := range t.actives {
		if db.Alive() {
			out = append(out, db)
		}
	}
	return out
}

// recordingQuerier executes against one node while recording update
// statements for statement-based replication to the other actives.
type recordingQuerier struct {
	db     *DB
	tx     heap.Txn
	logged []loggedStmt
	nStmts int
}

// Exec implements Querier.
func (q *recordingQuerier) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	q.nStmts++
	res, err := q.db.Exec(q.tx, stmt, params...)
	if err != nil {
		return nil, err
	}
	p, perr := q.db.prepared(stmt)
	if perr == nil && !p.ReadOnly() {
		q.logged = append(q.logged, loggedStmt{text: stmt, params: params})
	}
	return res, nil
}

// Update runs fn as an update transaction. The conflict-aware scheduler
// serializes conflicting classes (per-table locks); the transaction executes
// on the first live active and its update statements replay synchronously on
// the remaining actives (write-all), then land in the binlog.
func (t *Tier) Update(tables []string, fn func(q Querier) error) error {
	unlock := t.lockTables(tables)
	defer unlock()
	actives := t.liveActives()
	if len(actives) == 0 {
		return ErrNoActives
	}
	primary := actives[0]
	tx := primary.Eng.BeginUpdate()
	q := &recordingQuerier{db: primary, tx: tx}
	if err := fn(q); err != nil {
		_ = tx.Rollback()
		return err
	}
	if _, err := tx.Commit(nil); err != nil {
		return err
	}
	primary.ChargeService(q.nStmts)
	// Statement-based replication to the other actives.
	for _, db := range actives[1:] {
		err := db.UpdateTxn(func(tx heap.Txn) error {
			for _, s := range q.logged {
				if _, err := db.Exec(tx, s.text, s.params...); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil && db.Alive() {
			return fmt.Errorf("replicate to %s: %w", db.ID, err)
		}
	}
	if len(q.logged) > 0 {
		t.binMu.Lock()
		t.binlog = append(t.binlog, binRec{stmts: q.logged})
		t.binMu.Unlock()
	}
	t.commits.Inc()
	return nil
}

type plainQuerier struct {
	db *DB
	tx heap.Txn
}

// Exec implements Querier.
func (q *plainQuerier) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	return q.db.Exec(q.tx, stmt, params...)
}

// Read runs fn as a read-only transaction on one active (round-robin).
func (t *Tier) Read(fn func(q Querier) error) error {
	actives := t.liveActives()
	if len(actives) == 0 {
		return ErrNoActives
	}
	db := actives[int(t.rrSeq.Add(1))%len(actives)]
	return db.ReadTxn(func(tx heap.Txn) error {
		return fn(&plainQuerier{db: db, tx: tx})
	})
}

// monitor detects failed actives and fails over onto the spare.
func (t *Tier) monitor() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.Heartbeat)
	defer ticker.Stop()
	var lastRefresh time.Time
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			if t.cfg.SpareRefresh > 0 && now.Sub(lastRefresh) >= t.cfg.SpareRefresh {
				lastRefresh = now
				t.refreshSpare()
			}
			t.mu.Lock()
			var deadIdx = -1
			for i, db := range t.actives {
				if !db.Alive() {
					deadIdx = i
					break
				}
			}
			t.mu.Unlock()
			if deadIdx >= 0 {
				t.failover(deadIdx)
			}
		}
	}
}

// refreshSpare replays the binlog prefix accumulated since the last refresh
// onto the spare (the periodic update of the passive backup).
func (t *Tier) refreshSpare() {
	t.mu.Lock()
	spare := t.spare
	t.mu.Unlock()
	if spare == nil || !spare.Alive() {
		return
	}
	_, _ = t.replayOnto(spare)
}

func (t *Tier) replayOnto(db *DB) (int, error) {
	t.binMu.Lock()
	recs := append([]binRec(nil), t.binlog[t.sparePos:]...)
	t.binMu.Unlock()
	nStmts := 0
	for _, r := range recs {
		nStmts += len(r.stmts)
	}
	// Reading the log back from disk is the dominant baseline cost.
	if db.Disk != nil {
		db.Disk.ReplayRead(nStmts)
	}
	for _, r := range recs {
		err := db.UpdateTxn(func(tx heap.Txn) error {
			for _, s := range r.stmts {
				if _, err := db.Exec(tx, s.text, s.params...); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nStmts, err
		}
	}
	t.binMu.Lock()
	t.sparePos += len(recs)
	t.binMu.Unlock()
	t.replayedStmts.Add(int64(nStmts))
	return nStmts, nil
}

// failover replaces a dead active with the spare after bringing the spare up
// to date via binlog replay.
func (t *Tier) failover(deadIdx int) {
	t.mu.Lock()
	if deadIdx >= len(t.actives) || t.actives[deadIdx].Alive() {
		t.mu.Unlock()
		return
	}
	dead := t.actives[deadIdx]
	spare := t.spare
	t.spare = nil
	// Drop the dead node from the active set immediately; reads continue on
	// the survivor at reduced capacity.
	t.actives = append(t.actives[:deadIdx], t.actives[deadIdx+1:]...)
	t.mu.Unlock()

	if spare == nil {
		t.stageMu.Lock()
		t.stages = append(t.stages, FailoverStages{Node: dead.ID})
		t.stageMu.Unlock()
		return
	}
	start := time.Now()
	n, err := t.replayOnto(spare)
	replay := time.Since(start)
	t.replayUS.Observe(replay.Microseconds())
	if err == nil {
		t.mu.Lock()
		t.actives = append(t.actives, spare)
		t.mu.Unlock()
	}
	t.stageMu.Lock()
	t.stages = append(t.stages, FailoverStages{Node: dead.ID, Replay: replay, Records: n})
	t.stageMu.Unlock()
}
