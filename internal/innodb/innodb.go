// Package innodb implements the on-disk baseline the paper compares
// against: the same storage engine as the in-memory tier, but configured
// like a disk-resident InnoDB — a bounded buffer pool in front of a
// synthetic disk (page-miss latency), a WAL fsync per commit, serializable
// locking, and a binary log for statement-based replication.
//
// It also implements the replicated-InnoDB tier used as the fail-over
// baseline in Section 6.3: a conflict-aware scheduler keeps N active nodes
// consistent by executing every update on all of them (write-all/read-one),
// while a passive spare is refreshed from the binlog only periodically;
// fail-over replays the missing binlog suffix onto the spare, which is what
// makes the baseline's fail-over take minutes.
package innodb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/simdisk"
	"dmv/internal/value"
)

// ErrNoActives reports a tier with no live active nodes.
var ErrNoActives = errors.New("innodb: no active nodes")

// Config describes one on-disk database.
type Config struct {
	// CacheCapacity is the buffer-pool size in pages (0 = unbounded, which
	// disables warm-up effects).
	CacheCapacity int
	// Costs is the synthetic disk cost model.
	Costs simdisk.CostModel
	// LockTimeout bounds page-lock waits.
	LockTimeout time.Duration
	// PageCap is rows per page.
	PageCap int
	// ServicePerStmt models the node's CPU (see replica.Options); each
	// statement occupies one of ServiceWidth slots for this long.
	ServicePerStmt time.Duration
	// ServiceWidth is the number of CPUs (default 2 when ServicePerStmt is
	// set; the paper's machines are dual Athlons).
	ServiceWidth int
	// UpdateServicePerStmt is the CPU demand of update-transaction
	// statements (default = ServicePerStmt).
	UpdateServicePerStmt time.Duration
}

// DefaultCosts returns the calibrated cost model used by the experiments:
// the ratios (not the absolute values) are what reproduce the paper's
// shapes. A disk page read costs ~50x an in-memory page fault; a commit
// fsync is charged on every update transaction; replaying a logged
// statement from disk costs one log-read each.
func DefaultCosts() simdisk.CostModel {
	return simdisk.OnDisk(400*time.Microsecond, 5*time.Millisecond, 150*time.Microsecond)
}

// DB is one on-disk database node.
type DB struct {
	ID   string
	Eng  *heap.Engine
	Disk *simdisk.Disk

	alive atomic.Bool

	svcPer    time.Duration
	svcPerUpd time.Duration
	svcSem    chan struct{}

	stmtMu sync.RWMutex
	stmts  map[string]*exec.Prepared
}

// Open builds an on-disk database, creates the schema, and loads the
// initial image.
func Open(id string, cfg Config, ddl []string, load func(*heap.Engine) error) (*DB, error) {
	disk := simdisk.New(cfg.Costs, cfg.CacheCapacity)
	eng := heap.NewEngine(heap.Options{
		PageCap:     cfg.PageCap,
		LockTimeout: cfg.LockTimeout,
		Observer:    disk,
		CommitDelay: disk.CommitFsync,
	})
	for _, d := range ddl {
		if err := exec.ExecDDL(eng, d); err != nil {
			return nil, fmt.Errorf("innodb %s: %w", id, err)
		}
	}
	if load != nil {
		if err := load(eng); err != nil {
			return nil, fmt.Errorf("innodb %s load: %w", id, err)
		}
	}
	db := &DB{ID: id, Eng: eng, Disk: disk, stmts: make(map[string]*exec.Prepared, 64)}
	if cfg.ServicePerStmt > 0 {
		width := cfg.ServiceWidth
		if width <= 0 {
			width = 2
		}
		db.svcPer = cfg.ServicePerStmt
		db.svcPerUpd = cfg.UpdateServicePerStmt
		if db.svcPerUpd <= 0 {
			db.svcPerUpd = cfg.ServicePerStmt
		}
		db.svcSem = make(chan struct{}, width)
	}
	db.alive.Store(true)
	return db, nil
}

// Alive reports liveness.
func (db *DB) Alive() bool { return db.alive.Load() }

// Kill fail-stops the node.
func (db *DB) Kill() { db.alive.Store(false) }

func (db *DB) prepared(text string) (*exec.Prepared, error) {
	db.stmtMu.RLock()
	p, ok := db.stmts[text]
	db.stmtMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := exec.Prepare(text)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	db.stmts[text] = p
	db.stmtMu.Unlock()
	return p, nil
}

// Exec runs one statement in the given transaction with the node's prepared
// cache.
func (db *DB) Exec(tx heap.Txn, text string, params ...value.Value) (*exec.Result, error) {
	p, err := db.prepared(text)
	if err != nil {
		return nil, err
	}
	if ct, ok := tx.(*countedTxn); ok {
		ct.n.n++ // update statements are charged at commit by UpdateTxn
	} else if db.svcSem != nil && tx.ReadOnly() {
		// Occupy one CPU for the statement's service demand, then release
		// before executing: a statement blocked on a page latch does not
		// consume CPU. Update-transaction statements are charged in one
		// piece by ChargeService after commit (after locks are released).
		db.svcSem <- struct{}{}
		time.Sleep(db.svcPer)
		<-db.svcSem
	}
	return p.Exec(tx, params)
}

// ChargeService occupies one CPU for n statements' worth of service time.
// Update transactions call it after commit so the CPU model does not extend
// lock-hold times.
func (db *DB) ChargeService(n int) {
	if db.svcSem == nil || n <= 0 {
		return
	}
	db.svcSem <- struct{}{}
	time.Sleep(time.Duration(n) * db.svcPerUpd)
	<-db.svcSem
}

// ReadTxn runs fn in a read-only transaction over the latest state.
func (db *DB) ReadTxn(fn func(tx heap.Txn) error) error {
	if !db.Alive() {
		return fmt.Errorf("innodb %s: node down", db.ID)
	}
	return fn(db.Eng.BeginRead(nil))
}

// UpdateTxn runs fn in an update transaction and commits (charging the
// fsync cost).
func (db *DB) UpdateTxn(fn func(tx heap.Txn) error) error {
	if !db.Alive() {
		return fmt.Errorf("innodb %s: node down", db.ID)
	}
	tx := db.Eng.BeginUpdate()
	stmts := &stmtCounter{}
	if err := fn(&countedTxn{Txn: tx, n: stmts}); err != nil {
		_ = tx.Rollback()
		return err
	}
	if _, err := tx.Commit(nil); err != nil {
		return err
	}
	db.ChargeService(stmts.n)
	return nil
}

// stmtCounter counts statements executed in an update transaction; the
// count is charged to the node's CPU after commit.
type stmtCounter struct{ n int }

// countedTxn is a pass-through heap.Txn; DB.Exec cannot see transaction
// boundaries, so the statement count lives here. Only the methods the
// executor calls per statement bump the counter meaningfully; counting per
// row operation would double-charge multi-row statements, so the count is
// bumped by Exec below instead.
type countedTxn struct {
	heap.Txn
	n *stmtCounter
}
