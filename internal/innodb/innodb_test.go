package innodb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dmv/internal/heap"
	"dmv/internal/simdisk"
	"dmv/internal/value"
)

var testDDL = []string{
	`CREATE TABLE kv (k INT PRIMARY KEY, v INT)`,
}

func seed(e *heap.Engine) error {
	tid, _ := e.TableID("kv")
	rows := make([]value.Row, 0, 50)
	for i := 1; i <= 50; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewInt(0)})
	}
	return e.Load(tid, rows)
}

func readKV(t *testing.T, db *DB, k int64) int64 {
	t.Helper()
	var out int64
	err := db.ReadTxn(func(tx heap.Txn) error {
		res, err := db.Exec(tx, `SELECT v FROM kv WHERE k = ?`, value.NewInt(k))
		if err != nil {
			return err
		}
		if len(res.Rows) > 0 {
			out = res.Rows[0][0].AsInt()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func writeKV(t *testing.T, q Querier, k, v int64) {
	t.Helper()
	if _, err := q.Exec(`UPDATE kv SET v = ? WHERE k = ?`, value.NewInt(v), value.NewInt(k)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestCommitChargesFsync(t *testing.T) {
	db, err := Open("d", Config{Costs: simdisk.OnDisk(0, time.Millisecond, 0)}, testDDL, seed)
	if err != nil {
		t.Fatal(err)
	}
	err = db.UpdateTxn(func(tx heap.Txn) error {
		_, err := db.Exec(tx, `UPDATE kv SET v = 1 WHERE k = 1`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Disk.Stats().Fsyncs.Load() != 1 {
		t.Fatalf("fsyncs = %d, want 1", db.Disk.Stats().Fsyncs.Load())
	}
}

func TestTierWriteAllKeepsActivesConsistent(t *testing.T) {
	tier, err := NewTier(TierConfig{
		Actives:   2,
		Heartbeat: 5 * time.Millisecond,
		DDL:       testDDL,
		Load:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	for i := 1; i <= 30; i++ {
		err := tier.Update([]string{"kv"}, func(q Querier) error {
			writeKV(t, q, int64(i%10+1), int64(i))
			return nil
		})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Reads round-robin over both actives; both must agree on every key.
	values := map[int64][]int64{}
	for i := 0; i < 20; i++ {
		err := tier.Read(func(q Querier) error {
			for k := int64(1); k <= 10; k++ {
				res, err := q.Exec(`SELECT v FROM kv WHERE k = ?`, value.NewInt(k))
				if err != nil {
					return err
				}
				values[k] = append(values[k], res.Rows[0][0].AsInt())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	for k, vs := range values {
		for _, v := range vs {
			if v != vs[0] {
				t.Fatalf("key %d diverged across actives: %v", k, vs)
			}
		}
	}
}

func TestTierConflictAwareSerialization(t *testing.T) {
	tier, err := NewTier(TierConfig{Actives: 1, DDL: testDDL, Load: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := tier.Update([]string{"kv"}, func(q Querier) error {
					res, err := q.Exec(`SELECT v FROM kv WHERE k = 1`)
					if err != nil {
						return err
					}
					cur := res.Rows[0][0].AsInt()
					_, err = q.Exec(`UPDATE kv SET v = ? WHERE k = 1`, value.NewInt(cur+1))
					return err
				})
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Read-modify-write under the per-class lock: no lost updates.
	var final int64
	err = tier.Read(func(q Querier) error {
		res, err := q.Exec(`SELECT v FROM kv WHERE k = 1`)
		if err != nil {
			return err
		}
		final = res.Rows[0][0].AsInt()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 80 {
		t.Fatalf("counter = %d, want 80 (conflict-aware scheduler must serialize)", final)
	}
}

func TestTierFailoverReplaysBinlog(t *testing.T) {
	tier, err := NewTier(TierConfig{
		Actives:   2,
		WithSpare: true,
		Heartbeat: 5 * time.Millisecond,
		DDL:       testDDL,
		Load:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	for i := 1; i <= 25; i++ {
		err := tier.Update([]string{"kv"}, func(q Querier) error {
			writeKV(t, q, 5, int64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tier.KillActive(0)
	deadline := time.Now().Add(2 * time.Second)
	for tier.Actives() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if tier.Actives() != 2 {
		t.Fatalf("actives = %d after failover", tier.Actives())
	}
	stages := tier.Stages()
	if len(stages) != 1 {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Records == 0 {
		t.Fatal("no binlog records replayed")
	}
	// The promoted spare serves consistent reads.
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		err := tier.Read(func(q Querier) error {
			res, err := q.Exec(`SELECT v FROM kv WHERE k = 5`)
			if err != nil {
				return err
			}
			seen[res.Rows[0][0].AsInt()] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 1 || !seen[25] {
		t.Fatalf("post-failover reads = %v, want only 25", seen)
	}
}

func TestSpareRefreshTrimsReplayWork(t *testing.T) {
	tier, err := NewTier(TierConfig{
		Actives:      1,
		WithSpare:    true,
		SpareRefresh: 20 * time.Millisecond,
		Heartbeat:    5 * time.Millisecond,
		DDL:          testDDL,
		Load:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	for i := 1; i <= 10; i++ {
		err := tier.Update([]string{"kv"}, func(q Querier) error {
			writeKV(t, q, 1, int64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Wait for a refresh to land, then check the spare position advanced.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		tier.binMu.Lock()
		pos := tier.sparePos
		tier.binMu.Unlock()
		if pos == 10 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("spare never refreshed (pos=%d)", func() int {
		tier.binMu.Lock()
		defer tier.binMu.Unlock()
		return tier.sparePos
	}())
}

func TestDefaultCostsRatios(t *testing.T) {
	c := DefaultCosts()
	if c.CommitFsync <= c.PageMiss {
		t.Fatalf("fsync (%v) should dominate a single page miss (%v)", c.CommitFsync, c.PageMiss)
	}
	if c.ReplayRead <= 0 {
		t.Fatal("replay reads must cost something: they dominate baseline fail-over")
	}
	_ = fmt.Sprintf("%v", c)
}
