package replica

import (
	"errors"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/simdisk"
	"dmv/internal/value"
)

func newNodeWithData(t *testing.T, id string, disk *simdisk.Disk) *Node {
	t.Helper()
	opts := heap.Options{PageCap: 4}
	if disk != nil {
		opts.Observer = disk
	}
	e := heap.NewEngine(opts)
	for _, ddl := range []string{
		`CREATE TABLE kv (k INT PRIMARY KEY, v INT)`,
	} {
		if err := exec.ExecDDL(e, ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	tid, _ := e.TableID("kv")
	rows := make([]value.Row, 0, 32)
	for i := 1; i <= 32; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewInt(0)})
	}
	if err := e.Load(tid, rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	return NewNode(Options{ID: id, Engine: e, Disk: disk})
}

func commitKV(t *testing.T, n *Node, k, v int64) {
	t.Helper()
	id, err := n.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := n.TxExec(id, `UPDATE kv SET v = ? WHERE k = ?`,
		[]value.Value{value.NewInt(v), value.NewInt(k)}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	if _, err := n.TxCommit(id); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestUpdateRequiresMasterRole(t *testing.T) {
	n := newNodeWithData(t, "n", nil)
	if _, err := n.TxBegin(false, nil, 0, obs.TraceContext{}); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("err = %v, want ErrNotMaster", err)
	}
	if err := n.Promote(nil); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := n.TxBegin(false, nil, 0, obs.TraceContext{}); err != nil {
		t.Fatalf("after promote: %v", err)
	}
	role, _ := n.Role()
	if role != RoleMaster {
		t.Fatalf("role = %v", role)
	}
}

func TestKillFailsEverything(t *testing.T) {
	n := newNodeWithData(t, "n", nil)
	n.Kill()
	if err := n.Ping(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("ping = %v", err)
	}
	if _, err := n.TxBegin(true, nil, 0, obs.TraceContext{}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("begin = %v", err)
	}
	if err := n.ReceiveWriteSet(&heap.WriteSet{}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("receive = %v", err)
	}
}

func TestJoinBuffering(t *testing.T) {
	master := newNodeWithData(t, "m", nil)
	joiner := newNodeWithData(t, "j", nil)
	support := newNodeWithData(t, "s", nil)
	if err := master.Promote(nil); err != nil {
		t.Fatalf("promote: %v", err)
	}
	master.SetSubscribers([]Peer{support})

	commitKV(t, master, 1, 100)

	// Joiner starts buffering; subsequent commits reach it but are not
	// applied ("stores these modifications into its local queues").
	if err := joiner.StartJoin(); err != nil {
		t.Fatalf("start join: %v", err)
	}
	master.AddSubscriber(joiner)
	commitKV(t, master, 2, 200)
	if got := joiner.Engine().PendingMods(); got != 0 {
		t.Fatalf("joiner applied while joining: %d pending mods", got)
	}

	// Migration: fetch the delta from the support slave, install, drain.
	target, err := support.MaxVersions()
	if err != nil {
		t.Fatal(err)
	}
	have, err := joiner.PageVersions()
	if err != nil {
		t.Fatal(err)
	}
	delta, err := support.DeltaSince(have, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.InstallDelta(delta); err != nil {
		t.Fatal(err)
	}
	if err := joiner.FinishJoin(); err != nil {
		t.Fatal(err)
	}
	role, _ := joiner.Role()
	if role != RoleSlave {
		t.Fatalf("role after join = %v", role)
	}

	// The joiner serves a consistent read at the master's latest vector.
	mv, _ := master.MaxVersions()
	id, err := joiner.TxBegin(true, mv, 0, obs.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := joiner.TxExec(id, `SELECT v FROM kv WHERE k = ?`, []value.Value{value.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 200 {
		t.Fatalf("joined read = %v", res.Rows)
	}
}

func TestCheckpointerThread(t *testing.T) {
	n := newNodeWithData(t, "n", nil)
	if n.LastCheckpoint() != nil {
		t.Fatal("unexpected initial checkpoint")
	}
	cp := n.StartCheckpointer(5 * time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for n.LastCheckpoint() == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cp.Stop()
	blob := n.LastCheckpoint()
	if blob == nil {
		t.Fatal("no checkpoint written")
	}
	// The checkpoint restores into a fresh engine.
	decoded, err := heap.DecodeCheckpoint(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fresh := newNodeWithData(t, "f", nil)
	if err := fresh.Engine().RestoreCheckpoint(decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Checkpoint survives Kill (it models local stable storage).
	n.Kill()
	if n.LastCheckpoint() == nil {
		t.Fatal("checkpoint lost on kill")
	}
}

func TestWarmPagesAndResidentPages(t *testing.T) {
	disk := simdisk.New(simdisk.InMemory(0), 64)
	n := newNodeWithData(t, "n", disk)
	spareDisk := simdisk.New(simdisk.InMemory(0), 64)
	spare := newNodeWithData(t, "sp", spareDisk)

	// Touch some pages via reads.
	id, _ := n.TxBegin(true, nil, 0, obs.TraceContext{})
	if _, err := n.TxExec(id, `SELECT COUNT(*) FROM kv`, nil); err != nil {
		t.Fatal(err)
	}
	keys, err := n.ResidentPages(0)
	if err != nil || len(keys) == 0 {
		t.Fatalf("resident = %d, %v", len(keys), err)
	}
	if err := spare.WarmPages(keys); err != nil {
		t.Fatal(err)
	}
	if spareDisk.ResidentCount() != len(keys) {
		t.Fatalf("spare resident = %d, want %d", spareDisk.ResidentCount(), len(keys))
	}
}

func TestSessionLifecycle(t *testing.T) {
	n := newNodeWithData(t, "n", nil)
	if err := n.Promote(nil); err != nil {
		t.Fatal(err)
	}
	id, err := n.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.TxRollback(id); err != nil {
		t.Fatal(err)
	}
	// Session is gone after rollback.
	if _, err := n.TxExec(id, `SELECT 1`, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
	if _, err := n.TxCommit(9999); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestSubscriberManagement(t *testing.T) {
	n := newNodeWithData(t, "n", nil)
	a := newNodeWithData(t, "a", nil)
	b := newNodeWithData(t, "b", nil)
	n.SetSubscribers([]Peer{a})
	n.AddSubscriber(b)
	n.AddSubscriber(b) // idempotent
	if len(n.Subscribers()) != 2 {
		t.Fatalf("subs = %d", len(n.Subscribers()))
	}
	n.RemoveSubscriber("a")
	subs := n.Subscribers()
	if len(subs) != 1 || subs[0].ID() != "b" {
		t.Fatalf("subs = %v", subs)
	}
}

func TestBroadcastReportsDeadPeer(t *testing.T) {
	var failed string
	master := newNodeWithData(t, "m", nil)
	master.onPeerFailure = func(id string) { failed = id }
	if err := master.Promote(nil); err != nil {
		t.Fatal(err)
	}
	dead := newNodeWithData(t, "dead", nil)
	dead.Kill()
	live := newNodeWithData(t, "live", nil)
	master.SetSubscribers([]Peer{dead, live})

	commitKV(t, master, 3, 30) // must succeed despite the dead subscriber
	if failed != "dead" {
		t.Fatalf("failure hook got %q, want dead", failed)
	}
	// The live subscriber received the write-set.
	mv, _ := master.MaxVersions()
	id, _ := live.TxBegin(true, mv, 0, obs.TraceContext{})
	res, err := live.TxExec(id, `SELECT v FROM kv WHERE k = 3`, nil)
	if err != nil || res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("live read = %v, %v", res, err)
	}
}

func TestCheckpointToDiskSurvivesNodeObject(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Node {
		e := heap.NewEngine(heap.Options{PageCap: 4})
		if err := exec.ExecDDL(e, `CREATE TABLE kv (k INT PRIMARY KEY, v INT)`); err != nil {
			t.Fatal(err)
		}
		tid, _ := e.TableID("kv")
		rows := make([]value.Row, 0, 8)
		for i := 1; i <= 8; i++ {
			rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewInt(0)})
		}
		if err := e.Load(tid, rows); err != nil {
			t.Fatal(err)
		}
		return NewNode(Options{ID: "n", Engine: e, CheckpointDir: dir})
	}
	n := mk()
	if err := n.Promote(nil); err != nil {
		t.Fatal(err)
	}
	commitKV(t, n, 3, 33)
	if err := n.RunCheckpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	n.Kill()

	// A brand-new node object (the "rebooted machine") finds the file.
	reborn := mk()
	blob := reborn.LastCheckpoint()
	if blob == nil {
		t.Fatal("no checkpoint found on disk")
	}
	cp, err := heap.DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	fresh := heap.NewEngine(heap.Options{PageCap: 4})
	if err := exec.ExecDDL(fresh, `CREATE TABLE kv (k INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	tx := fresh.BeginRead(nil)
	res, err := exec.Run(tx, `SELECT v FROM kv WHERE k = 3`)
	if err != nil || res.Rows[0][0].AsInt() != 33 {
		t.Fatalf("restored read = %v, %v", res, err)
	}
}
