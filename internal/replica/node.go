// Package replica implements one DMV database node: a heap storage engine
// wrapped with the replication roles of the paper — master (pre-commit
// write-set broadcast, Figure 2), slave (eager buffering, lazy application),
// and spare backup (subscribed to the replication stream, kept warm for
// fail-over) — plus the reintegration protocol for stale nodes (Section 4.4)
// and the fuzzy checkpointing thread.
//
// A Node exposes the Peer interface. In-process clusters call the methods
// directly; the transport package serves the same interface over TCP.
package replica

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/page"
	"dmv/internal/scrub"
	"dmv/internal/simdisk"
	"dmv/internal/value"
	"dmv/internal/vclock"
	"dmv/internal/wal"
)

// Errors surfaced by node operations.
var (
	// ErrNodeDown reports a call on a failed (killed) node; the fail-stop
	// model makes every operation on a dead node fail this way.
	ErrNodeDown = errors.New("replica: node is down")
	// ErrNotMaster reports an update transaction routed to a non-master.
	ErrNotMaster = errors.New("replica: update transaction on non-master node")
	// ErrNoSession reports an unknown transaction session id.
	ErrNoSession = errors.New("replica: no such transaction session")
	// ErrPeerTimeout reports a peer call that exceeded its deadline: the
	// peer may be alive but slow or partitioned (a gray failure), so
	// callers treat it as suspicion evidence rather than proof of death.
	ErrPeerTimeout = errors.New("replica: peer call deadline exceeded")
	// ErrVersionConflict mirrors the storage-level version-inconsistency
	// abort at the replication API boundary so remote callers can match it.
	ErrVersionConflict = page.ErrVersionConflict
	// ErrDeadlineExpired reports work abandoned because the caller's
	// deadline passed before it started: the session began, executed, or
	// reached commit entry after the client had already given up. It is
	// never raised once commit work has started — a commit either runs to
	// completion or fails for its own reasons (the ErrCommitUncertain
	// discipline stays authoritative for lost commit replies).
	ErrDeadlineExpired = errors.New("replica: caller deadline expired before work started")
)

// Role is a node's current replication role.
type Role uint8

// Node roles.
const (
	RoleSlave Role = iota + 1
	RoleMaster
	RoleSpare
	RoleJoining
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSlave:
		return "slave"
	case RoleMaster:
		return "master"
	case RoleSpare:
		return "spare"
	case RoleJoining:
		return "joining"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Peer is the client view of a database node. *Node implements it directly;
// transport.RemoteNode implements it over TCP.
type Peer interface {
	ID() string
	Ping() error

	// Replication stream (master -> everyone else). A nil return is the
	// acknowledgment the master waits for before confirming the commit.
	ReceiveWriteSet(ws *heap.WriteSet) error

	// Transaction sessions. tc is the scheduler-side trace context; the
	// node records its server-side work as child spans under it (zero
	// context = untraced). deadline is the caller's remaining time budget
	// (0 = none): the node abandons queued statements and commit entry —
	// never commit work already started — once it elapses, so load from
	// callers that have given up stops consuming server capacity.
	TxBegin(readOnly bool, version vclock.Vector, deadline time.Duration, tc obs.TraceContext) (uint64, error)
	TxExec(txID uint64, stmt string, params []value.Value) (*exec.Result, error)
	TxCommit(txID uint64) (vclock.Vector, error)
	TxRollback(txID uint64) error

	// Control plane.
	AbortActiveSessions() (int, error)
	Role() (Role, error)
	Promote(classTables []int) error
	Demote(to Role) error
	DiscardAbove(v vclock.Vector) error
	MaxVersions() (vclock.Vector, error)

	// Reintegration (Section 4.4).
	StartJoin() error
	PageVersions() (heap.PageVersionMap, error)
	DeltaSince(have heap.PageVersionMap, target vclock.Vector) ([]page.Image, error)
	InstallDelta(images []page.Image) error
	FinishJoin() error

	// Anti-entropy scrub (DESIGN.md §15): a snapshot-consistent state
	// digest at a pinned version, the healthy-donor side of changed-page
	// repair, and the unconditional install on the diverged node.
	Digest(table int, version uint64, withPages bool) (scrub.TableDigest, error)
	PageImages(table int, pages []page.ID) ([]page.Image, error)
	RepairPages(images []page.Image) error

	// Buffer-cache warm-up (Section 4.5).
	WarmPages(keys []simdisk.PageKey) error
	ResidentPages(limit int) ([]simdisk.PageKey, error)
}

var _ Peer = (*Node)(nil)

// Options configure a node.
type Options struct {
	// ID names the node (unique within the cluster).
	ID string
	// Engine is the node's storage engine (schema loaded by the caller).
	Engine *heap.Engine
	// Disk, if non-nil, is the node's buffer-cache/disk simulator; WarmPages
	// and ResidentPages operate on it.
	Disk *simdisk.Disk
	// OnPeerFailure, if non-nil, is invoked (asynchronously safe) when a
	// replication broadcast to a subscriber fails.
	OnPeerFailure func(peerID string)
	// OnPeerSuspect, if non-nil, is invoked when a subscriber misses its
	// write-set ack deadline: the peer is slow, not provably dead, so the
	// failure detector gets a hint instead of a verdict.
	OnPeerSuspect func(peerID string)
	// AckTimeout bounds the wait for each subscriber's write-set
	// acknowledgment during the pre-commit broadcast. One stalled slave
	// then delays the commit by at most this long instead of forever; the
	// straggler is reported via OnPeerSuspect and its ack abandoned. Zero
	// waits indefinitely (the paper's pure fail-stop model).
	AckTimeout time.Duration
	// ServicePerStmt models the node's CPU: each statement occupies one of
	// ServiceWidth execution slots for this long. The whole reproduction
	// runs on one machine, so per-node capacity (what actually scales when
	// the paper adds replicas) must be modelled explicitly; sleeps do not
	// consume host CPU, so an N-node tier scales even on few cores.
	ServicePerStmt time.Duration
	// ServiceWidth is the number of CPUs per node (the paper's machines are
	// dual Athlons; default 2 when ServicePerStmt is set).
	ServiceWidth int
	// UpdateServicePerStmt is the CPU demand of update-transaction
	// statements (default = ServicePerStmt). TPC-W updates are lightweight
	// row changes while the read interactions run heavyweight joins, so the
	// two rates differ.
	UpdateServicePerStmt time.Duration
	// CheckpointDir, when set, persists fuzzy checkpoints to
	// <dir>/<id>.ckpt (atomic rename). This is real local stable storage: a
	// node object constructed after a "reboot" finds its predecessor's
	// checkpoint on disk. When empty, checkpoints are kept in memory on the
	// node object, which models the same thing for in-process experiments.
	CheckpointDir string
	// CheckpointSync fsyncs on-disk checkpoints before the atomic rename
	// publishes them, so a power loss right after RunCheckpoint cannot
	// leave a zero-length or torn checkpoint behind the new name. Off by
	// default to keep the fast path for in-process experiments.
	CheckpointSync bool
	// DefaultDeadline bounds sessions whose TxBegin carried no deadline:
	// the node behaves as if every such client asked for this budget. Zero
	// leaves legacy sessions unbounded (cmd/dmv-node exposes it as
	// -deadline-default).
	DefaultDeadline time.Duration
	// Obs, if non-nil, receives cluster-wide node metrics (transactions,
	// aborts, write-set traffic, broadcast latency). The per-node Stats
	// counters are kept regardless; the registry aggregates across nodes.
	Obs *obs.Registry
	// Flight, if non-nil, is the node's flight recorder: its ring is served
	// to peers via the FlightDump RPC when an anomaly dump is assembled
	// anywhere in the cluster.
	Flight *flight.Recorder
}

// Node is one DMV database replica.
type Node struct {
	id   string
	eng  *heap.Engine
	disk *simdisk.Disk

	alive         atomic.Bool
	onPeerFailure func(string)
	onPeerSuspect func(string)
	ackTimeout    time.Duration

	// stallMu guards the gray-failure injection gate: while stallCh is
	// non-nil the node is "stalled" — alive, but inbound probes and
	// replication deliveries block until the channel is closed. Tests use
	// this to model a wedged-but-not-crashed process.
	stallMu sync.Mutex
	stallCh chan struct{} // guarded by stallMu

	roleMu      sync.RWMutex
	role        Role  // guarded by roleMu
	classTables []int // guarded by roleMu

	// commitMu serializes version ticks with write-set broadcasts so every
	// subscriber observes one ordered stream per master.
	commitMu sync.Mutex
	subsMu   sync.RWMutex
	subs     []Peer // guarded by subsMu

	sessMu   sync.Mutex
	sessions map[uint64]*session // guarded by sessMu
	sessSeq  uint64              // guarded by sessMu

	stmtMu sync.RWMutex
	stmts  map[string]*exec.Prepared // guarded by stmtMu

	joinMu  sync.Mutex
	joining bool             // guarded by joinMu
	joinBuf []*heap.WriteSet // guarded by joinMu

	cpMu   sync.Mutex
	lastCP []byte // guarded by cpMu; encoded fuzzy checkpoint (in-memory stable storage)
	cpDir  string // when set, checkpoints live in files instead
	cpSync bool   // fsync checkpoint files before the publishing rename

	svcPer    time.Duration
	svcPerUpd time.Duration
	svcSem    chan struct{}

	// defaultDeadline bounds sessions that arrive without a caller deadline
	// (immutable after NewNode; zero = unbounded).
	defaultDeadline time.Duration

	started time.Time
	reg     *obs.Registry
	tracer  *obs.Tracer
	// roleGauge is the node's labeled dmv_node_role gauge (nil without a
	// registry); updated on every role transition.
	roleGauge *obs.Gauge

	// flight is the node's optional flight recorder (nil-safe).
	flight *flight.Recorder

	stats Stats
	met   nodeMetrics
}

// Stats are cumulative node counters.
type Stats struct {
	ReadTxns    atomic.Int64
	UpdateTxns  atomic.Int64
	Aborts      atomic.Int64
	WriteSetsIn atomic.Int64
}

// nodeMetrics holds the registry handles shared by every node wired to the
// same registry (the cluster-wide aggregates the paper reports); disabled
// (all nil, enabled=false) without a registry.
type nodeMetrics struct {
	enabled     bool
	readTxns    *obs.Counter
	updateTxns  *obs.Counter
	aborts      *obs.Counter
	writeSetsIn *obs.Counter
	wsBytes     *obs.Counter
	acks        *obs.Counter
	bcastFail   *obs.Counter
	bcastTmo    *obs.Counter
	bcastUS     *obs.Histogram
}

// session is one transaction's server-side state. mu serializes the owning
// client's statement stream against an administrative abort (a scheduler
// take-over rolling back a zombie scheduler's transactions must not race a
// statement that is still in flight).
type session struct {
	mu     sync.Mutex
	readTx *heap.ReadTx   // guarded by mu
	upTx   *heap.UpdateTx // guarded by mu
	stmts  int            // guarded by mu; update-transaction statements, charged at commit
	done   bool           // guarded by mu
	sp     *obs.Span      // guarded by mu; server-side child span (nil when untraced)
	expiry time.Time      // guarded by mu; caller's give-up time (zero = unbounded)
}

// expiredLocked reports whether the caller's deadline has passed. Must be
// called with s.mu held.
func (s *session) expiredLocked() bool {
	return !s.expiry.IsZero() && time.Now().After(s.expiry)
}

// NewNode returns a live node in the slave role.
func NewNode(opts Options) *Node {
	n := &Node{
		id:            opts.ID,
		eng:           opts.Engine,
		disk:          opts.Disk,
		role:          RoleSlave,
		onPeerFailure: opts.OnPeerFailure,
		onPeerSuspect: opts.OnPeerSuspect,
		ackTimeout:    opts.AckTimeout,
		sessions:      make(map[uint64]*session, 16),
		stmts:         make(map[string]*exec.Prepared, 64),

		defaultDeadline: opts.DefaultDeadline,
	}
	if opts.ServicePerStmt > 0 {
		width := opts.ServiceWidth
		if width <= 0 {
			width = 2
		}
		n.svcPer = opts.ServicePerStmt
		n.svcPerUpd = opts.UpdateServicePerStmt
		if n.svcPerUpd <= 0 {
			n.svcPerUpd = opts.ServicePerStmt
		}
		n.svcSem = make(chan struct{}, width)
	}
	n.started = time.Now()
	if reg := opts.Obs; reg != nil {
		n.reg = reg
		n.tracer = reg.Tracer()
		n.met = nodeMetrics{
			enabled:     true,
			readTxns:    reg.Counter(obs.NodeReadTxns),
			updateTxns:  reg.Counter(obs.NodeUpdateTxns),
			aborts:      reg.Counter(obs.NodeAborts),
			writeSetsIn: reg.Counter(obs.NodeWriteSetsIn),
			wsBytes:     reg.Counter(obs.NodeWriteSetBytes),
			acks:        reg.Counter(obs.NodeBroadcastAcks),
			bcastFail:   reg.Counter(obs.NodeBroadcastFailures),
			bcastTmo:    reg.Counter(obs.NodeBroadcastTimeouts),
			bcastUS:     reg.Histogram(obs.NodeBroadcastUS),
		}
		n.roleGauge = reg.Gauge(obs.Labeled(obs.NodeRole, "node", opts.ID))
		n.roleGauge.Set(obs.RoleValue(RoleSlave.String()))
		obs.RegisterIdentity(reg, opts.ID, n.started)
	}
	n.flight = opts.Flight
	n.cpDir = opts.CheckpointDir
	n.cpSync = opts.CheckpointSync
	n.alive.Store(true)
	return n
}

// ID implements Peer.
func (n *Node) ID() string { return n.id }

// Engine exposes the storage engine (cluster setup, tests).
func (n *Node) Engine() *heap.Engine { return n.eng }

// Disk exposes the buffer-cache simulator (may be nil).
func (n *Node) Disk() *simdisk.Disk { return n.disk }

// Stats exposes the node counters.
func (n *Node) Stats() *Stats { return &n.stats }

// StartTime reports when the node was constructed (identity metrics).
func (n *Node) StartTime() time.Time { return n.started }

// Alive reports liveness (tests).
func (n *Node) Alive() bool { return n.alive.Load() }

// Kill fail-stops the node: every subsequent call returns ErrNodeDown. The
// node's in-memory state is considered lost; only the last fuzzy checkpoint
// (local stable storage) survives for reintegration after "reboot".
func (n *Node) Kill() { n.alive.Store(false) }

// Revive is used by tests that reuse the same object; real recovery flows
// construct a fresh node and restore the checkpoint.
func (n *Node) Revive() { n.alive.Store(true) }

func (n *Node) check() error {
	if !n.alive.Load() {
		return fmt.Errorf("%w: %s", ErrNodeDown, n.id)
	}
	return nil
}

// SetStalled injects or lifts a gray failure: a stalled node is alive but
// stops answering probes and replication deliveries until un-stalled, the
// slow-but-not-dead behavior the suspicion detector exists to catch.
// Transaction execution is deliberately left unstalled so in-process
// callers already inside the node are not wedged.
func (n *Node) SetStalled(stalled bool) {
	n.stallMu.Lock()
	defer n.stallMu.Unlock()
	if stalled && n.stallCh == nil {
		n.stallCh = make(chan struct{})
	} else if !stalled && n.stallCh != nil {
		close(n.stallCh)
		n.stallCh = nil
	}
}

// stallGate blocks while the node is stalled.
func (n *Node) stallGate() {
	n.stallMu.Lock()
	ch := n.stallCh
	n.stallMu.Unlock()
	if ch != nil {
		<-ch
	}
}

// Ping implements Peer (heartbeat probe).
func (n *Node) Ping() error {
	n.stallGate()
	return n.check()
}

// Role implements Peer.
func (n *Node) Role() (Role, error) {
	if err := n.check(); err != nil {
		return 0, err
	}
	n.roleMu.RLock()
	defer n.roleMu.RUnlock()
	return n.role, nil
}

// SetRole forces the role (cluster setup).
func (n *Node) SetRole(r Role) {
	n.roleMu.Lock()
	n.role = r
	n.roleMu.Unlock()
	n.noteRole(r)
}

// noteRole publishes the role transition on the labeled role gauge.
func (n *Node) noteRole(r Role) {
	n.roleGauge.Set(obs.RoleValue(r.String()))
}

// SetSubscribers replaces the replication subscriber set (masters broadcast
// write-sets to these peers).
func (n *Node) SetSubscribers(peers []Peer) {
	n.subsMu.Lock()
	n.subs = make([]Peer, len(peers))
	copy(n.subs, peers)
	n.subsMu.Unlock()
}

// AddSubscriber appends one subscriber (a joining node).
func (n *Node) AddSubscriber(p Peer) {
	n.subsMu.Lock()
	defer n.subsMu.Unlock()
	for _, s := range n.subs {
		if s.ID() == p.ID() {
			return
		}
	}
	n.subs = append(n.subs, p)
}

// RemoveSubscriber drops a subscriber by id.
func (n *Node) RemoveSubscriber(id string) {
	n.subsMu.Lock()
	defer n.subsMu.Unlock()
	kept := n.subs[:0]
	for _, s := range n.subs {
		if s.ID() != id {
			kept = append(kept, s)
		}
	}
	n.subs = kept
}

// Subscribers returns a copy of the current subscriber list.
func (n *Node) Subscribers() []Peer {
	n.subsMu.RLock()
	defer n.subsMu.RUnlock()
	out := make([]Peer, len(n.subs))
	copy(out, n.subs)
	return out
}

// ReceiveWriteSet implements Peer: eager receipt. Joining nodes buffer; all
// others apply (publishing index entries eagerly, page mods lazily).
func (n *Node) ReceiveWriteSet(ws *heap.WriteSet) error {
	n.stallGate()
	if err := n.check(); err != nil {
		return err
	}
	n.stats.WriteSetsIn.Add(1)
	if n.met.enabled {
		n.met.writeSetsIn.Inc()
		n.met.wsBytes.Add(int64(ws.Size()))
	}
	var sp *obs.Span
	if n.tracer != nil && ws.Trace.Valid() {
		sp = n.tracer.BeginChild("ws-recv", ws.Trace)
		sp.SetNode(n.id)
		sp.SetVersion(ws.Version.String())
	}
	n.joinMu.Lock()
	if n.joining {
		n.joinBuf = append(n.joinBuf, ws)
		n.joinMu.Unlock()
		sp.Mark("buffered")
		sp.Finish("commit", "")
		return nil
	}
	n.joinMu.Unlock()
	err := n.eng.ApplyWriteSet(ws)
	if err != nil {
		sp.Finish("error", err.Error())
		return err
	}
	sp.Mark("applied")
	sp.Finish("commit", "")
	return nil
}

// broadcast ships a write-set to every subscriber concurrently and waits
// for all acknowledgments (the paper's eager pre-commit flush, Figure 2:
// SendUpdate to each replica, then WaitForAcknowledgment). Failed
// subscribers are reported and skipped; the commit proceeds for the
// remaining replicas.
func (n *Node) broadcast(ws *heap.WriteSet) error {
	subs := n.Subscribers()
	if len(subs) == 0 {
		return nil
	}
	var start time.Time
	if n.met.enabled {
		start = time.Now()
		defer func() { n.met.bcastUS.ObserveSince(start) }()
	}
	if len(subs) == 1 {
		n.shipTo(subs[0], ws)
		return nil
	}
	var wg sync.WaitGroup
	for _, p := range subs {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			n.shipTo(p, ws)
		}(p)
	}
	wg.Wait()
	return nil
}

// shipTo sends one write-set to one subscriber and accounts the ack. The
// per-subscriber ship is recorded as a child span of the committing
// transaction: its Total is the ship-to-ack round trip.
//
// With AckTimeout set, the wait for the acknowledgment is bounded: a slave
// that stalls mid-ack delays this commit by at most the deadline, is
// reported suspect, and the broadcast degrades to the remaining replicas —
// the eager-ship contract holds for every peer that is actually keeping
// up. The abandoned delivery either completes late (harmless: write-set
// application is version-ordered) or dies with its connection.
func (n *Node) shipTo(p Peer, ws *heap.WriteSet) {
	var sp *obs.Span
	if n.tracer != nil && ws.Trace.Valid() {
		sp = n.tracer.BeginChild("ws-ship", ws.Trace)
		sp.SetNode(p.ID())
		sp.SetReplica(n.id)
		sp.SetVersion(ws.Version.String())
	}
	var err error
	if n.ackTimeout > 0 {
		done := make(chan error, 1)
		go func() { done <- p.ReceiveWriteSet(ws) }()
		t := time.NewTimer(n.ackTimeout)
		select {
		case err = <-done:
			t.Stop()
		case <-t.C:
			n.met.bcastTmo.Inc()
			sp.Finish("abort", "ack-timeout")
			if n.onPeerSuspect != nil {
				n.onPeerSuspect(p.ID())
			}
			return
		}
	} else {
		err = p.ReceiveWriteSet(ws)
	}
	if err != nil {
		n.met.bcastFail.Inc()
		if errors.Is(err, ErrPeerTimeout) {
			// The transport already bounded the call; same verdict as a
			// local ack deadline - suspicion, not death.
			sp.Finish("abort", "ack-timeout")
			n.met.bcastTmo.Inc()
			if n.onPeerSuspect != nil {
				n.onPeerSuspect(p.ID())
			}
			return
		}
		sp.Finish("abort", "node-down")
		if n.onPeerFailure != nil {
			n.onPeerFailure(p.ID())
		}
		return
	}
	n.met.acks.Inc()
	sp.Mark("ack")
	sp.Finish("commit", "")
}

// --- transaction sessions ---------------------------------------------------

// TxBegin implements Peer. A valid trace context starts a server-side
// child span ("replica-read" on a slave, "master-commit" on a master) that
// lives until commit/rollback; the update transaction additionally carries
// the child's context into its write-set so ship/apply work chains onto it.
func (n *Node) TxBegin(readOnly bool, version vclock.Vector, deadline time.Duration, tc obs.TraceContext) (uint64, error) {
	if err := n.check(); err != nil {
		return 0, err
	}
	if deadline < 0 {
		// The caller gave up before the request arrived: refuse to open a
		// session at all rather than doing work nobody is waiting for.
		return 0, fmt.Errorf("%w: begin on %s", ErrDeadlineExpired, n.id)
	}
	if deadline == 0 {
		deadline = n.defaultDeadline
	}
	s := &session{}
	if deadline > 0 {
		s.expiry = time.Now().Add(deadline)
	}
	if readOnly {
		s.readTx = n.eng.BeginRead(version)
		n.stats.ReadTxns.Add(1)
		n.met.readTxns.Inc()
		if n.tracer != nil && tc.Valid() {
			s.sp = n.tracer.BeginChild("replica-read", tc)
			s.sp.SetNode(n.id)
			s.sp.SetVersion(version.String())
		}
	} else {
		n.roleMu.RLock()
		isMaster := n.role == RoleMaster
		n.roleMu.RUnlock()
		if !isMaster {
			return 0, fmt.Errorf("%w: %s", ErrNotMaster, n.id)
		}
		s.upTx = n.eng.BeginUpdate()
		n.stats.UpdateTxns.Add(1)
		n.met.updateTxns.Inc()
		if n.tracer != nil && tc.Valid() {
			s.sp = n.tracer.BeginChild("master-commit", tc)
			s.sp.SetNode(n.id)
			s.upTx.SetTrace(s.sp.Context())
		}
	}
	n.sessMu.Lock()
	n.sessSeq++
	id := n.sessSeq
	n.sessions[id] = s
	n.sessMu.Unlock()
	return id, nil
}

// AdoptTrace attaches a trace context to an open session that was begun
// untraced (ExecArgs repeat the context on every statement for exactly this
// case). No-op when the session already carries a span or is unknown.
func (n *Node) AdoptTrace(txID uint64, tc obs.TraceContext) {
	if n.tracer == nil || !tc.Valid() {
		return
	}
	s, err := n.session(txID)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sp != nil || s.done {
		return
	}
	kind := "replica-read"
	if s.upTx != nil {
		kind = "master-commit"
	}
	s.sp = n.tracer.BeginChild(kind, tc)
	s.sp.SetNode(n.id)
	if s.upTx != nil {
		s.upTx.SetTrace(s.sp.Context())
	}
}

// RefreshDeadline re-arms an open session's expiry from a freshly
// propagated remaining budget (the transport repeats the caller's budget on
// every statement and at commit, so one slow statement cannot strand the
// session on a stale expiry). No-op for unknown or finished sessions.
func (n *Node) RefreshDeadline(txID uint64, remaining time.Duration) {
	if remaining <= 0 {
		return
	}
	s, err := n.session(txID)
	if err != nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.expiry = time.Now().Add(remaining)
	}
	s.mu.Unlock()
}

func (n *Node) session(id uint64) (*session, error) {
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	s, ok := n.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d on %s", ErrNoSession, id, n.id)
	}
	return s, nil
}

func (n *Node) dropSession(id uint64) {
	n.sessMu.Lock()
	delete(n.sessions, id)
	n.sessMu.Unlock()
}

func (n *Node) prepared(stmt string) (*exec.Prepared, error) {
	n.stmtMu.RLock()
	p, ok := n.stmts[stmt]
	n.stmtMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := exec.Prepare(stmt)
	if err != nil {
		return nil, err
	}
	n.stmtMu.Lock()
	n.stmts[stmt] = p
	n.stmtMu.Unlock()
	return p, nil
}

// TxExec implements Peer: runs one statement inside the session.
func (n *Node) TxExec(txID uint64, stmt string, params []value.Value) (*exec.Result, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	s, err := n.session(txID)
	if err != nil {
		return nil, err
	}
	p, err := n.prepared(stmt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("%w: %d on %s (aborted)", ErrNoSession, txID, n.id)
	}
	if s.expiredLocked() {
		// The caller already gave up on this session; executing the
		// statement would burn a service slot for a reply nobody reads.
		return nil, fmt.Errorf("%w: exec %d on %s", ErrDeadlineExpired, txID, n.id)
	}
	var tx heap.Txn
	if s.readTx != nil {
		tx = s.readTx
	} else {
		tx = s.upTx
	}
	if n.svcSem != nil {
		if s.readTx != nil {
			// Occupy one CPU for the statement's service demand, then
			// release before executing: a statement blocked on a latch does
			// not consume CPU.
			n.svcSem <- struct{}{}
			time.Sleep(n.svcPer)
			<-n.svcSem
		} else {
			// Update transactions hold page locks between statements, so
			// their CPU demand is charged in one piece at commit, after the
			// locks are released — sleeping inside the transaction would
			// amplify lock contention far beyond the modelled hardware.
			s.stmts++
		}
	}
	res, err := p.Exec(tx, params)
	if err != nil && errors.Is(err, page.ErrVersionConflict) {
		n.stats.Aborts.Add(1)
		n.met.aborts.Inc()
	}
	return res, err
}

// TxCommit implements Peer. For update transactions it performs the
// pre-commit broadcast of Figure 2 under the commit mutex so all replicas
// see one ordered stream, then returns the new DBVersion vector that the
// master piggybacks on its commit confirmation to the scheduler.
func (n *Node) TxCommit(txID uint64) (vclock.Vector, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	s, err := n.session(txID)
	if err != nil {
		return nil, err
	}
	defer n.dropSession(txID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("%w: %d on %s (aborted)", ErrNoSession, txID, n.id)
	}
	// Deadline check at commit ENTRY only — before any commit work starts.
	// Once the broadcast below begins there is no further deadline check:
	// a commit runs to completion or fails on its own terms, so a caller
	// deadline can never manufacture a half-committed transaction (the
	// ErrCommitUncertain discipline stays the only ambiguity).
	if s.upTx != nil && s.expiredLocked() {
		s.done = true
		s.sp.Finish("abort", "deadline-expired")
		_ = s.upTx.Rollback()
		return nil, fmt.Errorf("%w: commit entry %d on %s", ErrDeadlineExpired, txID, n.id)
	}
	s.done = true
	if s.readTx != nil {
		s.sp.Finish("commit", "")
		return nil, nil
	}
	s.sp.Mark("exec-done")
	n.commitMu.Lock()
	if err := n.check(); err != nil {
		// The node died while the transaction executed; its effects are
		// internal to the failed master and are discarded (fail-stop).
		n.commitMu.Unlock()
		s.sp.Finish("error", "node-down")
		return nil, err
	}
	ver, err := s.upTx.Commit(n.broadcast)
	n.commitMu.Unlock()
	if err != nil {
		s.sp.Finish("abort", err.Error())
		return nil, err
	}
	if s.sp != nil {
		s.sp.Mark("broadcast-acked")
		s.sp.SetVersion(ver.String())
		s.sp.Finish("commit", "")
	}
	// The transaction's CPU demand is charged after commit, outside the
	// replication mutex: locks are already released and the ordered
	// write-set stream must not wait on the CPU model.
	if n.svcSem != nil && s.stmts > 0 {
		n.svcSem <- struct{}{}
		time.Sleep(time.Duration(s.stmts) * n.svcPerUpd)
		<-n.svcSem
	}
	return ver, nil
}

// TxRollback implements Peer.
func (n *Node) TxRollback(txID uint64) error {
	s, err := n.session(txID)
	if err != nil {
		return err
	}
	defer n.dropSession(txID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	s.done = true
	s.sp.Finish("abort", "rollback")
	if s.upTx != nil {
		return s.upTx.Rollback()
	}
	return nil
}

// --- control plane ----------------------------------------------------------

// AbortActiveSessions rolls back every open update transaction and drops
// every session. A scheduler taking over after a peer scheduler's failure
// sends this to the masters: transactions whose coordinator died must not
// keep holding page locks (Section 4.1; databases that notice the broken
// client connection do this on their own).
func (n *Node) AbortActiveSessions() (int, error) {
	if err := n.check(); err != nil {
		return 0, err
	}
	n.sessMu.Lock()
	sessions := make([]*session, 0, len(n.sessions))
	for id, s := range n.sessions {
		sessions = append(sessions, s)
		delete(n.sessions, id)
	}
	n.sessMu.Unlock()
	aborted := 0
	for _, s := range sessions {
		s.mu.Lock()
		if !s.done {
			s.sp.Finish("abort", "admin-abort")
		}
		if !s.done && s.upTx != nil {
			_ = s.upTx.Rollback()
			aborted++
		}
		s.done = true
		s.mu.Unlock()
	}
	return aborted, nil
}

// Promote implements Peer: the node becomes master for the given conflict
// class. It materializes all buffered modifications (its state must be fully
// current before executing updates) and resets insert cursors so it never
// shares an insert page with the failed master's unreplicated tail.
func (n *Node) Promote(classTables []int) error {
	if err := n.check(); err != nil {
		return err
	}
	if err := n.eng.MaterializeAll(n.eng.MaxVersions()); err != nil {
		return fmt.Errorf("promote %s: %w", n.id, err)
	}
	n.eng.ResetInsertCursors()
	n.eng.Clock().Advance(n.eng.MaxVersions())
	n.roleMu.Lock()
	n.role = RoleMaster
	n.classTables = append([]int(nil), classTables...)
	n.roleMu.Unlock()
	n.noteRole(RoleMaster)
	return nil
}

// Demote implements Peer (master relinquishing its role, or a spare being
// activated into a plain slave).
func (n *Node) Demote(to Role) error {
	if err := n.check(); err != nil {
		return err
	}
	n.roleMu.Lock()
	n.role = to
	n.classTables = nil
	n.roleMu.Unlock()
	n.noteRole(to)
	return nil
}

// DiscardAbove implements Peer.
func (n *Node) DiscardAbove(v vclock.Vector) error {
	if err := n.check(); err != nil {
		return err
	}
	n.eng.DiscardAbove(v)
	return nil
}

// MaxVersions implements Peer.
func (n *Node) MaxVersions() (vclock.Vector, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	return n.eng.MaxVersions(), nil
}

// --- reintegration ----------------------------------------------------------

// StartJoin implements Peer: subsequent write-sets are buffered, not applied
// (the node stores new modifications "into its local queues ... without
// applying these modifications to pages").
func (n *Node) StartJoin() error {
	if err := n.check(); err != nil {
		return err
	}
	n.joinMu.Lock()
	n.joining = true
	n.joinBuf = nil
	n.joinMu.Unlock()
	n.roleMu.Lock()
	n.role = RoleJoining
	n.roleMu.Unlock()
	n.noteRole(RoleJoining)
	return nil
}

// PageVersions implements Peer.
func (n *Node) PageVersions() (heap.PageVersionMap, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	return n.eng.PageVersions(), nil
}

// DeltaSince implements Peer (support-slave side of data migration).
func (n *Node) DeltaSince(have heap.PageVersionMap, target vclock.Vector) ([]page.Image, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	return n.eng.DeltaSince(have, target)
}

// InstallDelta implements Peer (joining-node side of data migration).
func (n *Node) InstallDelta(images []page.Image) error {
	if err := n.check(); err != nil {
		return err
	}
	return n.eng.InstallDelta(images)
}

// FinishJoin implements Peer: drains the buffered write-sets through the
// normal apply path (whose per-page version guard skips anything the
// migrated images already cover) and re-enters the slave role.
func (n *Node) FinishJoin() error {
	if err := n.check(); err != nil {
		return err
	}
	for {
		n.joinMu.Lock()
		if len(n.joinBuf) == 0 {
			n.joining = false
			n.joinMu.Unlock()
			break
		}
		buf := n.joinBuf
		n.joinBuf = nil
		n.joinMu.Unlock()
		for _, ws := range buf {
			if err := n.eng.ApplyWriteSet(ws); err != nil {
				return fmt.Errorf("drain join buffer: %w", err)
			}
		}
	}
	n.roleMu.Lock()
	n.role = RoleSlave
	n.roleMu.Unlock()
	n.noteRole(RoleSlave)
	return nil
}

// Digest implements Peer: the node's snapshot-consistent state digest for
// one table at the pinned version (DESIGN.md §15).
func (n *Node) Digest(table int, version uint64, withPages bool) (scrub.TableDigest, error) {
	if err := n.check(); err != nil {
		return scrub.TableDigest{}, err
	}
	return n.eng.TableDigestAt(table, version, withPages)
}

// PageImages implements Peer (healthy-donor side of changed-page repair).
func (n *Node) PageImages(table int, pages []page.ID) ([]page.Image, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	return n.eng.PageImages(table, pages)
}

// RepairPages implements Peer (diverged-node side of changed-page repair).
func (n *Node) RepairPages(images []page.Image) error {
	if err := n.check(); err != nil {
		return err
	}
	return n.eng.RepairPages(images)
}

// --- observability ----------------------------------------------------------

// ObsSnapshot builds the node's contribution to the cluster aggregation
// plane: identity, DMV version state (applied vs. received frontiers,
// buffered-mod backlog), the full metric snapshot, and the trace ring for
// cluster-wide stitching. Served over transport as the ObsSnapshot RPC.
func (n *Node) ObsSnapshot() (obs.NodeSnapshot, error) {
	if err := n.check(); err != nil {
		return obs.NodeSnapshot{}, err
	}
	n.roleMu.RLock()
	role := n.role
	n.roleMu.RUnlock()
	return obs.NodeSnapshot{
		Node:        n.id,
		Role:        role.String(),
		StartUnix:   n.started.Unix(),
		Applied:     n.eng.AppliedVersions(),
		MaxVer:      n.eng.MaxVersions(),
		PendingMods: n.eng.PendingMods(),
		Snap:        n.reg.Snapshot(),
		Spans:       n.reg.Tracer().Dump(),
	}, nil
}

// FlightDump freezes the node's flight-recorder ring for a cluster-wide
// anomaly dump (served over transport as the FlightDump RPC). A node with
// no recorder contributes an identity-only fragment rather than an error,
// so a cluster with partial flight wiring still dumps.
func (n *Node) FlightDump() (flight.NodeDump, error) {
	if err := n.check(); err != nil {
		return flight.NodeDump{}, err
	}
	if n.flight == nil {
		return flight.NodeDump{Node: n.id}, nil
	}
	return n.flight.NodeDump(), nil
}

// --- buffer-cache warm-up ---------------------------------------------------

// WarmPages implements Peer: the spare backup touches the shipped page ids
// so they stay resident (page-id-transfer warm-up).
func (n *Node) WarmPages(keys []simdisk.PageKey) error {
	if err := n.check(); err != nil {
		return err
	}
	if n.disk == nil {
		return nil
	}
	for _, k := range keys {
		n.disk.Warm(k.Table, k.Page)
	}
	return nil
}

// ResidentPages implements Peer: an active slave reports its hottest pages.
func (n *Node) ResidentPages(limit int) ([]simdisk.PageKey, error) {
	if err := n.check(); err != nil {
		return nil, err
	}
	if n.disk == nil {
		return nil, nil
	}
	return n.disk.ResidentSet(limit), nil
}

// --- checkpointing ----------------------------------------------------------

// RunCheckpoint takes a fuzzy checkpoint and stores it on the node's local
// stable storage (survives Kill; used to restore before reintegration).
// With CheckpointDir set the flush goes to disk via write-to-temp + atomic
// rename, matching the paper's "a flush of a page and its version number is
// atomic" at checkpoint granularity.
func (n *Node) RunCheckpoint() error {
	if err := n.check(); err != nil {
		return err
	}
	cp := n.eng.FuzzyCheckpoint()
	blob, err := heap.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	n.cpMu.Lock()
	defer n.cpMu.Unlock()
	if n.cpDir != "" {
		if n.cpSync {
			// Durable publish: temp write + fsync + atomic rename, so a
			// crash mid-checkpoint leaves either the old file or the new
			// one, never a torn blob under the published name.
			if err := wal.WriteFileDurable(nil, n.checkpointPath(), blob); err != nil {
				return fmt.Errorf("write checkpoint: %w", err)
			}
			return nil
		}
		tmp := n.checkpointPath() + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			return fmt.Errorf("write checkpoint: %w", err)
		}
		if err := os.Rename(tmp, n.checkpointPath()); err != nil {
			return fmt.Errorf("publish checkpoint: %w", err)
		}
		return nil
	}
	n.lastCP = blob
	return nil
}

func (n *Node) checkpointPath() string {
	return filepath.Join(n.cpDir, n.id+".ckpt")
}

// LastCheckpoint returns the stored checkpoint blob (nil if none). It is
// readable even when the node is down: it is the on-disk state a rebooted
// machine finds.
func (n *Node) LastCheckpoint() []byte {
	n.cpMu.Lock()
	defer n.cpMu.Unlock()
	if n.cpDir != "" {
		blob, err := os.ReadFile(n.checkpointPath())
		if err != nil {
			return nil
		}
		return blob
	}
	return n.lastCP
}

// Checkpointer runs RunCheckpoint on a period until stopped.
type Checkpointer struct {
	stop chan struct{}
	done chan struct{}
}

// StartCheckpointer launches the node's checkpointing thread.
func (n *Node) StartCheckpointer(period time.Duration) *Checkpointer {
	c := &Checkpointer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := n.RunCheckpoint(); err != nil {
					return // node died; the thread dies with it
				}
			case <-c.stop:
				return
			}
		}
	}()
	return c
}

// Stop terminates the checkpointing thread and waits for it to exit.
func (c *Checkpointer) Stop() {
	close(c.stop)
	<-c.done
}
