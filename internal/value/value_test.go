package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick produce arbitrary values across all kinds.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	var v Value
	switch r.Intn(4) {
	case 0:
		v = NewNull()
	case 1:
		v = NewInt(r.Int63n(2000) - 1000)
	case 2:
		v = NewFloat((r.Float64() - 0.5) * 100)
	default:
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		v = NewString(string(b))
	}
	return reflect.ValueOf(v)
}

func TestCompareTotalOrderProperties(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(a, b Value) bool { return Compare(a, b) == -Compare(b, a) }
	if err := quick.Check(anti, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	// Reflexivity: Compare(a,a) == 0.
	refl := func(a Value) bool { return Compare(a, a) == 0 }
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	// Transitivity: a<=b && b<=c => a<=c.
	trans := func(a, b, c Value) bool {
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestKindRanking(t *testing.T) {
	if Compare(NewNull(), NewInt(-999)) >= 0 {
		t.Error("NULL must sort before numbers")
	}
	if Compare(NewInt(999), NewString("")) >= 0 {
		t.Error("numbers must sort before strings")
	}
	if Compare(NewInt(2), NewFloat(2.5)) >= 0 {
		t.Error("int/float compare numerically")
	}
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Error("2 == 2.0")
	}
}

func TestRowKeyInjective(t *testing.T) {
	// Distinct rows must produce distinct keys (grouping correctness).
	f := func(a, b []Value) bool {
		ra, rb := Row(a), Row(b)
		if CompareRows(ra, rb) == 0 {
			return ra.Key() == rb.Key()
		}
		return ra.Key() != rb.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowKeyTrap(t *testing.T) {
	// A classic concatenation trap: ("ab","c") vs ("a","bc").
	a := Row{NewString("ab"), NewString("c")}
	b := Row{NewString("a"), NewString("bc")}
	if a.Key() == b.Key() {
		t.Fatalf("keys collide: %q", a.Key())
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		t    ColumnType
		want Value
	}{
		{NewString("42"), TInt, NewInt(42)},
		{NewFloat(3.9), TInt, NewInt(3)},
		{NewInt(7), TFloat, NewFloat(7)},
		{NewInt(7), TString, NewString("7")},
		{NewNull(), TInt, NewNull()},
	}
	for _, tc := range cases {
		got := Coerce(tc.in, tc.t)
		if !Equal(got, tc.want) || got.K != tc.want.K {
			t.Errorf("Coerce(%v, %v) = %v, want %v", tc.in, tc.t, got, tc.want)
		}
	}
}

func TestCompareRowsPrefix(t *testing.T) {
	short := Row{NewInt(1)}
	long := Row{NewInt(1), NewInt(2)}
	if CompareRows(short, long) >= 0 {
		t.Error("shorter prefix must sort first")
	}
	if CompareRows(long, long) != 0 {
		t.Error("equal rows")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	cp := r.Clone()
	cp[0] = NewInt(99)
	if r[0].AsInt() != 1 {
		t.Error("clone aliases the original")
	}
	if Row(nil).Clone() != nil {
		t.Error("nil clone should stay nil")
	}
}

func TestValueStringForms(t *testing.T) {
	if NewString("a").String() != `"a"` {
		t.Errorf("string quoting: %s", NewString("a"))
	}
	if NewNull().String() != "NULL" {
		t.Errorf("null rendering")
	}
	if NewInt(-3).AsString() != "-3" {
		t.Errorf("int as string")
	}
	if NewString("2.5").AsFloat() != 2.5 {
		t.Errorf("string as float")
	}
}
