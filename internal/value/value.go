// Package value defines the SQL value model shared by the storage engines,
// the SQL executor, and the replication wire format.
//
// A Value is a small tagged union over the four column types the TPC-W
// schema needs (64-bit integers, 64-bit floats, strings, and NULL). Rows are
// flat slices of values in table-column order. Values are comparable with a
// total order (NULL sorts first, then numerics by numeric value, then
// strings lexicographically) so they can key the red-black-tree indexes.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// Value kinds. Null is deliberately the zero value so that a zero Value is a
// valid SQL NULL.
const (
	Null Kind = iota
	Int
	Float
	String
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	default:
		return "KIND(" + strconv.Itoa(int(k)) + ")"
	}
}

// Value is one SQL datum. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Row is one table row, in declared column order.
type Row []Value

// Convenience constructors.

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: String, S: s} }

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == Null }

// AsInt returns the value coerced to int64. Floats truncate; strings parse
// (returning 0 on failure); NULL is 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case Int:
		return v.I
	case Float:
		return int64(v.F)
	case String:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat returns the value coerced to float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	case String:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// AsString returns the value rendered as a string.
func (v Value) AsString() string {
	switch v.K {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	default:
		return ""
	}
}

// String implements fmt.Stringer; strings are quoted for readability.
func (v Value) String() string {
	if v.K == String {
		return strconv.Quote(v.S)
	}
	if v.K == Null {
		return "NULL"
	}
	return v.AsString()
}

// Compare returns -1, 0, or +1 ordering a before/equal/after b. The order is
// total: NULL < numbers < strings; Int and Float compare numerically with
// each other.
func Compare(a, b Value) int {
	ra, rb := rank(a.K), rank(b.K)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		if a.K == Int && b.K == Int {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default: // both strings
		return strings.Compare(a.S, b.S)
	}
}

func rank(k Kind) int {
	switch k {
	case Null:
		return 0
	case Int, Float:
		return 1
	default:
		return 2
	}
}

// Equal reports whether a and b are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// CompareRows orders two rows (or row prefixes) lexicographically; shorter
// prefixes sort first when equal so far.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Clone returns a deep copy of the row (values are already value types, so a
// shallow copy of the slice suffices; the backing array is new).
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for diagnostics.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key renders a row as a stable map key for grouping and duplicate
// elimination. The encoding is injective: each value is prefixed by its kind
// and length so distinct rows never collide.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		switch v.K {
		case Null:
			b.WriteString("n;")
		case Int:
			b.WriteString("i")
			b.WriteString(strconv.FormatInt(v.I, 10))
			b.WriteByte(';')
		case Float:
			b.WriteString("f")
			b.WriteString(strconv.FormatFloat(v.F, 'b', -1, 64))
			b.WriteByte(';')
		case String:
			b.WriteString("s")
			b.WriteString(strconv.Itoa(len(v.S)))
			b.WriteByte(':')
			b.WriteString(v.S)
			b.WriteByte(';')
		}
	}
	return b.String()
}

// ColumnType is the declared type of a table column.
type ColumnType uint8

// Column types supported by the engine.
const (
	TInt ColumnType = iota + 1
	TFloat
	TString
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Coerce converts v to column type t, mirroring permissive SQL assignment.
func Coerce(v Value, t ColumnType) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case TInt:
		if v.K == Int {
			return v
		}
		return NewInt(v.AsInt())
	case TFloat:
		if v.K == Float {
			return v
		}
		return NewFloat(v.AsFloat())
	case TString:
		if v.K == String {
			return v
		}
		return NewString(v.AsString())
	default:
		return v
	}
}
