package transport

import (
	"errors"
	"testing"

	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/scrub"
	"dmv/internal/value"
)

// TestScrubRPCRoundTrip drives the anti-entropy RPCs over real TCP: a digest
// taken remotely matches the local one, diverged pages ship as images from
// the master, and RepairPages installed over the wire converges the slave.
func TestScrubRPCRoundTrip(t *testing.T) {
	master := newTPCNode(t, "m")
	slave := newTPCNode(t, "s")
	if err := master.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	master.SetSubscribers([]replica.Peer{slave})

	msrv, err := ServeNode(master, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve master: %v", err)
	}
	defer msrv.Close()
	ssrv, err := ServeNode(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve slave: %v", err)
	}
	defer ssrv.Close()
	mPeer, err := DialNode("m", msrv.Addr())
	if err != nil {
		t.Fatalf("dial master: %v", err)
	}
	sPeer, err := DialNode("s", ssrv.Addr())
	if err != nil {
		t.Fatalf("dial slave: %v", err)
	}

	// A few replicated commits so the digest covers real mutations.
	for i := 0; i < 5; i++ {
		txID, err := master.TxBegin(false, nil, 0, obs.TraceContext{})
		if err != nil {
			t.Fatalf("begin: %v", err)
		}
		if _, err := master.TxExec(txID, `UPDATE kv SET v = ? WHERE k = ?`,
			[]value.Value{value.NewString("x"), value.NewInt(int64(i + 1))}); err != nil {
			t.Fatalf("exec: %v", err)
		}
		if _, err := master.TxCommit(txID); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	mv, err := mPeer.MaxVersions()
	if err != nil {
		t.Fatalf("max versions: %v", err)
	}
	v := mv.Get(0)

	md, err := mPeer.Digest(0, v, true)
	if err != nil {
		t.Fatalf("master digest: %v", err)
	}
	sd, err := sPeer.Digest(0, v, true)
	if err != nil {
		t.Fatalf("slave digest: %v", err)
	}
	if md.Root != sd.Root {
		t.Fatalf("healthy replicas disagree: %x vs %x", md.Root, sd.Root)
	}
	if len(md.Pages) == 0 {
		t.Fatal("withPages digest carried no leaves over the wire")
	}
	// A digest pinned below a page's applied version must keep its sentinel
	// error identity across the wire (the sweep's retry signal): commit more,
	// materialize the slave past v with a versioned read, re-pin at v.
	txID, err := master.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := master.TxExec(txID, `UPDATE kv SET v = ? WHERE k = 1`,
		[]value.Value{value.NewString("newer")}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	v2, err := master.TxCommit(txID)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	rID, err := sPeer.TxBegin(true, v2, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("read begin: %v", err)
	}
	if _, err := sPeer.TxExec(rID, `SELECT v FROM kv WHERE k = 1`, nil); err != nil {
		t.Fatalf("read exec: %v", err)
	}
	if _, err := sPeer.TxCommit(rID); err != nil {
		t.Fatalf("read commit: %v", err)
	}
	if _, err := sPeer.Digest(0, v, false); !errors.Is(err, page.ErrVersionConflict) {
		t.Fatalf("stale-pin digest err = %v, want ErrVersionConflict", err)
	}
	// Re-pin the rest of the test at the new frontier.
	v = v2.Get(0)
	md, err = mPeer.Digest(0, v, true)
	if err != nil {
		t.Fatalf("master digest at v2: %v", err)
	}

	// Silent corruption on the slave, then the remote repair path.
	tbl, pg, _, err := slave.Engine().CorruptRandomRow(11)
	if err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if tbl != 0 {
		t.Fatalf("corrupted table %d, want 0", tbl)
	}
	sd2, err := sPeer.Digest(0, v, true)
	if err != nil {
		t.Fatalf("post-corruption digest: %v", err)
	}
	diff := scrub.DiffPages(md, sd2)
	if len(diff) != 1 || diff[0] != pg {
		t.Fatalf("diff = %v, want exactly [%d]", diff, pg)
	}
	imgs, err := mPeer.PageImages(0, diff)
	if err != nil || len(imgs) != 1 {
		t.Fatalf("page images = %d, %v", len(imgs), err)
	}
	if err := sPeer.RepairPages(imgs); err != nil {
		t.Fatalf("repair: %v", err)
	}
	sd3, err := sPeer.Digest(0, v, false)
	if err != nil {
		t.Fatalf("post-repair digest: %v", err)
	}
	if sd3.Root != md.Root {
		t.Fatalf("repair over the wire did not converge: %x vs %x", sd3.Root, md.Root)
	}
}
