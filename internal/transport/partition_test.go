package transport

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/faultnet"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/replica"
	"dmv/internal/scheduler"
	"dmv/internal/value"
)

// newAcctNode builds a node with one account row at balance zero — the
// committed-increment counter the partition test audits for loss.
func newAcctNode(t *testing.T, id string, ackTimeout time.Duration) *replica.Node {
	t.Helper()
	e := heap.NewEngine(heap.Options{PageCap: 8})
	if err := exec.ExecDDL(e, `CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	tid, _ := e.TableID("acct")
	if err := e.Load(tid, []value.Row{{value.NewInt(1), value.NewInt(0)}}); err != nil {
		t.Fatalf("load: %v", err)
	}
	return replica.NewNode(replica.Options{ID: id, Engine: e, AckTimeout: ackTimeout})
}

// runPartitionScenario is one full seeded run of the acceptance scenario:
// a master and two slaves on real TCP links policed by faultnet, a
// scheduler committing increments through the master, a symmetric
// partition isolating the master mid-workload (the node keeps running —
// this is a partition, not a crash), a probe loop walking the master
// through suspect to dead, and the commit-fenced FailoverMaster rollback.
// It returns the (kind:node) event timeline, the number of commits
// acknowledged to the client, and the balance the new master serves.
func runPartitionScenario(t *testing.T, seed int64) (timeline []string, acked int64, final int64) {
	t.Helper()
	nw := faultnet.New(seed)

	mk := func(id string) (*replica.Node, string) {
		n := newAcctNode(t, id, 100*time.Millisecond)
		lis, err := nw.Listen(id, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %s: %v", id, err)
		}
		srv, err := ServeNodeListener(n, lis, nil)
		if err != nil {
			t.Fatalf("serve %s: %v", id, err)
		}
		t.Cleanup(srv.Close)
		return n, srv.Addr()
	}
	mNode, mAddr := mk("m")
	_, s1Addr := mk("s1")
	_, s2Addr := mk("s2")

	if err := mNode.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The master's eager write-set broadcast crosses the fault net too:
	// the partition lands mid-broadcast, not just on the client plane.
	subOpts := ClientOptions{
		Dial:        nw.Dialer("m"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		Seed:        seed,
	}
	ms1, err := DialNodeOpts("s1", s1Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s1: %v", err)
	}
	ms2, err := DialNodeOpts("s2", s2Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s2: %v", err)
	}
	mNode.SetSubscribers([]replica.Peer{ms1, ms2})

	// Scheduler plane: every peer call carries a deadline.
	cOpts := ClientOptions{
		Dial:        nw.Dialer("sched"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		PingTimeout: 80 * time.Millisecond,
		Seed:        seed,
	}
	rm, err := DialNodeOpts("m", mAddr, cOpts)
	if err != nil {
		t.Fatalf("dial m: %v", err)
	}
	rs1, err := DialNodeOpts("s1", s1Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s1: %v", err)
	}
	rs2, err := DialNodeOpts("s2", s2Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s2: %v", err)
	}
	// Single-attempt probe client so each miss costs exactly one deadline.
	probe, err := DialNodeOpts("m", mAddr, ClientOptions{
		Dial:          nw.Dialer("sched"),
		DialTimeout:   80 * time.Millisecond,
		PingTimeout:   80 * time.Millisecond,
		RetryAttempts: -1,
	})
	if err != nil {
		t.Fatalf("dial probe: %v", err)
	}

	ref := mNode.Engine()
	sched, err := scheduler.New(scheduler.Options{Seed: seed, MaxRetries: 2}, ref.NumTables(), ref.TableID)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	sched.SetMaster(0, rm)
	sched.AddSlave(rs1)
	sched.AddSlave(rs2)

	record := func(kind, node string) { timeline = append(timeline, kind+":"+node) }

	increment := func() error {
		return sched.Run(scheduler.TxnSpec{Tables: []string{"acct"}}, func(tx *scheduler.Txn) error {
			_, err := tx.Exec(`UPDATE acct SET bal = bal + 1 WHERE id = 1`)
			return err
		})
	}

	var ackedN atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := increment(); err == nil {
				ackedN.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let a batch of commits be acknowledged, then cut every link to the
	// master in both directions. The master process keeps running.
	waitDeadline := time.Now().Add(5 * time.Second)
	for ackedN.Load() < 10 {
		if time.Now().After(waitDeadline) {
			t.Fatal("workload never reached 10 acked commits")
		}
		time.Sleep(2 * time.Millisecond)
	}
	nw.Isolate("m")

	// Probe loop: consecutive deadline misses walk the master down the
	// suspicion ladder, then the commit-fenced fail-over elects a slave.
	var newMaster replica.Peer
	misses := 0
	failDeadline := time.Now().Add(10 * time.Second)
	for newMaster == nil {
		if time.Now().After(failDeadline) {
			t.Fatal("fail-over never triggered")
		}
		time.Sleep(25 * time.Millisecond)
		if err := probe.Ping(); err == nil {
			misses = 0
			continue
		} else if !errors.Is(err, replica.ErrPeerTimeout) && !errors.Is(err, replica.ErrNodeDown) {
			t.Fatalf("probe: unexpected error %v", err)
		}
		misses++
		if misses == 2 {
			record("suspect", "m")
		}
		if misses >= 4 {
			record("failed", "m")
			nm, err := sched.FailoverMaster(0, []replica.Peer{rs1, rs2})
			if err != nil {
				t.Fatalf("FailoverMaster: %v", err)
			}
			newMaster = nm
			record("elected", nm.ID())
			sched.Remove(nm.ID()) // masters do not serve scheduled reads
		}
	}

	close(stop)
	wg.Wait()

	// The workload must keep committing against the elected master.
	for i := 0; i < 5; i++ {
		if err := increment(); err != nil {
			t.Fatalf("post-fail-over commit %d: %v", i, err)
		}
		ackedN.Add(1)
	}
	acked = ackedN.Load()

	// Audit the surviving state on the new master.
	txID, err := newMaster.TxBegin(true, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("audit begin: %v", err)
	}
	res, err := newMaster.TxExec(txID, `SELECT bal FROM acct WHERE id = 1`, nil)
	if err != nil {
		t.Fatalf("audit read: %v", err)
	}
	if _, err := newMaster.TxCommit(txID); err != nil {
		t.Fatalf("audit commit: %v", err)
	}
	final = res.Rows[0][0].AsInt()
	return timeline, acked, final
}

// TestPartitionedMasterFailover is the headline acceptance test: a seeded
// faultnet partition (not a kill) of the active master completes
// fail-over with zero acknowledged-commit loss, and the same seed
// reproduces the identical event timeline twice.
func TestPartitionedMasterFailover(t *testing.T) {
	const seed = 42
	tl1, acked1, final1 := runPartitionScenario(t, seed)
	if final1 != acked1 {
		t.Fatalf("acked-commit loss: %d acknowledged, %d applied on the new master (%s)",
			acked1, final1, diffSign(acked1, final1))
	}
	want := []string{"suspect:m", "failed:m", "elected:s1"}
	if !reflect.DeepEqual(tl1, want) {
		t.Fatalf("timeline = %v, want %v", tl1, want)
	}

	tl2, acked2, final2 := runPartitionScenario(t, seed)
	if final2 != acked2 {
		t.Fatalf("acked-commit loss on rerun: %d acknowledged, %d applied", acked2, final2)
	}
	if !reflect.DeepEqual(tl1, tl2) {
		t.Fatalf("same seed, different timelines:\n run 1: %v\n run 2: %v", tl1, tl2)
	}
}

func diffSign(acked, applied int64) string {
	if applied < acked {
		return "lost commits"
	}
	return fmt.Sprintf("%d phantom commits", applied-acked)
}
