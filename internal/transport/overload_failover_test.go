package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/faultnet"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/replica"
	"dmv/internal/scheduler"
	"dmv/internal/value"
)

// TestOverloadDuringPartitionedFailover is the stampede chaos test: a
// cluster driven well past its admission capacity loses its master to a
// partition mid-overload, fails over, and keeps absorbing the stampede.
// The assertions are the two properties overload must never cost:
//
//   - zero acked-commit loss — every increment acknowledged to a caller is
//     in the surviving master's state after fail-over, even though most
//     arrivals were being shed or abandoned around it;
//   - bounded queue memory — the admission queue depth never exceeds its
//     configured cap while the stampede piles onto a dead master.
func TestOverloadDuringPartitionedFailover(t *testing.T) {
	const seed = 911
	nw := faultnet.New(seed)

	mk := func(id string) (*replica.Node, string) {
		e := heap.NewEngine(heap.Options{PageCap: 8})
		if err := exec.ExecDDL(e, `CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`); err != nil {
			t.Fatalf("ddl: %v", err)
		}
		tid, _ := e.TableID("acct")
		if err := e.Load(tid, []value.Row{{value.NewInt(1), value.NewInt(0)}}); err != nil {
			t.Fatalf("load: %v", err)
		}
		n := replica.NewNode(replica.Options{ID: id, Engine: e, AckTimeout: 100 * time.Millisecond})
		lis, err := nw.Listen(id, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %s: %v", id, err)
		}
		srv, err := ServeNodeListener(n, lis, nil)
		if err != nil {
			t.Fatalf("serve %s: %v", id, err)
		}
		t.Cleanup(srv.Close)
		return n, srv.Addr()
	}
	mNode, mAddr := mk("m")
	_, s1Addr := mk("s1")
	_, s2Addr := mk("s2")

	if err := mNode.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	subOpts := ClientOptions{
		Dial:        nw.Dialer("m"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		Seed:        seed,
	}
	ms1, err := DialNodeOpts("s1", s1Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s1: %v", err)
	}
	ms2, err := DialNodeOpts("s2", s2Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s2: %v", err)
	}
	mNode.SetSubscribers([]replica.Peer{ms1, ms2})

	cOpts := ClientOptions{
		Dial:        nw.Dialer("sched"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		PingTimeout: 80 * time.Millisecond,
		Seed:        seed,
	}
	rm, err := DialNodeOpts("m", mAddr, cOpts)
	if err != nil {
		t.Fatalf("dial m: %v", err)
	}
	rs1, err := DialNodeOpts("s1", s1Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s1: %v", err)
	}
	rs2, err := DialNodeOpts("s2", s2Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s2: %v", err)
	}
	probe, err := DialNodeOpts("m", mAddr, ClientOptions{
		Dial:          nw.Dialer("sched"),
		DialTimeout:   80 * time.Millisecond,
		PingTimeout:   80 * time.Millisecond,
		RetryAttempts: -1,
	})
	if err != nil {
		t.Fatalf("dial probe: %v", err)
	}

	// Admission sized far below the worker count: 2 slots + 2 queued, 12
	// stampeding workers. Most arrivals must shed; the queue must stay at
	// or under its cap throughout the partition.
	const slots, queueCap, workers = 2, 2, 12
	reg := obs.New()
	ref := mNode.Engine()
	sched, err := scheduler.New(scheduler.Options{
		Seed:       seed,
		MaxRetries: 2,
		Obs:        reg,
		Admission:  scheduler.AdmissionOptions{Slots: slots, QueueCap: queueCap, TargetSojourn: 2 * time.Millisecond, Interval: 20 * time.Millisecond},
	}, ref.NumTables(), ref.TableID)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	sched.SetMaster(0, rm)
	sched.AddSlave(rs1)
	sched.AddSlave(rs2)

	increment := func() error {
		return sched.Run(scheduler.TxnSpec{
			Tables:   []string{"acct"},
			Deadline: time.Now().Add(300 * time.Millisecond),
		}, func(tx *scheduler.Txn) error {
			_, err := tx.Exec(`UPDATE acct SET bal = bal + 1 WHERE id = 1`)
			return err
		})
	}

	var (
		ackedN   atomic.Int64
		shedSeen atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := increment()
				switch {
				case err == nil:
					ackedN.Add(1)
				case errors.Is(err, scheduler.ErrOverloaded):
					shedSeen.Add(1)
					// Honor the fast-reject hint, as a real client must: a
					// shed caller that spins defeats the point of shedding.
					var oe *scheduler.OverloadError
					if errors.As(err, &oe) && oe.RetryAfter > 0 {
						time.Sleep(oe.RetryAfter)
					}
				}
			}
		}()
	}

	// A watchdog samples the queue-depth gauge through the whole run — the
	// bounded-memory property must hold during the partition window, when
	// every queued waiter is doomed to time out against the dead master.
	var maxDepth atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := reg.Gauge(obs.SchedAdmitQueueDepth).Load(); d > maxDepth.Load() {
				maxDepth.Store(d)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	waitDeadline := time.Now().Add(5 * time.Second)
	for ackedN.Load() < 10 {
		if time.Now().After(waitDeadline) {
			t.Fatal("workload never reached 10 acked commits")
		}
		time.Sleep(2 * time.Millisecond)
	}
	nw.Isolate("m")

	var newMaster replica.Peer
	misses := 0
	failDeadline := time.Now().Add(10 * time.Second)
	for newMaster == nil {
		if time.Now().After(failDeadline) {
			t.Fatal("fail-over never triggered")
		}
		time.Sleep(25 * time.Millisecond)
		if err := probe.Ping(); err == nil {
			misses = 0
			continue
		} else if !errors.Is(err, replica.ErrPeerTimeout) && !errors.Is(err, replica.ErrNodeDown) {
			t.Fatalf("probe: unexpected error %v", err)
		}
		misses++
		if misses >= 4 {
			nm, ferr := sched.FailoverMaster(0, []replica.Peer{rs1, rs2})
			if ferr != nil {
				t.Fatalf("FailoverMaster: %v", ferr)
			}
			newMaster = nm
			sched.Remove(nm.ID())
		}
	}

	// Keep the stampede on the new master long enough to prove it admits
	// again, then stop.
	postDeadline := time.Now().Add(5 * time.Second)
	post := ackedN.Load()
	for ackedN.Load() < post+10 {
		if time.Now().After(postDeadline) {
			t.Fatal("no commits admitted after fail-over")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	acked := ackedN.Load()

	txID, err := newMaster.TxBegin(true, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("audit begin: %v", err)
	}
	res, err := newMaster.TxExec(txID, `SELECT bal FROM acct WHERE id = 1`, nil)
	if err != nil {
		t.Fatalf("audit read: %v", err)
	}
	if _, err := newMaster.TxCommit(txID); err != nil {
		t.Fatalf("audit commit: %v", err)
	}
	final := res.Rows[0][0].AsInt()

	if final != acked {
		t.Fatalf("acked-commit loss under overload: %d acknowledged, %d applied", acked, final)
	}
	if shedSeen.Load() == 0 {
		t.Fatalf("admission never shed: %d workers against %d slots should overload", workers, slots)
	}
	if d := maxDepth.Load(); d > queueCap {
		t.Fatalf("admission queue grew past its cap: depth %d > %d", d, queueCap)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.SchedAdmitShed] == 0 {
		t.Fatal("shed counter never moved")
	}
}
