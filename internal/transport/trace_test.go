package transport

import (
	"testing"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/replica"
	"dmv/internal/value"
)

func newTracedNode(t *testing.T, id string) (*replica.Node, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	e := heap.NewEngine(heap.Options{PageCap: 8, Obs: reg, NodeID: id})
	if err := exec.ExecDDL(e, `CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(32))`); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	rows := make([]value.Row, 0, 20)
	for i := 1; i <= 20; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewString("init")})
	}
	tid, _ := e.TableID("kv")
	if err := e.Load(tid, rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	return replica.NewNode(replica.Options{ID: id, Engine: e, Obs: reg}), reg
}

// TestTracePropagation drives one traced update through real TCP
// round-trips — scheduler-side root, remote master commit, write-set ship
// to the slave, and the slave's lazy apply on first read — and asserts the
// whole causal path stitches under a single TraceID even though the spans
// were recorded on three different registries (three processes, in the
// multiprocess deployment).
func TestTracePropagation(t *testing.T) {
	master, regM := newTracedNode(t, "m")
	slave, regS := newTracedNode(t, "s")
	if err := master.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	msrv, err := ServeNode(master, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve master: %v", err)
	}
	defer msrv.Close()
	ssrv, err := ServeNode(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve slave: %v", err)
	}
	defer ssrv.Close()
	mPeer, err := DialNode("m", msrv.Addr())
	if err != nil {
		t.Fatalf("dial master: %v", err)
	}
	sPeer, err := DialNode("s", ssrv.Addr())
	if err != nil {
		t.Fatalf("dial slave: %v", err)
	}
	if err := mPeer.SetSubscribers(map[string]string{"s": ssrv.Addr()}); err != nil {
		t.Fatalf("set subscribers: %v", err)
	}

	// Scheduler side: root span, its context rides the Begin RPC.
	regSched := obs.New()
	sp := regSched.Tracer().Begin("update")
	txID, err := mPeer.TxBegin(false, nil, 0, sp.Context())
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := mPeer.TxExec(txID, `UPDATE kv SET v = ? WHERE k = ?`,
		[]value.Value{value.NewString("traced"), value.NewInt(7)}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	ver, err := mPeer.TxCommit(txID)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	sp.Finish("commit", "")

	// Slave read at the committed version: first touch of the page applies
	// the buffered mods, recording the lazy-apply leg of the trace.
	rID, err := sPeer.TxBegin(true, ver, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("read begin: %v", err)
	}
	res, err := sPeer.TxExec(rID, `SELECT v FROM kv WHERE k = ?`, []value.Value{value.NewInt(7)})
	if err != nil {
		t.Fatalf("read exec: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "traced" {
		t.Fatalf("slave read = %v", res.Rows)
	}
	if _, err := sPeer.TxCommit(rID); err != nil {
		t.Fatalf("read commit: %v", err)
	}

	// Stitch across the three registries, exactly as the scheduler's
	// /stitch endpoint does with aggregated spans.
	all := append(regSched.Tracer().Dump(), regM.Tracer().Dump()...)
	all = append(all, regS.Tracer().Dump()...)
	stitched := obs.Stitch(all, sp.TraceID)
	if len(stitched) == 0 || stitched[0].Kind != "update" {
		t.Fatalf("stitched trace must start at the scheduler root: %+v", stitched)
	}
	byKind := map[string]obs.Span{}
	for _, s := range stitched {
		if s.TraceID != sp.TraceID {
			t.Fatalf("span %q carries trace %d, want %d", s.Kind, s.TraceID, sp.TraceID)
		}
		byKind[s.Kind] = s
	}
	mc, ok := byKind["master-commit"]
	if !ok || mc.Node != "m" {
		t.Fatalf("missing master-commit on m: %+v", byKind)
	}
	if mc.ParentID != sp.SpanID {
		t.Fatalf("master-commit parent = %d, want scheduler root %d", mc.ParentID, sp.SpanID)
	}
	ship, ok := byKind["ws-ship"]
	if !ok || ship.Node != "s" {
		t.Fatalf("missing ws-ship targeting s: %+v", byKind)
	}
	acked := false
	for _, st := range ship.Stages {
		if st.Name == "ack" {
			acked = true
		}
	}
	if !acked {
		t.Fatalf("ws-ship missing ack stage: %+v", ship.Stages)
	}
	recv, ok := byKind["ws-recv"]
	if !ok || recv.Node != "s" {
		t.Fatalf("missing ws-recv on s: %+v", byKind)
	}
	apply, ok := byKind["lazy-apply"]
	if !ok || apply.Node != "s" {
		t.Fatalf("missing lazy-apply on s: %+v", byKind)
	}
	if apply.ParentID != mc.SpanID {
		t.Fatalf("lazy-apply parent = %d, want master-commit %d", apply.ParentID, mc.SpanID)
	}

	// The aggregation RPC: the slave's snapshot carries identity, version
	// state, and its half of the trace for the scheduler's merge.
	ns, err := sPeer.ObsSnapshot()
	if err != nil {
		t.Fatalf("obs snapshot: %v", err)
	}
	if ns.Node != "s" || ns.Role != "slave" {
		t.Fatalf("snapshot identity = %s/%s", ns.Node, ns.Role)
	}
	if len(ns.MaxVer) == 0 || ns.MaxVer[0] != 1 {
		t.Fatalf("snapshot MaxVer = %v, want [1]", ns.MaxVer)
	}
	if len(ns.Applied) == 0 || ns.Applied[0] != 1 {
		t.Fatalf("snapshot Applied = %v, want [1] after the read applied the mods", ns.Applied)
	}
	if len(ns.Spans) == 0 {
		t.Fatal("snapshot carries no spans")
	}
	cs := obs.MergeSnapshots([]obs.NodeSnapshot{ns}, ver)
	if got := cs.Nodes[0].Lag[0]; got != 0 {
		t.Fatalf("lag = %d, want 0 after apply", got)
	}
}
