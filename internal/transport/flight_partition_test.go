package transport

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/faultnet"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/replica"
	"dmv/internal/scheduler"
	"dmv/internal/value"
)

// flightDumpDir resolves where a run writes its dumps: DMV_FLIGHT_DIR (the
// check.sh flight leg inspects the artifacts afterwards) or a test temp
// dir. Each run gets its own subdirectory so reruns never collide.
func flightDumpDir(t *testing.T, run string) string {
	base := os.Getenv("DMV_FLIGHT_DIR")
	if base == "" {
		base = t.TempDir()
	}
	return filepath.Join(base, run)
}

// runFlightScenario is the partition acceptance scenario of
// partition_test.go with the flight recorder wired end to end: every node
// keeps its own ring served over the FlightDump RPC, the scheduler's
// recorder coordinates anomaly dumps, and the suspicion ladder and
// commit-fenced fail-over fire the triggers. Returns the causal chain the
// dump must reproduce (health transitions + admitted suspicion/fail-over
// triggers, in ring order), the acked/applied audit, and the fail-over
// dump path.
func runFlightScenario(t *testing.T, seed int64, dir string) (chain []string, acked, final int64, dumpPath string) {
	t.Helper()
	nw := faultnet.New(seed)

	mk := func(id string) (*replica.Node, string) {
		e := heap.NewEngine(heap.Options{PageCap: 8})
		if err := exec.ExecDDL(e, `CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`); err != nil {
			t.Fatalf("ddl: %v", err)
		}
		tid, _ := e.TableID("acct")
		if err := e.Load(tid, []value.Row{{value.NewInt(1), value.NewInt(0)}}); err != nil {
			t.Fatalf("load: %v", err)
		}
		nreg := obs.New()
		nrec := flight.New(flight.Options{Node: id, Reg: nreg})
		t.Cleanup(nrec.Close)
		n := replica.NewNode(replica.Options{ID: id, Engine: e, AckTimeout: 100 * time.Millisecond, Obs: nreg, Flight: nrec})
		lis, err := nw.Listen(id, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %s: %v", id, err)
		}
		srv, err := ServeNodeListener(n, lis, nreg)
		if err != nil {
			t.Fatalf("serve %s: %v", id, err)
		}
		t.Cleanup(srv.Close)
		return n, srv.Addr()
	}
	mNode, mAddr := mk("m")
	_, s1Addr := mk("s1")
	_, s2Addr := mk("s2")

	if err := mNode.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	subOpts := ClientOptions{
		Dial:        nw.Dialer("m"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		Seed:        seed,
	}
	ms1, err := DialNodeOpts("s1", s1Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s1: %v", err)
	}
	ms2, err := DialNodeOpts("s2", s2Addr, subOpts)
	if err != nil {
		t.Fatalf("master dial s2: %v", err)
	}
	mNode.SetSubscribers([]replica.Peer{ms1, ms2})

	cOpts := ClientOptions{
		Dial:        nw.Dialer("sched"),
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 300 * time.Millisecond,
		PingTimeout: 80 * time.Millisecond,
		Seed:        seed,
	}
	rm, err := DialNodeOpts("m", mAddr, cOpts)
	if err != nil {
		t.Fatalf("dial m: %v", err)
	}
	rs1, err := DialNodeOpts("s1", s1Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s1: %v", err)
	}
	rs2, err := DialNodeOpts("s2", s2Addr, cOpts)
	if err != nil {
		t.Fatalf("dial s2: %v", err)
	}
	probe, err := DialNodeOpts("m", mAddr, ClientOptions{
		Dial:          nw.Dialer("sched"),
		DialTimeout:   80 * time.Millisecond,
		PingTimeout:   80 * time.Millisecond,
		RetryAttempts: -1,
	})
	if err != nil {
		t.Fatalf("dial probe: %v", err)
	}

	// The scheduler's recorder is the dump coordinator: at trigger time it
	// gathers every peer's ring (the isolated master's gather must fail and
	// be recorded, not wedge the dump).
	reg := obs.New()
	rec := flight.New(flight.Options{Node: "sched", Reg: reg, Dir: dir})
	rec.SetPeers([]flight.Peer{rm, rs1, rs2})
	defer rec.Close()

	ref := mNode.Engine()
	sched, err := scheduler.New(scheduler.Options{Seed: seed, MaxRetries: 2, Obs: reg, Flight: rec}, ref.NumTables(), ref.TableID)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	sched.SetMaster(0, rm)
	sched.AddSlave(rs1)
	sched.AddSlave(rs2)

	increment := func() error {
		return sched.Run(scheduler.TxnSpec{Tables: []string{"acct"}}, func(tx *scheduler.Txn) error {
			_, err := tx.Exec(`UPDATE acct SET bal = bal + 1 WHERE id = 1`)
			return err
		})
	}

	var ackedN atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := increment(); err == nil {
				ackedN.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	waitDeadline := time.Now().Add(5 * time.Second)
	for ackedN.Load() < 10 {
		if time.Now().After(waitDeadline) {
			t.Fatal("workload never reached 10 acked commits")
		}
		time.Sleep(2 * time.Millisecond)
	}
	nw.Isolate("m")

	var newMaster replica.Peer
	misses := 0
	failDeadline := time.Now().Add(10 * time.Second)
	for newMaster == nil {
		if time.Now().After(failDeadline) {
			t.Fatal("fail-over never triggered")
		}
		time.Sleep(25 * time.Millisecond)
		if err := probe.Ping(); err == nil {
			misses = 0
			continue
		} else if !errors.Is(err, replica.ErrPeerTimeout) && !errors.Is(err, replica.ErrNodeDown) {
			t.Fatalf("probe: unexpected error %v", err)
		}
		misses++
		if misses == 2 {
			rec.RecordHealth("m", "healthy", "suspect")
			rec.Trigger(flight.CauseSuspicion, "m", "probe misses reached suspect threshold")
		}
		if misses >= 4 {
			rec.RecordHealth("m", "suspect", "dead")
			nm, ferr := sched.FailoverMaster(0, []replica.Peer{rs1, rs2})
			if ferr != nil {
				t.Fatalf("FailoverMaster: %v", ferr)
			}
			newMaster = nm
			sched.Remove(nm.ID())
		}
	}

	close(stop)
	wg.Wait()

	for i := 0; i < 5; i++ {
		if err := increment(); err != nil {
			t.Fatalf("post-fail-over commit %d: %v", i, err)
		}
		ackedN.Add(1)
	}
	acked = ackedN.Load()

	txID, err := newMaster.TxBegin(true, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("audit begin: %v", err)
	}
	res, err := newMaster.TxExec(txID, `SELECT bal FROM acct WHERE id = 1`, nil)
	if err != nil {
		t.Fatalf("audit read: %v", err)
	}
	if _, err := newMaster.TxCommit(txID); err != nil {
		t.Fatalf("audit commit: %v", err)
	}
	final = res.Rows[0][0].AsInt()

	// Close drains the trigger queue: every admitted dump is on disk now.
	rec.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "flight-*-"+flight.CauseFailover+".json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("fail-over dump files = %v, err = %v", matches, err)
	}
	dumpPath = matches[0]
	chain = causalChain(t, dumpPath)
	return chain, acked, final, dumpPath
}

// causalChain extracts the deterministic causal skeleton from the
// scheduler's ring in a dump: health transitions plus the suspicion and
// fail-over triggers, in ring (sequence) order. Timing-dependent entries —
// spans, metric deltas, commit-uncertain triggers from the workload racing
// the partition — are excluded; they vary run to run, the chain must not.
func causalChain(t *testing.T, path string) []string {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	d, err := flight.Parse(blob)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	var sched *flight.NodeDump
	for i := range d.Nodes {
		if d.Nodes[i].Node == "sched" {
			sched = &d.Nodes[i]
		}
	}
	if sched == nil {
		t.Fatalf("dump has no scheduler ring; nodes = %d", len(d.Nodes))
	}
	var chain []string
	for _, e := range sched.Entries {
		switch e.Kind {
		case flight.KindHealth:
			chain = append(chain, "health:"+e.Health.Node+":"+e.Health.From+"->"+e.Health.To)
		case flight.KindTrigger:
			if e.Cause == flight.CauseSuspicion || e.Cause == flight.CauseFailover {
				chain = append(chain, "trigger:"+e.Cause+":"+e.Node)
			}
		}
	}
	return chain
}

// TestFlightDumpOnPartitionedFailover is the flight-recorder acceptance
// test: under the seeded partitioned-master scenario the cluster loses no
// acknowledged commit, the fail-over trigger produces one cluster-wide
// dump whose rings cover the scheduler and both survivors (the isolated
// master shows up as a recorded peer error, not a missing dump), and the
// causal chain in the dump — partition, suspicion escalation, fail-over —
// is identical across two runs of one seed.
func TestFlightDumpOnPartitionedFailover(t *testing.T) {
	const seed = 42
	chain1, acked1, final1, path1 := runFlightScenario(t, seed, flightDumpDir(t, "run1"))
	if final1 != acked1 {
		t.Fatalf("acked-commit loss: %d acknowledged, %d applied", acked1, final1)
	}
	want := []string{
		"health:m:healthy->suspect",
		"trigger:" + flight.CauseSuspicion + ":m",
		"health:m:suspect->dead",
		"trigger:" + flight.CauseFailover + ":",
	}
	if !reflect.DeepEqual(chain1, want) {
		t.Fatalf("causal chain = %v, want %v", chain1, want)
	}

	blob, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []string
	for _, nd := range d.Nodes {
		nodes = append(nodes, nd.Node)
	}
	if !reflect.DeepEqual(nodes, []string{"s1", "s2", "sched"}) {
		t.Fatalf("dump nodes = %v, want [s1 s2 sched]", nodes)
	}
	foundM := false
	for _, pe := range d.Meta.PeerErrors {
		if strings.HasPrefix(pe, "m:") {
			foundM = true
		}
	}
	if !foundM {
		t.Fatalf("isolated master not recorded in peer errors: %v", d.Meta.PeerErrors)
	}

	chain2, acked2, final2, _ := runFlightScenario(t, seed, flightDumpDir(t, "run2"))
	if final2 != acked2 {
		t.Fatalf("acked-commit loss on rerun: %d acknowledged, %d applied", acked2, final2)
	}
	if !reflect.DeepEqual(chain1, chain2) {
		t.Fatalf("same seed, different causal chains:\n run 1: %v\n run 2: %v", chain1, chain2)
	}
}
