// Package transport serves the replica Peer interface and the scheduler
// session API over TCP using net/rpc (gob encoding), enabling real
// multi-process deployments: each database node runs cmd/dmv-node, the
// scheduler runs cmd/dmv-scheduler, and the two sides exchange exactly the
// messages of the in-process cluster — write-set broadcasts with
// acknowledgments, version-tagged transaction sessions, heartbeats, page
// migration, and warm-up traffic.
//
// Error identity matters to the scheduler (version-conflict aborts and
// node-down errors are retried differently), and net/rpc flattens errors to
// strings; replies therefore carry an explicit error code that the client
// side converts back to the canonical sentinel errors.
package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/scrub"
	"dmv/internal/simdisk"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// error codes carried in RPC replies. New codes append after errOther so a
// mixed-version cluster never re-reads an old code as a different sentinel.
const (
	errNone = iota
	errNodeDown
	errNotMaster
	errVersionConflict
	errLockTimeout
	errPeerTimeout
	errOther
	errDeadlineExpired
)

func encodeErr(err error) (int, string) {
	switch {
	case err == nil:
		return errNone, ""
	case errors.Is(err, replica.ErrPeerTimeout):
		// Checked before ErrNodeDown: a deadline miss is a distinct signal
		// (the peer may be alive but slow) and drives the suspicion ladder
		// rather than immediate fail-over.
		return errPeerTimeout, err.Error()
	case errors.Is(err, replica.ErrNodeDown):
		return errNodeDown, err.Error()
	case errors.Is(err, replica.ErrNotMaster):
		return errNotMaster, err.Error()
	case errors.Is(err, page.ErrVersionConflict):
		return errVersionConflict, err.Error()
	case errors.Is(err, heap.ErrLockTimeout):
		return errLockTimeout, err.Error()
	case errors.Is(err, replica.ErrDeadlineExpired):
		return errDeadlineExpired, err.Error()
	default:
		return errOther, err.Error()
	}
}

func decodeErr(code int, msg string) error {
	switch code {
	case errNone:
		return nil
	case errNodeDown:
		return fmt.Errorf("%w: %s", replica.ErrNodeDown, msg)
	case errNotMaster:
		return fmt.Errorf("%w: %s", replica.ErrNotMaster, msg)
	case errVersionConflict:
		return fmt.Errorf("%w: %s", page.ErrVersionConflict, msg)
	case errLockTimeout:
		return fmt.Errorf("%w: %s", heap.ErrLockTimeout, msg)
	case errPeerTimeout:
		return fmt.Errorf("%w: %s", replica.ErrPeerTimeout, msg)
	case errDeadlineExpired:
		return fmt.Errorf("%w: %s", replica.ErrDeadlineExpired, msg)
	default:
		return errors.New(msg)
	}
}

// --- RPC argument/reply types -------------------------------------------------

// Status is the common reply carrying an encoded error.
type Status struct {
	Code int
	Msg  string
}

func (s *Status) set(err error) { s.Code, s.Msg = encodeErr(err) }

// Err converts the status back into a sentinel-matching error.
func (s Status) Err() error { return decodeErr(s.Code, s.Msg) }

// BeginArgs opens a transaction session. Trace is the scheduler-side span
// context; the node records its work as child spans under it. DeadlineUS is
// the caller's remaining time budget in microseconds (0 = none): a duration
// rather than an absolute time, so client and server clocks never have to
// agree.
type BeginArgs struct {
	ReadOnly   bool
	Version    vclock.Vector
	DeadlineUS int64
	Trace      obs.TraceContext
}

// BeginReply returns the session id.
type BeginReply struct {
	ID uint64
	Status
}

// ExecArgs executes one statement in a session. Trace repeats the session's
// trace context on every statement so a session opened untraced (or by an
// older client) can still adopt the trace mid-flight.
// DeadlineUS, when positive, refreshes the session's remaining budget
// (microseconds left as of this statement), keeping the server-side expiry
// honest across long sessions.
type ExecArgs struct {
	TxID       uint64
	Stmt       string
	Params     []value.Value
	DeadlineUS int64
	Trace      obs.TraceContext
}

// ExecReply returns the statement result.
type ExecReply struct {
	Result *exec.Result
	Status
}

// CommitArgs commits a session. DeadlineUS, when positive, is the caller's
// remaining budget at commit time; the node checks it once at commit entry
// and never again (a started commit always runs to completion).
type CommitArgs struct {
	TxID       uint64
	DeadlineUS int64
}

// CommitReply returns the commit version vector (updates only).
type CommitReply struct {
	Version vclock.Vector
	Status
}

// DeltaArgs requests a page-migration delta.
type DeltaArgs struct {
	Have   heap.PageVersionMap
	Target vclock.Vector
}

// DeltaReply carries the migrated page images.
type DeltaReply struct {
	Images []page.Image
	Status
}

// VersionReply carries a version vector.
type VersionReply struct {
	Version vclock.Vector
	Status
}

// PageVersionsReply carries a node's page-version map.
type PageVersionsReply struct {
	Versions heap.PageVersionMap
	Status
}

// PagesReply carries resident page ids.
type PagesReply struct {
	Keys []simdisk.PageKey
	Status
}

// RoleReply carries a node role.
type RoleReply struct {
	Role replica.Role
	Status
}

// DigestArgs requests a snapshot-consistent table digest at a pinned
// version (anti-entropy scrub, DESIGN.md §15).
type DigestArgs struct {
	Table     int
	Version   uint64
	WithPages bool
}

// DigestReply carries one table digest.
type DigestReply struct {
	Digest scrub.TableDigest
	Status
}

// PageImagesArgs names the pages whose current images the scrubber wants
// shipped for repair.
type PageImagesArgs struct {
	Table int
	Pages []page.ID
}

// ImagesReply carries current page images.
type ImagesReply struct {
	Images []page.Image
	Status
}

// NodeService exposes a replica.Node over net/rpc under the service name
// "Node".
type NodeService struct {
	node *replica.Node
}

// Ping implements the heartbeat probe.
func (s *NodeService) Ping(_ struct{}, reply *Status) error {
	reply.set(s.node.Ping())
	return nil
}

// ReceiveWriteSet delivers one replication message; returning is the ack.
func (s *NodeService) ReceiveWriteSet(ws *heap.WriteSet, reply *Status) error {
	reply.set(s.node.ReceiveWriteSet(ws))
	return nil
}

// TxBegin opens a session.
func (s *NodeService) TxBegin(args BeginArgs, reply *BeginReply) error {
	id, err := s.node.TxBegin(args.ReadOnly, args.Version, time.Duration(args.DeadlineUS)*time.Microsecond, args.Trace)
	reply.ID = id
	reply.set(err)
	return nil
}

// TxExec runs one statement.
func (s *NodeService) TxExec(args ExecArgs, reply *ExecReply) error {
	if args.Trace.Valid() {
		s.node.AdoptTrace(args.TxID, args.Trace)
	}
	if args.DeadlineUS > 0 {
		s.node.RefreshDeadline(args.TxID, time.Duration(args.DeadlineUS)*time.Microsecond)
	}
	res, err := s.node.TxExec(args.TxID, args.Stmt, args.Params)
	reply.Result = res
	reply.set(err)
	return nil
}

// TxCommit commits a session.
func (s *NodeService) TxCommit(args CommitArgs, reply *CommitReply) error {
	if args.DeadlineUS > 0 {
		s.node.RefreshDeadline(args.TxID, time.Duration(args.DeadlineUS)*time.Microsecond)
	}
	ver, err := s.node.TxCommit(args.TxID)
	reply.Version = ver
	reply.set(err)
	return nil
}

// TxRollback aborts a session.
func (s *NodeService) TxRollback(txID uint64, reply *Status) error {
	reply.set(s.node.TxRollback(txID))
	return nil
}

// AbortReply carries the aborted-transaction count.
type AbortReply struct {
	Aborted int
	Status
}

// AbortActiveSessions rolls back sessions owned by a failed scheduler.
func (s *NodeService) AbortActiveSessions(_ struct{}, reply *AbortReply) error {
	n, err := s.node.AbortActiveSessions()
	reply.Aborted = n
	reply.set(err)
	return nil
}

// Role reports the node's replication role.
func (s *NodeService) Role(_ struct{}, reply *RoleReply) error {
	r, err := s.node.Role()
	reply.Role = r
	reply.set(err)
	return nil
}

// Promote makes the node a conflict-class master.
func (s *NodeService) Promote(classTables []int, reply *Status) error {
	reply.set(s.node.Promote(classTables))
	return nil
}

// Demote changes the node's role.
func (s *NodeService) Demote(to replica.Role, reply *Status) error {
	reply.set(s.node.Demote(to))
	return nil
}

// DiscardAbove drops buffered modifications beyond a vector.
func (s *NodeService) DiscardAbove(v vclock.Vector, reply *Status) error {
	reply.set(s.node.DiscardAbove(v))
	return nil
}

// MaxVersions reports the node's highest versions.
func (s *NodeService) MaxVersions(_ struct{}, reply *VersionReply) error {
	v, err := s.node.MaxVersions()
	reply.Version = v
	reply.set(err)
	return nil
}

// StartJoin begins write-set buffering for reintegration.
func (s *NodeService) StartJoin(_ struct{}, reply *Status) error {
	reply.set(s.node.StartJoin())
	return nil
}

// PageVersions reports per-page applied versions.
func (s *NodeService) PageVersions(_ struct{}, reply *PageVersionsReply) error {
	v, err := s.node.PageVersions()
	reply.Versions = v
	reply.set(err)
	return nil
}

// DeltaSince serves a migration request (support-slave side).
func (s *NodeService) DeltaSince(args DeltaArgs, reply *DeltaReply) error {
	imgs, err := s.node.DeltaSince(args.Have, args.Target)
	reply.Images = imgs
	reply.set(err)
	return nil
}

// InstallDelta installs migrated pages (joining-node side).
func (s *NodeService) InstallDelta(images []page.Image, reply *Status) error {
	reply.set(s.node.InstallDelta(images))
	return nil
}

// FinishJoin drains the join buffer and re-enters the slave role.
func (s *NodeService) FinishJoin(_ struct{}, reply *Status) error {
	reply.set(s.node.FinishJoin())
	return nil
}

// WarmPages touches page ids (page-id-transfer warm-up).
func (s *NodeService) WarmPages(keys []simdisk.PageKey, reply *Status) error {
	reply.set(s.node.WarmPages(keys))
	return nil
}

// ResidentPages reports the node's hottest pages.
func (s *NodeService) ResidentPages(limit int, reply *PagesReply) error {
	keys, err := s.node.ResidentPages(limit)
	reply.Keys = keys
	reply.set(err)
	return nil
}

// Digest computes the node's snapshot digest for one table at a pinned
// version (anti-entropy scrub).
func (s *NodeService) Digest(args DigestArgs, reply *DigestReply) error {
	d, err := s.node.Digest(args.Table, args.Version, args.WithPages)
	reply.Digest = d
	reply.set(err)
	return nil
}

// PageImages serves current page images for changed-page repair (healthy
// donor side).
func (s *NodeService) PageImages(args PageImagesArgs, reply *ImagesReply) error {
	imgs, err := s.node.PageImages(args.Table, args.Pages)
	reply.Images = imgs
	reply.set(err)
	return nil
}

// RepairPages installs repair images on a diverged node.
func (s *NodeService) RepairPages(images []page.Image, reply *Status) error {
	reply.set(s.node.RepairPages(images))
	return nil
}

// ObsSnapshotReply carries the node's observability snapshot (identity,
// version state, metrics, trace ring) for the scheduler's aggregation
// plane.
type ObsSnapshotReply struct {
	NS obs.NodeSnapshot
	Status
}

// ObsSnapshot serves the node's registry snapshot to the scraping
// scheduler.
func (s *NodeService) ObsSnapshot(_ struct{}, reply *ObsSnapshotReply) error {
	ns, err := s.node.ObsSnapshot()
	reply.NS = ns
	reply.set(err)
	return nil
}

// FlightDumpReply carries the node's frozen flight-recorder ring for a
// cluster-wide anomaly dump.
type FlightDumpReply struct {
	ND flight.NodeDump
	Status
}

// FlightDump serves the node's flight-recorder fragment to a peer
// assembling a cluster-wide anomaly dump.
func (s *NodeService) FlightDump(_ struct{}, reply *FlightDumpReply) error {
	nd, err := s.node.FlightDump()
	reply.ND = nd
	reply.set(err)
	return nil
}

// SetSubscribers re-points the node's replication stream at the given peer
// addresses (id -> address). A master node dials each subscriber itself.
func (s *NodeService) SetSubscribers(addrs map[string]string, reply *Status) error {
	peers := make([]replica.Peer, 0, len(addrs))
	for id, addr := range addrs {
		p, err := DialNode(id, addr)
		if err != nil {
			reply.set(fmt.Errorf("dial subscriber %s at %s: %w", id, addr, err))
			return nil
		}
		peers = append(peers, p)
	}
	s.node.SetSubscribers(peers)
	reply.set(nil)
	return nil
}

// Server is a listening RPC endpoint for one node.
type Server struct {
	lis  net.Listener
	done chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // guarded by connMu
}

// ServeNode starts serving a node's Peer interface on addr.
func ServeNode(n *replica.Node, addr string) (*Server, error) {
	return ServeNodeObs(n, addr, nil)
}

// ServeNodeObs is ServeNode with wire metrics: accepted connections are
// counted and every byte read or written on them accumulates in the
// registry (the replication-traffic quantity of the paper's Figure 7,
// measured at the receiver's socket). A nil registry serves unwrapped
// connections with no overhead.
func ServeNodeObs(n *replica.Node, addr string, reg *obs.Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeNodeListener(n, lis, reg)
}

// ServeNodeListener serves a node's Peer interface on a caller-supplied
// listener. This is the fault-injection hook: tests hand in a
// faultnet-wrapped listener so real TCP links to this node can be
// partitioned, delayed, or reset under script control.
func ServeNodeListener(n *replica.Node, lis net.Listener, reg *obs.Registry) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Node", &NodeService{node: n}); err != nil {
		_ = lis.Close()
		return nil, err
	}
	var connsC, bytesIn, bytesOut *obs.Counter
	if reg != nil {
		connsC = reg.Counter(obs.TransportConns)
		bytesIn = reg.Counter(obs.TransportBytesIn)
		bytesOut = reg.Counter(obs.TransportBytesOut)
	}
	s := &Server{lis: lis, done: make(chan struct{}), conns: make(map[net.Conn]struct{}, 8)}
	go func() {
		defer close(s.done)
		for {
			conn, err := lis.Accept()
			if err != nil {
				return // listener closed
			}
			connsC.Inc()
			s.connMu.Lock()
			s.conns[conn] = struct{}{}
			s.connMu.Unlock()
			go func() {
				if reg != nil {
					srv.ServeConn(&countingConn{Conn: conn, in: bytesIn, out: bytesOut})
				} else {
					srv.ServeConn(conn)
				}
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
		}
	}()
	return s, nil
}

// countingConn accumulates wire bytes into registry counters.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting connections and severs the established ones — a
// fail-stopped or shut-down node must look dead to its peers immediately,
// not only to new dialers.
func (s *Server) Close() {
	_ = s.lis.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.connMu.Unlock()
	<-s.done
}

// Transport-wide deadline and retry defaults. Every RemoteNode call is
// bounded by default; a stalled or partitioned peer costs at most the
// configured deadline (times the retry budget for idempotent calls), never
// an indefinite hang.
const (
	DefaultCallTimeout = 5 * time.Second
	DefaultPingTimeout = 1 * time.Second
	DefaultDialTimeout = 2 * time.Second
	defaultRetries     = 2
	defaultRetryBase   = 5 * time.Millisecond
	defaultRetryCap    = 250 * time.Millisecond

	// DefaultRetryBudget bounds the total elapsed time an idempotent call
	// may spend across attempts and backoff sleeps. Attempt counts alone do
	// not bound amplification when the cluster is overloaded — long calls
	// that each burn their full deadline before failing still multiply load
	// — so the budget caps attempts x elapsed, not just attempts.
	DefaultRetryBudget = 30 * time.Second
)

// ClientOptions tunes a RemoteNode's dialing, deadlines, and retry policy.
// The zero value gets sane defaults; pass a negative CallTimeout to run
// unbounded (tests that want the raw net/rpc behavior).
type ClientOptions struct {
	// Dial replaces net.Dial for this peer — the fault-injection hook
	// (e.g. faultnet.Network.Dialer). Nil dials real TCP with DialTimeout.
	Dial func(network, addr string) (net.Conn, error)

	DialTimeout time.Duration // TCP connect bound (default 2s)
	CallTimeout time.Duration // per-RPC deadline (default 5s; <0 disables)
	PingTimeout time.Duration // heartbeat deadline (default 1s; <0 disables)

	// RetryAttempts is the number of extra attempts for idempotent calls
	// after the first fails on a transport error (default 2; <0 disables).
	RetryAttempts int
	RetryBase     time.Duration // backoff floor (default 5ms)
	RetryCap      time.Duration // backoff ceiling (default 250ms)

	// RetryBudget caps the total wall-clock a retry loop may consume across
	// all attempts and backoff sleeps (default DefaultRetryBudget; <0
	// disables). Exhaustions count on
	// dmv_transport_retry_budget_exhausted_total so an overload amplified
	// by client retries is visible, not silent.
	RetryBudget time.Duration

	// Seed drives the backoff jitter; 0 means a fixed default so tests are
	// reproducible without configuration.
	Seed int64

	// Obs receives transport client metrics (timeouts, retries, redials,
	// per-call latency). Nil disables with no overhead.
	Obs *obs.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	switch {
	case o.CallTimeout == 0:
		o.CallTimeout = DefaultCallTimeout
	case o.CallTimeout < 0:
		o.CallTimeout = 0 //dmv:ignore(rpcdeadline) normalizer: the public <0 escape hatch maps to callOnce's internal 0 = unbounded encoding
	}
	switch {
	case o.PingTimeout == 0:
		o.PingTimeout = DefaultPingTimeout
	case o.PingTimeout < 0:
		o.PingTimeout = 0 //dmv:ignore(rpcdeadline) normalizer: the public <0 escape hatch maps to callOnce's internal 0 = unbounded encoding
	}
	switch {
	case o.RetryAttempts == 0:
		o.RetryAttempts = defaultRetries
	case o.RetryAttempts < 0:
		o.RetryAttempts = 0
	}
	if o.RetryBase == 0 {
		o.RetryBase = defaultRetryBase
	}
	if o.RetryCap == 0 {
		o.RetryCap = defaultRetryCap
	}
	switch {
	case o.RetryBudget == 0:
		o.RetryBudget = DefaultRetryBudget
	case o.RetryBudget < 0:
		o.RetryBudget = 0 // internal 0 = unbounded, mirroring the timeout knobs
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// clientMetrics are the nil-safe transport client instruments.
type clientMetrics struct {
	timeouts        *obs.Counter
	retries         *obs.Counter
	redials         *obs.Counter
	budgetExhausted *obs.Counter
	rpcUS           *obs.Histogram
}

// RemoteNode is a replica.Peer backed by an RPC client; it reconnects
// lazily (with the dial bounded) after connection loss so a rebooted node
// is reachable again, and bounds every call with a deadline so a stalled
// peer surfaces as ErrPeerTimeout instead of hanging the caller.
type RemoteNode struct {
	id   string
	addr string
	opts ClientOptions
	met  clientMetrics

	mu     sync.Mutex
	client *rpc.Client // guarded by mu
	dialed bool        // guarded by mu; a later dial is a re-dial

	// rng drives the decorrelated-jitter retry backoff.
	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu

	// traces remembers each open session's trace context so TxExec can
	// repeat it on every statement (see ExecArgs.Trace); entries are cleared
	// at commit/rollback. expiries likewise remembers each session's caller
	// deadline so every statement and the commit re-propagate the remaining
	// budget to the server.
	trMu     sync.Mutex
	traces   map[uint64]obs.TraceContext // guarded by trMu
	expiries map[uint64]time.Time        // guarded by trMu
}

var _ replica.Peer = (*RemoteNode)(nil)
var _ flight.Peer = (*RemoteNode)(nil)

// DialNode connects to a node served by ServeNode with default options.
func DialNode(id, addr string) (*RemoteNode, error) {
	return DialNodeOpts(id, addr, ClientOptions{})
}

// DialNodeOpts connects to a node with explicit dialing/deadline/retry
// options.
func DialNodeOpts(id, addr string, o ClientOptions) (*RemoteNode, error) {
	o = o.withDefaults()
	n := &RemoteNode{
		id:       id,
		addr:     addr,
		opts:     o,
		rng:      rand.New(rand.NewSource(o.Seed)),
		traces:   make(map[uint64]obs.TraceContext, 8),
		expiries: make(map[uint64]time.Time, 8),
	}
	if o.Obs != nil {
		n.met = clientMetrics{
			timeouts:        o.Obs.Counter(obs.TransportRPCTimeouts),
			retries:         o.Obs.Counter(obs.TransportRPCRetries),
			redials:         o.Obs.Counter(obs.TransportRedials),
			budgetExhausted: o.Obs.Counter(obs.TransportRetryBudgetExhausted),
			rpcUS:           o.Obs.Histogram(obs.TransportRPCUS),
		}
	}
	if _, err := n.conn(); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *RemoteNode) conn() (*rpc.Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.client != nil {
		return n.client, nil
	}
	dial := n.opts.Dial
	if dial == nil {
		dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, n.opts.DialTimeout)
		}
	}
	raw, err := dial("tcp", n.addr)
	if err != nil {
		if isTimeout(err) {
			return nil, fmt.Errorf("%w: dial %s: %v", replica.ErrPeerTimeout, n.addr, err)
		}
		return nil, fmt.Errorf("%w: dial %s: %v", replica.ErrNodeDown, n.addr, err)
	}
	if n.dialed {
		n.met.redials.Inc()
	}
	n.dialed = true
	n.client = rpc.NewClient(raw)
	return n.client, nil
}

func (n *RemoteNode) drop() {
	n.mu.Lock()
	if n.client != nil {
		_ = n.client.Close()
		n.client = nil
	}
	n.mu.Unlock()
}

// call performs one deadline-bounded RPC attempt (the default path for
// non-idempotent calls, which must not be replayed blind: a lost TxCommit
// reply leaves the outcome genuinely unknown).
func (n *RemoteNode) call(method string, args, reply any) error {
	return n.callOnce(method, args, reply, n.opts.CallTimeout)
}

// callOnce performs one RPC with deadline d (0 = unbounded), mapping
// transport failures to ErrNodeDown and deadline misses to ErrPeerTimeout.
// On a timeout the client is dropped: net/rpc cannot cancel an in-flight
// call, so abandoning the connection is the only way to keep a late reply
// from being confused with a fresh request, and it arms the lazy re-dial.
func (n *RemoteNode) callOnce(method string, args, reply any, d time.Duration) error {
	c, err := n.conn()
	if err != nil {
		return err
	}
	start := time.Now()
	var callErr error
	if d <= 0 {
		callErr = c.Call(method, args, reply)
	} else {
		// rpc.Client.Go writes the request in the calling goroutine, so a
		// link that blackholes writes (a partition, not a refused dial)
		// would stall here before the deadline select was ever reached.
		// Issue the send from a goroutine; on timeout, drop() closes the
		// connection, which unblocks a writer stalled on a dead link.
		done := make(chan *rpc.Call, 1)
		go c.Go(method, args, reply, done)
		t := time.NewTimer(d)
		select {
		case call := <-done:
			t.Stop()
			callErr = call.Error
		case <-t.C:
			n.drop()
			n.met.timeouts.Inc()
			n.met.rpcUS.ObserveSince(start)
			return fmt.Errorf("%w: %s %s after %v", replica.ErrPeerTimeout, n.id, method, d)
		}
	}
	n.met.rpcUS.ObserveSince(start)
	if callErr != nil {
		n.drop()
		if errors.Is(callErr, rpc.ErrShutdown) || errors.Is(callErr, io.EOF) ||
			errors.Is(callErr, io.ErrUnexpectedEOF) || isNetError(callErr) {
			return fmt.Errorf("%w: %s: %v", replica.ErrNodeDown, n.id, callErr)
		}
		return callErr
	}
	return nil
}

// callIdem is callOnce plus a bounded retry loop with decorrelated-jitter
// backoff, for calls that are safe to replay (pure reads, heartbeats, and
// naturally idempotent writes like DiscardAbove or InstallDelta). Only
// transport-level failures are retried — an error decoded from the reply
// means the peer executed the request and retrying would not change it.
func (n *RemoteNode) callIdem(method string, args, reply any, d time.Duration) error {
	start := time.Now()
	sleep := n.opts.RetryBase
	for attempt := 0; ; attempt++ {
		err := n.callOnce(method, args, reply, d)
		if err == nil || attempt >= n.opts.RetryAttempts || !transportFailure(err) {
			return err
		}
		// Elapsed-time budget: attempt counts alone let slow failures
		// (each burning a full deadline) amplify an overload; once the
		// budget is spent the loop stops even with attempts remaining.
		if n.opts.RetryBudget > 0 && time.Since(start)+sleep > n.opts.RetryBudget {
			n.met.budgetExhausted.Inc()
			return err
		}
		n.met.retries.Inc()
		// Decorrelated jitter: sleep in [base, 3*prev], capped. Spreads
		// reconnect storms without synchronizing retries across peers.
		n.rngMu.Lock()
		f := n.rng.Float64()
		n.rngMu.Unlock()
		span := 3*sleep - n.opts.RetryBase
		if span < 0 {
			span = 0
		}
		sleep = n.opts.RetryBase + time.Duration(f*float64(span))
		if sleep > n.opts.RetryCap {
			sleep = n.opts.RetryCap
		}
		time.Sleep(sleep)
	}
}

// transportFailure reports whether err came from the transport layer (the
// request may never have reached the peer) rather than from the peer's
// reply.
func transportFailure(err error) bool {
	return errors.Is(err, replica.ErrPeerTimeout) || errors.Is(err, replica.ErrNodeDown)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func isNetError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return strings.Contains(err.Error(), "connection")
}

// ID implements replica.Peer.
func (n *RemoteNode) ID() string { return n.id }

// Addr returns the remote address.
func (n *RemoteNode) Addr() string { return n.addr }

// Ping implements replica.Peer. Heartbeats run on the tighter PingTimeout
// so the failure detector's probe cost is bounded well below the data-path
// deadline.
func (n *RemoteNode) Ping() error {
	var st Status
	if err := n.callIdem("Node.Ping", struct{}{}, &st, n.opts.PingTimeout); err != nil {
		return err
	}
	return st.Err()
}

// ReceiveWriteSet implements replica.Peer.
func (n *RemoteNode) ReceiveWriteSet(ws *heap.WriteSet) error {
	var st Status
	if err := n.call("Node.ReceiveWriteSet", ws, &st); err != nil {
		return err
	}
	return st.Err()
}

// TxBegin implements replica.Peer. A positive deadline ships as the
// remaining-budget microseconds and is remembered locally so TxExec and
// TxCommit re-propagate what is left of it on every later call.
func (n *RemoteNode) TxBegin(readOnly bool, version vclock.Vector, deadline time.Duration, tc obs.TraceContext) (uint64, error) {
	var reply BeginReply
	args := BeginArgs{ReadOnly: readOnly, Version: version, Trace: tc}
	if deadline > 0 {
		args.DeadlineUS = deadline.Microseconds()
	} else if deadline < 0 {
		args.DeadlineUS = -1
	}
	if err := n.call("Node.TxBegin", args, &reply); err != nil {
		return 0, err
	}
	if err := reply.Err(); err != nil {
		return reply.ID, err
	}
	if tc.Valid() || deadline > 0 {
		n.trMu.Lock()
		if tc.Valid() {
			n.traces[reply.ID] = tc
		}
		if deadline > 0 {
			n.expiries[reply.ID] = time.Now().Add(deadline)
		}
		n.trMu.Unlock()
	}
	return reply.ID, nil
}

func (n *RemoteNode) traceOf(txID uint64) obs.TraceContext {
	n.trMu.Lock()
	defer n.trMu.Unlock()
	return n.traces[txID]
}

// remainingUS returns the session's leftover deadline budget in
// microseconds (0 = unbounded, -1 = already expired).
func (n *RemoteNode) remainingUS(txID uint64) int64 {
	n.trMu.Lock()
	exp, ok := n.expiries[txID]
	n.trMu.Unlock()
	if !ok {
		return 0
	}
	left := time.Until(exp)
	if left <= 0 {
		return -1
	}
	return left.Microseconds()
}

func (n *RemoteNode) clearTrace(txID uint64) {
	n.trMu.Lock()
	delete(n.traces, txID)
	delete(n.expiries, txID)
	n.trMu.Unlock()
}

// TxExec implements replica.Peer.
func (n *RemoteNode) TxExec(txID uint64, stmt string, params []value.Value) (*exec.Result, error) {
	var reply ExecReply
	args := ExecArgs{TxID: txID, Stmt: stmt, Params: params, Trace: n.traceOf(txID)}
	if us := n.remainingUS(txID); us < 0 {
		// Saves the round trip: the server would refuse anyway.
		return nil, fmt.Errorf("%w: exec %d on %s", replica.ErrDeadlineExpired, txID, n.id)
	} else if us > 0 {
		args.DeadlineUS = us
	}
	if err := n.call("Node.TxExec", args, &reply); err != nil {
		return nil, err
	}
	return reply.Result, reply.Err()
}

// TxCommit implements replica.Peer. The deadline is checked here, before
// the commit request is issued — once the RPC is on the wire the commit is
// in flight and only ErrCommitUncertain semantics apply to its outcome.
func (n *RemoteNode) TxCommit(txID uint64) (vclock.Vector, error) {
	args := CommitArgs{TxID: txID}
	if us := n.remainingUS(txID); us < 0 {
		// Commit work has not started; abandoning here is safe and the
		// server-side session is reaped by the caller's rollback.
		return nil, fmt.Errorf("%w: commit %d on %s", replica.ErrDeadlineExpired, txID, n.id)
	} else if us > 0 {
		args.DeadlineUS = us
	}
	defer n.clearTrace(txID)
	var reply CommitReply
	if err := n.call("Node.TxCommit", args, &reply); err != nil {
		return nil, err
	}
	return reply.Version, reply.Err()
}

// TxRollback implements replica.Peer.
func (n *RemoteNode) TxRollback(txID uint64) error {
	defer n.clearTrace(txID)
	var st Status
	if err := n.call("Node.TxRollback", txID, &st); err != nil {
		return err
	}
	return st.Err()
}

// AbortActiveSessions implements replica.Peer.
func (n *RemoteNode) AbortActiveSessions() (int, error) {
	var reply AbortReply
	if err := n.call("Node.AbortActiveSessions", struct{}{}, &reply); err != nil {
		return 0, err
	}
	return reply.Aborted, reply.Err()
}

// Role implements replica.Peer.
func (n *RemoteNode) Role() (replica.Role, error) {
	var reply RoleReply
	if err := n.callIdem("Node.Role", struct{}{}, &reply, n.opts.CallTimeout); err != nil {
		return 0, err
	}
	return reply.Role, reply.Err()
}

// Promote implements replica.Peer.
func (n *RemoteNode) Promote(classTables []int) error {
	var st Status
	if err := n.call("Node.Promote", classTables, &st); err != nil {
		return err
	}
	return st.Err()
}

// Demote implements replica.Peer.
func (n *RemoteNode) Demote(to replica.Role) error {
	var st Status
	if err := n.call("Node.Demote", to, &st); err != nil {
		return err
	}
	return st.Err()
}

// DiscardAbove implements replica.Peer. Discarding above the same vector
// twice is a no-op, so the fail-over path may retry through transient
// faults instead of abandoning a reachable peer.
func (n *RemoteNode) DiscardAbove(v vclock.Vector) error {
	var st Status
	if err := n.callIdem("Node.DiscardAbove", v, &st, n.opts.CallTimeout); err != nil {
		return err
	}
	return st.Err()
}

// MaxVersions implements replica.Peer.
func (n *RemoteNode) MaxVersions() (vclock.Vector, error) {
	var reply VersionReply
	if err := n.callIdem("Node.MaxVersions", struct{}{}, &reply, n.opts.CallTimeout); err != nil {
		return nil, err
	}
	return reply.Version, reply.Err()
}

// StartJoin implements replica.Peer.
func (n *RemoteNode) StartJoin() error {
	var st Status
	if err := n.call("Node.StartJoin", struct{}{}, &st); err != nil {
		return err
	}
	return st.Err()
}

// PageVersions implements replica.Peer.
func (n *RemoteNode) PageVersions() (heap.PageVersionMap, error) {
	var reply PageVersionsReply
	if err := n.callIdem("Node.PageVersions", struct{}{}, &reply, n.opts.CallTimeout); err != nil {
		return nil, err
	}
	return reply.Versions, reply.Err()
}

// DeltaSince implements replica.Peer. Pure read on the support slave, so
// page migration survives transient faults via retry.
func (n *RemoteNode) DeltaSince(have heap.PageVersionMap, target vclock.Vector) ([]page.Image, error) {
	var reply DeltaReply
	if err := n.callIdem("Node.DeltaSince", DeltaArgs{Have: have, Target: target}, &reply, n.opts.CallTimeout); err != nil {
		return nil, err
	}
	return reply.Images, reply.Err()
}

// InstallDelta implements replica.Peer. Installing the same page images
// twice overwrites them with identical content, so replay is safe.
func (n *RemoteNode) InstallDelta(images []page.Image) error {
	var st Status
	if err := n.callIdem("Node.InstallDelta", images, &st, n.opts.CallTimeout); err != nil {
		return err
	}
	return st.Err()
}

// FinishJoin implements replica.Peer.
func (n *RemoteNode) FinishJoin() error {
	var st Status
	if err := n.call("Node.FinishJoin", struct{}{}, &st); err != nil {
		return err
	}
	return st.Err()
}

// WarmPages implements replica.Peer. Touching a page twice is idempotent.
func (n *RemoteNode) WarmPages(keys []simdisk.PageKey) error {
	var st Status
	if err := n.callIdem("Node.WarmPages", keys, &st, n.opts.CallTimeout); err != nil {
		return err
	}
	return st.Err()
}

// ResidentPages implements replica.Peer.
func (n *RemoteNode) ResidentPages(limit int) ([]simdisk.PageKey, error) {
	var reply PagesReply
	if err := n.callIdem("Node.ResidentPages", limit, &reply, n.opts.CallTimeout); err != nil {
		return nil, err
	}
	return reply.Keys, reply.Err()
}

// Digest implements replica.Peer. A pure read at a pinned version, so it
// retries transient faults; CallTimeout bounds the sweep's wait on a slow
// or partitioned node.
func (n *RemoteNode) Digest(table int, version uint64, withPages bool) (scrub.TableDigest, error) {
	var reply DigestReply
	args := DigestArgs{Table: table, Version: version, WithPages: withPages}
	if err := n.callIdem("Node.Digest", args, &reply, n.opts.CallTimeout); err != nil {
		return scrub.TableDigest{}, err
	}
	return reply.Digest, reply.Err()
}

// PageImages implements replica.Peer. Pure read on the donor, so repair
// survives transient faults via retry.
func (n *RemoteNode) PageImages(table int, pages []page.ID) ([]page.Image, error) {
	var reply ImagesReply
	if err := n.callIdem("Node.PageImages", PageImagesArgs{Table: table, Pages: pages}, &reply, n.opts.CallTimeout); err != nil {
		return nil, err
	}
	return reply.Images, reply.Err()
}

// RepairPages implements replica.Peer. Replacing a page with the same image
// twice leaves identical content, so replay is safe.
func (n *RemoteNode) RepairPages(images []page.Image) error {
	var st Status
	if err := n.callIdem("Node.RepairPages", images, &st, n.opts.CallTimeout); err != nil {
		return err
	}
	return st.Err()
}

// ObsSnapshot fetches the remote node's observability snapshot (not part
// of replica.Peer; the scheduler's aggregation loop type-asserts for it).
func (n *RemoteNode) ObsSnapshot() (obs.NodeSnapshot, error) {
	var reply ObsSnapshotReply
	if err := n.callIdem("Node.ObsSnapshot", struct{}{}, &reply, n.opts.CallTimeout); err != nil {
		return obs.NodeSnapshot{}, err
	}
	return reply.NS, reply.Err()
}

// FlightDump fetches the remote node's flight-recorder fragment (not part
// of replica.Peer; the flight recorder's dump worker reaches it through the
// flight.Peer interface). A pure read, so transient transport failures
// retry; the CallTimeout deadline bounds the gather even when the peer is
// partitioned away.
func (n *RemoteNode) FlightDump() (flight.NodeDump, error) {
	var reply FlightDumpReply
	if err := n.callIdem("Node.FlightDump", struct{}{}, &reply, n.opts.CallTimeout); err != nil {
		return flight.NodeDump{}, err
	}
	return reply.ND, reply.Err()
}

// SetSubscribers re-points the remote node's replication stream.
func (n *RemoteNode) SetSubscribers(addrs map[string]string) error {
	var st Status
	if err := n.call("Node.SetSubscribers", addrs, &st); err != nil {
		return err
	}
	return st.Err()
}
