package transport

import (
	"errors"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/value"
)

func newTPCNode(t *testing.T, id string) *replica.Node {
	t.Helper()
	e := heap.NewEngine(heap.Options{PageCap: 8})
	ddl := []string{
		`CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(32))`,
	}
	for _, d := range ddl {
		if err := exec.ExecDDL(e, d); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	rows := make([]value.Row, 0, 20)
	for i := 1; i <= 20; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i)), value.NewString("init")})
	}
	tid, _ := e.TableID("kv")
	if err := e.Load(tid, rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	return replica.NewNode(replica.Options{ID: id, Engine: e})
}

// TestRPCRoundTrip drives a master and a slave over real TCP connections:
// transactions, write-set replication with acks, versioned reads, and
// migration calls.
func TestRPCRoundTrip(t *testing.T) {
	master := newTPCNode(t, "m")
	slave := newTPCNode(t, "s")
	if err := master.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}

	msrv, err := ServeNode(master, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve master: %v", err)
	}
	defer msrv.Close()
	ssrv, err := ServeNode(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve slave: %v", err)
	}
	defer ssrv.Close()

	mPeer, err := DialNode("m", msrv.Addr())
	if err != nil {
		t.Fatalf("dial master: %v", err)
	}
	sPeer, err := DialNode("s", ssrv.Addr())
	if err != nil {
		t.Fatalf("dial slave: %v", err)
	}

	// Master replicates to the slave over TCP (it dials the slave itself).
	if err := mPeer.SetSubscribers(map[string]string{"s": ssrv.Addr()}); err != nil {
		t.Fatalf("set subscribers: %v", err)
	}

	// Update through the remote master.
	txID, err := mPeer.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := mPeer.TxExec(txID, `UPDATE kv SET v = ? WHERE k = ?`,
		[]value.Value{value.NewString("hello"), value.NewInt(7)}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	ver, err := mPeer.TxCommit(txID)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if ver.Get(0) != 1 {
		t.Fatalf("version = %v", ver)
	}

	// Versioned read on the remote slave observes the replicated write.
	rID, err := sPeer.TxBegin(true, ver, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("read begin: %v", err)
	}
	res, err := sPeer.TxExec(rID, `SELECT v FROM kv WHERE k = ?`, []value.Value{value.NewInt(7)})
	if err != nil {
		t.Fatalf("read exec: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "hello" {
		t.Fatalf("slave read = %v", res.Rows)
	}
	if _, err := sPeer.TxCommit(rID); err != nil {
		t.Fatalf("read commit: %v", err)
	}

	// Control plane: versions, page versions, migration round trip.
	mv, err := sPeer.MaxVersions()
	if err != nil || mv.Get(0) != 1 {
		t.Fatalf("max versions = %v, %v", mv, err)
	}
	pv, err := sPeer.PageVersions()
	if err != nil || len(pv) == 0 {
		t.Fatalf("page versions = %v, %v", pv, err)
	}
	imgs, err := mPeer.DeltaSince(heap.PageVersionMap{}, mv)
	if err != nil || len(imgs) == 0 {
		t.Fatalf("delta = %d images, %v", len(imgs), err)
	}
}

// TestRPCErrorIdentity checks that sentinel errors survive the wire.
func TestRPCErrorIdentity(t *testing.T) {
	slave := newTPCNode(t, "s")
	srv, err := ServeNode(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	peer, err := DialNode("s", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// Update on a non-master must map to ErrNotMaster.
	if _, err := peer.TxBegin(false, nil, 0, obs.TraceContext{}); !errors.Is(err, replica.ErrNotMaster) {
		t.Fatalf("err = %v, want ErrNotMaster", err)
	}

	// Kill the node: calls map to ErrNodeDown (application-level).
	slave.Kill()
	if err := peer.Ping(); !errors.Is(err, replica.ErrNodeDown) {
		t.Fatalf("ping err = %v, want ErrNodeDown", err)
	}

	// Server gone entirely: transport failure also maps to ErrNodeDown.
	srv.Close()
	if err := peer.Ping(); !errors.Is(err, replica.ErrNodeDown) {
		t.Fatalf("ping after close err = %v, want ErrNodeDown", err)
	}
}

// TestRPCVersionConflict checks that the version-inconsistency abort keeps
// its identity across the wire so remote schedulers retry correctly.
func TestRPCVersionConflict(t *testing.T) {
	master := newTPCNode(t, "m")
	slave := newTPCNode(t, "s")
	if err := master.Promote([]int{0}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	master.SetSubscribers([]replica.Peer{slave})

	srv, err := ServeNode(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	peer, err := DialNode("s", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	commit := func(val string) []value.Value {
		txID, err := master.TxBegin(false, nil, 0, obs.TraceContext{})
		if err != nil {
			t.Fatalf("begin: %v", err)
		}
		if _, err := master.TxExec(txID, `UPDATE kv SET v = ? WHERE k = 1`,
			[]value.Value{value.NewString(val)}); err != nil {
			t.Fatalf("exec: %v", err)
		}
		if _, err := master.TxCommit(txID); err != nil {
			t.Fatalf("commit: %v", err)
		}
		return nil
	}
	commit("v1")
	v1, _ := master.MaxVersions()
	commit("v2")
	v2, _ := master.MaxVersions()

	// Materialize v2 on the slave, then ask for v1: version conflict.
	r2, err := peer.TxBegin(true, v2, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("begin v2: %v", err)
	}
	if _, err := peer.TxExec(r2, `SELECT v FROM kv WHERE k = 1`, nil); err != nil {
		t.Fatalf("read v2: %v", err)
	}
	r1, err := peer.TxBegin(true, v1, 0, obs.TraceContext{})
	if err != nil {
		t.Fatalf("begin v1: %v", err)
	}
	_, err = peer.TxExec(r1, `SELECT v FROM kv WHERE k = 1`, nil)
	if !errors.Is(err, page.ErrVersionConflict) {
		t.Fatalf("err = %v, want ErrVersionConflict across the wire", err)
	}
}

// TestRPCReconnectAfterRestart kills the server and brings it back on the
// same address: the client's lazy reconnect must resume service (a rebooted
// node is reachable again without rebuilding the peer).
func TestRPCReconnectAfterRestart(t *testing.T) {
	node := newTPCNode(t, "n")
	srv, err := ServeNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	peer, err := DialNode("n", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.Ping(); err != nil {
		t.Fatalf("initial ping: %v", err)
	}

	srv.Close()
	if err := peer.Ping(); !errors.Is(err, replica.ErrNodeDown) {
		t.Fatalf("ping with server down = %v, want ErrNodeDown", err)
	}

	// "Reboot": a fresh node serves on the same address.
	node2 := newTPCNode(t, "n")
	srv2, err := ServeNode(node2, addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := peer.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Full functionality after reconnect.
	if _, err := peer.MaxVersions(); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
}
