package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dmv/internal/obs"
	"dmv/internal/replica"
)

// stalledListener accepts connections and then sits on them forever: the
// TCP handshake completes (the peer looks alive to a dialer) but no RPC is
// ever answered — the canonical gray failure a raw net/rpc client hangs
// on.
func stalledListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			<-done // hold the connection open, answer nothing
		}
	}()
	t.Cleanup(func() {
		close(done)
		lis.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return lis
}

// TestStalledPeerDeadline is the acceptance check that no transport RPC
// can outlive its configured deadline: both the heartbeat path and the
// transaction path against a peer that accepts but never answers must fail
// with ErrPeerTimeout in under twice the deadline.
func TestStalledPeerDeadline(t *testing.T) {
	lis := stalledListener(t)

	const deadline = 200 * time.Millisecond
	reg := obs.New()
	rn, err := DialNodeOpts("stalled", lis.Addr().String(), ClientOptions{
		CallTimeout:   deadline,
		PingTimeout:   deadline,
		RetryAttempts: -1, // isolate the single-attempt bound
		Obs:           reg,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	start := time.Now()
	err = rn.Ping()
	elapsed := time.Since(start)
	if !errors.Is(err, replica.ErrPeerTimeout) {
		t.Fatalf("Ping against stalled peer: err=%v, want ErrPeerTimeout", err)
	}
	if elapsed >= 2*deadline {
		t.Fatalf("Ping took %v, want < 2x the %v deadline", elapsed, deadline)
	}

	// Non-idempotent path (single attempt, CallTimeout).
	start = time.Now()
	_, err = rn.TxBegin(true, nil, 0, obs.TraceContext{})
	elapsed = time.Since(start)
	if !errors.Is(err, replica.ErrPeerTimeout) {
		t.Fatalf("TxBegin against stalled peer: err=%v, want ErrPeerTimeout", err)
	}
	if elapsed >= 2*deadline {
		t.Fatalf("TxBegin took %v, want < 2x the %v deadline", elapsed, deadline)
	}

	if got := reg.Snapshot().Counters[obs.TransportRPCTimeouts]; got < 2 {
		t.Fatalf("timeout counter = %d, want >= 2", got)
	}
}

// TestRetryBudgetExhausted: attempt counts alone are not a bound — against
// a peer that times out every attempt, a generous attempt limit would burn
// attempts x timeout of wall clock. The elapsed-time retry budget must cut
// the loop off near the budget, well before the attempts run out, and count
// the exhaustion on its metric.
func TestRetryBudgetExhausted(t *testing.T) {
	lis := stalledListener(t)

	const budget = 250 * time.Millisecond
	reg := obs.New()
	rn, err := DialNodeOpts("stalled", lis.Addr().String(), ClientOptions{
		PingTimeout:   40 * time.Millisecond,
		CallTimeout:   40 * time.Millisecond,
		RetryAttempts: 1000, // would be ~40s of retries without the budget
		RetryBudget:   budget,
		Obs:           reg,
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	start := time.Now()
	err = rn.Ping()
	elapsed := time.Since(start)
	if !errors.Is(err, replica.ErrPeerTimeout) {
		t.Fatalf("Ping against stalled peer: err=%v, want ErrPeerTimeout", err)
	}
	// The loop may finish the attempt in flight when the budget trips, so
	// allow one extra attempt's timeout on top of the budget itself.
	if elapsed > 3*budget {
		t.Fatalf("Ping took %v, want near the %v retry budget", elapsed, budget)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.TransportRetryBudgetExhausted]; got < 1 {
		t.Fatalf("budget-exhausted counter = %d, want >= 1", got)
	}
	if got := snap.Counters[obs.TransportRPCRetries]; got < 1 {
		t.Fatalf("retry counter = %d, want >= 1 (budget must trip after retrying, not instead of it)", got)
	}
}

// dropFirstListener kills the first accepted connection before net/rpc can
// serve it, then behaves normally — the transient conn reset of the
// regression: a client that never re-dials is permanently dead after this.
type dropFirstListener struct {
	net.Listener
	mu      sync.Mutex
	dropped bool // guarded by mu
}

func (l *dropFirstListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	first := !l.dropped
	l.dropped = true
	l.mu.Unlock()
	if first {
		_ = c.Close()
	}
	return c, nil
}

// TestReconnectAfterConnDrop: one transient connection reset must not
// permanently kill an otherwise healthy peer — the idempotent retry path
// re-dials with backoff and the call succeeds on the fresh connection.
func TestReconnectAfterConnDrop(t *testing.T) {
	node := newTPCNode(t, "n1")
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeNodeListener(node, &dropFirstListener{Listener: raw}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.New()
	rn, err := DialNodeOpts("n1", srv.Addr(), ClientOptions{
		CallTimeout: time.Second,
		Obs:         reg,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// The first connection is already doomed; the first call fails in
	// flight and the retry loop must recover on a re-dialed client.
	if _, err := rn.MaxVersions(); err != nil {
		t.Fatalf("MaxVersions after dropped first conn: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.TransportRedials] < 1 {
		t.Fatalf("redial counter = %d, want >= 1", snap.Counters[obs.TransportRedials])
	}
	if snap.Counters[obs.TransportRPCRetries] < 1 {
		t.Fatalf("retry counter = %d, want >= 1", snap.Counters[obs.TransportRPCRetries])
	}

	// The recovered client keeps working for non-idempotent traffic too.
	if err := rn.Ping(); err != nil {
		t.Fatalf("Ping on recovered client: %v", err)
	}
}
