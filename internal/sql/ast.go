package sql

import (
	"dmv/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression.
type Expr interface{ expr() }

// --- statements -------------------------------------------------------------

// ColumnDef declares one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.ColumnType
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (col type [PRIMARY KEY], ...).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndex struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// SelectExpr is one output column: an expression with an optional alias, or
// a bare * (Star).
type SelectExpr struct {
	Expr  Expr
	Alias string
	Star  bool
}

// JoinKind discriminates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota + 1
	JoinLeft
)

// TableRef is one FROM-clause table with its join condition (nil for the
// first table).
type TableRef struct {
	Table string
	Alias string
	Join  JoinKind
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Exprs    []SelectExpr
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr // nil = no offset
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// Begin / Commit / Rollback are transaction-control statements handled by
// the session layer.
type (
	// Begin is BEGIN.
	Begin struct{}
	// Commit is COMMIT.
	Commit struct{}
	// Rollback is ROLLBACK.
	Rollback struct{}
)

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// --- expressions ------------------------------------------------------------

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table string // "" if unqualified
	Col   string
}

// Lit is a literal value.
type Lit struct{ V value.Value }

// Param is the n-th positional ? parameter (0-based).
type Param struct{ N int }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

// Binary is a binary operation. Op is one of
// = <> < <= > >= AND OR + - * / LIKE.
type Binary struct {
	Op   string
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// InList is x IN (e1, e2, ...) or x IN (SELECT ...). Exactly one of List
// and Sub is set.
type InList struct {
	X    Expr
	List []Expr
	Sub  *Subquery
}

// Between is x BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
}

// Subquery is an uncorrelated scalar or IN-list subquery.
type Subquery struct {
	Sel *Select
}

// Call is an aggregate or scalar function call; Star marks COUNT(*) and
// Distinct marks COUNT(DISTINCT x) and friends.
type Call struct {
	Fn       string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*ColRef) expr()   {}
func (*Lit) expr()      {}
func (*Param) expr()    {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}
func (*IsNull) expr()   {}
func (*InList) expr()   {}
func (*Between) expr()  {}
func (*Subquery) expr() {}
func (*Call) expr()     {}
