package sql

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dmv/internal/value"
)

func parseSelect(t *testing.T, q string) *Select {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("parsed %T, want *Select", stmt)
	}
	return sel
}

func TestParseSelectBasic(t *testing.T) {
	sel := parseSelect(t, `SELECT a, b AS bee, t.c FROM tab t WHERE a = 1 AND b <> 'x' ORDER BY a DESC LIMIT 10 OFFSET 5`)
	if len(sel.Exprs) != 3 {
		t.Fatalf("exprs = %d", len(sel.Exprs))
	}
	if sel.Exprs[1].Alias != "bee" {
		t.Fatalf("alias = %q", sel.Exprs[1].Alias)
	}
	ref, ok := sel.Exprs[2].Expr.(*ColRef)
	if !ok || ref.Table != "t" || ref.Col != "c" {
		t.Fatalf("qualified ref = %+v", sel.Exprs[2].Expr)
	}
	if len(sel.From) != 1 || sel.From[0].Alias != "t" {
		t.Fatalf("from = %+v", sel.From)
	}
	if sel.Where == nil || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatal("where/order-by missing")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseJoins(t *testing.T) {
	sel := parseSelect(t, `
		SELECT i.i_id FROM item i
		JOIN author a ON i.i_a_id = a.a_id
		LEFT JOIN orders o ON o.o_id = i.i_id
		INNER JOIN country c ON c.co_id = o.o_id`)
	if len(sel.From) != 4 {
		t.Fatalf("from = %d tables", len(sel.From))
	}
	if sel.From[1].Join != JoinInner || sel.From[2].Join != JoinLeft || sel.From[3].Join != JoinInner {
		t.Fatalf("join kinds = %v %v %v", sel.From[1].Join, sel.From[2].Join, sel.From[3].Join)
	}
	for i := 1; i < 4; i++ {
		if sel.From[i].On == nil {
			t.Fatalf("table %d missing ON", i)
		}
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	sel := parseSelect(t, `
		SELECT grp, COUNT(*), SUM(v) AS total, AVG(v), MIN(v), MAX(v)
		FROM t GROUP BY grp HAVING COUNT(*) > 2`)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("group by / having missing")
	}
	call, ok := sel.Exprs[1].Expr.(*Call)
	if !ok || call.Fn != "COUNT" || !call.Star {
		t.Fatalf("count(*) = %+v", sel.Exprs[1].Expr)
	}
	if !IsAggregate(sel.Exprs[2].Expr) {
		t.Fatal("SUM not detected as aggregate")
	}
	if !IsAggregate(sel.Having) {
		t.Fatal("HAVING aggregate not detected")
	}
}

func TestParseParamNumbering(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE a = ? AND b > ? AND c IN (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	var params []*Param
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			params = append(params, x)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *InList:
			walk(x.X)
			for _, le := range x.List {
				walk(le)
			}
		}
	}
	walk(stmt.(*Select).Where)
	if len(params) != 4 {
		t.Fatalf("params = %d", len(params))
	}
	for i, p := range params {
		if p.N != i {
			t.Fatalf("param %d numbered %d", i, p.N)
		}
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Fatalf("insert = %+v", ins)
	}

	stmt, err = Parse(`UPDATE t SET a = a + 1, b = ? WHERE c BETWEEN 1 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*Update)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	if _, ok := up.Where.(*Between); !ok {
		t.Fatalf("where = %T, want Between", up.Where)
	}

	stmt, err = Parse(`DELETE FROM t WHERE a IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmt.(*Delete)
	isn, ok := d.Where.(*IsNull)
	if !ok || !isn.Not {
		t.Fatalf("where = %+v", d.Where)
	}
}

func TestParseCreate(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, price FLOAT)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if len(ct.Cols) != 3 || !ct.Cols[0].PrimaryKey {
		t.Fatalf("create table = %+v", ct)
	}
	if ct.Cols[1].Type != value.TString || ct.Cols[2].Type != value.TFloat {
		t.Fatalf("types = %v %v", ct.Cols[1].Type, ct.Cols[2].Type)
	}

	stmt, err = Parse(`CREATE UNIQUE INDEX ix ON t (name, price)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndex)
	if !ci.Unique || len(ci.Cols) != 2 {
		t.Fatalf("create index = %+v", ci)
	}
}

func TestParseTransactionControl(t *testing.T) {
	for q, want := range map[string]any{
		"BEGIN": &Begin{}, "COMMIT": &Commit{}, "ROLLBACK": &Rollback{},
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if want, got := want, stmt; strings.TrimPrefix(strings.TrimPrefix(typename(got), "*sql."), "*") != strings.TrimPrefix(typename(want), "*sql.") {
			t.Fatalf("%s parsed as %T", q, got)
		}
	}
}

func typename(v any) string {
	switch v.(type) {
	case *Begin:
		return "Begin"
	case *Commit:
		return "Commit"
	case *Rollback:
		return "Rollback"
	default:
		return "?"
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	stmt, err := Parse(`SELECT 'it''s fine'`)
	if err != nil {
		t.Fatal(err)
	}
	lit := stmt.(*Select).Exprs[0].Expr.(*Lit)
	if lit.V.AsString() != "it's fine" {
		t.Fatalf("literal = %q", lit.V.AsString())
	}
}

func TestLineComments(t *testing.T) {
	_, err := Parse("SELECT a -- trailing comment\nFROM t")
	if err != nil {
		t.Fatalf("comment not skipped: %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`INSERT t VALUES (1)`,
		`UPDATE t WHERE a = 1`,
		`CREATE TABLE t (a BLOB)`,
		`SELECT 'unterminated`,
		`SELECT a FROM t trailing garbage ,`,
		`DELETE t`,
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("no error for %q", q)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("error for %q is %T, want *SyntaxError", q, err)
			}
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := parseSelect(t, `SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %+v, want OR (AND binds tighter)", sel.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %+v, want AND", or.R)
	}

	sel = parseSelect(t, `SELECT 1 + 2 * 3`)
	add := sel.Exprs[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("mul must bind tighter: %+v", add.R)
	}
}

func TestNotAndUnaryMinus(t *testing.T) {
	sel := parseSelect(t, `SELECT a FROM t WHERE NOT a = -1`)
	not, ok := sel.Where.(*Unary)
	if !ok || not.Op != "NOT" {
		t.Fatalf("where = %+v", sel.Where)
	}
	cmp := not.X.(*Binary)
	if neg, ok := cmp.R.(*Unary); !ok || neg.Op != "-" {
		t.Fatalf("rhs = %+v", cmp.R)
	}
}

// TestParserNeverPanics feeds random byte soup and mutated SQL through the
// parser: it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT a FROM t WHERE b = 1`,
		`INSERT INTO t (a) VALUES (1)`,
		`UPDATE t SET a = a + 1 WHERE b IN (SELECT c FROM u)`,
		`CREATE TABLE t (a INT PRIMARY KEY)`,
	}
	f := func(seed int64, mutations uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := []byte(seeds[rng.Intn(len(seeds))])
		for m := 0; m < int(mutations%12)+1; m++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				if len(src) > 0 {
					src[rng.Intn(len(src))] = byte(rng.Intn(128))
				}
			case 1: // delete a byte
				if len(src) > 1 {
					i := rng.Intn(len(src))
					src = append(src[:i], src[i+1:]...)
				}
			case 2: // insert a byte
				i := rng.Intn(len(src) + 1)
				src = append(src[:i], append([]byte{byte(rng.Intn(128))}, src[i:]...)...)
			}
		}
		_, _ = Parse(string(src)) // error or statement; never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
