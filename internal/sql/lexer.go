// Package sql implements the SQL dialect used by the TPC-W workload: a
// lexer, an AST, and a recursive-descent parser for SELECT (joins, GROUP
// BY/HAVING, ORDER BY, LIMIT, LIKE), INSERT, UPDATE, DELETE, CREATE
// TABLE/INDEX, and positional ? parameters.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokParam // ?
	TokPunct // ( ) , . * = < > <= >= <> != + - / ;
)

// Token is one lexical token. Pos is a byte offset for error messages.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "ON": true, "PRIMARY": true, "KEY": true, "JOIN": true,
	"INNER": true, "LEFT": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"DISTINCT": true, "LIKE": true, "IS": true, "NULL": true, "IN": true,
	"BETWEEN": true, "HAVING": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "INT": true, "INTEGER": true, "BIGINT": true,
	"FLOAT": true, "DOUBLE": true, "VARCHAR": true, "TEXT": true, "CHAR": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "DEFAULT": true,
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
	SQL string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	frag := e.SQL
	if e.Pos < len(frag) {
		frag = frag[e.Pos:]
	}
	if len(frag) > 30 {
		frag = frag[:30] + "..."
	}
	return fmt.Sprintf("sql: %s at offset %d near %q", e.Msg, e.Pos, frag)
}

// Lex tokenizes the input.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string", SQL: input}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '?':
			toks = append(toks, Token{Kind: TokParam, Text: "?", Pos: i})
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentCont(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, Token{Kind: TokPunct, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', ';', '%':
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: start})
				i++
			default:
				return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c), SQL: input}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
