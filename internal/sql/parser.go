package sql

import (
	"strconv"
	"strings"

	"dmv/internal/value"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{src: input, toks: toks, nextParam: 0}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peek().Kind == TokPunct && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return stmt, nil
}

type parser struct {
	src       string
	toks      []Token
	pos       int
	nextParam int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(msg string) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: msg, SQL: p.src}
}

func (p *parser) acceptKw(kw string) bool {
	if p.peek().Kind == TokKeyword && p.peek().Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected " + kw)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().Kind == TokPunct && p.peek().Text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected " + strconv.Quote(s))
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	// Permit non-reserved keyword-ish identifiers (e.g. a column named
	// "count" would be ambiguous; the TPC-W schema does not need them).
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier")
	}
	p.next()
	return t.Text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword")
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "BEGIN":
		p.next()
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		return &Rollback{}, nil
	default:
		return nil, p.errf("unsupported statement " + t.Text)
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, p.errf("UNIQUE TABLE is not valid")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			ctype, err := p.columnType()
			if err != nil {
				return nil, err
			}
			cd := ColumnDef{Name: cname, Type: ctype}
			if p.acceptKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				cd.PrimaryKey = true
			}
			if p.acceptKw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
			}
			cols = append(cols, cd)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name, Cols: cols}, nil
	case p.acceptKw("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Cols: cols, Unique: unique}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) columnType() (value.ColumnType, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return 0, p.errf("expected column type")
	}
	p.next()
	var ct value.ColumnType
	switch t.Text {
	case "INT", "INTEGER", "BIGINT":
		ct = value.TInt
	case "FLOAT", "DOUBLE":
		ct = value.TFloat
	case "VARCHAR", "TEXT", "CHAR":
		ct = value.TString
	default:
		return 0, p.errf("unsupported column type " + t.Text)
	}
	// optional length: VARCHAR(60)
	if p.acceptPunct("(") {
		if p.peek().Kind != TokNumber {
			return 0, p.errf("expected length")
		}
		p.next()
		if err := p.expectPunct(")"); err != nil {
			return 0, err
		}
	}
	return ct, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptPunct("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return &Insert{Table: table, Cols: cols, Rows: rows}, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	var sets []SetClause
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Col: col, Expr: e})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	var where Expr
	if p.acceptKw("WHERE") {
		if where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return &Update{Table: table, Sets: sets, Where: where}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.acceptKw("WHERE") {
		if where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return &Delete{Table: table, Where: where}, nil
}

func (p *parser) selectStmt() (*Select, error) {
	p.next() // SELECT
	sel := &Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	for {
		if p.acceptPunct("*") {
			sel.Exprs = append(sel.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.acceptKw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = a
			} else if p.peek().Kind == TokIdent {
				se.Alias = p.next().Text
			}
			sel.Exprs = append(sel.Exprs, se)
		}
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		ref, err := p.tableRef(true)
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		for {
			join := JoinInner
			switch {
			case p.acceptKw("JOIN"):
			case p.acceptKw("INNER"):
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
			case p.acceptKw("LEFT"):
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
				join = JoinLeft
			case p.acceptPunct(","):
				// implicit cross join (condition lives in WHERE)
			default:
				goto fromDone
			}
			ref, err := p.tableRef(false)
			if err != nil {
				return nil, err
			}
			ref.Join = join
			if p.acceptKw("ON") {
				if ref.On, err = p.expr(); err != nil {
					return nil, err
				}
			}
			sel.From = append(sel.From, ref)
		}
	}
fromDone:
	var err error
	if p.acceptKw("WHERE") {
		if sel.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		if sel.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		if sel.Limit, err = p.expr(); err != nil {
			return nil, err
		}
		if p.acceptKw("OFFSET") {
			if sel.Offset, err = p.expr(); err != nil {
				return nil, err
			}
		}
	}
	return sel, nil
}

func (p *parser) tableRef(first bool) (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if first {
		ref.Join = JoinInner
	}
	if p.acceptKw("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// --- expression grammar (precedence climbing) -------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "LIKE":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: "LIKE", L: l, R: r}, nil
		case "IS":
			p.next()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			return &IsNull{X: l, Not: not}, nil
		case "IN":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &InList{X: l, Sub: &Subquery{Sel: sub}}, nil
			}
			var list []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.acceptPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &InList{X: l, List: list}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Between{X: l, Lo: lo, Hi: hi}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokPunct && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokPunct && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

var aggFns = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number")
			}
			return &Lit{V: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number")
		}
		return &Lit{V: value.NewInt(n)}, nil
	case TokString:
		p.next()
		return &Lit{V: value.NewString(t.Text)}, nil
	case TokParam:
		p.next()
		e := &Param{N: p.nextParam}
		p.nextParam++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Lit{V: value.NewNull()}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			call := &Call{Fn: t.Text}
			if p.acceptPunct("*") {
				call.Star = true
			} else {
				call.Distinct = p.acceptKw("DISTINCT")
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return nil, p.errf("unexpected keyword " + t.Text)
	case TokIdent:
		p.next()
		name := t.Text
		if p.acceptPunct(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Col: col}, nil
		}
		return &ColRef{Col: name}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &Subquery{Sel: sub}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token")
}

// IsAggregate reports whether the expression contains an aggregate call.
func IsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		return aggFns[x.Fn]
	case *Binary:
		return IsAggregate(x.L) || IsAggregate(x.R)
	case *Unary:
		return IsAggregate(x.X)
	case *IsNull:
		return IsAggregate(x.X)
	case *Between:
		return IsAggregate(x.X) || IsAggregate(x.Lo) || IsAggregate(x.Hi)
	case *InList:
		if IsAggregate(x.X) {
			return true
		}
		for _, e := range x.List {
			if IsAggregate(e) {
				return true
			}
		}
	}
	return false
}
