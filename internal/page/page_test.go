package page

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dmv/internal/value"
)

func intRow(vals ...int64) value.Row {
	r := make(value.Row, len(vals))
	for i, v := range vals {
		r[i] = value.NewInt(v)
	}
	return r
}

func mod(ver uint64, ops ...RowOp) Mod { return Mod{Version: ver, Ops: ops} }

func ins(rid RowID, v int64) RowOp { return RowOp{Kind: OpInsert, Row: rid, Data: intRow(v)} }
func upd(rid RowID, v int64) RowOp { return RowOp{Kind: OpUpdate, Row: rid, Data: intRow(v)} }
func del(rid RowID) RowOp          { return RowOp{Kind: OpDelete, Row: rid} }

func rowsAt(t *testing.T, p *Page, ver uint64) map[RowID]int64 {
	t.Helper()
	out := map[RowID]int64{}
	err := p.View(ver, func(rows map[RowID]value.Row) error {
		for rid, r := range rows {
			out[rid] = r[0].AsInt()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("view@%d: %v", ver, err)
	}
	return out
}

func TestLazyMaterialization(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(1, ins(1, 10)))
	p.Enqueue(mod(2, upd(1, 20)))
	p.Enqueue(mod(3, del(1)))

	if p.Applied() != 0 || p.PendingLen() != 3 {
		t.Fatalf("eager application happened: applied=%d pending=%d", p.Applied(), p.PendingLen())
	}
	// Materialize only up to version 2.
	got := rowsAt(t, p, 2)
	if got[1] != 20 {
		t.Fatalf("at v2: %v", got)
	}
	if p.Applied() != 2 || p.PendingLen() != 1 {
		t.Fatalf("applied=%d pending=%d, want 2/1", p.Applied(), p.PendingLen())
	}
	// And the delete at 3.
	got = rowsAt(t, p, 3)
	if len(got) != 0 {
		t.Fatalf("at v3: %v", got)
	}
}

func TestVersionConflictAbort(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(1, ins(1, 10)))
	p.Enqueue(mod(2, upd(1, 20)))
	_ = rowsAt(t, p, 2) // upgrade to v2
	err := p.View(1, func(map[RowID]value.Row) error { return nil })
	if !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("err = %v, want ErrVersionConflict (old versions are never kept)", err)
	}
	// Reading at exactly the applied version is fine.
	if _, _, err := p.Get(1, 2); err != nil {
		t.Fatalf("get@2: %v", err)
	}
	// And higher versions with no pending mods are also valid states.
	if _, _, err := p.Get(1, 99); err != nil {
		t.Fatalf("get@99: %v", err)
	}
}

func TestEnqueueOutOfOrderAndDuplicates(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(3, upd(1, 30)))
	p.Enqueue(mod(1, ins(1, 10)))
	p.Enqueue(mod(2, upd(1, 20)))
	p.Enqueue(mod(2, upd(1, 999))) // duplicate version dropped
	got := rowsAt(t, p, 3)
	if got[1] != 30 {
		t.Fatalf("at v3: %v", got)
	}
}

func TestDiscardAbove(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(1, ins(1, 10)))
	p.Enqueue(mod(2, upd(1, 20)))
	p.Enqueue(mod(3, upd(1, 30)))
	p.DiscardAbove(1)
	got := rowsAt(t, p, 3) // 2 and 3 are gone
	if got[1] != 10 {
		t.Fatalf("after discard: %v", got)
	}
}

func TestInstallNewerWins(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(1, ins(1, 10)))
	img := Image{Table: 0, Page: 0, Version: 5, Rows: map[RowID]value.Row{2: intRow(50)}}
	if !p.Install(img) {
		t.Fatal("install of newer image refused")
	}
	got := rowsAt(t, p, 5)
	if got[2] != 50 || len(got) != 1 {
		t.Fatalf("after install: %v", got)
	}
	// Older image must be refused.
	if p.Install(Image{Version: 3}) {
		t.Fatal("older image installed")
	}
	// Pending mods <= image version were pruned.
	if p.PendingLen() != 0 {
		t.Fatalf("pending = %d", p.PendingLen())
	}
}

func TestSnapshotSkipsDirty(t *testing.T) {
	p := New(0, 0, 0)
	p.LockX()
	if _, ok := p.Snapshot(); ok {
		t.Fatal("snapshot of an exclusively latched (dirty) page must be skipped")
	}
	p.UnlockX()
	if _, ok := p.Snapshot(); !ok {
		t.Fatal("snapshot of a clean page failed")
	}
}

func TestStampCreateVersionLowersOnly(t *testing.T) {
	p := New(0, 0, ^uint64(0))
	if p.CreateVersion() != ^uint64(0) {
		t.Fatal("sentinel expected")
	}
	p.StampCreateVersion(7)
	p.StampCreateVersion(9) // must not raise
	if p.CreateVersion() != 7 {
		t.Fatalf("createVer = %d", p.CreateVersion())
	}
}

// TestConcurrentReadersUpgrade has readers at increasing versions race on
// one page; all succeed or abort cleanly, and the final state is the newest.
func TestConcurrentReadersUpgrade(t *testing.T) {
	p := New(0, 0, 0)
	const versions = 50
	for v := uint64(1); v <= versions; v++ {
		p.Enqueue(mod(v, upd(1, int64(v))))
	}
	p.Enqueue(mod(0, ins(1, 0))) // ignored: version 0 <= applied

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				v := uint64(rng.Intn(versions) + 1)
				err := p.View(v, func(rows map[RowID]value.Row) error {
					if r, ok := rows[1]; ok && r[0].AsInt() > int64(v) {
						t.Errorf("view@%d saw future value %d", v, r[0].AsInt())
					}
					return nil
				})
				if err != nil && !errors.Is(err, ErrVersionConflict) {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	got := rowsAt(t, p, versions)
	if got[1] != versions {
		t.Fatalf("final = %v", got)
	}
}

// TestApplyPrefixDeterministic (testing/quick): materializing any cut point
// v of a random modification sequence equals replaying the prefix <= v by
// hand — write-set application is deterministic and prefix-consistent.
func TestApplyPrefixDeterministic(t *testing.T) {
	f := func(seed int64, nOps uint8, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOps%40) + 1
		p := New(0, 0, 0)
		ref := map[RowID]int64{}
		cutV := uint64(cut%uint8(n)) + 1
		for v := uint64(1); v <= uint64(n); v++ {
			rid := RowID(rng.Intn(5))
			var op RowOp
			switch rng.Intn(3) {
			case 0:
				op = ins(rid, int64(v)*100)
			case 1:
				op = upd(rid, int64(v))
			default:
				op = del(rid)
			}
			p.Enqueue(mod(v, op))
			if v <= cutV {
				switch op.Kind {
				case OpInsert, OpUpdate:
					ref[rid] = op.Data[0].AsInt()
				case OpDelete:
					delete(ref, rid)
				}
			}
		}
		got := map[RowID]int64{}
		err := p.View(cutV, func(rows map[RowID]value.Row) error {
			for rid, r := range rows {
				got[rid] = r[0].AsInt()
			}
			return nil
		})
		if err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReplaceOverwrites(t *testing.T) {
	p := New(0, 0, 0)
	p.Enqueue(mod(1, ins(1, 10)))
	_ = rowsAt(t, p, 1)
	p.Replace(Image{Version: 0, CreateVer: 0, Rows: map[RowID]value.Row{9: intRow(90)}})
	got := rowsAt(t, p, 0)
	if got[9] != 90 || len(got) != 1 {
		t.Fatalf("after replace: %v", got)
	}
}
