// Package page implements the versioned memory pages at the core of Dynamic
// Multiversioning.
//
// The unit of transactional concurrency control is the memory page (as in
// the paper's modified MySQL HEAP storage manager). Every page belongs to
// one table and carries:
//
//   - its materialized state (row slots),
//   - the table-version that state corresponds to ("applied"),
//   - a queue of pending fine-grained modifications received from the
//     conflict-class master but not yet applied.
//
// A read-only transaction tagged with version vector V materializes version
// V[t] of each page it touches on demand (lazy application). Because old
// versions are never retained, a reader requiring a version older than the
// page's applied version must abort with ErrVersionConflict — exactly the
// paper's (rare) version-inconsistency abort.
package page

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dmv/internal/obs"
	"dmv/internal/value"
)

// RowID identifies a row within its table for the lifetime of the database.
type RowID int64

// ID identifies a page within its table (its index in the table directory).
type ID int32

// ErrVersionConflict is returned when a reader requires a page version that
// has already been overwritten (the paper aborts the reading transaction).
var ErrVersionConflict = errors.New("page: required version already overwritten")

// OpKind discriminates row operations inside a write-set.
type OpKind uint8

// Row operation kinds.
const (
	OpInsert OpKind = iota + 1
	OpUpdate
	OpDelete
)

// RowOp is one fine-grained modification to one row of one page.
type RowOp struct {
	Kind OpKind
	Row  RowID
	Data value.Row // after-image for insert/update; nil for delete
}

// Mod is the portion of one committed transaction's write-set that touches
// one page, stamped with the table version the commit produced and the
// trace context of the committing transaction (so the eventual lazy
// application can be recorded as a child span of the originating commit).
type Mod struct {
	Version uint64
	Ops     []RowOp
	Trace   obs.TraceContext
}

// Page is one versioned memory page. All exported methods are safe for
// concurrent use.
type Page struct {
	id    ID
	table int

	mu      sync.RWMutex
	rows    map[RowID]value.Row
	applied uint64 // table version the slots materialize
	pending []Mod  // sorted ascending by Version

	// createVer is the table version at which the page was allocated; a
	// page allocated mid-transaction carries the sentinel ^uint64(0) until
	// the allocating (or first committing) transaction stamps it, keeping
	// it invisible to scans at any version. Atomic: read by scans without
	// the latch, written under the exclusive latch.
	createVer atomic.Uint64

	// onApply, if set, observes every application of pending modifications:
	// the batch of mods applied, and whether the batch was demand-driven
	// (lazy, a reader or master materializing) or forced (eager, a
	// materialize-all sweep). Runs under the page latch, so it must not
	// block and may only take obs-band locks (metric atomics, the trace
	// ring; level 70 sits inside the page latch in the declared hierarchy).
	// Set once before the page is shared.
	onApply func(mods []Mod, eager bool)
}

// New returns an empty page for the given table, allocated at table version
// createVer (0 for pages present in the initial database load).
func New(table int, id ID, createVer uint64) *Page {
	p := &Page{
		id:    id,
		table: table,
		rows:  make(map[RowID]value.Row, 64),
	}
	// applied starts at 0: an empty page is a valid materialization of every
	// version up to its first modification.
	p.createVer.Store(createVer)
	return p
}

// ID returns the page id.
func (p *Page) ID() ID { return p.id }

// Table returns the owning table id.
func (p *Page) Table() int { return p.table }

// CreateVersion returns the table version at which the page was allocated.
// Full scans at version V skip pages created after V.
func (p *Page) CreateVersion() uint64 { return p.createVer.Load() }

// StampCreateVersion lowers the page's create-version from the allocation
// sentinel to the allocating transaction's commit version. Caller must hold
// the exclusive latch (master commit) or be the sole owner (slave apply).
func (p *Page) StampCreateVersion(v uint64) {
	if p.createVer.Load() > v {
		p.createVer.Store(v)
	}
}

// Applied returns the table version currently materialized.
func (p *Page) Applied() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.applied
}

// PendingLen returns the number of buffered, unapplied modifications.
func (p *Page) PendingLen() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pending)
}

// Enqueue buffers a modification received from the master. Mods from one
// master arrive in commit order; Enqueue keeps the queue sorted as a defense
// against reordering during reconfiguration.
func (p *Page) Enqueue(m Mod) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.Version <= p.applied {
		// Already materialized (e.g. duplicate delivery during master
		// fail-over, or the node received the state via page migration).
		return
	}
	n := len(p.pending)
	if n == 0 || p.pending[n-1].Version < m.Version {
		p.pending = append(p.pending, m)
		return
	}
	i := sort.Search(n, func(i int) bool { return p.pending[i].Version >= m.Version })
	if i < n && p.pending[i].Version == m.Version {
		return // duplicate
	}
	p.pending = append(p.pending, Mod{})
	copy(p.pending[i+1:], p.pending[i:])
	p.pending[i] = m
}

// SetApplyHook installs the modification-application observer. Must be
// called before the page is shared (the table directory sets it at
// allocation, under its directory lock).
func (p *Page) SetApplyHook(fn func(mods []Mod, eager bool)) { p.onApply = fn }

// FirstPending returns the lowest buffered-but-unapplied modification
// version, if any. The engine uses it to compute the per-table applied
// frontier that the staleness gauges report.
func (p *Page) FirstPending() (uint64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.pending) == 0 {
		return 0, false
	}
	return p.pending[0].Version, true
}

// DiscardAbove drops buffered modifications with version > v, returning how
// many were dropped. Used during master fail-over to clean up partially
// propagated pre-commits that the failed master never acknowledged.
func (p *Page) DiscardAbove(v uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := sort.Search(len(p.pending), func(i int) bool { return p.pending[i].Version > v })
	dropped := len(p.pending) - i
	p.pending = p.pending[:i]
	return dropped
}

func (p *Page) applyLocked(m Mod) {
	for _, op := range m.Ops {
		switch op.Kind {
		case OpInsert, OpUpdate:
			p.rows[op.Row] = op.Data
		case OpDelete:
			delete(p.rows, op.Row)
		}
	}
	if m.Version > p.applied {
		p.applied = m.Version
	}
}

// ensureLocked applies pending mods with version <= v. Caller holds p.mu.
// Returns ErrVersionConflict if the page has been upgraded past v.
func (p *Page) ensureLocked(v uint64, eager bool) error {
	if p.applied > v {
		return ErrVersionConflict
	}
	n := 0
	for n < len(p.pending) && p.pending[n].Version <= v {
		p.applyLocked(p.pending[n])
		n++
	}
	if n > 0 {
		batch := p.pending[:n]
		p.pending = append([]Mod(nil), p.pending[n:]...)
		if p.onApply != nil {
			// batch aliases the abandoned backing array, so the hook may
			// read it without copying.
			p.onApply(batch, eager)
		}
	}
	return nil
}

// View materializes the page at table version v and calls fn with the row
// slots under a shared latch. fn must not retain or mutate the map. Returns
// ErrVersionConflict if version v is no longer constructible.
func (p *Page) View(v uint64, fn func(rows map[RowID]value.Row) error) error {
	for {
		p.mu.RLock()
		if p.applied > v {
			p.mu.RUnlock()
			return ErrVersionConflict
		}
		if len(p.pending) > 0 && p.pending[0].Version <= v {
			p.mu.RUnlock()
			p.mu.Lock()
			err := p.ensureLocked(v, false)
			p.mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		err := fn(p.rows)
		p.mu.RUnlock()
		return err
	}
}

// Get returns the row at rid as of version v (materializing v first). ok is
// false if the row does not exist at v.
func (p *Page) Get(rid RowID, v uint64) (row value.Row, ok bool, err error) {
	err = p.View(v, func(rows map[RowID]value.Row) error {
		r, exists := rows[rid]
		if exists {
			row = r.Clone()
			ok = true
		}
		return nil
	})
	return row, ok, err
}

// --- master-side exclusive access (two-phase page locking) -----------------

// LockX acquires the page's exclusive latch. Master transactions hold page
// latches from first touch until commit (strict 2PL).
func (p *Page) LockX() { p.mu.Lock() }

// TryLockX attempts to acquire the exclusive latch without blocking.
func (p *Page) TryLockX() bool { return p.mu.TryLock() }

// UnlockX releases the exclusive latch.
func (p *Page) UnlockX() { p.mu.Unlock() }

// XRows exposes the live slots. Caller must hold the exclusive latch.
func (p *Page) XRows() map[RowID]value.Row { return p.rows }

// XApply mutates one row. Caller must hold the exclusive latch.
func (p *Page) XApply(op RowOp) {
	switch op.Kind {
	case OpInsert, OpUpdate:
		p.rows[op.Row] = op.Data
	case OpDelete:
		delete(p.rows, op.Row)
	}
}

// XStamp records that the page now materializes table version v. Called by
// the master at commit. Caller must hold the exclusive latch.
func (p *Page) XStamp(v uint64) {
	if v > p.applied {
		p.applied = v
	}
}

// XApplied returns the applied version. Caller must hold the exclusive latch.
func (p *Page) XApplied() uint64 { return p.applied }

// XEnsure applies pending modifications up to v. Caller must hold the
// exclusive latch. Used by update transactions on a freshly promoted master
// that still has buffered mods.
func (p *Page) XEnsure(v uint64) error { return p.ensureLocked(v, false) }

// Materialize eagerly applies pending modifications up to v (a
// materialize-all sweep during migration or promotion, as opposed to the
// lazy demand-driven application readers trigger through View).
func (p *Page) Materialize(v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ensureLocked(v, true)
}

// --- checkpoint & migration ------------------------------------------------

// Image is a copy of a page's materialized state, used by the fuzzy
// checkpointer and by page migration for stale-node reintegration.
type Image struct {
	Table     int
	Page      ID
	Version   uint64
	CreateVer uint64
	Rows      map[RowID]value.Row
}

// Snapshot copies the materialized state if the page can be latched in
// shared mode without blocking; the fuzzy checkpoint skips pages that are
// exclusively held by in-flight (dirty, uncommitted) transactions, per the
// paper ("dirty pages ... are not included in the flush").
func (p *Page) Snapshot() (Image, bool) {
	if !p.mu.TryRLock() {
		return Image{}, false
	}
	defer p.mu.RUnlock()
	return p.imageLocked(), true
}

// SnapshotBlocking copies the materialized state, waiting for the latch.
// Used by the support slave when serving a migration request.
func (p *Page) SnapshotBlocking() Image {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.imageLocked()
}

func (p *Page) imageLocked() Image {
	rows := make(map[RowID]value.Row, len(p.rows))
	for id, r := range p.rows {
		rows[id] = r.Clone()
	}
	return Image{
		Table:     p.table,
		Page:      p.id,
		Version:   p.applied,
		CreateVer: p.createVer.Load(),
		Rows:      rows,
	}
}

// Install replaces the page state with a migrated image if the image is
// newer than the locally materialized version, then drops pending mods that
// the image already covers. Returns whether the image was installed.
func (p *Page) Install(img Image) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if img.Version <= p.applied {
		return false
	}
	p.rows = make(map[RowID]value.Row, len(img.Rows))
	for id, r := range img.Rows {
		p.rows[id] = r.Clone()
	}
	p.applied = img.Version
	if img.CreateVer < p.createVer.Load() {
		p.createVer.Store(img.CreateVer)
	}
	i := sort.Search(len(p.pending), func(i int) bool { return p.pending[i].Version > img.Version })
	p.pending = append([]Mod(nil), p.pending[i:]...)
	return true
}

// Replace unconditionally overwrites the page state from an image
// (checkpoint restore into a fresh engine). Pending modifications newer than
// the image are kept.
func (p *Page) Replace(img Image) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rows = make(map[RowID]value.Row, len(img.Rows))
	for id, r := range img.Rows {
		p.rows[id] = r.Clone()
	}
	p.applied = img.Version
	p.createVer.Store(img.CreateVer)
	i := sort.Search(len(p.pending), func(i int) bool { return p.pending[i].Version > img.Version })
	p.pending = append([]Mod(nil), p.pending[i:]...)
}

// RowCount returns the number of live rows (materialized state).
func (p *Page) RowCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rows)
}

// String renders page identity for diagnostics. It must never block: lock
// timeout errors format the page while another transaction holds the latch.
func (p *Page) String() string {
	if !p.mu.TryRLock() {
		return fmt.Sprintf("page{t%d/p%d <latched>}", p.table, p.id)
	}
	defer p.mu.RUnlock()
	return fmt.Sprintf("page{t%d/p%d @%d +%d pending}", p.table, p.id, p.applied, len(p.pending))
}
