// Package scheduler implements the paper's version-aware scheduler: it
// routes update transactions to their conflict-class master, tags each
// read-only transaction with the latest version vector reported by the
// masters, prefers replicas already serving that version (keeping
// version-conflict aborts negligible), falls back to load balancing, retries
// aborted readers, and feeds committed update statements to the on-disk
// persistence tier.
package scheduler

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/replica"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// Errors surfaced by the scheduler.
var (
	// ErrNoReplicas reports that no replica is available for a transaction.
	ErrNoReplicas = errors.New("scheduler: no replicas available")
	// ErrRetriesExhausted reports a transaction that kept aborting.
	ErrRetriesExhausted = errors.New("scheduler: retries exhausted")
	// ErrUnknownTable reports a TxnSpec naming a table outside the schema.
	ErrUnknownTable = errors.New("scheduler: unknown table in transaction spec")
	// ErrCommitUncertain reports an update commit whose acknowledgment was
	// lost to a deadline: the master may or may not have committed. Blind
	// retry could apply the update twice, so the scheduler surfaces the
	// ambiguity instead of retrying; the commit-fence fail-over rollback
	// resolves it (an unacknowledged commit's version is above the rollback
	// point and is discarded everywhere).
	ErrCommitUncertain = errors.New("scheduler: commit outcome unknown (peer deadline)")
)

// ConflictClass names a disjoint set of tables mastered by one node. The
// scheduler is pre-configured with the classes (the paper derives them from
// the application's transaction types).
type ConflictClass struct {
	Name   string
	Tables []string
}

// LoggedStmt is one update statement captured for the persistence tier.
type LoggedStmt struct {
	Text   string
	Params []value.Value
}

// CommitRecord is what the scheduler logs per committed update transaction.
type CommitRecord struct {
	Version vclock.Vector
	Stmts   []LoggedStmt
}

// Options configure a scheduler.
type Options struct {
	// Classes partition the tables; empty means one class holding every
	// table (single-master operation).
	Classes []ConflictClass
	// VersionAffinity enables same-version replica preference (the ablation
	// turns it off to measure the abort-rate impact).
	VersionAffinity bool
	// MaxRetries bounds automatic retries of aborted transactions.
	MaxRetries int
	// WarmupShare is the fraction of read-only transactions routed to spare
	// backups to keep their caches warm (the paper uses <1%).
	WarmupShare float64
	// OnCommit, if non-nil, receives every committed update transaction
	// (version + statements); the persistence tier subscribes here.
	OnCommit func(CommitRecord)
	// OnPeerFailure, if non-nil, is told about replicas that failed a call;
	// the cluster layer reconfigures.
	OnPeerFailure func(peerID string)
	// Admission configures the bounded admission queue in front of
	// transaction begin (per-class occupancy slots, CoDel shed law). The
	// zero value (Slots <= 0) disables admission control entirely.
	Admission AdmissionOptions
	// Seed seeds the spare-routing RNG (0 = fixed default).
	Seed int64
	// Obs receives the scheduler's metrics and per-transaction trace
	// spans. Nil falls back to a private registry (counters keep working,
	// exposition and tracing are off). Peer schedulers sharing one registry
	// share one set of counters — the cluster-wide view.
	Obs *obs.Registry
	// Flight, if non-nil, receives anomaly triggers from the scheduler:
	// fail-over start and commit-uncertain outcomes enqueue cluster-wide
	// flight dumps.
	Flight *flight.Recorder
}

// Stats are cumulative scheduler counters, backed by the metrics registry
// (the fields are registry counters, so benches and the HTTP exposition
// read the same numbers). The Load-based API matches the atomic.Int64
// fields these used to be.
type Stats struct {
	ReadTxns      *obs.Counter
	UpdateTxns    *obs.Counter
	VersionAborts *obs.Counter
	LockRetries   *obs.Counter
	Failovers     *obs.Counter
}

type replicaState struct {
	peer        replica.Peer
	outstanding atomic.Int64

	// quarantined marks a replica the failure detector suspects (slow or
	// unreachable, not yet confirmed dead): read placement avoids it so
	// one gray node cannot inflate read latencies, but it keeps receiving
	// the replication stream and rejoins placement the moment the
	// suspicion clears.
	quarantined atomic.Bool

	verMu   sync.Mutex
	lastVer vclock.Vector // guarded by verMu
}

func (r *replicaState) setVer(v vclock.Vector) {
	r.verMu.Lock()
	r.lastVer = v
	r.verMu.Unlock()
}

func (r *replicaState) atVer(v vclock.Vector) bool {
	r.verMu.Lock()
	defer r.verMu.Unlock()
	return r.lastVer != nil && r.lastVer.Equal(v)
}

type classState struct {
	name     string
	tables   map[string]struct{}
	tableIDs []int

	mu     sync.RWMutex
	master replica.Peer // guarded by mu
}

// Scheduler routes transactions across the in-memory tier.
type Scheduler struct {
	opts    Options
	merged  *vclock.Merged
	classes []*classState
	classOf map[string]int

	// commitFence orders update-commit acknowledgments against master
	// fail-over rollback. A commit holds it shared across [master
	// TxCommit; merged.Report]; the fail-over holds it exclusive across
	// [read Latest; DiscardAbove; ResetVersion]. Without the fence a
	// commit can broadcast its write-set, have the rollback discard it
	// from every replica, and still acknowledge success to the client —
	// a lost update.
	commitFence sync.RWMutex

	// fanout forwards committed version vectors to peer schedulers so a
	// standby's merged vector always covers every acknowledged commit.
	// Wired once before the scheduler serves traffic; nil without peers.
	fanout func(vclock.Vector)

	mu     sync.RWMutex
	slaves []*replicaState // guarded by mu
	spares []*replicaState // guarded by mu

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu

	stmtMu    sync.RWMutex
	stmtIsUpd map[string]bool // guarded by stmtMu

	rrSeq atomic.Int64 // rotates tie-breaking across equally-loaded replicas

	stats  *Stats
	met    schedMetrics
	tracer *obs.Tracer      // nil unless Options.Obs was set
	flight *flight.Recorder // nil-safe anomaly trigger sink

	// admit is the bounded admission queue gating begin (nil = admission
	// control disabled).
	admit *Admitter
}

// schedMetrics holds the registry handles beyond the public Stats set.
type schedMetrics struct {
	abortNodeDown     *obs.Counter
	abortPeerTimeout  *obs.Counter
	retriesExhausted  *obs.Counter
	pickWaitUS        *obs.Histogram
	txnUS             *obs.Histogram
	versionWaitUS     *obs.Histogram
	takeovers         *obs.Counter
	deadlineAbandoned *obs.Counter
}

// New builds a scheduler over the given schema tables. numTables sizes the
// version vectors; tableID resolves names (both typically come from a
// reference engine).
func New(opts Options, numTables int, tableID func(string) (int, bool)) (*Scheduler, error) {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 10
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.New() // private registry: Stats keep working, no exposition
	}
	s := &Scheduler{
		opts:      opts,
		merged:    vclock.NewMerged(numTables),
		classOf:   make(map[string]int, 16),
		rng:       rand.New(rand.NewSource(seed)),
		stmtIsUpd: make(map[string]bool, 64),
		stats: &Stats{
			ReadTxns:      reg.Counter(obs.SchedReadTxns),
			UpdateTxns:    reg.Counter(obs.SchedUpdateTxns),
			VersionAborts: reg.Counter(obs.SchedAbortVersion),
			LockRetries:   reg.Counter(obs.SchedAbortLockTimeout),
			Failovers:     reg.Counter(obs.SchedFailovers),
		},
		met: schedMetrics{
			abortNodeDown:     reg.Counter(obs.SchedAbortNodeDown),
			abortPeerTimeout:  reg.Counter(obs.SchedAbortPeerTimeout),
			retriesExhausted:  reg.Counter(obs.SchedRetriesExhausted),
			pickWaitUS:        reg.Histogram(obs.SchedPickWaitUS),
			txnUS:             reg.Histogram(obs.SchedTxnUS),
			versionWaitUS:     reg.Histogram(obs.SchedVersionWaitUS),
			takeovers:         reg.Counter(obs.SchedTakeovers),
			deadlineAbandoned: reg.Counter(obs.SchedDeadlineAbandoned),
		},
		tracer: opts.Obs.Tracer(), // nil when Obs is nil: spans cost nothing
		flight: opts.Flight,
	}
	if len(opts.Classes) == 0 {
		opts.Classes = []ConflictClass{{Name: "all"}}
	}
	for ci, cc := range opts.Classes {
		cs := &classState{name: cc.Name, tables: make(map[string]struct{}, len(cc.Tables))}
		for _, t := range cc.Tables {
			id, ok := tableID(t)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownTable, t)
			}
			if prev, dup := s.classOf[t]; dup {
				return nil, fmt.Errorf("scheduler: table %q in classes %d and %d (classes must be disjoint)", t, prev, ci)
			}
			cs.tables[t] = struct{}{}
			cs.tableIDs = append(cs.tableIDs, id)
			s.classOf[t] = ci
		}
		s.classes = append(s.classes, cs)
	}
	if opts.Admission.Slots > 0 {
		// One admission class per conflict class plus the shared read class;
		// the admitter derives its RNG from the scheduler seed so retry-after
		// hints are reproducible under a fixed seed.
		s.admit = newAdmitter(opts.Admission, len(s.classes), seed, reg, reg.Timeline(), opts.Flight)
	}
	return s, nil
}

// Admitter returns the admission queue, or nil when admission control is
// disabled (tests and the overload experiments reach the CoDel state
// through it).
func (s *Scheduler) Admitter() *Admitter { return s.admit }

// AdmissionPressure reports the admission queue's occupancy in [0, 1]
// (0 when admission control is disabled). The cluster's overload loop
// feeds it into spare activation alongside AvgOutstanding.
func (s *Scheduler) AdmissionPressure() float64 {
	if s.admit == nil {
		return 0
	}
	return s.admit.Pressure()
}

// Stats exposes the counters.
func (s *Scheduler) Stats() *Stats { return s.stats }

// Latest returns the newest merged version vector (what the next reader
// would be tagged with).
func (s *Scheduler) Latest() vclock.Vector { return s.merged.Latest() }

// ReportVersion merges a master-produced vector (scheduler fail-over uses it
// to rebuild state from master reports).
func (s *Scheduler) ReportVersion(v vclock.Vector) { s.merged.Report(v) }

// ResetVersion overwrites the merged vector (master fail-over rollback).
func (s *Scheduler) ResetVersion(v vclock.Vector) { s.merged.Reset(v) }

// BlockCommits pauses update-commit acknowledgments: it waits for every
// in-flight commit to finish reporting its version and holds off new ones.
// Master fail-over brackets its rollback (Latest / DiscardAbove /
// ResetVersion) with BlockCommits/UnblockCommits on every peer scheduler so
// a commit is ordered entirely before the rollback (its version is part of
// the rollback point and survives) or entirely after (it fails against the
// dead master and is retried).
func (s *Scheduler) BlockCommits() { s.commitFence.Lock() }

// UnblockCommits releases BlockCommits.
func (s *Scheduler) UnblockCommits() { s.commitFence.Unlock() }

// SetVersionFanout installs a hook receiving every committed version vector
// (after it is merged locally). The cluster wires it to ReportVersion on
// every peer scheduler. Must be called before the scheduler serves traffic.
func (s *Scheduler) SetVersionFanout(fn func(vclock.Vector)) { s.fanout = fn }

// --- topology management (driven by the cluster layer) ----------------------

// SetMaster installs the master peer for conflict class ci.
func (s *Scheduler) SetMaster(ci int, p replica.Peer) {
	if ci < 0 || ci >= len(s.classes) {
		return
	}
	cs := s.classes[ci]
	cs.mu.Lock()
	cs.master = p
	cs.mu.Unlock()
}

// Master returns the current master of class ci.
func (s *Scheduler) Master(ci int) replica.Peer {
	if ci < 0 || ci >= len(s.classes) {
		return nil
	}
	cs := s.classes[ci]
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.master
}

// NumClasses returns the number of conflict classes.
func (s *Scheduler) NumClasses() int { return len(s.classes) }

// ClassTables returns the table ids of class ci.
func (s *Scheduler) ClassTables(ci int) []int {
	if ci < 0 || ci >= len(s.classes) {
		return nil
	}
	return append([]int(nil), s.classes[ci].tableIDs...)
}

// AddSlave registers an active read replica.
func (s *Scheduler) AddSlave(p replica.Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.slaves {
		if r.peer.ID() == p.ID() {
			return
		}
	}
	s.slaves = append(s.slaves, &replicaState{peer: p})
}

// AddSpare registers a spare backup (receives the replication stream and,
// optionally, a trickle of warm-up reads).
func (s *Scheduler) AddSpare(p replica.Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.spares {
		if r.peer.ID() == p.ID() {
			return
		}
	}
	s.spares = append(s.spares, &replicaState{peer: p})
}

// Remove drops a replica (slave or spare) from the tables; outstanding
// transactions on it fail fast with node-down errors and are retried.
func (s *Scheduler) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	filter := func(in []*replicaState) []*replicaState {
		out := in[:0]
		for _, r := range in {
			if r.peer.ID() != id {
				out = append(out, r)
			}
		}
		return out
	}
	s.slaves = filter(s.slaves)
	s.spares = filter(s.spares)
}

// PromoteSpare moves a spare into the active slave set (fail-over).
func (s *Scheduler) PromoteSpare(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.spares {
		if r.peer.ID() == id {
			s.spares = append(s.spares[:i], s.spares[i+1:]...)
			s.slaves = append(s.slaves, r)
			return true
		}
	}
	return false
}

// SetQuarantined marks or clears suspicion on a replica (slave or spare).
// A quarantined replica is skipped by read placement unless every replica
// is quarantined — availability degrades gracefully rather than to zero on
// a false mass-suspicion.
func (s *Scheduler) SetQuarantined(id string, q bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, set := range [][]*replicaState{s.slaves, s.spares} {
		for _, r := range set {
			if r.peer.ID() == id {
				r.quarantined.Store(q)
			}
		}
	}
}

// Quarantined returns the ids currently under suspicion.
func (s *Scheduler) Quarantined() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, set := range [][]*replicaState{s.slaves, s.spares} {
		for _, r := range set {
			if r.quarantined.Load() {
				out = append(out, r.peer.ID())
			}
		}
	}
	return out
}

// Slaves returns the ids of the active read replicas.
func (s *Scheduler) Slaves() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.slaves))
	for i, r := range s.slaves {
		out[i] = r.peer.ID()
	}
	return out
}

// Spares returns the ids of the spare backups.
func (s *Scheduler) Spares() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.spares))
	for i, r := range s.spares {
		out[i] = r.peer.ID()
	}
	return out
}

// SpareList returns the spare peers (cluster warm-up loops use it).
func (s *Scheduler) SpareList() []replica.Peer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]replica.Peer, len(s.spares))
	for i, r := range s.spares {
		out[i] = r.peer
	}
	return out
}

// SlaveList returns the active slave peers.
func (s *Scheduler) SlaveList() []replica.Peer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]replica.Peer, len(s.slaves))
	for i, r := range s.slaves {
		out[i] = r.peer
	}
	return out
}

// classFor maps a transaction's table set to its conflict class. Tables
// outside every configured class, or spanning classes, fall back to class 0
// (the paper schedules such transactions on a single designated master).
func (s *Scheduler) classFor(tables []string) int {
	class := -1
	for _, t := range tables {
		ci, ok := s.classOf[t]
		if !ok {
			return 0
		}
		if class == -1 {
			class = ci
		} else if class != ci {
			return 0
		}
	}
	if class == -1 {
		return 0
	}
	return class
}

// pickReader selects the replica for a read-only transaction tagged with v,
// implementing the paper's version-aware policy: prefer a replica already
// running transactions with the same version vector; otherwise assign an
// idle replica to this version; otherwise wait briefly for one to drain
// ("read-only transactions may need to wait"); as a last resort pick the
// least-loaded replica and accept the version-conflict abort risk. A spare
// backup is chosen with probability WarmupShare to keep its cache warm.
func (s *Scheduler) pickReader(v vclock.Vector) *replicaState {
	s.mu.RLock()
	nSpares := len(s.spares)
	s.mu.RUnlock()
	if nSpares > 0 && s.opts.WarmupShare > 0 {
		s.rngMu.Lock()
		dice := s.rng.Float64()
		idx := s.rng.Intn(nSpares)
		s.rngMu.Unlock()
		if dice < s.opts.WarmupShare {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if idx < len(s.spares) && !s.spares[idx].quarantined.Load() {
				sp := s.spares[idx]
				sp.outstanding.Add(1)
				return sp
			}
		}
	}
	// Wait up to a few read-transaction lifetimes for a safe replica to
	// drain before risking aborts ("read-only transactions may need to
	// wait for other read-only transactions using a previous version").
	start := time.Now()
	slept := false
	defer func() {
		s.met.pickWaitUS.ObserveSince(start)
		if slept {
			// Genuine version stall: no replica could take version v on the
			// first pass (the paper's reader wait, as opposed to the
			// near-zero fast-path pick).
			s.met.versionWaitUS.ObserveSince(start)
		}
	}()
	deadline := start.Add(60 * time.Millisecond)
	for {
		s.mu.Lock()
		if len(s.slaves) == 0 {
			s.mu.Unlock()
			return nil
		}
		// A replica is a safe candidate for version v iff it has no
		// outstanding readers (it gets pinned to v) or its outstanding
		// readers are already at v. Placing v on a replica busy with a
		// different version risks aborting one side or the other, so those
		// replicas are used only as a last resort after a bounded wait.
		// Ties rotate so equally-loaded replicas share the work.
		// Quarantined (suspect) replicas are passed over entirely while any
		// healthy one exists; they reappear the moment suspicion clears.
		start := int(s.rrSeq.Add(1))
		var best, least, leastAny *replicaState
		for i := range s.slaves {
			r := s.slaves[(start+i)%len(s.slaves)]
			out := r.outstanding.Load()
			if leastAny == nil || out < leastAny.outstanding.Load() {
				leastAny = r
			}
			if r.quarantined.Load() {
				continue
			}
			if least == nil || out < least.outstanding.Load() {
				least = r
			}
			if !s.opts.VersionAffinity {
				continue
			}
			if out == 0 || r.atVer(v) {
				if best == nil || out < best.outstanding.Load() {
					best = r
				}
			}
		}
		if least == nil {
			// Every slave is under suspicion: degrade to the least-loaded
			// suspect rather than refusing reads outright.
			least = leastAny
		}
		if !s.opts.VersionAffinity {
			least.outstanding.Add(1)
			s.mu.Unlock()
			return least
		}
		if best != nil {
			best.setVer(v)
			best.outstanding.Add(1)
			s.mu.Unlock()
			return best
		}
		if time.Now().After(deadline) {
			least.outstanding.Add(1)
			s.mu.Unlock()
			return least
		}
		s.mu.Unlock()
		slept = true
		time.Sleep(100 * time.Microsecond)
	}
}

// AvgOutstanding returns the mean number of in-flight read transactions per
// active slave — the cluster's overload detector reads it.
func (s *Scheduler) AvgOutstanding() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.slaves) == 0 {
		return 0
	}
	total := int64(0)
	for _, r := range s.slaves {
		total += r.outstanding.Load()
	}
	return float64(total) / float64(len(s.slaves))
}

// LowWater returns the oldest version vector any in-flight read-only
// transaction may be using: the element-wise minimum of the latest merged
// vector and the pinned versions of replicas with outstanding readers. Index
// garbage collection below this mark is safe — new readers are always tagged
// with the (newer) merged vector.
func (s *Scheduler) LowWater() vclock.Vector {
	lw := s.merged.Latest()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, set := range [][]*replicaState{s.slaves, s.spares} {
		for _, r := range set {
			if r.outstanding.Load() == 0 {
				continue
			}
			r.verMu.Lock()
			if r.lastVer != nil {
				lw = lw.MinInto(r.lastVer)
			}
			r.verMu.Unlock()
		}
	}
	return lw
}

// TakeOver executes the scheduler fail-over protocol of Section 4.1 on this
// (peer) scheduler: ask every master to abort the transactions that were
// active under the failed scheduler, collect the highest version each master
// produced, and adopt the merged vector as the tier's current state. The
// caller then points clients at this scheduler (the "new topology"
// broadcast).
func (s *Scheduler) TakeOver() error {
	merged := vclock.New(0)
	for ci := 0; ci < s.NumClasses(); ci++ {
		m := s.Master(ci)
		if m == nil {
			continue
		}
		if _, err := m.AbortActiveSessions(); err != nil {
			return fmt.Errorf("take over: abort on %s: %w", m.ID(), err)
		}
		v, err := m.MaxVersions()
		if err != nil {
			return fmt.Errorf("take over: versions from %s: %w", m.ID(), err)
		}
		merged = merged.Merge(v)
	}
	// Merge rather than overwrite: a commit finishing between the poll
	// above and this line has already fanned its version out to this
	// scheduler, and a blind reset would drop it below an acknowledged
	// version — the rollback point of a later master fail-over.
	s.merged.Report(merged)
	s.met.takeovers.Inc()
	return nil
}

func (s *Scheduler) reportFailure(id string) {
	s.stats.Failovers.Add(1)
	if s.opts.OnPeerFailure != nil {
		s.opts.OnPeerFailure(id)
	}
}

// FailoverMaster executes the commit-fenced master fail-over rollback of
// Section 4.2 for conflict class ci against the surviving peers, electing
// the survivor with the highest produced version as the new master. This
// is the remote-tier sibling of the in-process cluster's masterFailover:
// cmd/dmv-scheduler and the faultnet partition tests drive fail-over
// through it so the rollback is fenced against in-flight commit
// acknowledgments exactly like the in-process path. Callers running peer
// schedulers must bracket the call with BlockCommits/UnblockCommits on the
// peers themselves.
//
// Survivors that fail their discard are skipped (they are reconciled by
// reintegration when they return); a survivor that cannot be probed for
// its versions simply cannot win the election. With no electable survivor
// the class is left masterless and ErrNoReplicas returned.
func (s *Scheduler) FailoverMaster(ci int, survivors []replica.Peer) (replica.Peer, error) {
	s.BlockCommits()
	defer s.UnblockCommits()

	// Anomaly: fail-over is starting. The flight trigger only touches the
	// recorder's innermost-band state, so firing it under the commit fence
	// is safe; the dump itself is assembled asynchronously.
	s.flight.Trigger(flight.CauseFailover, "", fmt.Sprintf("master fail-over, class %d, %d survivors", ci, len(survivors)))

	// Rollback point: the highest version any client has seen acknowledged.
	lastSeen := s.Latest()

	var newMaster replica.Peer
	var bestVer vclock.Vector
	for _, p := range survivors {
		if err := p.DiscardAbove(lastSeen); err != nil {
			continue // unreachable: excluded from election, rejoins via migration
		}
		v, err := p.MaxVersions()
		if err != nil {
			continue
		}
		if newMaster == nil || !bestVer.DominatesOrEqual(v) {
			newMaster, bestVer = p, v
		}
	}
	s.ResetVersion(lastSeen)
	if newMaster == nil {
		s.SetMaster(ci, nil)
		return nil, ErrNoReplicas
	}
	if err := newMaster.Promote(s.ClassTables(ci)); err != nil {
		s.SetMaster(ci, nil)
		return nil, fmt.Errorf("failover: promote %s: %w", newMaster.ID(), err)
	}
	s.SetMaster(ci, newMaster)
	return newMaster, nil
}
