package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/scrub"
	"dmv/internal/simdisk"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// fakePeer is a scriptable replica.Peer for routing tests.
type fakePeer struct {
	id      string
	begins  atomic.Int64
	failTx  error // returned from TxBegin when set
	version vclock.Vector
}

func (f *fakePeer) ID() string                                   { return f.id }
func (f *fakePeer) AbortActiveSessions() (int, error)            { return 0, nil }
func (f *fakePeer) Ping() error                                  { return nil }
func (f *fakePeer) ReceiveWriteSet(*heap.WriteSet) error         { return nil }
func (f *fakePeer) Role() (replica.Role, error)                  { return replica.RoleSlave, nil }
func (f *fakePeer) Promote([]int) error                          { return nil }
func (f *fakePeer) Demote(replica.Role) error                    { return nil }
func (f *fakePeer) DiscardAbove(vclock.Vector) error             { return nil }
func (f *fakePeer) MaxVersions() (vclock.Vector, error)          { return f.version, nil }
func (f *fakePeer) StartJoin() error                             { return nil }
func (f *fakePeer) PageVersions() (heap.PageVersionMap, error)   { return nil, nil }
func (f *fakePeer) InstallDelta([]page.Image) error              { return nil }
func (f *fakePeer) FinishJoin() error                            { return nil }
func (f *fakePeer) WarmPages([]simdisk.PageKey) error            { return nil }
func (f *fakePeer) ResidentPages(int) ([]simdisk.PageKey, error) { return nil, nil }
func (f *fakePeer) Digest(table int, version uint64, _ bool) (scrub.TableDigest, error) {
	return scrub.TableDigest{Table: table, Version: version}, nil
}
func (f *fakePeer) PageImages(int, []page.ID) ([]page.Image, error) { return nil, nil }
func (f *fakePeer) RepairPages([]page.Image) error                  { return nil }
func (f *fakePeer) DeltaSince(heap.PageVersionMap, vclock.Vector) ([]page.Image, error) {
	return nil, nil
}
func (f *fakePeer) TxBegin(readOnly bool, _ vclock.Vector, _ time.Duration, _ obs.TraceContext) (uint64, error) {
	if f.failTx != nil {
		return 0, f.failTx
	}
	f.begins.Add(1)
	return uint64(f.begins.Load()), nil
}
func (f *fakePeer) TxExec(uint64, string, []value.Value) (*exec.Result, error) {
	return &exec.Result{}, nil
}
func (f *fakePeer) TxCommit(uint64) (vclock.Vector, error) { return f.version, nil }
func (f *fakePeer) TxRollback(uint64) error                { return nil }

var _ replica.Peer = (*fakePeer)(nil)

func tableID(name string) (int, bool) {
	tables := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	id, ok := tables[name]
	return id, ok
}

func newSched(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s, err := New(opts, 4, tableID)
	if err != nil {
		t.Fatalf("new scheduler: %v", err)
	}
	return s
}

func TestConflictClassRouting(t *testing.T) {
	s := newSched(t, Options{Classes: []ConflictClass{
		{Name: "ab", Tables: []string{"a", "b"}},
		{Name: "cd", Tables: []string{"c", "d"}},
	}})
	m0 := &fakePeer{id: "m0"}
	m1 := &fakePeer{id: "m1"}
	s.SetMaster(0, m0)
	s.SetMaster(1, m1)
	s.AddSlave(&fakePeer{id: "s0"})

	run := func(tables ...string) {
		if err := s.Run(TxnSpec{Tables: tables}, func(tx *Txn) error { return nil }); err != nil {
			t.Fatalf("run %v: %v", tables, err)
		}
	}
	run("a")
	run("b")
	run("c", "d")
	run("e")      // unknown -> class 0
	run("a", "c") // spans classes -> class 0
	if m0.begins.Load() != 4 {
		t.Fatalf("class-0 master got %d txns, want 4", m0.begins.Load())
	}
	if m1.begins.Load() != 1 {
		t.Fatalf("class-1 master got %d txns, want 1", m1.begins.Load())
	}
}

func TestOverlappingClassesRejected(t *testing.T) {
	_, err := New(Options{Classes: []ConflictClass{
		{Name: "x", Tables: []string{"a"}},
		{Name: "y", Tables: []string{"a", "b"}},
	}}, 4, tableID)
	if err == nil {
		t.Fatal("overlapping classes accepted; they must be disjoint")
	}
}

func TestUnknownTableInClass(t *testing.T) {
	_, err := New(Options{Classes: []ConflictClass{{Name: "x", Tables: []string{"nope"}}}}, 4, tableID)
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoReplicas(t *testing.T) {
	s := newSched(t, Options{})
	err := s.Run(TxnSpec{ReadOnly: true}, func(*Txn) error { return nil })
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("read err = %v", err)
	}
	err = s.Run(TxnSpec{}, func(*Txn) error { return nil })
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("update err = %v", err)
	}
}

func TestReadLoadBalancing(t *testing.T) {
	s := newSched(t, Options{VersionAffinity: true})
	peers := []*fakePeer{{id: "s0"}, {id: "s1"}, {id: "s2"}}
	for _, p := range peers {
		s.AddSlave(p)
	}
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Run(TxnSpec{ReadOnly: true}, func(tx *Txn) error { return nil })
		}()
	}
	wg.Wait()
	total := int64(0)
	for _, p := range peers {
		total += p.begins.Load()
	}
	if total != 30 {
		t.Fatalf("total reads = %d", total)
	}
	// With a constant version every replica is a safe candidate; the
	// least-loaded rule must not starve any of them entirely over 30 reads.
	for _, p := range peers {
		if p.begins.Load() == 0 {
			t.Fatalf("replica %s starved: %v", p.id, []int64{peers[0].begins.Load(), peers[1].begins.Load(), peers[2].begins.Load()})
		}
	}
}

func TestRetryOnNodeDownThenRemove(t *testing.T) {
	var reported []string
	var mu sync.Mutex
	s := newSched(t, Options{
		VersionAffinity: true,
		MaxRetries:      5,
		OnPeerFailure: func(id string) {
			mu.Lock()
			reported = append(reported, id)
			mu.Unlock()
		},
	})
	dead := &fakePeer{id: "dead", failTx: fmt.Errorf("%w: dead", replica.ErrNodeDown)}
	live := &fakePeer{id: "live"}
	s.AddSlave(dead)
	s.AddSlave(live)

	// Reads retried past the dead replica must eventually land on the live
	// one (the dead one may be tried first by load balancing).
	for i := 0; i < 10; i++ {
		if err := s.Run(TxnSpec{ReadOnly: true}, func(*Txn) error { return nil }); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	mu.Lock()
	seen := len(reported)
	mu.Unlock()
	if seen == 0 {
		t.Fatal("dead replica never reported")
	}
	s.Remove("dead")
	if got := s.Slaves(); len(got) != 1 || got[0] != "live" {
		t.Fatalf("slaves = %v", got)
	}
}

func TestSpareWarmupShare(t *testing.T) {
	s := newSched(t, Options{VersionAffinity: true, WarmupShare: 0.5, Seed: 1})
	slave := &fakePeer{id: "slave"}
	spare := &fakePeer{id: "spare"}
	s.AddSlave(slave)
	s.AddSpare(spare)
	for i := 0; i < 200; i++ {
		if err := s.Run(TxnSpec{ReadOnly: true}, func(*Txn) error { return nil }); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	got := spare.begins.Load()
	if got < 50 || got > 150 {
		t.Fatalf("spare served %d of 200 reads; want about half", got)
	}
}

func TestPromoteSpare(t *testing.T) {
	s := newSched(t, Options{})
	s.AddSpare(&fakePeer{id: "sp"})
	if !s.PromoteSpare("sp") {
		t.Fatal("promote failed")
	}
	if len(s.Spares()) != 0 || len(s.Slaves()) != 1 {
		t.Fatalf("spares=%v slaves=%v", s.Spares(), s.Slaves())
	}
	if s.PromoteSpare("sp") {
		t.Fatal("double promote succeeded")
	}
}

func TestVersionReportingAndReset(t *testing.T) {
	s := newSched(t, Options{})
	s.ReportVersion(vclock.Vector{3, 0, 0, 0})
	s.ReportVersion(vclock.Vector{1, 5, 0, 0})
	if got := s.Latest(); got.Get(0) != 3 || got.Get(1) != 5 {
		t.Fatalf("latest = %v", got)
	}
	s.ResetVersion(vclock.Vector{2, 2, 0, 0})
	if got := s.Latest(); got.Get(0) != 2 || got.Get(1) != 2 {
		t.Fatalf("after reset = %v", got)
	}
}

func TestUpdateCommitHookReceivesLoggedStmts(t *testing.T) {
	var recs []CommitRecord
	var mu sync.Mutex
	s := newSched(t, Options{OnCommit: func(r CommitRecord) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	}})
	master := &fakePeer{id: "m", version: vclock.Vector{1, 0, 0, 0}}
	s.SetMaster(0, master)
	err := s.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error {
		if _, err := tx.Exec(`UPDATE a SET x = 1 WHERE id = ?`, value.NewInt(1)); err != nil {
			return err
		}
		_, err := tx.Exec(`SELECT x FROM a WHERE id = ?`, value.NewInt(1))
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 1 {
		t.Fatalf("commit records = %d", len(recs))
	}
	// Only the update statement is logged, not the SELECT.
	if len(recs[0].Stmts) != 1 {
		t.Fatalf("logged stmts = %d, want 1 (reads excluded)", len(recs[0].Stmts))
	}
}

func TestRetriesExhausted(t *testing.T) {
	s := newSched(t, Options{MaxRetries: 2})
	s.AddSlave(&fakePeer{id: "s0"})
	calls := 0
	err := s.Run(TxnSpec{ReadOnly: true}, func(tx *Txn) error {
		calls++
		return page.ErrVersionConflict
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 { // initial + 2 retries
		t.Fatalf("calls = %d", calls)
	}
	if s.Stats().VersionAborts.Load() == 0 {
		t.Fatal("aborts not counted")
	}
}
