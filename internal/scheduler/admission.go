package scheduler

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/replica"
)

// ErrOverloaded reports a transaction fast-rejected by admission control:
// either CoDel shed mode is active or the class's bounded queue is full.
// The concrete error is an *OverloadError carrying a seeded-jitter
// retry-after hint; match with errors.Is(err, ErrOverloaded).
var ErrOverloaded = errors.New("scheduler: overloaded, transaction rejected by admission control")

// OverloadError is the concrete fast-reject error. RetryAfter is a
// jittered backoff hint drawn from the scheduler's seeded RNG so a fleet
// of rejected clients does not retry in lockstep and re-create the burst
// that caused the shed.
type OverloadError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("scheduler: overloaded, retry after %s", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionOptions configure the bounded admission queue in front of
// transaction begin. The zero value disables admission control entirely
// (Slots <= 0), preserving the historical unbounded behavior.
type AdmissionOptions struct {
	// Slots is the number of concurrently admitted transactions per
	// admission class (one class per conflict class for updates, plus one
	// shared read-only class). <= 0 disables admission control.
	Slots int
	// QueueCap bounds the waiters queued per class beyond the slots;
	// arrivals past it are fast-rejected. Default 4x Slots.
	QueueCap int
	// TargetSojourn is the CoDel target: the queue is healthy while
	// admitted transactions waited less than this. Default 5ms.
	TargetSojourn time.Duration
	// Interval is how long sojourn must stay above target before shed mode
	// engages — CoDel sheds on sustained standing queues, never on an
	// instantaneous depth spike. Default 100ms.
	Interval time.Duration
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.QueueCap <= 0 {
		o.QueueCap = 4 * o.Slots
	}
	if o.TargetSojourn <= 0 {
		o.TargetSojourn = 5 * time.Millisecond
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// CoDel is the controlled-delay shed law as a pure state machine: feed it
// queue-sojourn observations with explicit timestamps and it decides when
// to enter and leave shed mode. It never reads the wall clock itself, so
// the concurrent Admitter and the single-threaded open-loop simulation in
// internal/harness run the identical law — the determinism test depends on
// this.
//
// Entry: sojourn stays at or above Target for a full Interval with no
// below-target observation in between. Exit (hysteresis): one observation
// below Target/2, or the queue draining empty. Not safe for concurrent use;
// the Admitter serializes access under its mutex.
type CoDel struct {
	Target   time.Duration
	Interval time.Duration

	firstAbove time.Time // start of the current above-target run (zero = none)
	shedding   bool
}

// Observe feeds one head-of-queue sojourn measured at now and returns
// whether shed mode is active after the observation.
func (c *CoDel) Observe(sojourn time.Duration, now time.Time) bool {
	if c.shedding {
		if sojourn < c.Target/2 {
			c.shedding = false
			c.firstAbove = time.Time{}
		}
		return c.shedding
	}
	if sojourn < c.Target {
		c.firstAbove = time.Time{}
		return false
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now
		return false
	}
	if now.Sub(c.firstAbove) >= c.Interval {
		c.shedding = true
	}
	return c.shedding
}

// OnEmpty reports that every queue drained: a standing queue cannot exist
// without members, so shed mode ends.
func (c *CoDel) OnEmpty(now time.Time) bool {
	_ = now
	c.shedding = false
	c.firstAbove = time.Time{}
	return false
}

// Shedding reports whether shed mode is active.
func (c *CoDel) Shedding() bool { return c.shedding }

// admitWaiter is one arrival parked in a class queue.
type admitWaiter struct {
	ready chan struct{} // closed by the releaser once a slot is assigned
	enq   time.Time

	granted bool // guarded by Admitter.mu; slot assigned before ready closed
}

// admitClass tracks one admission class's occupancy.
type admitClass struct {
	inflight int            // guarded by Admitter.mu; admitted, not yet released
	queue    []*admitWaiter // guarded by Admitter.mu; FIFO waiters
}

// Admitter is the bounded admission queue in front of transaction begin:
// per-class occupancy slots, a bounded FIFO of waiters per class, and one
// shared CoDel law deciding when to shed. All shared state lives under mu;
// the flight trigger and timeline event for shed transitions fire after
// unlock (they cross into other subsystems).
type Admitter struct {
	opts      AdmissionOptions
	tl        *obs.Timeline
	flight    *flight.Recorder
	admitted  *obs.Counter
	shed      *obs.Counter
	abandoned *obs.Counter
	depth     *obs.Gauge
	shedGauge *obs.Gauge
	sojournUS *obs.Histogram

	mu      sync.Mutex
	classes []admitClass // slice header immutable after construction; element fields carry their own guards
	codel   CoDel        // guarded by mu
	rng     *rand.Rand   // guarded by mu; retry-after jitter
}

// newAdmitter builds the admission queue for numClasses update classes plus
// one read-only class (class index numClasses).
func newAdmitter(opts AdmissionOptions, numClasses int, seed int64, reg *obs.Registry, tl *obs.Timeline, rec *flight.Recorder) *Admitter {
	opts = opts.withDefaults()
	return &Admitter{
		opts:      opts,
		tl:        tl,
		flight:    rec,
		admitted:  reg.Counter(obs.SchedAdmitAdmitted),
		shed:      reg.Counter(obs.SchedAdmitShed),
		abandoned: reg.Counter(obs.SchedDeadlineAbandoned),
		depth:     reg.Gauge(obs.SchedAdmitQueueDepth),
		shedGauge: reg.Gauge(obs.SchedAdmitShedding),
		sojournUS: reg.Histogram(obs.SchedAdmitSojournUS),
		classes:   make([]admitClass, numClasses+1),
		codel:     CoDel{Target: opts.TargetSojourn, Interval: opts.Interval},
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// readClass is the admission class shared by every read-only transaction.
func (a *Admitter) readClass() int { return len(a.classes) - 1 }

// retryAfterLocked draws the jittered backoff hint: uniform in
// [4x target, 8x target) so rejected clients spread out over a couple of
// queue-drain periods instead of synchronizing. Must hold a.mu.
func (a *Admitter) retryAfterLocked() time.Duration {
	base := 4 * a.opts.TargetSojourn
	return base + time.Duration(a.rng.Float64()*float64(base))
}

// queuedLocked is the total waiter count across classes. Must hold a.mu.
func (a *Admitter) queuedLocked() int {
	n := 0
	for i := range a.classes {
		n += len(a.classes[i].queue)
	}
	return n
}

// observeLocked feeds the CoDel law and reports a shed-state transition:
// +1 entered shedding, -1 left it, 0 no change. Must hold a.mu.
func (a *Admitter) observeLocked(sojourn time.Duration, now time.Time) int {
	before := a.codel.Shedding()
	after := a.codel.Observe(sojourn, now)
	switch {
	case !before && after:
		return 1
	case before && !after:
		return -1
	default:
		return 0
	}
}

// announce publishes a shed-state transition (from observeLocked) to the
// gauge, the timeline, and — on entry — the flight recorder. Must be called
// after a.mu is released: the recorder and timeline hooks cross subsystem
// boundaries.
func (a *Admitter) announce(transition int, detail string) {
	switch transition {
	case 1:
		a.shedGauge.Set(1)
		a.tl.Record(obs.Event{Kind: "admission-shed", Node: "scheduler", Detail: detail})
		a.flight.Trigger(flight.CauseOverload, "scheduler", detail)
	case -1:
		a.shedGauge.Set(0)
		a.tl.Record(obs.Event{Kind: "admission-recovered", Node: "scheduler", Detail: detail})
	}
}

// Admit gates one transaction of the given admission class. It returns a
// release closure the caller must invoke exactly once when the transaction
// finishes (commit, rollback, or begin failure). deadline, when non-zero,
// bounds the queue wait: a waiter still queued at its deadline is abandoned
// with replica.ErrDeadlineExpired. Overload rejects — shed mode or a full
// queue — return *OverloadError immediately, without queueing.
func (a *Admitter) Admit(class int, deadline time.Time) (func(), error) {
	if class < 0 || class >= len(a.classes) {
		class = 0
	}
	now := time.Now()
	a.mu.Lock()
	out := a.admitLocked(class, now)
	a.mu.Unlock()
	switch {
	case out.retryAfter > 0:
		a.shed.Inc()
		return nil, &OverloadError{RetryAfter: out.retryAfter}
	case out.w == nil:
		a.admitted.Inc()
		a.sojournUS.Observe(0)
		a.announce(out.transition, "fast-path admit")
		return a.releaseFn(class), nil
	}
	a.depth.Set(int64(out.depth))

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-out.w.ready:
		// The releaser assigned the slot, observed the sojourn, and
		// updated the depth gauge before closing the channel.
		a.admitted.Inc()
		return a.releaseFn(class), nil
	case <-timeout:
		a.mu.Lock()
		kept, depth := a.abandonLocked(class, out.w)
		a.mu.Unlock()
		if kept {
			// Lost the race: the slot arrived as the deadline fired. Keep
			// it — the caller's own deadline checks abandon downstream.
			a.admitted.Inc()
			return a.releaseFn(class), nil
		}
		a.depth.Set(int64(depth))
		a.abandoned.Inc()
		return nil, fmt.Errorf("%w: abandoned in admission queue", replica.ErrDeadlineExpired)
	}
}

// admitOutcome is the decision admitLocked reaches under a.mu: a reject
// with a retry-after hint, a fast-path admit (w nil, retryAfter 0), or an
// enqueued waiter.
type admitOutcome struct {
	retryAfter time.Duration // > 0: shed-mode or queue-full reject
	w          *admitWaiter  // non-nil: enqueued, wait on w.ready
	transition int           // fast path only: CoDel shed-state transition
	depth      int           // enqueue only: resulting total queue depth
}

// admitLocked applies the admission law for one arrival. Must hold a.mu.
func (a *Admitter) admitLocked(class int, now time.Time) (out admitOutcome) {
	if a.codel.Shedding() {
		out.retryAfter = a.retryAfterLocked()
		return out
	}
	c := &a.classes[class]
	if c.inflight < a.opts.Slots {
		c.inflight++
		out.transition = a.observeLocked(0, now)
		return out
	}
	if len(c.queue) >= a.opts.QueueCap {
		out.retryAfter = a.retryAfterLocked()
		return out
	}
	out.w = &admitWaiter{ready: make(chan struct{}), enq: now}
	c.queue = append(c.queue, out.w)
	out.depth = a.queuedLocked()
	return out
}

// abandonLocked resolves the grant-vs-deadline race for a timed-out waiter:
// if a releaser already granted the slot it is kept, otherwise the waiter
// is removed from its class queue. Must hold a.mu.
func (a *Admitter) abandonLocked(class int, w *admitWaiter) (kept bool, depth int) {
	if w.granted {
		return true, 0
	}
	c := &a.classes[class]
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	return false, a.queuedLocked()
}

// releaseFn returns the once-only release closure for one admitted
// transaction of the given class.
func (a *Admitter) releaseFn(class int) func() {
	var once sync.Once
	return func() { once.Do(func() { a.release(class) }) }
}

// release frees one slot and hands it to the class's oldest waiter, feeding
// the waiter's sojourn into the CoDel law. Head-of-queue sojourn is exactly
// CoDel's controlled signal: how long the oldest queued arrival stood.
func (a *Admitter) release(class int) {
	now := time.Now()
	a.mu.Lock()
	granted, sojourns, transition, depth := a.grantLocked(class, now)
	a.mu.Unlock()

	a.depth.Set(int64(depth))
	for i, w := range granted {
		a.sojournUS.Observe(sojourns[i].Microseconds())
		close(w.ready)
	}
	a.announce(transition, fmt.Sprintf("head sojourn fed codel, %d queued", depth))
}

// grantLocked frees one slot of class and hands freed capacity to the
// class's oldest waiters, feeding each waiter's sojourn into the CoDel law.
// Must hold a.mu; the caller closes the granted ready channels and observes
// the sojourns after unlocking.
func (a *Admitter) grantLocked(class int, now time.Time) (granted []*admitWaiter, sojourns []time.Duration, transition, depth int) {
	c := &a.classes[class]
	c.inflight--
	for c.inflight < a.opts.Slots && len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		w.granted = true
		c.inflight++
		soj := now.Sub(w.enq)
		if tr := a.observeLocked(soj, now); tr != 0 {
			transition = tr
		}
		granted = append(granted, w)
		sojourns = append(sojourns, soj)
	}
	if a.queuedLocked() == 0 && a.codel.Shedding() {
		a.codel.OnEmpty(now)
		transition = -1
	}
	return granted, sojourns, transition, a.queuedLocked()
}

// Pressure reports admission occupancy in [0, 1]: the most loaded class's
// (inflight + queued) over its total capacity, saturating to 1 while shed
// mode is active. The cluster's overload loop reads it to decide spare
// activation — a standing admission queue means the active replica set is
// undersized even if per-replica outstanding counts look tolerable.
func (a *Admitter) Pressure() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pressureLocked()
}

// pressureLocked computes the occupancy fraction. Must hold a.mu.
func (a *Admitter) pressureLocked() float64 {
	if a.codel.Shedding() {
		return 1
	}
	capacity := float64(a.opts.Slots + a.opts.QueueCap)
	max := 0.0
	for i := range a.classes {
		p := float64(a.classes[i].inflight+len(a.classes[i].queue)) / capacity
		if p > max {
			max = p
		}
	}
	return max
}

// Shedding reports whether CoDel shed mode is currently active.
func (a *Admitter) Shedding() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codel.Shedding()
}
