package scheduler

import (
	"errors"
	"fmt"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// TxnSpec declares a transaction before it runs: its access type and the
// tables it touches. The paper requires each incoming request to be preceded
// by its type; the scheduler uses the table set for conflict-class routing.
type TxnSpec struct {
	ReadOnly bool
	Tables   []string
	// Deadline, when non-zero, is the caller's give-up time. The scheduler
	// abandons the transaction — in the admission queue, between retries,
	// and at commit entry — once it passes, and propagates the remaining
	// budget to the executing replica so server-side work stops too. Work
	// is never abandoned mid-commit: a commit that has started follows the
	// ErrCommitUncertain discipline exclusively.
	Deadline time.Time
}

// Txn is a running transaction bound to one replica. Statements execute on
// that replica with per-statement round trips, exactly as the PHP
// application server talks to the database tier in the paper's setup.
//
// Txns come from Scheduler.Begin (explicit sessions, used by the RPC
// transport) or implicitly inside Scheduler.Run (which adds retries).
type Txn struct {
	sched    *Scheduler
	peer     replica.Peer
	rep      *replicaState // non-nil for reads (outstanding accounting)
	id       uint64
	readOnly bool
	version  vclock.Vector
	logged   []LoggedStmt
	done     bool
	deadline time.Time // caller's give-up time (zero = unbounded)
	release  func()    // admission slot release (nil without admission control)
}

// Version returns the version vector the transaction was tagged with
// (read-only transactions only; nil for updates).
func (t *Txn) Version() vclock.Vector { return t.version }

// Replica returns the id of the replica executing this transaction.
func (t *Txn) Replica() string { return t.peer.ID() }

// Exec runs one SQL statement inside the transaction.
func (t *Txn) Exec(stmt string, params ...value.Value) (*exec.Result, error) {
	res, err := t.peer.TxExec(t.id, stmt, params)
	if err != nil {
		return nil, err
	}
	if !t.readOnly && t.sched.isUpdateStmt(stmt) {
		t.logged = append(t.logged, LoggedStmt{Text: stmt, Params: params})
	}
	return res, nil
}

// QueryInt is a convenience wrapper returning the first column of the first
// row as an int64 (0 if no rows).
func (t *Txn) QueryInt(stmt string, params ...value.Value) (int64, error) {
	res, err := t.Exec(stmt, params...)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	return res.Rows[0][0].AsInt(), nil
}

// isUpdateStmt classifies a statement as a write (cached per text) so the
// scheduler logs exactly the update queries of each committed transaction
// for the persistence tier.
func (s *Scheduler) isUpdateStmt(stmt string) bool {
	s.stmtMu.RLock()
	isUpd, ok := s.stmtIsUpd[stmt]
	s.stmtMu.RUnlock()
	if ok {
		return isUpd
	}
	p, err := exec.Prepare(stmt)
	isUpd = err == nil && !p.ReadOnly()
	s.stmtMu.Lock()
	s.stmtIsUpd[stmt] = isUpd
	s.stmtMu.Unlock()
	return isUpd
}

// retryable classifies errors the scheduler handles by re-running the
// transaction elsewhere (version-inconsistency aborts, node failures,
// peer deadlines before any commit was attempted) or on the same master
// (deadlock timeouts). An uncertain commit is explicitly NOT retryable:
// the update may already be applied, and replaying it could double its
// effect. Overload rejects and expired deadlines are likewise final — the
// whole point of shedding is that the scheduler stops spending capacity on
// that caller; the retry-after hint tells the client when to come back.
func retryable(err error) bool {
	if errors.Is(err, ErrCommitUncertain) {
		return false
	}
	return errors.Is(err, page.ErrVersionConflict) ||
		errors.Is(err, replica.ErrNodeDown) ||
		errors.Is(err, heap.ErrLockTimeout) ||
		errors.Is(err, replica.ErrPeerTimeout)
}

// causeOf names an abort cause for trace spans ("" for success).
func causeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCommitUncertain):
		return "commit-uncertain"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, replica.ErrDeadlineExpired):
		return "deadline-expired"
	case errors.Is(err, page.ErrVersionConflict):
		return "version-conflict"
	case errors.Is(err, heap.ErrLockTimeout):
		return "lock-timeout"
	case errors.Is(err, replica.ErrPeerTimeout):
		return "peer-timeout"
	case errors.Is(err, replica.ErrNodeDown):
		return "node-down"
	default:
		return "other"
	}
}

// Run executes fn as one transaction. Read-only transactions are tagged with
// the latest merged version vector and routed by version affinity; update
// transactions go to their conflict-class master. Aborted transactions
// (version conflicts, deadlock timeouts, node failures) are retried up to
// MaxRetries times — fn must therefore be idempotent up to its commit, which
// holds for the TPC-W interactions (all side effects live in the database).
func (s *Scheduler) Run(spec TxnSpec, fn func(tx *Txn) error) error {
	var lastErr error
	for attempt := 0; attempt <= s.opts.MaxRetries; attempt++ {
		if !spec.Deadline.IsZero() && time.Now().After(spec.Deadline) {
			// The caller gave up; retrying on their behalf would be pure
			// wasted capacity during exactly the overloads that cause
			// deadline misses.
			s.met.deadlineAbandoned.Inc()
			if lastErr != nil {
				return fmt.Errorf("%w: gave up after %d attempts: %v", replica.ErrDeadlineExpired, attempt, lastErr)
			}
			return fmt.Errorf("%w: before first attempt", replica.ErrDeadlineExpired)
		}
		err := s.runOnce(spec, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if errors.Is(err, page.ErrVersionConflict) {
			s.stats.VersionAborts.Add(1)
		}
		if errors.Is(err, heap.ErrLockTimeout) {
			s.stats.LockRetries.Add(1)
		}
		if errors.Is(err, replica.ErrPeerTimeout) {
			s.met.abortPeerTimeout.Add(1)
		} else if errors.Is(err, replica.ErrNodeDown) {
			s.met.abortNodeDown.Add(1)
		}
	}
	s.met.retriesExhausted.Add(1)
	return fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

func (s *Scheduler) runOnce(spec TxnSpec, fn func(tx *Txn) error) error {
	var sp *obs.Span
	if s.tracer != nil {
		kind := "update"
		if spec.ReadOnly {
			kind = "read"
		}
		sp = s.tracer.Begin(kind)
	}
	start := time.Now()
	defer s.met.txnUS.ObserveSince(start)
	tx, err := s.begin(spec, sp)
	if err != nil {
		sp.Finish("abort", causeOf(err))
		return err
	}
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		if errors.Is(err, replica.ErrNodeDown) {
			s.reportFailure(tx.peer.ID())
		}
		sp.Mark("exec")
		sp.Finish("abort", causeOf(err))
		return err
	}
	sp.Mark("exec")
	if err := tx.Commit(); err != nil {
		sp.Finish("abort", causeOf(err))
		return err
	}
	sp.Mark("commit")
	sp.Finish("commit", "")
	return nil
}

// Begin opens one transaction session: read-only transactions are tagged
// with the latest version vector and placed by the version-aware policy;
// updates go to their conflict-class master. The caller must finish the
// session with Commit or Rollback. Begin does not retry — Run adds retry
// semantics on top.
func (s *Scheduler) Begin(spec TxnSpec) (*Txn, error) { return s.begin(spec, nil) }

// remainingBudget converts the spec deadline into the duration budget the
// replica call carries (0 = unbounded; an error when already expired).
func (s *Scheduler) remainingBudget(deadline time.Time) (time.Duration, error) {
	if deadline.IsZero() {
		return 0, nil
	}
	left := time.Until(deadline)
	if left <= 0 {
		s.met.deadlineAbandoned.Inc()
		return 0, fmt.Errorf("%w: expired before session begin", replica.ErrDeadlineExpired)
	}
	return left, nil
}

// begin implements Begin, annotating the optional trace span with the
// lifecycle stages (admission, version tagging, replica selection, session
// begin). When admission control is enabled the bounded queue is the very
// first gate: an overloaded scheduler rejects here, in microseconds, before
// any version tagging or replica work is spent on the doomed transaction.
func (s *Scheduler) begin(spec TxnSpec, sp *obs.Span) (*Txn, error) {
	var release func()
	if s.admit != nil {
		class := s.admit.readClass()
		if !spec.ReadOnly {
			class = s.classFor(spec.Tables)
		}
		rel, err := s.admit.Admit(class, spec.Deadline)
		if err != nil {
			return nil, err
		}
		release = rel
		sp.Mark("admit")
	}
	fail := func(err error) (*Txn, error) {
		if release != nil {
			release()
		}
		return nil, err
	}
	if spec.ReadOnly {
		v := s.merged.Latest()
		if sp != nil {
			sp.SetVersion(v.String())
			sp.Mark("tag")
		}
		rep := s.pickReader(v)
		sp.Mark("pick")
		if rep == nil {
			return fail(ErrNoReplicas)
		}
		sp.SetReplica(rep.peer.ID())
		budget, err := s.remainingBudget(spec.Deadline)
		if err != nil {
			rep.outstanding.Add(-1)
			return fail(err)
		}
		id, err := rep.peer.TxBegin(true, v, budget, sp.Context())
		if err != nil {
			rep.outstanding.Add(-1) // pickReader incremented under its lock
			if errors.Is(err, replica.ErrNodeDown) {
				s.reportFailure(rep.peer.ID())
			}
			return fail(err)
		}
		sp.Mark("begin")
		return &Txn{sched: s, peer: rep.peer, rep: rep, id: id, readOnly: true, version: v, deadline: spec.Deadline, release: release}, nil
	}
	ci := s.classFor(spec.Tables)
	master := s.Master(ci)
	if master == nil {
		return fail(ErrNoReplicas)
	}
	sp.SetReplica(master.ID())
	budget, err := s.remainingBudget(spec.Deadline)
	if err != nil {
		return fail(err)
	}
	id, err := master.TxBegin(false, nil, budget, sp.Context())
	if err != nil {
		if errors.Is(err, replica.ErrPeerTimeout) {
			// No commit was attempted, so the retry is safe; the report
			// feeds the failure detector, which decides whether the master
			// is gray-failed or merely slow.
			s.reportFailure(master.ID())
			return fail(err)
		}
		if errors.Is(err, replica.ErrNodeDown) || errors.Is(err, replica.ErrNotMaster) {
			s.reportFailure(master.ID())
			return fail(fmt.Errorf("%w: master %s unavailable", replica.ErrNodeDown, master.ID()))
		}
		return fail(err)
	}
	sp.Mark("begin")
	return &Txn{sched: s, peer: master, id: id, deadline: spec.Deadline, release: release}, nil
}

// Commit finishes the session. Update commits report the new version vector
// to the merged clock and feed the persistence tier.
func (t *Txn) Commit() error {
	if t.done {
		return nil
	}
	t.done = true
	if t.release != nil {
		defer t.release()
	}
	s := t.sched
	if !t.readOnly && !t.deadline.IsZero() && time.Now().After(t.deadline) {
		// Commit-entry check: the caller's deadline lapsed before any commit
		// work began, so aborting here is unconditionally safe. Once the
		// commit RPC is issued, only the ErrCommitUncertain discipline below
		// applies — a deadline never interrupts a commit in flight.
		s.met.deadlineAbandoned.Inc()
		_ = t.peer.TxRollback(t.id)
		return fmt.Errorf("%w: abandoned at commit entry", replica.ErrDeadlineExpired)
	}
	if t.readOnly {
		defer t.rep.outstanding.Add(-1)
		if _, err := t.peer.TxCommit(t.id); err != nil {
			if errors.Is(err, replica.ErrNodeDown) {
				s.reportFailure(t.peer.ID())
			}
			return err
		}
		s.stats.ReadTxns.Add(1)
		return nil
	}
	// The fence spans the master commit and the version report: master
	// fail-over cannot read its rollback point between the two, so every
	// acknowledged commit's version is covered by any rollback.
	s.commitFence.RLock()
	ver, err := t.peer.TxCommit(t.id)
	if err != nil {
		s.commitFence.RUnlock()
		if errors.Is(err, replica.ErrPeerTimeout) {
			// The reply was lost to the deadline: the commit may have
			// happened. Never acknowledged, never reported — so if it did
			// land, its version sits above every rollback point and the
			// fail-over discard erases it; if the master survives, the
			// caller must reconcile. Either way, a blind retry is unsafe.
			s.reportFailure(t.peer.ID())
			s.flight.Trigger(flight.CauseCommitUncertain, t.peer.ID(), err.Error())
			return fmt.Errorf("%w: %v", ErrCommitUncertain, err)
		}
		if errors.Is(err, replica.ErrNodeDown) {
			s.reportFailure(t.peer.ID())
		}
		return err
	}
	if ver != nil {
		s.merged.Report(ver)
		if s.fanout != nil {
			s.fanout(ver)
		}
	}
	s.commitFence.RUnlock()
	s.stats.UpdateTxns.Add(1)
	if s.opts.OnCommit != nil && len(t.logged) > 0 {
		s.opts.OnCommit(CommitRecord{Version: ver, Stmts: t.logged})
	}
	return nil
}

// Rollback aborts the session.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	if t.release != nil {
		defer t.release()
	}
	if t.rep != nil {
		defer t.rep.outstanding.Add(-1)
	}
	return t.peer.TxRollback(t.id)
}
