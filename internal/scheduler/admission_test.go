package scheduler

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dmv/internal/obs"
	"dmv/internal/replica"
)

// TestCoDelHysteresis pins the shed law's entry and exit conditions: shed
// mode engages only after sojourn stays at or above target for a full
// interval; while shedding, observations between target/2 and target do NOT
// un-shed (the hysteresis band); one observation below target/2 — or the
// queue draining empty — exits.
func TestCoDelHysteresis(t *testing.T) {
	target := 5 * time.Millisecond
	interval := 100 * time.Millisecond
	c := CoDel{Target: target, Interval: interval}
	t0 := time.Unix(0, 0)

	// A spike shorter than the interval never sheds.
	if c.Observe(10*target, t0) {
		t.Fatal("shed on first above-target observation")
	}
	if c.Observe(10*target, t0.Add(interval/2)) {
		t.Fatal("shed before a full interval above target")
	}
	// One below-target observation resets the run.
	if c.Observe(target/4, t0.Add(interval/2+time.Millisecond)) {
		t.Fatal("shed on a below-target observation")
	}
	// A sustained above-target run for a full interval engages shed mode.
	base := t0.Add(time.Second)
	c.Observe(2*target, base)
	if !c.Observe(2*target, base.Add(interval)) {
		t.Fatal("no shed after a full interval above target")
	}

	// Hysteresis: sojourns in [target/2, target) keep shedding.
	if !c.Observe(target*3/4, base.Add(interval+time.Millisecond)) {
		t.Fatal("left shed mode inside the hysteresis band")
	}
	// Below target/2 exits.
	if c.Observe(target/4, base.Add(interval+2*time.Millisecond)) {
		t.Fatal("still shedding after a below-target/2 observation")
	}

	// Re-enter, then exit via the queue draining empty.
	c.Observe(2*target, base.Add(2*time.Second))
	if !c.Observe(2*target, base.Add(2*time.Second+interval)) {
		t.Fatal("no shed on second sustained run")
	}
	c.OnEmpty(base.Add(3 * time.Second))
	if c.Shedding() {
		t.Fatal("still shedding after the queue drained empty")
	}
}

// newTestAdmitter builds an Admitter outside a Scheduler, with one update
// class plus the implicit read class.
func newTestAdmitter(opts AdmissionOptions) (*Admitter, *obs.Registry) {
	reg := obs.New()
	return newAdmitter(opts, 1, 42, reg, reg.Timeline(), nil), reg
}

// TestAdmitterSlotsAndQueue covers the three admission outcomes: fast-path
// admit while slots are free, queue + grant on release, and fast reject
// with a jittered retry-after once the bounded queue is full.
func TestAdmitterSlotsAndQueue(t *testing.T) {
	a, reg := newTestAdmitter(AdmissionOptions{Slots: 2, QueueCap: 1, TargetSojourn: time.Hour})
	rel1, err := a.Admit(0, time.Time{})
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	rel2, err := a.Admit(0, time.Time{})
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}

	// Slots full: the third arrival queues; grant it by releasing a slot.
	var wg sync.WaitGroup
	wg.Add(1)
	granted := make(chan struct{})
	go func() {
		defer wg.Done()
		rel3, err := a.Admit(0, time.Time{})
		if err != nil {
			t.Errorf("queued admit: %v", err)
			return
		}
		close(granted)
		rel3()
	}()
	// Wait until the waiter is parked, then overflow the queue.
	deadline := time.Now().Add(2 * time.Second)
	for a.Pressure() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Admit(0, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full admit: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	_, err = a.Admit(0, time.Time{})
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("overload error carries no retry-after hint: %v", err)
	}

	rel1()
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("release never granted the queued waiter")
	}
	wg.Wait()
	rel2()
	// Double release must be a no-op (sync.Once), not an occupancy leak.
	rel1()
	rel1()
	if p := a.Pressure(); p != 0 {
		t.Fatalf("pressure after all releases = %v, want 0", p)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.SchedAdmitShed]; got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}
	if got := snap.Counters[obs.SchedAdmitAdmitted]; got != 3 {
		t.Fatalf("admitted counter = %d, want 3", got)
	}
}

// TestAdmitterDeadlineAbandon: a waiter still queued when its deadline
// fires is abandoned with ErrDeadlineExpired and counted, and its queue
// slot is reclaimed.
func TestAdmitterDeadlineAbandon(t *testing.T) {
	a, reg := newTestAdmitter(AdmissionOptions{Slots: 1, QueueCap: 4, TargetSojourn: time.Hour})
	rel, err := a.Admit(0, time.Time{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	start := time.Now()
	_, err = a.Admit(0, time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, replica.ErrDeadlineExpired) {
		t.Fatalf("queued admit past deadline: err = %v, want ErrDeadlineExpired", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("deadline abandon must not read as an overload reject")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("abandon took %v, want ~50ms", elapsed)
	}
	if got := reg.Snapshot().Counters[obs.SchedDeadlineAbandoned]; got != 1 {
		t.Fatalf("abandoned counter = %d, want 1", got)
	}
	rel()
	if p := a.Pressure(); p != 0 {
		t.Fatalf("pressure after abandon+release = %v, want 0 (queue slot leaked)", p)
	}
}

// TestAdmitterShedModeFastReject: once sustained sojourn engages shed mode,
// arrivals are rejected in the fast path without queueing, and draining the
// queues recovers.
func TestAdmitterShedModeFastReject(t *testing.T) {
	a, _ := newTestAdmitter(AdmissionOptions{
		Slots: 1, QueueCap: 8,
		TargetSojourn: time.Millisecond, Interval: 10 * time.Millisecond,
	})
	rel, err := a.Admit(0, time.Time{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	// Park waiters long enough that their sojourn exceeds target for a full
	// interval, then release slots one by one: each grant feeds the CoDel
	// law a large sojourn and shed mode engages.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.Admit(0, time.Time{})
			if err == nil {
				time.Sleep(20 * time.Millisecond)
				r()
			}
		}()
	}
	// Occupancy is 1 inflight + 3 queued out of slots+cap = 9.
	deadline := time.Now().Add(2 * time.Second)
	for a.Pressure() < 4.0/9.0 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond) // let queued sojourn exceed target x interval
	rel()                             // grant head: sojourn ~25ms >> target for > interval
	wg.Wait()                         // waiters drain; the last release sees empty queues

	// After the drain, OnEmpty has ended shed mode: a fresh arrival admits.
	deadline = time.Now().Add(2 * time.Second)
	for {
		r, err := a.Admit(0, time.Time{})
		if err == nil {
			r()
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("admit after drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("shed mode never recovered after the queue drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunDeadlineExpired: a TxnSpec whose deadline already passed fails
// with ErrDeadlineExpired before any replica work, and the abandon counter
// moves.
func TestRunDeadlineExpired(t *testing.T) {
	reg := obs.New()
	s := newSched(t, Options{Obs: reg})
	m := &fakePeer{id: "m"}
	s.SetMaster(0, m)
	err := s.Run(TxnSpec{Tables: []string{"a"}, Deadline: time.Now().Add(-time.Second)}, func(tx *Txn) error {
		t.Fatal("fn ran despite an expired deadline")
		return nil
	})
	if !errors.Is(err, replica.ErrDeadlineExpired) {
		t.Fatalf("err = %v, want ErrDeadlineExpired", err)
	}
	if m.begins.Load() != 0 {
		t.Fatal("expired transaction still reached the master")
	}
	if got := reg.Snapshot().Counters[obs.SchedDeadlineAbandoned]; got < 1 {
		t.Fatalf("abandoned counter = %d, want >= 1", got)
	}
}

// TestSchedulerAdmissionIntegration: a scheduler built with admission
// options gates begin, rejects with ErrOverloaded when saturated, and
// releases occupancy on commit so later transactions admit again.
func TestSchedulerAdmissionIntegration(t *testing.T) {
	s := newSched(t, Options{Admission: AdmissionOptions{Slots: 1, QueueCap: 0, TargetSojourn: time.Hour}})
	m := &fakePeer{id: "m"}
	s.SetMaster(0, m)

	// QueueCap 0 defaults to 4x slots; saturate the slot and the queue with
	// holders that never finish, then expect a fast reject.
	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error {
				<-block
				return nil
			})
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.AdmissionPressure() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("admission never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	err := s.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated run: err = %v, want ErrOverloaded", err)
	}
	close(block)
	wg.Wait()
	if err := s.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error { return nil }); err != nil {
		t.Fatalf("run after drain: %v", err)
	}
	if p := s.AdmissionPressure(); p != 0 {
		t.Fatalf("pressure after drain = %v, want 0 (release leaked)", p)
	}
}
