package scheduler

import (
	"testing"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/replica"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

func newMasterNode(t *testing.T) *replica.Node {
	t.Helper()
	e := heap.NewEngine(heap.Options{})
	if err := exec.ExecDDL(e, `CREATE TABLE a (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	tid, _ := e.TableID("a")
	if err := e.Load(tid, []value.Row{
		{value.NewInt(1), value.NewInt(0)},
		{value.NewInt(2), value.NewInt(0)},
	}); err != nil {
		t.Fatal(err)
	}
	n := replica.NewNode(replica.Options{ID: "m", Engine: e})
	if err := n.Promote([]int{0}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSchedulerTakeOver exercises the Section 4.1 protocol: a peer scheduler
// with an empty version state takes over — the master aborts transactions
// left open by the failed scheduler (releasing their locks) and reports the
// highest committed version, which the peer adopts.
func TestSchedulerTakeOver(t *testing.T) {
	master := newMasterNode(t)

	// The "failed" primary scheduler committed two transactions and left a
	// third one open (holding page locks).
	primary := newSched(t, Options{Classes: []ConflictClass{{Name: "all", Tables: []string{"a"}}}})
	primary.SetMaster(0, master)
	for i := 0; i < 2; i++ {
		err := primary.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error {
			_, err := tx.Exec(`UPDATE a SET v = v + 1 WHERE id = 1`)
			return err
		})
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	openID, err := master.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := master.TxExec(openID, `UPDATE a SET v = 99 WHERE id = 2`, nil); err != nil {
		t.Fatal(err)
	}
	// (The primary scheduler now "fails" without committing the open txn.)

	// A peer scheduler with no version state takes over.
	peer := newSched(t, Options{Classes: []ConflictClass{{Name: "all", Tables: []string{"a"}}}})
	peer.SetMaster(0, master)
	if peer.Latest().Get(0) != 0 {
		t.Fatal("peer should start empty")
	}
	if err := peer.TakeOver(); err != nil {
		t.Fatalf("take over: %v", err)
	}
	// The peer adopted the masters' highest committed version.
	if got := peer.Latest().Get(0); got != 2 {
		t.Fatalf("peer version = %d, want 2", got)
	}

	// The orphaned transaction was aborted: its locks are free, its effects
	// discarded, and the tier keeps serving updates through the peer.
	slaveView := master.Engine().BeginRead(nil)
	res, err := exec.Run(slaveView, `SELECT v FROM a WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("orphaned txn effects visible: %v", res.Rows)
	}
	err = peer.Run(TxnSpec{Tables: []string{"a"}}, func(tx *Txn) error {
		_, err := tx.Exec(`UPDATE a SET v = 7 WHERE id = 2`) // would deadlock if locks leaked
		return err
	})
	if err != nil {
		t.Fatalf("update through peer: %v", err)
	}
	if got := peer.Latest().Get(0); got != 3 {
		t.Fatalf("version after peer commit = %d, want 3", got)
	}
}

// TestLowWaterTracksOutstandingReaders verifies the GC low-water mark stays
// at the version of in-flight readers, not the merged head.
func TestLowWaterTracksOutstandingReaders(t *testing.T) {
	s := newSched(t, Options{VersionAffinity: true})
	slave := &fakePeer{id: "s0"}
	s.AddSlave(slave)
	s.ReportVersion(vclock.Vector{5, 0, 0, 0})

	// Open a read session pinned at version 5.
	tx, err := s.Begin(TxnSpec{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// The head moves on.
	s.ReportVersion(vclock.Vector{9, 0, 0, 0})
	if lw := s.LowWater(); lw.Get(0) != 5 {
		t.Fatalf("low water = %d, want 5 (reader in flight)", lw.Get(0))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if lw := s.LowWater(); lw.Get(0) != 9 {
		t.Fatalf("low water after drain = %d, want 9", lw.Get(0))
	}
}
