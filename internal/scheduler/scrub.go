// Anti-entropy scrubber (DESIGN.md §15). The scheduler is the one component
// that already knows the full topology — which node masters each conflict
// class, which slaves and spares serve reads — so it drives the sweep: pin a
// common frontier at or below every node's applied version, fetch per-table
// Merkle roots over the deadline-bounded Digest RPC, and on a root mismatch
// drill down to the diverging page set. The class master is the digest
// ground truth (it executed every update locally; a master that corrupts
// its own state is outside this defense — see the DESIGN.md caveat), so a
// peer whose root differs is quarantined out of read placement, repaired
// with the master's current pages over the changed-page path, and
// reintegrated through the ordinary StartJoin/FinishJoin flow so no acked
// commit is lost while the repair is in flight.
package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/page"
	"dmv/internal/replica"
	"dmv/internal/scrub"
)

// ScrubMismatch is one diverged (table, page set) on one node, pinned at the
// frontier version the mismatch was observed at.
type ScrubMismatch struct {
	Table   int
	Version uint64
	Pages   []page.ID
}

// ScrubOptions configures a Scrubber.
type ScrubOptions struct {
	// Tables restricts the sweep to these table ids; nil sweeps every
	// table the scheduler's version vectors cover.
	Tables []int
	// IncludeSpares audits spare backups too (they apply the same
	// write-set stream and are one promotion away from serving reads).
	IncludeSpares bool
	// FrontierRetries bounds how often a table check restarts after a
	// racing master commit invalidates the pinned frontier
	// (page.ErrVersionConflict). Default 3.
	FrontierRetries int
	// OnDiverged fires after a diverged node is quarantined, before
	// repair. The cluster layer uses it to emit timeline events and fan
	// the quarantine out to standby schedulers.
	OnDiverged func(node string, mismatches []ScrubMismatch)
	// OnRepaired fires after a repair attempt: ok reports whether the
	// re-digest verified convergence (on false the node stays
	// quarantined).
	OnRepaired func(node string, pages int, took time.Duration, ok bool)
}

// ScrubReport summarizes one sweep.
type ScrubReport struct {
	TablesChecked int // (table) digest comparisons completed
	Conflicts     int // frontier retries forced by racing commits
	Skipped       int // table checks abandoned (retries exhausted / no master / peer errors)
	Diverged      map[string][]ScrubMismatch
	Repaired      []string // nodes repaired and verified converged
	Failed        []string // nodes left quarantined after a failed repair
}

// Scrubber drives anti-entropy sweeps over the scheduler's replica sets.
// Construct with NewScrubber; Sweep is safe to call from a ticker goroutine.
type Scrubber struct {
	s    *Scheduler
	opts ScrubOptions
	met  scrubMetrics

	mu sync.Mutex // serializes sweeps; a slow repair must not overlap the next tick
}

type scrubMetrics struct {
	sweeps         *obs.Counter
	tablesChecked  *obs.Counter
	conflicts      *obs.Counter
	skipped        *obs.Counter
	divergences    *obs.Counter
	repairs        *obs.Counter
	repairFailures *obs.Counter
	repairPages    *obs.Counter
	sweepUS        *obs.Histogram
	repairUS       *obs.Histogram
}

// NewScrubber builds a scrubber over the scheduler's topology. Metrics land
// in the scheduler's registry (or a private one when the scheduler was built
// without Obs, matching New's behavior).
func (s *Scheduler) NewScrubber(opts ScrubOptions) *Scrubber {
	if opts.FrontierRetries <= 0 {
		opts.FrontierRetries = 3
	}
	reg := s.opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	return &Scrubber{
		s:    s,
		opts: opts,
		met: scrubMetrics{
			sweeps:         reg.Counter(obs.ScrubSweeps),
			tablesChecked:  reg.Counter(obs.ScrubTablesChecked),
			conflicts:      reg.Counter(obs.ScrubConflicts),
			skipped:        reg.Counter(obs.ScrubSkipped),
			divergences:    reg.Counter(obs.ScrubDivergences),
			repairs:        reg.Counter(obs.ScrubRepairs),
			repairFailures: reg.Counter(obs.ScrubRepairFailures),
			repairPages:    reg.Counter(obs.ScrubRepairPages),
			sweepUS:        reg.Histogram(obs.ScrubSweepUS),
			repairUS:       reg.Histogram(obs.ScrubRepairUS),
		},
	}
}

// classOfTableID maps a table id to its conflict class (class 0 for tables
// outside every configured class, matching classFor's fallback). classes is
// immutable after New, so no lock is needed.
func (s *Scheduler) classOfTableID(t int) int {
	for ci, cs := range s.classes {
		for _, id := range cs.tableIDs {
			if id == t {
				return ci
			}
		}
	}
	return 0
}

// auditPeers returns the replicas whose state the sweep cross-checks
// against class masters: active slaves plus, optionally, spares.
func (sc *Scrubber) auditPeers() []replica.Peer {
	peers := sc.s.SlaveList()
	if sc.opts.IncludeSpares {
		peers = append(peers, sc.s.SpareList()...)
	}
	return peers
}

// Sweep runs one full anti-entropy pass: digest every table on every audit
// peer against its class master, quarantine and repair divergences, and
// verify convergence before lifting the quarantine. It never fails a node —
// a peer that cannot be digested (down, joining, deadline) is simply
// skipped; the failure detector owns its health.
func (sc *Scrubber) Sweep() ScrubReport {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	start := time.Now()
	rep := ScrubReport{Diverged: make(map[string][]ScrubMismatch)}

	tables := sc.opts.Tables
	if len(tables) == 0 {
		n := len(sc.s.Latest())
		tables = make([]int, n)
		for i := range tables {
			tables[i] = i
		}
	}
	peers := sc.auditPeers()
	byID := make(map[string]replica.Peer, len(peers))
	for _, p := range peers {
		byID[p.ID()] = p
	}

	for _, t := range tables {
		sc.checkTable(t, peers, &rep)
	}

	for node, mms := range rep.Diverged {
		sc.met.divergences.Add(int64(len(mms)))
		sc.s.SetQuarantined(node, true)
		detail := fmt.Sprintf("tables=%d pages=%d", len(mms), totalPages(mms))
		sc.s.flight.Trigger(flight.CauseDivergence, node, detail)
		if sc.opts.OnDiverged != nil {
			sc.opts.OnDiverged(node, mms)
		}
		peer := byID[node]
		if peer == nil {
			rep.Failed = append(rep.Failed, node)
			sc.met.repairFailures.Inc()
			continue
		}
		repairStart := time.Now()
		pages, err := sc.repair(peer, mms)
		if err == nil {
			// The quarantine lifts only on proof: re-digest every affected
			// table at a fresh frontier and require a root match.
			affected := make([]int, 0, len(mms))
			for _, mm := range mms {
				affected = append(affected, mm.Table)
			}
			err = sc.VerifyConverged(peer, affected)
		}
		took := time.Since(repairStart)
		sc.met.repairPages.Add(int64(pages))
		sc.met.repairUS.Observe(took.Microseconds())
		if err == nil {
			// Verified converged: the node may serve reads again.
			sc.s.SetQuarantined(node, false)
			sc.met.repairs.Inc()
			rep.Repaired = append(rep.Repaired, node)
		} else {
			// Leave the node quarantined; the next sweep (or the failure
			// detector) picks it up.
			sc.met.repairFailures.Inc()
			rep.Failed = append(rep.Failed, node)
		}
		if sc.opts.OnRepaired != nil {
			sc.opts.OnRepaired(node, pages, took, err == nil)
		}
	}

	sc.met.sweeps.Inc()
	sc.met.tablesChecked.Add(int64(rep.TablesChecked))
	sc.met.conflicts.Add(int64(rep.Conflicts))
	sc.met.skipped.Add(int64(rep.Skipped))
	sc.met.sweepUS.Observe(time.Since(start).Microseconds())
	return rep
}

// checkTable digests one table across the audit peers, recording diverging
// page sets into rep. A racing master commit invalidates the pinned
// frontier (page.ErrVersionConflict); the check restarts with a fresher
// frontier up to FrontierRetries times, then counts the table skipped — the
// next sweep gets another chance.
func (sc *Scrubber) checkTable(t int, peers []replica.Peer, rep *ScrubReport) {
	master := sc.s.Master(sc.s.classOfTableID(t))
	if master == nil {
		rep.Skipped++
		return
	}
	audit := make([]replica.Peer, 0, len(peers))
	for _, p := range peers {
		if p.ID() != master.ID() {
			audit = append(audit, p)
		}
	}
	if len(audit) == 0 {
		return
	}
	for attempt := 0; ; attempt++ {
		conflict, err := sc.compareOnce(t, master, audit, rep)
		if err == nil && !conflict {
			rep.TablesChecked++
			return
		}
		if conflict {
			rep.Conflicts++
			sc.met.conflicts.Inc()
		}
		if attempt >= sc.opts.FrontierRetries {
			rep.Skipped++
			return
		}
	}
}

// compareOnce pins one frontier and compares roots; on mismatch it drills
// down to the page set. Returns conflict=true when any digest lost the race
// to a newer commit (caller retries with a fresh frontier).
func (sc *Scrubber) compareOnce(t int, master replica.Peer, audit []replica.Peer, rep *ScrubReport) (conflict bool, err error) {
	// The frontier must sit at or below every participant's applied
	// version or the pinned-version scan has nothing to read.
	frontier, live, err := scrubFrontier(t, master, audit)
	if err != nil {
		return false, err
	}
	mRoot, err := master.Digest(t, frontier, false)
	if errors.Is(err, page.ErrVersionConflict) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	for _, p := range live {
		pRoot, err := p.Digest(t, frontier, false)
		if errors.Is(err, page.ErrVersionConflict) {
			return true, nil
		}
		if err != nil {
			continue // peer unreachable/joining: its health is the detector's job
		}
		if pRoot.Root == mRoot.Root {
			continue
		}
		// Drill down: re-fetch both sides with leaves and diff.
		mFull, err := master.Digest(t, frontier, true)
		if errors.Is(err, page.ErrVersionConflict) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		pFull, err := p.Digest(t, frontier, true)
		if errors.Is(err, page.ErrVersionConflict) {
			return true, nil
		}
		if err != nil {
			continue
		}
		diff := scrub.DiffPages(mFull, pFull)
		if len(diff) == 0 {
			continue // roots differed but leaves agree: racing state, recheck next sweep
		}
		rep.Diverged[p.ID()] = append(rep.Diverged[p.ID()], ScrubMismatch{
			Table: t, Version: frontier, Pages: diff,
		})
	}
	return false, nil
}

// scrubFrontier picks the highest version every participant has applied for
// table t. Peers whose version cannot be fetched are dropped from this
// check rather than stalling the frontier at zero.
func scrubFrontier(t int, master replica.Peer, audit []replica.Peer) (uint64, []replica.Peer, error) {
	mv, err := master.MaxVersions()
	if err != nil {
		return 0, nil, fmt.Errorf("scrub: master %s versions: %w", master.ID(), err)
	}
	frontier := mv.Get(t)
	live := make([]replica.Peer, 0, len(audit))
	for _, p := range audit {
		pv, err := p.MaxVersions()
		if err != nil {
			continue
		}
		if v := pv.Get(t); v < frontier {
			frontier = v
		}
		live = append(live, p)
	}
	return frontier, live, nil
}

// repair ships the master's current images for every diverged page to the
// node and verifies convergence by re-digesting the affected tables. The
// StartJoin/FinishJoin bracket makes the bulk install safe under live
// replication: write-sets arriving mid-repair buffer on the node and drain
// through the versioned apply path afterwards, so nothing acked is lost and
// nothing is applied twice.
func (sc *Scrubber) repair(peer replica.Peer, mms []ScrubMismatch) (pages int, err error) {
	if err := peer.StartJoin(); err != nil {
		return 0, fmt.Errorf("scrub repair %s: start join: %w", peer.ID(), err)
	}
	// FinishJoin must run even when shipping fails halfway: it drains the
	// buffered write-sets so the node keeps converging instead of
	// buffering forever.
	defer func() {
		if ferr := peer.FinishJoin(); ferr != nil && err == nil {
			err = fmt.Errorf("scrub repair %s: finish join: %w", peer.ID(), ferr)
		}
	}()
	for _, mm := range mms {
		master := sc.s.Master(sc.s.classOfTableID(mm.Table))
		if master == nil {
			return pages, fmt.Errorf("scrub repair %s: table %d has no master", peer.ID(), mm.Table)
		}
		imgs, err := master.PageImages(mm.Table, mm.Pages)
		if err != nil {
			return pages, fmt.Errorf("scrub repair %s: fetch images: %w", peer.ID(), err)
		}
		if err := peer.RepairPages(imgs); err != nil {
			return pages, fmt.Errorf("scrub repair %s: install images: %w", peer.ID(), err)
		}
		pages += len(imgs)
	}
	return pages, nil
}

// VerifyConverged re-digests the given tables on the node against their
// class masters at a fresh frontier, retrying frontier races. It reports
// nil when every table matches. Sweep runs it as the post-repair gate; the
// chaos tests call it directly to assert final convergence.
func (sc *Scrubber) VerifyConverged(peer replica.Peer, tables []int) error {
	for _, t := range tables {
		master := sc.s.Master(sc.s.classOfTableID(t))
		if master == nil {
			return fmt.Errorf("scrub verify: table %d has no master", t)
		}
		var lastErr error
		ok := false
		for attempt := 0; attempt <= sc.opts.FrontierRetries; attempt++ {
			frontier, _, err := scrubFrontier(t, master, nil)
			if err != nil {
				lastErr = err
				continue
			}
			if pv, err := peer.MaxVersions(); err == nil {
				if v := pv.Get(t); v < frontier {
					frontier = v
				}
			} else {
				lastErr = err
				continue
			}
			mRoot, err := master.Digest(t, frontier, false)
			if errors.Is(err, page.ErrVersionConflict) {
				lastErr = err
				continue
			}
			if err != nil {
				lastErr = err
				continue
			}
			pRoot, err := peer.Digest(t, frontier, false)
			if errors.Is(err, page.ErrVersionConflict) {
				lastErr = err
				continue
			}
			if err != nil {
				lastErr = err
				continue
			}
			if mRoot.Root != pRoot.Root {
				return fmt.Errorf("scrub verify: %s table %d still diverged at v%d", peer.ID(), t, frontier)
			}
			ok = true
			break
		}
		if !ok {
			return fmt.Errorf("scrub verify: %s table %d: %w", peer.ID(), t, lastErr)
		}
	}
	return nil
}

func totalPages(mms []ScrubMismatch) int {
	n := 0
	for _, mm := range mms {
		n += len(mm.Pages)
	}
	return n
}
