package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, opts Options) (*WAL, Recovery) {
	t.Helper()
	w, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, rec
}

func appendN(t *testing.T, w *WAL, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := w.WaitDurable(seq); err != nil {
			t.Fatalf("wait durable %d: %v", i, err)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rec := mustOpen(t, Options{Dir: dir})
	if rec.Base != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered base=%d n=%d", rec.Base, len(rec.Records))
	}
	appendN(t, w, 0, 25)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, rec2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if rec2.Base != 0 || len(rec2.Records) != 25 || rec2.TruncatedBytes != 0 {
		t.Fatalf("recovered base=%d n=%d torn=%d, want 0/25/0", rec2.Base, len(rec2.Records), rec2.TruncatedBytes)
	}
	for i, p := range rec2.Records {
		if want := fmt.Sprintf("record-%04d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
	// Appends continue from the recovered position.
	if got := w2.Next(); got != 25 {
		t.Fatalf("next = %d, want 25", got)
	}
}

// segPath returns the single segment file in dir (fails if != 1).
func segPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == segSuffix {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	return segs[0]
}

func TestRecoveryTable(t *testing.T) {
	cases := []struct {
		name     string
		setup    func(t *testing.T, dir string) // after 10 clean records
		wantN    int
		wantTorn bool // expect TruncatedBytes > 0
		wantErr  error
	}{
		{
			name:  "clean shutdown",
			setup: func(t *testing.T, dir string) {},
			wantN: 10,
		},
		{
			name: "torn tail truncated",
			setup: func(t *testing.T, dir string) {
				// Append half a record by hand: a frame claiming 100 bytes
				// with only 3 present.
				f, err := os.OpenFile(segPath(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				var frame [frameLen]byte
				binary.LittleEndian.PutUint32(frame[:4], 100)
				if _, err := f.Write(append(frame[:], 'x', 'y', 'z')); err != nil {
					t.Fatal(err)
				}
			},
			wantN:    10,
			wantTorn: true,
		},
		{
			name: "bad checksum at tail truncated",
			setup: func(t *testing.T, dir string) {
				// Flip a byte inside the last record's payload.
				path := segPath(t, dir)
				st, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				corruptByte(t, path, st.Size()-1)
			},
			wantN:    9,
			wantTorn: true,
		},
		{
			name: "mid-log corruption detected",
			setup: func(t *testing.T, dir string) {
				// Flip a byte inside the FIRST record's payload: intact
				// records follow, so truncation would lose acked commits.
				corruptByte(t, segPath(t, dir), headerLen+frameLen+2)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "empty segment file",
			setup: func(t *testing.T, dir string) {
				// A crash right after segment creation leaves a 0-byte file.
				path := segPath(t, dir)
				if err := os.Truncate(path, 0); err != nil {
					t.Fatal(err)
				}
			},
			wantN:    0,
			wantTorn: false, // zero bytes torn — nothing was there
		},
		{
			name: "torn header",
			setup: func(t *testing.T, dir string) {
				if err := os.Truncate(segPath(t, dir), headerLen-3); err != nil {
					t.Fatal(err)
				}
			},
			wantN:    10 - 10, // header gone → whole segment empty
			wantTorn: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, _ := mustOpen(t, Options{Dir: dir})
			appendN(t, w, 0, 10)
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			tc.setup(t, dir)

			w2, rec, err := Open(Options{Dir: dir})
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("open err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer w2.Close()
			if len(rec.Records) != tc.wantN {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), tc.wantN)
			}
			if tc.wantTorn && rec.TruncatedBytes == 0 {
				t.Fatal("TruncatedBytes = 0, want > 0")
			}
			if !tc.wantTorn && rec.TruncatedBytes != 0 {
				t.Fatalf("TruncatedBytes = %d, want 0", rec.TruncatedBytes)
			}
			// Re-crash during recovery: reopening again must be a no-op
			// (recovery already truncated and synced the repair).
			if err := w2.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			w3, rec3 := mustOpen(t, Options{Dir: dir})
			defer w3.Close()
			if len(rec3.Records) != tc.wantN || rec3.TruncatedBytes != 0 {
				t.Fatalf("second recovery: n=%d torn=%d, want %d/0 (idempotent)", len(rec3.Records), rec3.TruncatedBytes, tc.wantN)
			}
		})
	}
}

func corruptByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestMissingDirIsFreshLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	w, rec := mustOpen(t, Options{Dir: dir})
	defer w.Close()
	if rec.Base != 0 || len(rec.Records) != 0 {
		t.Fatalf("missing dir recovered base=%d n=%d", rec.Base, len(rec.Records))
	}
	appendN(t, w, 0, 1)
}

func TestSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll every few records.
	w, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 128})
	appendN(t, w, 0, 40)
	nSegs := w.Segments()
	if nSegs < 3 {
		t.Fatalf("segments = %d, want several (roll not happening)", nSegs)
	}

	// Truncating to record 30 must delete every segment wholly below it
	// and advance the base to a segment boundary <= 30.
	if err := w.TruncateTo(30); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if w.Segments() >= nSegs {
		t.Fatalf("segments after truncate = %d, want < %d", w.Segments(), nSegs)
	}
	base := w.Base()
	if base == 0 || base > 30 {
		t.Fatalf("base = %d, want in (0, 30]", base)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery resumes from the truncated base with the retained suffix.
	w2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 128})
	defer w2.Close()
	if rec.Base != base {
		t.Fatalf("recovered base = %d, want %d", rec.Base, base)
	}
	if got := rec.Base + uint64(len(rec.Records)); got != 40 {
		t.Fatalf("recovered through %d, want 40", got)
	}
	for i, p := range rec.Records {
		if want := fmt.Sprintf("record-%04d", int(rec.Base)+i); string(p) != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
}

// countingFile wraps a File counting Syncs.
type countingFS struct {
	FS
	mu    sync.Mutex
	syncs int
}

type countingFile struct {
	File
	fs *countingFS
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (f *countingFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	f.fs.mu.Unlock()
	return f.File.Sync()
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	cfs := &countingFS{FS: OsFS{}}
	w, _ := mustOpen(t, Options{Dir: t.TempDir(), FS: cfs})
	defer w.Close()

	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := w.WaitDurable(seq); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cfs.mu.Lock()
	syncs := cfs.syncs
	cfs.mu.Unlock()
	if syncs >= writers*per {
		t.Fatalf("fsyncs = %d for %d durable appends: group commit not batching", syncs, writers*per)
	}
	t.Logf("group commit: %d appends, %d fsyncs", writers*per, syncs)
}

func TestSyncNeverRecoversAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte("r")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// WaitDurable is a no-op under never.
	if err := w.WaitDurable(4); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d, want 5 (bytes were written, just not fsynced)", len(rec.Records))
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestWriteFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest")
	if err := WriteFileDurable(nil, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileDurable(nil, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}
