// Package wal is a crash-durable, segmented write-ahead log for the
// persistence tier. Records are opaque byte payloads framed with a length
// prefix and a CRC-32C checksum and appended to segment files; durability
// is governed by a sync policy (group-committed fsync per append, a
// background flush interval, or never), and recovery scans the segments in
// order, truncates a torn tail at the first bad checksum in the newest
// segment, and reports genuine mid-log corruption — a bad record with
// intact records after it — as ErrCorrupt rather than silently dropping a
// suffix of acknowledged commits.
//
// All file operations go through the FS interface so tests can interpose
// fault injection (internal/faultdisk scripts torn writes, failed and lost
// fsyncs, bit flips, and short reads from a seed); production code uses
// OsFS.
//
// On-disk layout: <dir>/wal-<base>.seg, where <base> is the index of the
// segment's first record, as 16 hex digits. Each segment starts with a
// 16-byte header (8-byte magic, 8-byte little-endian base) followed by
// records framed as [4-byte LE payload length][4-byte LE CRC-32C][payload].
// A segment's record range is implied by its base and the next segment's
// base, so the cross-segment chain is itself checkable during recovery.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmv/internal/obs"

	"encoding/binary"
)

// Errors surfaced by the WAL.
var (
	// ErrCorrupt reports mid-log corruption: a record that fails its
	// checksum (or frame) with intact log state after it — in an older
	// segment, or breaking the cross-segment chain. Unlike a torn tail,
	// this cannot be repaired by truncation without losing acknowledged
	// commits, so recovery refuses and surfaces it.
	ErrCorrupt = errors.New("wal: corrupt record inside the log")
	// ErrClosed reports use of a closed WAL.
	ErrClosed = errors.New("wal: closed")
)

// SyncPolicy selects when appended records become durable.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncAlways group-commits: every Append+WaitDurable pair blocks until
	// an fsync covers the record; concurrent committers share one fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every FlushInterval;
	// appends return immediately and a crash loses at most one interval.
	SyncInterval
	// SyncNever never fsyncs: durability is whatever the OS page cache
	// survives. Clean shutdown still recovers (the bytes are in the file);
	// power loss does not.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy parses "always", "interval", or "never".
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always|interval|never)", s)
	}
}

// File is the subset of *os.File the WAL needs; faultdisk wraps it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem operations underneath the WAL so fault
// injection can interpose on every byte.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
	MkdirAll(dir string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
}

// OsFS is the production FS backed by package os.
type OsFS struct{}

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadDir implements FS (names only, sorted).
func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OsFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Options configure Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// FS interposes on file operations (default OsFS).
	FS FS
	// Policy selects the durability mode (default SyncAlways).
	Policy SyncPolicy
	// FlushInterval is the background fsync period for SyncInterval
	// (default 5ms).
	FlushInterval time.Duration
	// SegmentBytes rolls to a new segment once the active one exceeds this
	// size (default 1 MiB). Checkpoint truncation frees whole segments, so
	// smaller segments reclaim disk sooner at the cost of more files.
	SegmentBytes int
	// Obs, if non-nil, receives the WAL metrics (fsync latency, appended
	// bytes, live segment count, recovery truncation).
	Obs *obs.Registry
	// OnFatal, if non-nil, is invoked exactly once, from its own goroutine,
	// when the WAL enters its sticky-fatal state (a failed fsync or append
	// write). The callback may take arbitrary locks — it runs outside the
	// WAL mutex — so anomaly reporters (the flight recorder) can hook here.
	OnFatal func(error)
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Base is the index of the first retained record (0 for a fresh log;
	// advanced by TruncateTo in a previous incarnation).
	Base uint64
	// Records holds the payloads of every intact record, in append order,
	// for indexes [Base, Base+len).
	Records [][]byte
	// TruncatedBytes counts torn-tail bytes discarded from the newest
	// segment (0 on clean shutdown).
	TruncatedBytes int64
}

const (
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	headerLen     = 16
	frameLen      = 8        // 4-byte length + 4-byte CRC
	maxRecordSize = 64 << 20 // frame sanity bound; larger lengths are corruption
)

var (
	segMagic = [8]byte{'D', 'M', 'V', 'W', 'A', 'L', '0', '1'}
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

type segmentRef struct {
	base uint64
	name string
}

// WAL is an open write-ahead log. All methods are safe for concurrent use.
type WAL struct {
	dir      string
	fs       FS
	policy   SyncPolicy
	segBytes int64

	mu          sync.Mutex
	cond        *sync.Cond    // signals sync completion and roll completion
	f           File          // guarded by mu; active segment append handle
	segs        []segmentRef  // guarded by mu; oldest first, last is active
	base        uint64        // guarded by mu; first retained record index
	next        uint64        // guarded by mu; index of the next record
	synced      uint64        // guarded by mu; records below this index are durable
	syncing     bool          // guarded by mu; a leader fsync is in flight
	activeBytes int64         // guarded by mu; bytes written to the active segment
	err         error         // guarded by mu; sticky fatal error (failed fsync)
	closed      bool          // guarded by mu
	stop        chan struct{} // closes the interval flusher
	done        chan struct{} // flusher exited
	onFatal     func(error)   // immutable after Open; fired once on the nil->err transition

	metFsyncUS  *obs.Histogram
	metBytes    *obs.Counter
	metTruncate *obs.Counter
}

// Open recovers the log in opts.Dir (creating it when missing) and returns
// the WAL ready for appends plus what recovery found. A torn tail in the
// newest segment is truncated (and synced) before Open returns; mid-log
// corruption aborts with an error wrapping ErrCorrupt.
func Open(opts Options) (*WAL, Recovery, error) {
	if opts.FS == nil {
		opts.FS = OsFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 5 * time.Millisecond
	}
	w := &WAL{
		dir:         opts.Dir,
		fs:          opts.FS,
		policy:      opts.Policy,
		segBytes:    int64(opts.SegmentBytes),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		onFatal:     opts.OnFatal,
		metFsyncUS:  opts.Obs.Histogram(obs.WalFsyncUS),
		metBytes:    opts.Obs.Counter(obs.WalBytes),
		metTruncate: opts.Obs.Counter(obs.WalRecoveryTruncated),
	}
	w.cond = sync.NewCond(&w.mu)
	if err := w.fs.MkdirAll(w.dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: mkdir %s: %w", w.dir, err)
	}
	w.mu.Lock()
	rec, err := w.recoverLocked()
	w.mu.Unlock()
	if err != nil {
		return nil, Recovery{}, err
	}
	w.metTruncate.Add(rec.TruncatedBytes)
	if reg := opts.Obs; reg != nil {
		reg.GaugeFunc(obs.WalSegments, func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return float64(len(w.segs))
		})
	}
	if w.policy == SyncInterval {
		go w.flusher(opts.FlushInterval)
	} else {
		close(w.done)
	}
	return w, rec, nil
}

// recoverLocked scans the segment files, truncates a torn tail, and opens
// the newest segment for append. Called once from Open with w.mu held,
// before the WAL is shared.
func (w *WAL) recoverLocked() (Recovery, error) {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return Recovery{}, fmt.Errorf("wal: scan %s: %w", w.dir, err)
	}
	var segs []segmentRef
	for _, name := range names {
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segmentRef{base: base, name: name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	var rec Recovery
	if len(segs) == 0 {
		// Fresh log: create the first segment.
		if err := w.openActiveLocked(0, true); err != nil {
			return Recovery{}, err
		}
		return rec, nil
	}
	rec.Base = segs[0].base
	next := segs[0].base
	for i, s := range segs {
		final := i == len(segs)-1
		if s.base != next {
			return Recovery{}, fmt.Errorf("wal: segment %s starts at %d, want %d: %w", s.name, s.base, next, ErrCorrupt)
		}
		payloads, keep, torn, serr := w.scanSegment(s, final)
		if serr != nil {
			return Recovery{}, serr
		}
		if torn > 0 {
			if err := w.truncateSegment(s.name, keep); err != nil {
				return Recovery{}, err
			}
			rec.TruncatedBytes += torn
		}
		rec.Records = append(rec.Records, payloads...)
		next += uint64(len(payloads))
	}
	w.segs = segs
	w.base = segs[0].base
	w.next = next
	w.synced = next // everything recovered is on disk by definition
	if err := w.openActiveLocked(segs[len(segs)-1].base, false); err != nil {
		return Recovery{}, err
	}
	return rec, nil
}

// scanSegment reads one segment and returns its intact payloads, the byte
// offset after the last intact record, and how many torn bytes follow it.
// In a non-final segment any damage is mid-log corruption; in the final
// segment it is a torn tail to be truncated by the caller.
func (w *WAL) scanSegment(s segmentRef, final bool) (payloads [][]byte, keep int64, torn int64, err error) {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, s.name), os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: open %s: %w", s.name, err)
	}
	defer f.Close()

	var hdr [headerLen]byte
	if n, err := io.ReadFull(f, hdr[:]); err != nil {
		if !final {
			return nil, 0, 0, fmt.Errorf("wal: segment %s: short header: %w", s.name, ErrCorrupt)
		}
		rest, _ := io.Copy(io.Discard, f)
		// Torn header: the segment holds nothing; rewrite it from scratch.
		return nil, 0, int64(n) + rest, nil
	}
	if [8]byte(hdr[:8]) != segMagic || binary.LittleEndian.Uint64(hdr[8:]) != s.base {
		if !final {
			return nil, 0, 0, fmt.Errorf("wal: segment %s: bad header: %w", s.name, ErrCorrupt)
		}
		rest, _ := io.Copy(io.Discard, f)
		return nil, 0, headerLen + rest, nil
	}
	off := int64(headerLen)
	for {
		var frame [frameLen]byte
		n, rerr := io.ReadFull(f, frame[:])
		if rerr == io.EOF {
			return payloads, off, 0, nil // clean end
		}
		if rerr != nil { // short frame
			if !final {
				return nil, 0, 0, fmt.Errorf("wal: segment %s at offset %d: short frame: %w", s.name, off, ErrCorrupt)
			}
			rest, _ := io.Copy(io.Discard, f)
			return payloads, off, int64(n) + rest, nil
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length == 0 || length > maxRecordSize {
			if !final {
				return nil, 0, 0, fmt.Errorf("wal: segment %s at offset %d: bad length %d: %w", s.name, off, length, ErrCorrupt)
			}
			rest, _ := io.Copy(io.Discard, f)
			return payloads, off, frameLen + rest, nil
		}
		payload := make([]byte, length)
		pn, rerr := io.ReadFull(f, payload)
		if rerr != nil { // short payload
			if !final {
				return nil, 0, 0, fmt.Errorf("wal: segment %s at offset %d: short payload: %w", s.name, off, ErrCorrupt)
			}
			rest, _ := io.Copy(io.Discard, f)
			return payloads, off, frameLen + int64(pn) + rest, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			if !final {
				return nil, 0, 0, fmt.Errorf("wal: segment %s at offset %d: checksum mismatch: %w", s.name, off, ErrCorrupt)
			}
			// The frame is complete but the payload fails its CRC. A torn
			// write can look exactly like this (the tail of the payload
			// never hit the platter), but so can a flipped bit in the
			// middle of the log. Disambiguate by chaining forward: if any
			// intact record follows, truncating here would silently drop
			// acknowledged commits — that is mid-log corruption.
			intact, drained := anyIntactRecordFollows(f)
			if intact {
				return nil, 0, 0, fmt.Errorf("wal: segment %s at offset %d: checksum mismatch with intact records after it: %w", s.name, off, ErrCorrupt)
			}
			return payloads, off, frameLen + int64(length) + drained, nil
		}
		payloads = append(payloads, payload)
		off += frameLen + int64(length)
	}
}

// anyIntactRecordFollows keeps walking the frame chain after a damaged
// record, reporting whether any later record passes its checksum (mid-log
// corruption) and how many bytes it consumed (all torn, otherwise). If the
// damage hit a length field the chain itself desyncs and the scan gives up
// at the first insane frame — that case reads as a torn tail, the
// unavoidable ambiguity of a byte stream with no record boundary markers.
func anyIntactRecordFollows(f File) (intact bool, drained int64) {
	for {
		var frame [frameLen]byte
		n, err := io.ReadFull(f, frame[:])
		drained += int64(n)
		if err != nil {
			return false, drained
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length == 0 || length > maxRecordSize {
			rest, _ := io.Copy(io.Discard, f)
			return false, drained + rest
		}
		payload := make([]byte, length)
		pn, err := io.ReadFull(f, payload)
		drained += int64(pn)
		if err != nil {
			return false, drained
		}
		if crc32.Checksum(payload, crcTable) == sum {
			return true, drained
		}
	}
}

// truncateSegment cuts a torn tail and syncs the truncation so a re-crash
// during recovery cannot resurrect the torn bytes.
func (w *WAL) truncateSegment(name string, keep int64) error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	defer f.Close()
	if keep < headerLen {
		// Torn header: rebuild it in place (the segment base comes from the
		// file name, which survived).
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, _ := strconv.ParseUint(hex, 16, 64)
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate %s: %w", name, err)
		}
		var hdr [headerLen]byte
		copy(hdr[:8], segMagic[:])
		binary.LittleEndian.PutUint64(hdr[8:], base)
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal: rewrite header %s: %w", name, err)
		}
	} else if err := f.Truncate(keep); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync truncation %s: %w", name, err)
	}
	return nil
}

// openActiveLocked opens (or creates) the append handle for the newest
// segment. Callers hold w.mu.
func (w *WAL) openActiveLocked(base uint64, create bool) error {
	name := segName(base)
	f, err := w.fs.OpenFile(filepath.Join(w.dir, name), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open active %s: %w", name, err)
	}
	if create {
		var hdr [headerLen]byte
		copy(hdr[:8], segMagic[:])
		binary.LittleEndian.PutUint64(hdr[8:], base)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return fmt.Errorf("wal: write header %s: %w", name, err)
		}
		w.segs = append(w.segs, segmentRef{base: base, name: name})
		w.activeBytes = headerLen
	} else {
		// Recovered segment: activeBytes only gates rolling, so the header
		// plus retained records is a fine (slightly conservative) floor.
		w.activeBytes = headerLen
	}
	w.f = f
	return nil
}

func segName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

// Append frames and writes one record to the active segment and returns
// its index. The write lands in the OS file immediately; durability
// follows the sync policy — call WaitDurable with the returned index to
// block until the record is covered by an fsync (a no-op for interval and
// never policies).
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: bad record size %d", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	if w.activeBytes >= w.segBytes {
		if err := w.rollLocked(); err != nil {
			return 0, err
		}
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		// A partial frame write leaves a torn tail exactly like a crash
		// would; recovery truncates it. The record is not acknowledged.
		w.setFatalLocked(fmt.Errorf("wal: append: %w", err))
		w.cond.Broadcast()
		return 0, w.err
	}
	seq := w.next
	w.next++
	w.activeBytes += int64(len(frame))
	w.metBytes.Add(int64(len(frame)))
	return seq, nil
}

// rollLocked finalizes the active segment and starts the next one.
// Callers hold w.mu.
func (w *WAL) rollLocked() error {
	// Wait out an in-flight leader fsync: it holds the old handle.
	for w.syncing {
		w.cond.Wait()
		if w.err != nil {
			return w.err
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return w.openActiveLocked(w.next, true)
}

// WaitDurable blocks until the record at seq is covered by an fsync under
// SyncAlways (group commit: one leader syncs for every waiter); under
// SyncInterval and SyncNever it only reports a sticky WAL failure, if any.
func (w *WAL) WaitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.policy != SyncAlways {
		return w.err
	}
	return w.syncToLocked(seq)
}

// Flush forces an fsync covering every appended record, regardless of
// policy (clean shutdown, tests).
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.next == 0 {
		return w.err
	}
	return w.syncToLocked(w.next - 1)
}

// syncToLocked is the group-commit core: wait until seq is durable,
// electing this goroutine as the fsync leader when none is in flight.
// Callers hold w.mu. A failed fsync is sticky: after fsync(2) reports an
// error, the kernel may have dropped the dirty pages, so no later fsync
// can be trusted to cover this record — the WAL refuses further appends
// and the tier surfaces the durability loss (cf. the 2018 "fsyncgate"
// semantics).
func (w *WAL) syncToLocked(seq uint64) error {
	for {
		if w.err != nil {
			return w.err
		}
		if w.synced > seq {
			return nil
		}
		if w.closed {
			return ErrClosed
		}
		if !w.syncing {
			w.syncing = true
			f, target := w.f, w.next
			w.mu.Unlock()
			start := time.Now()
			err := f.Sync()
			w.metFsyncUS.Observe(time.Since(start).Microseconds())
			w.mu.Lock()
			w.syncing = false
			if err != nil {
				w.setFatalLocked(fmt.Errorf("wal: fsync: %w", err))
			} else if target > w.synced {
				w.synced = target
			}
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
}

// setFatalLocked records the WAL's sticky fatal error on the first
// nil->non-nil transition and dispatches the OnFatal notification from its
// own goroutine (the callback may take locks well above the WAL's band).
// Callers hold w.mu. A later fatal never overwrites the first.
func (w *WAL) setFatalLocked(err error) {
	if w.err != nil {
		return
	}
	w.err = err
	if w.onFatal != nil {
		go w.onFatal(err)
	}
}

// flusher is the SyncInterval background loop.
func (w *WAL) flusher(interval time.Duration) {
	defer close(w.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed && w.err == nil && w.next > 0 && w.synced < w.next {
				_ = w.syncToLocked(w.next - 1)
			}
			w.mu.Unlock()
		}
	}
}

// Base returns the index of the first retained record.
func (w *WAL) Base() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// Next returns the index the next Append will receive.
func (w *WAL) Next() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Segments returns the live segment-file count.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// FS returns the file-operation layer (checkpoint writers share it so
// fault injection covers them too).
func (w *WAL) FS() FS { return w.fs }

// TruncateTo deletes every segment whose records all precede base —
// checkpoint-coordinated truncation. The WAL base advances to the oldest
// retained segment's base (segment granularity, so it may stay slightly
// below the requested cut); the active segment is never deleted.
func (w *WAL) TruncateTo(base uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segs) >= 2 && w.segs[1].base <= base {
		dead := w.segs[0]
		if err := w.fs.Remove(filepath.Join(w.dir, dead.name)); err != nil {
			return fmt.Errorf("wal: remove %s: %w", dead.name, err)
		}
		w.segs = w.segs[1:]
	}
	if len(w.segs) > 0 {
		w.base = w.segs[0].base
	}
	return nil
}

// Close flushes (under always/interval) and closes the active segment.
// Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var flushErr error
	if w.policy != SyncNever && w.err == nil && w.next > 0 && w.synced < w.next {
		flushErr = w.syncToLocked(w.next - 1)
	}
	w.closed = true
	f := w.f
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	if f != nil {
		if err := f.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// WriteFileDurable writes blob to path via a temp file, fsyncs it, and
// atomically renames it into place — the standard crash-safe publish used
// for checkpoint manifests.
func WriteFileDurable(fs FS, path string, blob []byte) error {
	if fs == nil {
		fs = OsFS{}
	}
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}
