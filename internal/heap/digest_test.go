package heap

import (
	"fmt"
	"sync"
	"testing"

	"dmv/internal/scrub"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// runUpdates commits n update transactions on the master, each touching a
// few rows, and returns the captured write-sets with the final vector.
func runUpdates(t *testing.T, master *Engine, tbl, rows, n int) ([]*WriteSet, vclock.Vector) {
	t.Helper()
	var sets []*WriteSet
	var last vclock.Vector
	for i := 0; i < n; i++ {
		tx := master.BeginUpdate()
		for j := 0; j < 3; j++ {
			pk := int64((i*3+j)%rows + 1)
			rids, err := tx.LookupEq(tbl, 0, value.Row{value.NewInt(pk)})
			if err != nil || len(rids) != 1 {
				t.Fatalf("lookup pk %d: %v (%d rids)", pk, err, len(rids))
			}
			row, ok, err := tx.Fetch(tbl, rids[0])
			if !ok || err != nil {
				t.Fatalf("fetch pk %d: ok=%t err=%v", pk, ok, err)
			}
			row[2] = value.NewInt(int64(1000 + i))
			row[1] = value.NewString(fmt.Sprintf("upd-%d-%d", i, j))
			if err := tx.Update(tbl, rids[0], row); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { sets = append(sets, ws); return nil })
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		last = ver
	}
	return sets, last
}

// TestDigestDeterministicAcrossApplyOrder is the satellite determinism
// check: two independently built engines that applied the same write-sets —
// one eagerly materializing after every set, one leaving every mod buffered
// for lazy application — must produce byte-identical root digests at the
// pinned version, and must match the master that executed the updates
// natively. The lazy engine is digested from two goroutines at once so the
// race detector exercises the concurrent snapshot-scan path.
func TestDigestDeterministicAcrossApplyOrder(t *testing.T) {
	const rows = 50
	master, tbl := newTestEngine(t)
	loadItems(t, master, tbl, rows)
	eager, _ := newTestEngine(t)
	loadItems(t, eager, tbl, rows)
	lazy, _ := newTestEngine(t)
	loadItems(t, lazy, tbl, rows)

	sets, final := runUpdates(t, master, tbl, rows, 20)
	for _, ws := range sets {
		if err := eager.ApplyWriteSet(ws); err != nil {
			t.Fatalf("eager apply: %v", err)
		}
		if err := eager.MaterializeAll(ws.Version); err != nil {
			t.Fatalf("materialize: %v", err)
		}
		if err := lazy.ApplyWriteSet(ws); err != nil {
			t.Fatalf("lazy apply: %v", err)
		}
	}

	v := final.Get(tbl)
	want, err := master.TableDigestAt(tbl, v, true)
	if err != nil {
		t.Fatalf("master digest: %v", err)
	}
	got, err := eager.TableDigestAt(tbl, v, true)
	if err != nil {
		t.Fatalf("eager digest: %v", err)
	}
	if got.Root != want.Root {
		t.Fatalf("eager root %x != master root %x", got.Root, want.Root)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := lazy.TableDigestAt(tbl, v, false)
			if err != nil {
				t.Errorf("lazy digest: %v", err)
				return
			}
			if d.Root != want.Root {
				t.Errorf("lazy root %x != master root %x", d.Root, want.Root)
			}
		}()
	}
	wg.Wait()
	if len(want.Pages) == 0 {
		t.Fatal("master digest carried no pages")
	}
}

// TestDigestPinnedVersionIgnoresLaterCommits checks the snapshot property:
// a digest at version v is unchanged by commits after v on the lazy side,
// and a master that already applied past v reports the conflict instead of
// silently hashing newer state.
func TestDigestPinnedVersionIgnoresLaterCommits(t *testing.T) {
	const rows = 30
	master, tbl := newTestEngine(t)
	loadItems(t, master, tbl, rows)
	slave, _ := newTestEngine(t)
	loadItems(t, slave, tbl, rows)

	sets, mid := runUpdates(t, master, tbl, rows, 5)
	for _, ws := range sets {
		if err := slave.ApplyWriteSet(ws); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	v := mid.Get(tbl)
	before, err := slave.TableDigestAt(tbl, v, false)
	if err != nil {
		t.Fatalf("digest at %d: %v", v, err)
	}

	// More commits, shipped to the slave but pinned digest stays at v.
	more, _ := runUpdates(t, master, tbl, rows, 5)
	for _, ws := range more {
		if err := slave.ApplyWriteSet(ws); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	after, err := slave.TableDigestAt(tbl, v, false)
	if err != nil {
		t.Fatalf("re-digest at %d: %v", v, err)
	}
	if before.Root != after.Root {
		t.Fatalf("pinned digest moved: %x -> %x", before.Root, after.Root)
	}
}

// TestCorruptionDivergesAndRepairConverges drives the full tentpole data
// path at engine level: a seeded bit flip silently diverges a slave (same
// applied versions, different bytes), the digest diff names exactly the
// damaged page, and shipping the master's current image over RepairPages
// restores a matching root.
func TestCorruptionDivergesAndRepairConverges(t *testing.T) {
	const rows = 40
	master, tbl := newTestEngine(t)
	loadItems(t, master, tbl, rows)
	slave, _ := newTestEngine(t)
	loadItems(t, slave, tbl, rows)

	sets, final := runUpdates(t, master, tbl, rows, 10)
	for _, ws := range sets {
		if err := slave.ApplyWriteSet(ws); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	v := final.Get(tbl)

	table, pg, rid, err := slave.CorruptRandomRow(7)
	if err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if table != tbl {
		t.Fatalf("corrupted table %d, want %d", table, tbl)
	}
	t.Logf("corrupted table %d page %d row %d", table, pg, rid)

	md, err := master.TableDigestAt(tbl, v, true)
	if err != nil {
		t.Fatalf("master digest: %v", err)
	}
	sd, err := slave.TableDigestAt(tbl, v, true)
	if err != nil {
		t.Fatalf("slave digest: %v", err)
	}
	if md.Root == sd.Root {
		t.Fatal("digest did not detect the corruption")
	}
	diff := scrub.DiffPages(md, sd)
	if len(diff) != 1 || diff[0] != pg {
		t.Fatalf("diff pages = %v, want exactly [%d]", diff, pg)
	}

	imgs, err := master.PageImages(tbl, diff)
	if err != nil {
		t.Fatalf("page images: %v", err)
	}
	if err := slave.RepairPages(imgs); err != nil {
		t.Fatalf("repair: %v", err)
	}
	sd2, err := slave.TableDigestAt(tbl, v, false)
	if err != nil {
		t.Fatalf("post-repair digest: %v", err)
	}
	if sd2.Root != md.Root {
		t.Fatalf("repair did not converge: %x != %x", sd2.Root, md.Root)
	}

	// The repaired slave keeps working: reads resolve through the rebuilt
	// derived state.
	tx := slave.BeginRead(nil)
	if _, ok := fetchByPK(t, tx, tbl, 1); !ok {
		t.Fatal("pk 1 unreadable after repair")
	}
}

// TestCorruptRandomRowSameSeedSameDamage pins the injector's determinism:
// identical engines damaged with the same seed diverge identically (equal
// digests to each other, both differing from a clean engine).
func TestCorruptRandomRowSameSeedSameDamage(t *testing.T) {
	build := func() (*Engine, int) {
		e, tbl := newTestEngine(t)
		loadItems(t, e, tbl, 25)
		return e, tbl
	}
	a, tbl := build()
	b, _ := build()
	clean, _ := build()

	ta, pa, ra, err := a.CorruptRandomRow(99)
	if err != nil {
		t.Fatalf("corrupt a: %v", err)
	}
	tb, pb, rb, err := b.CorruptRandomRow(99)
	if err != nil {
		t.Fatalf("corrupt b: %v", err)
	}
	if ta != tb || pa != pb || ra != rb {
		t.Fatalf("same seed picked different victims: (%d,%d,%d) vs (%d,%d,%d)", ta, pa, ra, tb, pb, rb)
	}
	da, err := a.TableDigestAt(tbl, 0, false)
	if err != nil {
		t.Fatalf("digest a: %v", err)
	}
	db, err := b.TableDigestAt(tbl, 0, false)
	if err != nil {
		t.Fatalf("digest b: %v", err)
	}
	dc, err := clean.TableDigestAt(tbl, 0, false)
	if err != nil {
		t.Fatalf("digest clean: %v", err)
	}
	if da.Root != db.Root {
		t.Fatal("same-seed corruption produced different state")
	}
	if da.Root == dc.Root {
		t.Fatal("corruption did not change the digest")
	}
}
