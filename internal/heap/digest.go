// Anti-entropy scrub support (DESIGN.md §15): snapshot-consistent state
// digests at a pinned version, current-page shipping for repair, and the
// deterministic corruption injector that provokes divergence in tests.
package heap

import (
	"fmt"
	"math/rand"
	"sort"

	"dmv/internal/page"
	"dmv/internal/scrub"
	"dmv/internal/value"
)

// ErrNoRows reports a corruption request against state with nothing to
// corrupt (empty table or page).
var ErrNoRows = fmt.Errorf("heap: no rows to corrupt")

// TableDigestAt computes the table's scrub digest at the pinned version v:
// every page that exists at v is read through the same snapshot path
// readers use (page.View, which lazily applies buffered mods up to v and
// never blocks writers), hashed, and folded into a Merkle root. Pages
// created after v and pages holding no rows at v contribute no leaf, so
// nodes whose page directories differ only in unshipped empty pages still
// agree. withPages retains the leaf set for drill-down after a root
// mismatch.
//
// Returns page.ErrVersionConflict when any page has already applied past v
// (the caller's frontier raced a master commit); the sweep retries with a
// fresher frontier.
func (e *Engine) TableDigestAt(table int, v uint64, withPages bool) (scrub.TableDigest, error) {
	t, err := e.table(table)
	if err != nil {
		return scrub.TableDigest{}, err
	}
	td := scrub.TableDigest{Table: table, Version: v}
	for _, p := range t.pagesSnapshot() {
		if p.CreateVersion() > v {
			continue
		}
		var pd scrub.PageDigest
		hashed := false
		err := p.View(v, func(rows map[page.RowID]value.Row) error {
			if len(rows) == 0 {
				return nil
			}
			pd = scrub.HashPage(table, p.ID(), rows)
			hashed = true
			return nil
		})
		if err != nil {
			return scrub.TableDigest{}, err
		}
		if hashed {
			td.Pages = append(td.Pages, pd)
		}
	}
	scrub.SortPages(td.Pages)
	td.Root = scrub.Root(td.Pages)
	if !withPages {
		td.Pages = nil
	}
	return td, nil
}

// PageImages snapshots the named pages at their current content — the
// donor side of changed-page repair. Each page is first materialized to the
// table's newest version (collapsing its mod chain, the paper's "only
// current pages move"), then imaged; a page that has already applied ahead
// of the captured version is imaged as-is. Unknown page ids are skipped:
// the diverged set may name a page the donor dropped to empty.
func (e *Engine) PageImages(table int, pages []page.ID) ([]page.Image, error) {
	t, err := e.table(table)
	if err != nil {
		return nil, err
	}
	target := e.MaxVersions().Get(table)
	out := make([]page.Image, 0, len(pages))
	for _, id := range pages {
		p := t.pageAt(id)
		if p == nil {
			continue
		}
		// Best effort: a conflict here just means the page is already
		// newer than the captured target, which is an even fresher image.
		_ = p.Materialize(target)
		out = append(out, p.SnapshotBlocking())
	}
	return out, nil
}

// RepairPages unconditionally installs the shipped page images — the
// diverged-node side of changed-page repair. Install would refuse images at
// the version the node believes it already applied (divergence is exactly
// "same version, different bytes"), so repair uses Replace, which
// overwrites the materialized rows while keeping buffered mods newer than
// the image for normal lazy application. Derived state (row locations,
// indexes, allocation points) is rebuilt afterwards, as checkpoint restore
// does.
func (e *Engine) RepairPages(images []page.Image) error {
	if len(images) == 0 {
		return nil
	}
	for _, img := range images {
		t, err := e.table(img.Table)
		if err != nil {
			return fmt.Errorf("repair pages: %w", err)
		}
		p := t.ensurePage(img.Page, img.CreateVer)
		p.Replace(img)
		t.bumpVer(img.Version)
	}
	return e.RebuildDerived()
}

// CorruptPage deterministically flips one bit in one row of the page — the
// scrub chaos injector. The victim row and bit position derive only from
// pick, so a seed replays the exact same damage. The flip bypasses all
// version accounting (the page still reports the same applied version), so
// the divergence is silent until a digest sweep compares state — precisely
// the fault class WAL checksums cannot see.
func (e *Engine) CorruptPage(table int, pg page.ID, pick int64) (page.RowID, error) {
	t, err := e.table(table)
	if err != nil {
		return 0, err
	}
	p := t.pageAt(pg)
	if p == nil {
		return 0, fmt.Errorf("%w: table %d page %d", ErrNoRows, table, pg)
	}
	// Corrupt what a reader would see: collapse the pending mod chain first
	// so the flip lands in current state instead of in a base image a lazy
	// apply would overwrite moments later.
	_ = p.Materialize(e.MaxVersions().Get(table))
	rng := rand.New(rand.NewSource(pick))
	p.LockX()
	defer p.UnlockX()
	rows := p.XRows()
	if len(rows) == 0 {
		return 0, fmt.Errorf("%w: table %d page %d", ErrNoRows, table, pg)
	}
	ids := make([]page.RowID, 0, len(rows))
	for rid := range rows {
		ids = append(ids, rid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rid := ids[rng.Intn(len(ids))]
	row := rows[rid]
	if len(row) == 0 {
		return 0, fmt.Errorf("%w: table %d page %d row %d is empty", ErrNoRows, table, pg, rid)
	}
	// Damage a clone and swap it in: in-process replication shares row
	// backing arrays between engines (write-sets are not serialized), so an
	// in-place flip would corrupt the master's copy too and the divergence
	// would be undetectable by construction.
	row = row.Clone()
	rows[rid] = row
	ci := rng.Intn(len(row))
	switch v := row[ci]; v.K {
	case value.Int:
		row[ci].I = v.I ^ (1 << uint(rng.Intn(63)))
	case value.Float:
		row[ci].F = v.F + 1
	case value.String:
		if len(v.S) == 0 {
			row[ci].S = "\x01"
			break
		}
		b := []byte(v.S)
		b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
		row[ci].S = string(b)
	default:
		row[ci] = value.NewInt(1)
	}
	return rid, nil
}

// CorruptRandomRow picks a populated page anywhere in the engine with
// entropy drawn only from seed and corrupts one bit in it via CorruptPage.
// Returns where the damage landed so tests can assert the scrubber finds
// exactly that page.
func (e *Engine) CorruptRandomRow(seed int64) (table int, pg page.ID, rid page.RowID, err error) {
	rng := rand.New(rand.NewSource(seed))
	type cand struct {
		table int
		pg    page.ID
	}
	var cands []cand
	for _, t := range e.allTables() {
		for _, p := range t.pagesSnapshot() {
			if p.RowCount() > 0 {
				cands = append(cands, cand{table: t.id, pg: p.ID()})
			}
		}
	}
	if len(cands) == 0 {
		return 0, 0, 0, ErrNoRows
	}
	c := cands[rng.Intn(len(cands))]
	rid, err = e.CorruptPage(c.table, c.pg, rng.Int63())
	return c.table, c.pg, rid, err
}
