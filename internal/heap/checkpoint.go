package heap

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dmv/internal/page"
	"dmv/internal/vclock"
)

// Checkpoint is a fuzzy snapshot of a node's materialized pages together
// with their versions. Per the paper's modified fuzzy-checkpoint algorithm,
// it is taken without quiescing the system: each page is flushed atomically
// with its version, dirty (exclusively latched, uncommitted) pages are
// skipped, and pages in one checkpoint may carry different versions.
type Checkpoint struct {
	Images   []page.Image
	Versions vclock.Vector // per-table max version among the flushed pages
}

// FuzzyCheckpoint snapshots every page that can be latched without blocking.
// Skipped (dirty) pages simply retain their previous checkpoint image; the
// reintegration protocol fetches anything newer from a support slave anyway.
func (e *Engine) FuzzyCheckpoint() *Checkpoint {
	tables := e.allTables()
	cp := &Checkpoint{Versions: vclock.New(len(tables))}
	for _, t := range tables {
		for _, pg := range t.pagesSnapshot() {
			img, ok := pg.Snapshot()
			if !ok {
				continue // dirty page: exclusively held by an in-flight txn
			}
			cp.Images = append(cp.Images, img)
			if img.Version > cp.Versions.Get(t.id) {
				cp.Versions[t.id] = img.Version
			}
		}
	}
	return cp
}

// RestoreCheckpoint installs a checkpoint into an engine that has the schema
// created but no data (a recovering node), then rebuilds row locations and
// indexes from the materialized state.
func (e *Engine) RestoreCheckpoint(cp *Checkpoint) error {
	for _, img := range cp.Images {
		t, err := e.table(img.Table)
		if err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		pg := t.ensurePage(img.Page, img.CreateVer)
		pg.Replace(img)
	}
	return e.RebuildDerived()
}

// RebuildDerived reconstructs every table's row-location map, secondary
// indexes, row-id allocation point, and insert cursor from the materialized
// page contents. Index entries are installed with version 0 (visible at all
// versions): the node only ever serves readers at or above the vector it
// reports after rebuilding, and page-level version checks still guard
// against stale reads.
func (e *Engine) RebuildDerived() error {
	for _, t := range e.allTables() {
		t.rlMu.Lock()
		t.rowLoc = make(map[page.RowID]*page.Page, len(t.rowLoc))
		t.rlMu.Unlock()
		for _, ix := range t.allIndexes() {
			ix.reset()
		}
		var maxRid page.RowID
		var maxVer uint64
		for _, pg := range t.pagesSnapshot() {
			img := pg.SnapshotBlocking()
			if img.Version > maxVer {
				maxVer = img.Version
			}
			for rid, row := range img.Rows {
				t.rlMu.Lock()
				t.rowLoc[rid] = pg
				t.rlMu.Unlock()
				if rid > maxRid {
					maxRid = rid
				}
				for _, ix := range t.allIndexes() {
					if err := ix.addUnchecked(ix.keyOf(row), rid, 0); err != nil {
						return fmt.Errorf("rebuild index %s: %w", ix.def.Name, err)
					}
				}
			}
		}
		if int64(maxRid) > t.nextRowID.Load() {
			t.nextRowID.Store(int64(maxRid))
		}
		t.bumpVer(maxVer)
		t.allocMu.Lock()
		t.curPage, t.curCount = nil, 0
		t.allocMu.Unlock()
	}
	return nil
}

// EncodeCheckpoint serializes a checkpoint (gob) for local stable storage.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserializes a checkpoint.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("decode checkpoint: %w", err)
	}
	return &cp, nil
}
