package heap

import (
	"errors"
	"testing"
	"time"

	"dmv/internal/page"
	"dmv/internal/value"
)

func TestLockTimeoutResolvesDeadlock(t *testing.T) {
	e := NewEngine(Options{PageCap: 1, LockTimeout: 30 * time.Millisecond})
	tid, _ := e.CreateTable(TableDef{
		Name: "t",
		Cols: []Column{{Name: "id", Type: value.TInt}, {Name: "v", Type: value.TInt}},
	})
	_, _ = e.CreateIndex(tid, IndexDef{Name: "pk", Cols: []int{0}, Unique: true})
	_ = e.Load(tid, []value.Row{
		{value.NewInt(1), value.NewInt(0)},
		{value.NewInt(2), value.NewInt(0)},
	})

	// tx1 locks row 1's page (PageCap 1: one row per page).
	tx1 := e.BeginUpdate()
	r1, _ := tx1.LookupEq(tid, 0, value.Row{value.NewInt(1)})
	row, _, _ := tx1.Fetch(tid, r1[0])
	if err := tx1.Update(tid, r1[0], row); err != nil {
		t.Fatal(err)
	}
	// tx2 locks row 2's page, then needs row 1's -> times out.
	tx2 := e.BeginUpdate()
	r2, _ := tx2.LookupEq(tid, 0, value.Row{value.NewInt(2)})
	row2, _, _ := tx2.Fetch(tid, r2[0])
	if err := tx2.Update(tid, r2[0], row2); err != nil {
		t.Fatal(err)
	}
	_, _, err := tx2.Fetch(tid, r1[0])
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	// tx1 proceeds normally after the victim aborts.
	if _, err := tx1.Commit(nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRollbackWithFreshPage(t *testing.T) {
	e := NewEngine(Options{PageCap: 2})
	tid, _ := e.CreateTable(TableDef{
		Name: "t",
		Cols: []Column{{Name: "id", Type: value.TInt}},
	})
	_, _ = e.CreateIndex(tid, IndexDef{Name: "pk", Cols: []int{0}, Unique: true})

	tx := e.BeginUpdate()
	for i := 1; i <= 5; i++ { // spans multiple fresh pages
		if _, err := tx.Insert(tid, value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	n, err := e.RowCountAt(tid, VersionLatest)
	if err != nil || n != 0 {
		t.Fatalf("rows after rollback = %d (%v)", n, err)
	}
	// Fresh pages stay invisible to scans (create-version sentinel).
	rtx := e.BeginRead(nil)
	count := 0
	_ = rtx.Scan(tid, func(page.RowID, value.Row) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan saw %d phantom rows", count)
	}
	// And the table is fully usable afterwards.
	tx2 := e.BeginUpdate()
	if _, err := tx2.Insert(tid, value.Row{value.NewInt(100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonUniqueIndexDuplicates(t *testing.T) {
	e := NewEngine(Options{})
	tid, _ := e.CreateTable(TableDef{
		Name: "t",
		Cols: []Column{{Name: "id", Type: value.TInt}, {Name: "grp", Type: value.TInt}},
	})
	_, _ = e.CreateIndex(tid, IndexDef{Name: "grp", Cols: []int{1}})
	tx := e.BeginUpdate()
	for i := 1; i <= 6; i++ {
		if _, err := tx.Insert(tid, value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	rtx := e.BeginRead(nil)
	rids, err := rtx.LookupEq(tid, 0, value.Row{value.NewInt(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Fatalf("grp=0 rows = %d, want 3", len(rids))
	}
}

func TestUpdateTxSeesOwnIndexChanges(t *testing.T) {
	e := NewEngine(Options{})
	tid, _ := e.CreateTable(TableDef{
		Name: "t",
		Cols: []Column{{Name: "id", Type: value.TInt}, {Name: "grp", Type: value.TInt}},
	})
	_, _ = e.CreateIndex(tid, IndexDef{Name: "pk", Cols: []int{0}, Unique: true})
	_, _ = e.CreateIndex(tid, IndexDef{Name: "grp", Cols: []int{1}})
	_ = e.Load(tid, []value.Row{{value.NewInt(1), value.NewInt(10)}})

	tx := e.BeginUpdate()
	// Move row 1 from grp 10 to grp 20; insert a new row in grp 10.
	rids, _ := tx.LookupEq(tid, 0, value.Row{value.NewInt(1)})
	if err := tx.Update(tid, rids[0], value.Row{value.NewInt(1), value.NewInt(20)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tid, value.Row{value.NewInt(2), value.NewInt(10)}); err != nil {
		t.Fatal(err)
	}
	// Within the same transaction, the overlay must reflect both changes.
	g10, _ := tx.LookupEq(tid, 1, value.Row{value.NewInt(10)})
	g20, _ := tx.LookupEq(tid, 1, value.Row{value.NewInt(20)})
	if len(g10) != 1 || len(g20) != 1 {
		t.Fatalf("overlay view: grp10=%d grp20=%d, want 1/1", len(g10), len(g20))
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// After rollback the overlay is gone.
	rtx := e.BeginRead(nil)
	g10b, _ := rtx.LookupEq(tid, 1, value.Row{value.NewInt(10)})
	g20b, _ := rtx.LookupEq(tid, 1, value.Row{value.NewInt(20)})
	if len(g10b) != 1 || len(g20b) != 0 {
		t.Fatalf("after rollback: grp10=%d grp20=%d, want 1/0", len(g10b), len(g20b))
	}
}

func TestUpdateTxScanLocksPages(t *testing.T) {
	e := NewEngine(Options{PageCap: 4})
	tid, _ := e.CreateTable(TableDef{
		Name: "t",
		Cols: []Column{{Name: "id", Type: value.TInt}},
	})
	rows := make([]value.Row, 8)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i))}
	}
	_ = e.Load(tid, rows)

	tx := e.BeginUpdate()
	n := 0
	if err := tx.Scan(tid, func(page.RowID, value.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("scan saw %d rows", n)
	}
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadTxRejectsWrites(t *testing.T) {
	e := NewEngine(Options{})
	tid, _ := e.CreateTable(TableDef{Name: "t", Cols: []Column{{Name: "id", Type: value.TInt}}})
	rtx := e.BeginRead(nil)
	if _, err := rtx.Insert(tid, value.Row{value.NewInt(1)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert err = %v", err)
	}
	if err := rtx.Update(tid, 1, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("update err = %v", err)
	}
	if err := rtx.Delete(tid, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete err = %v", err)
	}
}

func TestCommitOnFinishedTx(t *testing.T) {
	e := NewEngine(Options{})
	tid, _ := e.CreateTable(TableDef{Name: "t", Cols: []Column{{Name: "id", Type: value.TInt}}})
	tx := e.BeginUpdate()
	if _, err := tx.Insert(tid, value.Row{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if _, err := tx.Insert(tid, value.Row{value.NewInt(2)}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("insert after commit err = %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after commit should be a no-op: %v", err)
	}
}

func TestEmptyUpdateTxCommit(t *testing.T) {
	e := NewEngine(Options{})
	_, _ = e.CreateTable(TableDef{Name: "t", Cols: []Column{{Name: "id", Type: value.TInt}}})
	tx := e.BeginUpdate()
	ver, err := tx.Commit(func(*WriteSet) error {
		t.Fatal("empty transaction must not broadcast")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ver != nil {
		t.Fatalf("empty commit produced version %v", ver)
	}
}
