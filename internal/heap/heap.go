// Package heap implements the in-memory, page-based transactional storage
// engine underlying every database node in the reproduction.
//
// It is the Go analogue of the paper's REPLICATED_HEAP MySQL table type:
// MySQL HEAP tables (RB-tree indexed, page-organized rows) made
// transactional with an undo log and per-page two-phase locking, plus
// write-set capture for replication. The same engine, configured with a
// synthetic disk cost model (package simdisk), doubles as the InnoDB-like
// on-disk baseline.
//
// Concurrency model, exactly as in the paper:
//
//   - Update transactions (master role) acquire exclusive page latches at
//     first touch and hold them to commit (strict 2PL at page granularity).
//     At pre-commit the engine produces a WriteSet of fine-grained per-page
//     row modifications stamped with a freshly ticked version vector.
//   - Read-only transactions never take transaction-duration locks: they
//     materialize each page at their assigned version vector on demand
//     (page.View) and abort with page.ErrVersionConflict if the required
//     version was already overwritten.
//   - Secondary indexes are versioned (entries carry visible-from /
//     deleted-at table versions) and maintained eagerly when write-sets are
//     received, so index scans at any version are consistent even though
//     page application is lazy.
package heap

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// Errors returned by the engine.
var (
	// ErrNoSuchTable reports an unknown table id or name.
	ErrNoSuchTable = errors.New("heap: no such table")
	// ErrNoSuchIndex reports an unknown index.
	ErrNoSuchIndex = errors.New("heap: no such index")
	// ErrLockTimeout reports a page-lock wait that exceeded the engine's
	// lock timeout; the transaction must abort (deadlock resolution by
	// timeout, as in InnoDB's innodb_lock_wait_timeout).
	ErrLockTimeout = errors.New("heap: page lock wait timeout")
	// ErrReadOnly reports a mutation attempted through a read-only
	// transaction.
	ErrReadOnly = errors.New("heap: mutation in read-only transaction")
	// ErrTxDone reports use of a finished transaction.
	ErrTxDone = errors.New("heap: transaction already finished")
	// ErrRowNotFound reports an update/delete of a missing row.
	ErrRowNotFound = errors.New("heap: row not found")
	// ErrDuplicateKey reports a uniqueness violation on a unique index.
	ErrDuplicateKey = errors.New("heap: duplicate key")
)

// VersionLatest tags a read that must observe the newest materialized state
// (stand-alone / single-node operation).
const VersionLatest = ^uint64(0)

// Column declares one table column.
type Column struct {
	Name string
	Type value.ColumnType
}

// TableDef declares a table.
type TableDef struct {
	Name string
	Cols []Column
}

// ColIndex returns the ordinal of the named column, or -1.
func (d *TableDef) ColIndex(name string) int {
	for i, c := range d.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// IndexDef declares a secondary index over column ordinals.
type IndexDef struct {
	Name   string
	Cols   []int
	Unique bool
}

// AccessObserver receives a callback on every page access; the buffer-cache
// simulator implements it to charge hit/miss costs.
type AccessObserver interface {
	PageAccess(table int, pg int32)
}

// Options configure an Engine.
type Options struct {
	// PageCap is the number of row slots per page (default 64).
	PageCap int
	// LockTimeout bounds page-lock waits for update transactions
	// (default 1s).
	LockTimeout time.Duration
	// Observer, if non-nil, is invoked on every page access.
	Observer AccessObserver
	// CommitDelay, if non-nil, is invoked once per update-transaction
	// commit while locks are held (models the WAL fsync of the on-disk
	// baseline).
	CommitDelay func()
	// Obs, if non-nil, receives the engine's metrics (lock waits, commits,
	// lazy/eager page application). Nil disables them at zero cost.
	Obs *obs.Registry
	// NodeID labels the trace spans the engine records (lazy/eager apply)
	// with the owning node; empty for stand-alone engines.
	NodeID string
}

// heapMetrics holds the engine's registry handles; all nil when Options.Obs
// is nil (every obs method no-ops on nil handles).
type heapMetrics struct {
	lockWaitUS    *obs.Histogram
	lockTimeouts  *obs.Counter
	commits       *obs.Counter
	wsRecords     *obs.Counter
	modsEnqueued  *obs.Counter
	modsDiscarded *obs.Counter
	modChainLen   *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.PageCap <= 0 {
		o.PageCap = 64
	}
	if o.LockTimeout <= 0 {
		o.LockTimeout = time.Second
	}
	return o
}

// Engine is one database instance. All methods are safe for concurrent use
// after schema setup; DDL (CreateTable/CreateIndex/Load) must complete
// before transactions start, mirroring the paper's setup where every node
// mmaps the same initial database.
type Engine struct {
	opts Options
	met  heapMetrics
	// applyHook observes every lazy/eager application of buffered page
	// modifications; nil when metrics are disabled. Installed on every page
	// at allocation (before the page is shared).
	applyHook func(mods []page.Mod, eager bool)

	mu      sync.RWMutex
	tables  []*Table       // guarded by mu
	byName  map[string]int // guarded by mu
	clock   *vclock.Clock
	txSeq   uint64 // guarded by txSeqMu
	txSeqMu sync.Mutex
}

// NewEngine returns an empty engine.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		opts:   opts.withDefaults(),
		byName: make(map[string]int),
		clock:  vclock.NewClock(0),
	}
	if reg := e.opts.Obs; reg != nil {
		e.met = heapMetrics{
			lockWaitUS:    reg.Histogram(obs.HeapLockWaitUS),
			lockTimeouts:  reg.Counter(obs.HeapLockTimeouts),
			commits:       reg.Counter(obs.HeapCommits),
			wsRecords:     reg.Counter(obs.HeapWriteSetRecords),
			modsEnqueued:  reg.Counter(obs.HeapModsEnqueued),
			modsDiscarded: reg.Counter(obs.HeapModsDiscarded),
			modChainLen:   reg.Histogram(obs.HeapModChainLen),
		}
		pagesLazy := reg.Counter(obs.HeapPagesLazy)
		modsLazy := reg.Counter(obs.HeapModsLazy)
		pagesEager := reg.Counter(obs.HeapPagesEager)
		modsEager := reg.Counter(obs.HeapModsEager)
		lazyDist := reg.Histogram(obs.HeapLazyApplyDist)
		tracer := reg.Tracer()
		nodeID := e.opts.NodeID
		// Runs under the page latch: metric atomics and the obs trace ring
		// only (level 70, inside the page band).
		e.applyHook = func(mods []page.Mod, eager bool) {
			ops := 0
			for _, m := range mods {
				ops += len(m.Ops)
			}
			kind := "lazy-apply"
			if eager {
				kind = "eager-apply"
				pagesEager.Inc()
				modsEager.Add(int64(ops))
			} else {
				pagesLazy.Inc()
				modsLazy.Add(int64(ops))
				lazyDist.Observe(int64(len(mods)))
			}
			for _, m := range mods {
				if !m.Trace.Valid() {
					continue
				}
				sp := tracer.BeginChild(kind, m.Trace)
				sp.SetNode(nodeID)
				sp.SetVersion(fmt.Sprintf("%d", m.Version))
				sp.Finish("commit", "")
			}
		}
	}
	return e
}

// CreateTable registers a table and returns its id.
func (e *Engine) CreateTable(def TableDef) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.byName[def.Name]; dup {
		return 0, fmt.Errorf("heap: table %q already exists", def.Name)
	}
	id := len(e.tables)
	t := newTable(id, def, e.opts.PageCap, e.applyHook)
	e.tables = append(e.tables, t)
	e.byName[def.Name] = id
	e.clock = vclock.NewClockAt(e.clock.Current().Merge(vclock.New(id + 1)))
	return id, nil
}

// CreateIndex registers a secondary index on the table.
func (e *Engine) CreateIndex(table int, def IndexDef) (int, error) {
	t, err := e.table(table)
	if err != nil {
		return 0, err
	}
	return t.addIndex(def)
}

// TableID resolves a table name.
func (e *Engine) TableID(name string) (int, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	id, ok := e.byName[name]
	return id, ok
}

// TableDef returns the definition of table id.
func (e *Engine) TableDef(id int) (TableDef, error) {
	t, err := e.table(id)
	if err != nil {
		return TableDef{}, err
	}
	return t.def, nil
}

// TableNames returns all table names in id order.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.tables))
	for i, t := range e.tables {
		out[i] = t.def.Name
	}
	return out
}

// NumTables returns the number of tables (the version-vector width).
func (e *Engine) NumTables() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.tables)
}

// Indexes returns the index definitions of a table.
func (e *Engine) Indexes(table int) ([]IndexDef, error) {
	t, err := e.table(table)
	if err != nil {
		return nil, err
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	out := make([]IndexDef, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = ix.def
	}
	return out, nil
}

// IndexID resolves an index by name within a table, returning its ordinal.
func (e *Engine) IndexID(table int, name string) (int, bool) {
	t, err := e.table(table)
	if err != nil {
		return 0, false
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	for i, ix := range t.indexes {
		if ix.def.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Clock exposes the engine's version clock (the master's DBVersion).
func (e *Engine) Clock() *vclock.Clock { return e.clock }

// MaxVersions returns, per table, the highest version this node has
// materialized or buffered; used during master election (the slave with the
// highest versions wins) and by reintegration.
func (e *Engine) MaxVersions() vclock.Vector {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v := vclock.New(len(e.tables))
	for i, t := range e.tables {
		v[i] = t.maxVer.Load()
	}
	return v
}

// AppliedVersions returns, per table, the highest version fully
// materialized into the page slots: the table's max version, lowered to
// just below the earliest buffered-but-unapplied modification on any of
// its pages. The gap between the cluster commit frontier and this vector
// is the replica's staleness (dmv_replica_version_lag); eager write-set
// propagation keeps MaxVersions at the frontier, so lag must be measured
// against applied state, not received state.
func (e *Engine) AppliedVersions() vclock.Vector {
	tables := e.allTables()
	v := vclock.New(len(tables))
	for i, t := range tables {
		applied := t.maxVer.Load()
		for _, pg := range t.pagesSnapshot() {
			if fp, ok := pg.FirstPending(); ok && fp-1 < applied {
				applied = fp - 1
			}
		}
		v[i] = applied
	}
	return v
}

// Load bulk-loads rows into a table before the system starts (the initial
// database image). Rows get sequential row ids and version 0; index entries
// are visible at every version. Deterministic: every node loading the same
// rows in the same order builds an identical image.
func (e *Engine) Load(table int, rows []value.Row) error {
	t, err := e.table(table)
	if err != nil {
		return err
	}
	return t.load(rows)
}

func (e *Engine) table(id int) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.tables) {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchTable, id)
	}
	return e.tables[id], nil
}

func (e *Engine) allTables() []*Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Table, len(e.tables))
	copy(out, e.tables)
	return out
}

func (e *Engine) nextTxID() uint64 {
	e.txSeqMu.Lock()
	defer e.txSeqMu.Unlock()
	e.txSeq++
	return e.txSeq
}

func (e *Engine) observe(table int, pg page.ID) {
	if e.opts.Observer != nil {
		e.opts.Observer.PageAccess(table, int32(pg))
	}
}
