package heap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dmv/internal/page"
	"dmv/internal/value"
)

// Table is one heap table: a page directory, a row-location map, and
// versioned secondary indexes.
type Table struct {
	id      int
	def     TableDef
	pageCap int

	// page directory: append-only slice of pages.
	dirMu sync.RWMutex
	pages []*page.Page // guarded by dirMu

	// row location: row id -> owning page. Rows never move between pages,
	// so entries are stable once created; they are retained after delete so
	// that stale readers reach the page and fail the version check instead
	// of silently missing the row.
	rlMu   sync.RWMutex
	rowLoc map[page.RowID]*page.Page // guarded by rlMu

	// master-side insert cursor: pages are filled up to pageCap reserved
	// slots, then a new page is allocated.
	allocMu   sync.Mutex
	curPage   *page.Page // guarded by allocMu
	curCount  int        // guarded by allocMu
	nextRowID atomic.Int64

	// maxVer is the highest table version seen (applied, buffered, or
	// committed locally).
	maxVer atomic.Uint64

	idxMu   sync.RWMutex
	indexes []*Index // guarded by idxMu

	// onApply is installed on every page at allocation (metrics and apply
	// spans; nil when disabled). Immutable after newTable.
	onApply func(mods []page.Mod, eager bool)
}

func newTable(id int, def TableDef, pageCap int, onApply func(mods []page.Mod, eager bool)) *Table {
	return &Table{
		id:      id,
		def:     def,
		pageCap: pageCap,
		rowLoc:  make(map[page.RowID]*page.Page, 1024),
		onApply: onApply,
	}
}

func (t *Table) addIndex(def IndexDef) (int, error) {
	for _, c := range def.Cols {
		if c < 0 || c >= len(t.def.Cols) {
			return 0, fmt.Errorf("heap: index %q: bad column ordinal %d", def.Name, c)
		}
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for _, ix := range t.indexes {
		if ix.def.Name == def.Name {
			return 0, fmt.Errorf("heap: index %q already exists", def.Name)
		}
	}
	id := len(t.indexes)
	t.indexes = append(t.indexes, newIndex(def))
	return id, nil
}

func (t *Table) index(id int) (*Index, error) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	if id < 0 || id >= len(t.indexes) {
		return nil, fmt.Errorf("%w: table %s index %d", ErrNoSuchIndex, t.def.Name, id)
	}
	return t.indexes[id], nil
}

func (t *Table) allIndexes() []*Index {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	out := make([]*Index, len(t.indexes))
	copy(out, t.indexes)
	return out
}

// pageAt returns the page with the given id, or nil.
func (t *Table) pageAt(id page.ID) *page.Page {
	t.dirMu.RLock()
	defer t.dirMu.RUnlock()
	if int(id) < 0 || int(id) >= len(t.pages) {
		return nil
	}
	return t.pages[id]
}

// pagesSnapshot returns a copy of the page directory.
func (t *Table) pagesSnapshot() []*page.Page {
	t.dirMu.RLock()
	defer t.dirMu.RUnlock()
	out := make([]*page.Page, len(t.pages))
	copy(out, t.pages)
	return out
}

// ensurePage makes sure the directory contains a page with the given id
// (slaves allocate pages announced in write-sets on demand), creating any
// intermediate pages as empty placeholders.
func (t *Table) ensurePage(id page.ID, createVer uint64) *page.Page {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	for int(id) >= len(t.pages) {
		t.pages = append(t.pages, t.newPageLocked(createVer))
	}
	return t.pages[id]
}

// appendPage allocates the next page id (master side).
func (t *Table) appendPage(createVer uint64) *page.Page {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	p := t.newPageLocked(createVer)
	t.pages = append(t.pages, p)
	return p
}

// newPageLocked builds a page with the apply hook installed before the page
// becomes reachable. Caller holds dirMu.
func (t *Table) newPageLocked(createVer uint64) *page.Page {
	p := page.New(t.id, page.ID(len(t.pages)), createVer)
	if t.onApply != nil {
		p.SetApplyHook(t.onApply)
	}
	return p
}

func (t *Table) locate(rid page.RowID) *page.Page {
	t.rlMu.RLock()
	defer t.rlMu.RUnlock()
	return t.rowLoc[rid]
}

func (t *Table) setLoc(rid page.RowID, p *page.Page) {
	t.rlMu.Lock()
	t.rowLoc[rid] = p
	t.rlMu.Unlock()
	// Track the master's row-id allocation point so a promoted slave
	// continues the sequence without collision.
	for {
		cur := t.nextRowID.Load()
		if int64(rid) <= cur || t.nextRowID.CompareAndSwap(cur, int64(rid)) {
			return
		}
	}
}

func (t *Table) bumpVer(v uint64) {
	for {
		cur := t.maxVer.Load()
		if v <= cur || t.maxVer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// lowerVer caps maxVer at v (master fail-over discards state above v).
func (t *Table) lowerVer(v uint64) {
	for {
		cur := t.maxVer.Load()
		if cur <= v || t.maxVer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// reserveSlot picks the insert target page for one new row on the master,
// allocating a new page when the current one is full. Newly allocated pages
// carry the create-version sentinel until the first committing transaction
// stamps them (see page.StampCreateVersion).
func (t *Table) reserveSlot() *page.Page {
	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	if t.curPage == nil || t.curCount >= t.pageCap {
		t.curPage = t.appendPage(^uint64(0)) // hidden from scans until stamped
		t.curCount = 0
	}
	t.curCount++
	return t.curPage
}

// load bulk-loads the initial image (version 0).
func (t *Table) load(rows []value.Row) error {
	indexes := t.allIndexes()
	var (
		cur   *page.Page
		count int
	)
	for _, r := range rows {
		row := make(value.Row, len(t.def.Cols))
		for i := range t.def.Cols {
			if i < len(r) {
				row[i] = value.Coerce(r[i], t.def.Cols[i].Type)
			}
		}
		if cur == nil || count >= t.pageCap {
			cur = t.appendPage(0)
			count = 0
		}
		rid := page.RowID(t.nextRowID.Add(1))
		cur.LockX()
		cur.XApply(page.RowOp{Kind: page.OpInsert, Row: rid, Data: row})
		cur.UnlockX()
		count++
		t.setLoc(rid, cur)
		for _, ix := range indexes {
			if err := ix.add(ix.keyOf(row), rid, 0); err != nil {
				return fmt.Errorf("load %s: %w", t.def.Name, err)
			}
		}
	}
	t.allocMu.Lock()
	t.curPage, t.curCount = cur, count
	t.allocMu.Unlock()
	return nil
}

// rowCountAt counts live rows at version v (used by tests and diagnostics).
func (t *Table) rowCountAt(v uint64) (int, error) {
	total := 0
	for _, p := range t.pagesSnapshot() {
		if p.CreateVersion() > v {
			continue
		}
		err := p.View(v, func(rows map[page.RowID]value.Row) error {
			total += len(rows)
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}
