//go:build dmvdebug

package heap

import (
	"fmt"
	"sort"

	"dmv/internal/vclock"
)

// debugSealWriteSet runs at master pre-commit, the moment the write-set is
// built: the version vector it carries is immutable from here on.
func debugSealWriteSet(ws *WriteSet) {
	vclock.Seal(ws.Version)
	checkShape(ws, "seal")
}

// debugCheckWriteSet runs on every replica apply: the vector must be
// byte-identical to what the master sealed, and the write-set well-formed.
func debugCheckWriteSet(ws *WriteSet) {
	vclock.CheckSealed(ws.Version)
	checkShape(ws, "apply")
}

func checkShape(ws *WriteSet, site string) {
	if !sort.IntsAreSorted(ws.Tables) {
		panic(fmt.Sprintf("heap: %s write-set tx %d: Tables %v not sorted", site, ws.TxID, ws.Tables))
	}
	touched := make(map[int]bool, len(ws.Tables))
	for _, t := range ws.Tables {
		touched[t] = true
	}
	for _, rec := range ws.Records {
		if !touched[rec.Table] {
			panic(fmt.Sprintf("heap: %s write-set tx %d: record for table %d absent from Tables %v", site, ws.TxID, rec.Table, ws.Tables))
		}
	}
}
