package heap

import (
	"fmt"
	"sort"

	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// Record is one fine-grained row modification inside a write-set, including
// the before-image of updates and deletes so that replicas can maintain
// their versioned indexes without materializing the page first.
type Record struct {
	Table int
	Page  page.ID
	Op    page.RowOp
	Old   value.Row // before-image (update/delete), nil for insert
}

// WriteSet is the replication unit produced by the master's pre-commit
// (Figure 2 of the paper): every page the transaction modified, encoded as
// row operations, stamped with the version vector the commit produced.
type WriteSet struct {
	TxID    uint64
	Version vclock.Vector
	Tables  []int
	Records []Record
	// Trace is the committing transaction's trace context; it rides the
	// write-set to every replica so buffered-modification application can be
	// recorded as child spans of the originating commit.
	Trace obs.TraceContext
}

// Size estimates the write-set's serialized footprint in bytes — the
// replication-traffic quantity the paper reports. Fixed per-message and
// per-record overheads plus the row images (9 bytes per datum header plus
// string payload), matching what a compact binary encoding would ship.
func (ws *WriteSet) Size() int {
	if ws == nil {
		return 0
	}
	n := 16 + 8*len(ws.Version) + 4*len(ws.Tables)
	for _, rec := range ws.Records {
		n += 16 + rowBytes(rec.Op.Data) + rowBytes(rec.Old)
	}
	return n
}

func rowBytes(r value.Row) int {
	n := 0
	for _, v := range r {
		n += 9 + len(v.S)
	}
	return n
}

// ApplyWriteSet processes a write-set received from a master: it eagerly
// publishes row locations and versioned index entries, and enqueues the page
// modifications for lazy application (the paper's hybrid eager-propagation /
// lazy-application scheme). It is idempotent: groups whose version is
// already materialized (duplicate delivery, or state received through page
// migration) are skipped.
//
// Write-sets from one master must be applied in commit order by a single
// goroutine per master (the replication layer guarantees this).
func (e *Engine) ApplyWriteSet(ws *WriteSet) error {
	debugCheckWriteSet(ws)
	type groupKey struct {
		table int
		pg    page.ID
	}
	groups := make(map[groupKey][]Record, 4)
	order := make([]groupKey, 0, 4)
	for _, rec := range ws.Records {
		k := groupKey{table: rec.Table, pg: rec.Page}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rec)
	}
	for _, k := range order {
		t, err := e.table(k.table)
		if err != nil {
			return fmt.Errorf("apply write-set tx %d: %w", ws.TxID, err)
		}
		ver := ws.Version.Get(k.table)
		pg := t.ensurePage(k.pg, ver)
		pg.StampCreateVersion(ver)
		if ver <= pg.Applied() {
			continue // already reflected (duplicate or migrated state)
		}
		recs := groups[k]
		ops := make([]page.RowOp, len(recs))
		for i, rec := range recs {
			ops[i] = rec.Op
			switch rec.Op.Kind {
			case page.OpInsert:
				t.setLoc(rec.Op.Row, pg)
				for _, ix := range t.allIndexes() {
					if err := ix.addUnchecked(ix.keyOf(rec.Op.Data), rec.Op.Row, ver); err != nil {
						return err
					}
				}
			case page.OpUpdate:
				for _, ix := range t.allIndexes() {
					oldKey, newKey := ix.keyOf(rec.Old), ix.keyOf(rec.Op.Data)
					if value.CompareRows(oldKey, newKey) == 0 {
						continue
					}
					ix.del(oldKey, rec.Op.Row, ver)
					if err := ix.addUnchecked(newKey, rec.Op.Row, ver); err != nil {
						return err
					}
				}
			case page.OpDelete:
				for _, ix := range t.allIndexes() {
					ix.del(ix.keyOf(rec.Old), rec.Op.Row, ver)
				}
			}
		}
		pg.Enqueue(page.Mod{Version: ver, Ops: ops, Trace: ws.Trace})
		e.met.modsEnqueued.Add(int64(len(ops)))
		e.met.modChainLen.Observe(int64(pg.PendingLen()))
		t.bumpVer(ver)
	}
	e.clock.Advance(ws.Version)
	return nil
}

// DiscardAbove drops, on every page of every table, buffered modifications
// whose version exceeds the given vector. A scheduler performing master
// fail-over broadcasts this to clean up pre-commit flushes that partially
// completed at a subset of the replicas but were never acknowledged by the
// failed master.
func (e *Engine) DiscardAbove(v vclock.Vector) {
	dropped := 0
	for _, t := range e.allTables() {
		limit := v.Get(t.id)
		for _, pg := range t.pagesSnapshot() {
			dropped += pg.DiscardAbove(limit)
		}
		for _, ix := range t.allIndexes() {
			ix.discardAbove(limit)
		}
		t.lowerVer(limit)
	}
	e.met.modsDiscarded.Add(int64(dropped))
	e.clock.ResetTo(v)
}

// ResetInsertCursors forces fresh page allocation for subsequent inserts; a
// slave promoted to master calls this so it never shares an insert page with
// the failed master's unreplicated state.
func (e *Engine) ResetInsertCursors() {
	for _, t := range e.allTables() {
		t.allocMu.Lock()
		t.curPage, t.curCount = nil, 0
		t.allocMu.Unlock()
	}
}

// GCIndexes garbage-collects versioned-index history that no reader at or
// above the low-water vector can observe. The cluster runs this periodically
// with the minimum version among active readers. Returns spans removed.
func (e *Engine) GCIndexes(lowWater vclock.Vector) int {
	removed := 0
	for _, t := range e.allTables() {
		lw := lowWater.Get(t.id)
		if lw == 0 {
			continue
		}
		for _, ix := range t.allIndexes() {
			removed += ix.gc(lw)
		}
	}
	return removed
}

// GCRowLocations drops row-location entries for rows that are gone at the
// low-water vector: each page is first materialized to the low-water
// version, then entries pointing at it whose row no longer exists are
// removed. Row-location entries are otherwise retained after deletion so
// stale readers reach the page and fail the version check; below the
// low-water mark no such reader can exist (row ids are never reused, so a
// dropped entry can never be resurrected). Returns entries removed.
func (e *Engine) GCRowLocations(lowWater vclock.Vector) (int, error) {
	removed := 0
	for _, t := range e.allTables() {
		lw := lowWater.Get(t.id)
		if lw == 0 {
			continue
		}
		live := make(map[page.RowID]struct{}, 1024)
		for _, pg := range t.pagesSnapshot() {
			if pg.CreateVersion() > lw {
				// Rows in too-new pages must keep their entries.
				img := pg.SnapshotBlocking()
				for rid := range img.Rows {
					live[rid] = struct{}{}
				}
				continue
			}
			err := pg.View(lw, func(rows map[page.RowID]value.Row) error {
				for rid := range rows {
					live[rid] = struct{}{}
				}
				return nil
			})
			if err == page.ErrVersionConflict {
				// Page already past the low-water mark; its current rows
				// are a superset of what any future reader can see.
				img := pg.SnapshotBlocking()
				for rid := range img.Rows {
					live[rid] = struct{}{}
				}
				continue
			}
			if err != nil {
				return removed, err
			}
		}
		t.rlMu.Lock()
		for rid, pg := range t.rowLoc {
			if _, ok := live[rid]; ok {
				continue
			}
			// The row may still be pending insertion (buffered write-set
			// above the low-water mark): keep entries whose page has
			// unapplied modifications.
			if pg.PendingLen() > 0 {
				continue
			}
			delete(t.rowLoc, rid)
			removed++
		}
		t.rlMu.Unlock()
	}
	return removed, nil
}

// MaterializeAll applies every buffered modification up to the given vector
// on every page (used by a promoted master to bring its state fully up to
// date before accepting update transactions, and by support slaves before
// serving a migration snapshot).
func (e *Engine) MaterializeAll(v vclock.Vector) error {
	for _, t := range e.allTables() {
		target := v.Get(t.id)
		for _, pg := range t.pagesSnapshot() {
			if pg.CreateVersion() > target {
				continue
			}
			err := pg.Materialize(target)
			if err != nil && err != page.ErrVersionConflict {
				return err
			}
		}
	}
	return nil
}

// PendingMods returns the total number of buffered, unapplied modifications
// across all pages (diagnostics; the lazy-vs-eager ablation reports it).
func (e *Engine) PendingMods() int {
	total := 0
	for _, t := range e.allTables() {
		for _, pg := range t.pagesSnapshot() {
			total += pg.PendingLen()
		}
	}
	return total
}

// RowCountAt counts live rows in a table at version v.
func (e *Engine) RowCountAt(table int, v uint64) (int, error) {
	t, err := e.table(table)
	if err != nil {
		return 0, err
	}
	return t.rowCountAt(v)
}

// TablesOf maps table names to ids, failing fast on unknown names; the
// scheduler uses it to translate conflict-class configuration.
func (e *Engine) TablesOf(names []string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, n := range names {
		id, ok := e.TableID(n)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, n)
		}
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}
