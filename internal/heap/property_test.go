package heap

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dmv/internal/page"
	"dmv/internal/value"
)

// buildPair creates a master and n replica engines with identical schema and
// initial data.
func buildPair(t testing.TB, replicas int, rows int) (*Engine, []*Engine, int) {
	t.Helper()
	mk := func() (*Engine, int) {
		e := NewEngine(Options{PageCap: 4})
		tid, err := e.CreateTable(TableDef{
			Name: "t",
			Cols: []Column{
				{Name: "id", Type: value.TInt},
				{Name: "grp", Type: value.TInt},
				{Name: "val", Type: value.TInt},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.CreateIndex(tid, IndexDef{Name: "pk", Cols: []int{0}, Unique: true}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CreateIndex(tid, IndexDef{Name: "grp", Cols: []int{1}}); err != nil {
			t.Fatal(err)
		}
		data := make([]value.Row, rows)
		for i := range data {
			data[i] = value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 5)), value.NewInt(0)}
		}
		if err := e.Load(tid, data); err != nil {
			t.Fatal(err)
		}
		return e, tid
	}
	master, tid := mk()
	slaves := make([]*Engine, replicas)
	for i := range slaves {
		slaves[i], _ = mk()
	}
	return master, slaves, tid
}

// randomTxn runs one random update transaction on the master, replicating
// through broadcast, and returns the commit vector.
func randomTxn(t testing.TB, rng *rand.Rand, master *Engine, tid int, nextID *int64, bcast func(*WriteSet) error) []uint64 {
	t.Helper()
	tx := master.BeginUpdate()
	// Guarantee at least one effective operation so every transaction
	// produces a write-set (an update/delete may find no target row).
	*nextID++
	if _, err := tx.Insert(tid, value.Row{
		value.NewInt(*nextID + 1000),
		value.NewInt(int64(rng.Intn(5))),
		value.NewInt(int64(rng.Intn(100))),
	}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	nOps := rng.Intn(3)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0: // insert
			*nextID++
			if _, err := tx.Insert(tid, value.Row{
				value.NewInt(*nextID + 1000),
				value.NewInt(int64(rng.Intn(5))),
				value.NewInt(int64(rng.Intn(100))),
			}); err != nil {
				t.Fatalf("insert: %v", err)
			}
		case 1, 2: // update random existing row via pk index
			target := value.Row{value.NewInt(int64(rng.Intn(20)))}
			rids, err := tx.LookupEq(tid, 0, target)
			if err != nil {
				t.Fatal(err)
			}
			if len(rids) == 0 {
				continue
			}
			row, ok, err := tx.Fetch(tid, rids[0])
			if err != nil || !ok {
				continue
			}
			row[2] = value.NewInt(int64(rng.Intn(1000)))
			if rng.Intn(4) == 0 {
				row[1] = value.NewInt(int64(rng.Intn(5))) // indexed column change
			}
			if err := tx.Update(tid, rids[0], row); err != nil {
				t.Fatal(err)
			}
		case 3: // delete
			target := value.Row{value.NewInt(int64(rng.Intn(20)))}
			rids, err := tx.LookupEq(tid, 0, target)
			if err != nil {
				t.Fatal(err)
			}
			if len(rids) == 1 {
				if err := tx.Delete(tid, rids[0]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	ver, err := tx.Commit(bcast)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return ver
}

// stateAt dumps the table contents visible at version v, sorted by primary
// key, via a full scan.
func stateAt(t testing.TB, e *Engine, tid int, v uint64) []string {
	t.Helper()
	tx := e.BeginRead([]uint64{v})
	var rows []string
	err := tx.Scan(tid, func(rid page.RowID, row value.Row) bool {
		rows = append(rows, fmt.Sprintf("%d|%d|%d", row[0].AsInt(), row[1].AsInt(), row[2].AsInt()))
		return true
	})
	if err != nil {
		t.Fatalf("scan@%d: %v", v, err)
	}
	sort.Strings(rows)
	return rows
}

// indexStateAt dumps the grp index contents visible at v.
func indexStateAt(t testing.TB, e *Engine, tid int, v uint64) []string {
	t.Helper()
	tx := e.BeginRead([]uint64{v})
	var out []string
	err := tx.IndexScan(tid, 1, nil, func(key value.Row, rid page.RowID) bool {
		out = append(out, fmt.Sprintf("%v", key))
		return true
	})
	if err != nil {
		t.Fatalf("index scan@%d: %v", v, err)
	}
	sort.Strings(out)
	return out
}

func equalStates(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertySnapshotEquivalence (testing/quick): after a random committed
// history, a replica read at ANY intermediate version equals a second
// replica that only received the prefix of write-sets up to that version —
// DESIGN.md property (a): reads at V observe exactly the prefix <= V.
func TestPropertySnapshotEquivalence(t *testing.T) {
	f := func(seed int64, nTxns uint8, cutRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTxns%15) + 2
		cut := int(cutRaw)%n + 1

		master, slaves, tid := buildPair(t, 2, 20)
		full, prefix := slaves[0], slaves[1]

		var log []*WriteSet
		var nextID int64
		var cutVer uint64
		for i := 0; i < n; i++ {
			ver := randomTxn(t, rng, master, tid, &nextID, func(ws *WriteSet) error {
				log = append(log, ws)
				return full.ApplyWriteSet(ws)
			})
			if i == cut-1 {
				cutVer = ver[tid]
			}
		}
		// The prefix replica receives only the first `cut` write-sets.
		applied := 0
		for _, ws := range log {
			if ws.Version[tid] <= cutVer {
				if err := prefix.ApplyWriteSet(ws); err != nil {
					t.Fatal(err)
				}
				applied++
			}
		}
		if applied == 0 {
			return true
		}
		// A read at cutVer on the fully-replicated replica must equal the
		// latest state of the prefix replica.
		a := stateAt(t, full, tid, cutVer)
		b := stateAt(t, prefix, tid, cutVer)
		if !equalStates(a, b) {
			t.Logf("full@%d = %v", cutVer, a)
			t.Logf("prefix  = %v", b)
			return false
		}
		// Index views agree too.
		return equalStates(indexStateAt(t, full, tid, cutVer), indexStateAt(t, prefix, tid, cutVer))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReplicaConvergence: after any history, master and replica are
// identical at the final version, including secondary indexes.
func TestPropertyReplicaConvergence(t *testing.T) {
	f := func(seed int64, nTxns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTxns%25) + 1
		master, slaves, tid := buildPair(t, 1, 20)
		slave := slaves[0]
		var nextID int64
		var last []uint64
		for i := 0; i < n; i++ {
			last = randomTxn(t, rng, master, tid, &nextID, func(ws *WriteSet) error {
				return slave.ApplyWriteSet(ws)
			})
		}
		v := last[tid]
		if !equalStates(stateAt(t, master, tid, v), stateAt(t, slave, tid, v)) {
			return false
		}
		return equalStates(indexStateAt(t, master, tid, v), indexStateAt(t, slave, tid, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMigrationEquivalence: a stale node caught up by page-delta
// migration is identical to the support slave at the target version —
// DESIGN.md property (d).
func TestPropertyMigrationEquivalence(t *testing.T) {
	f := func(seed int64, nTxns uint8, staleAfter uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTxns%20) + 2
		stopAt := int(staleAfter) % n

		master, slaves, tid := buildPair(t, 2, 20)
		support, stale := slaves[0], slaves[1]
		var nextID int64
		var last []uint64
		for i := 0; i < n; i++ {
			last = randomTxn(t, rng, master, tid, &nextID, func(ws *WriteSet) error {
				if err := support.ApplyWriteSet(ws); err != nil {
					return err
				}
				if i < stopAt {
					return stale.ApplyWriteSet(ws) // stale node dies after stopAt
				}
				return nil
			})
		}
		target := []uint64{last[tid]}
		have := stale.PageVersions()
		delta, err := support.DeltaSince(have, target)
		if err != nil {
			t.Fatal(err)
		}
		if err := stale.InstallDelta(delta); err != nil {
			t.Fatal(err)
		}
		v := last[tid]
		if !equalStates(stateAt(t, support, tid, v), stateAt(t, stale, tid, v)) {
			return false
		}
		return equalStates(indexStateAt(t, support, tid, v), indexStateAt(t, stale, tid, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCheckpointRestoreEquivalence: restore(checkpoint(s)) == s.
func TestPropertyCheckpointRestoreEquivalence(t *testing.T) {
	f := func(seed int64, nTxns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTxns%15) + 1
		master, _, tid := buildPair(t, 0, 20)
		var nextID int64
		var last []uint64
		for i := 0; i < n; i++ {
			last = randomTxn(t, rng, master, tid, &nextID, nil)
		}
		cp := master.FuzzyCheckpoint()
		blob, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _, _ := buildPair(t, 0, 0)
		if err := fresh.RestoreCheckpoint(decoded); err != nil {
			t.Fatal(err)
		}
		v := last[tid]
		return equalStates(stateAt(t, master, tid, v), stateAt(t, fresh, tid, v)) &&
			equalStates(indexStateAt(t, master, tid, v), indexStateAt(t, fresh, tid, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
