package heap

import (
	"testing"

	"dmv/internal/value"
	"dmv/internal/vclock"
)

func TestIndexGCRemovesDeadHistory(t *testing.T) {
	master, slaves, tid := buildPair(t, 1, 10)
	slave := slaves[0]

	// Hammer one indexed column so every update creates a dead span.
	var last vclock.Vector
	for i := 0; i < 50; i++ {
		tx := master.BeginUpdate()
		rids, _ := tx.LookupEq(tid, 0, value.Row{value.NewInt(3)})
		row, _, _ := tx.Fetch(tid, rids[0])
		row[1] = value.NewInt(int64(i % 5)) // indexed group column
		if err := tx.Update(tid, rids[0], row); err != nil {
			t.Fatal(err)
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { return slave.ApplyWriteSet(ws) })
		if err != nil {
			t.Fatal(err)
		}
		last = ver
	}

	removedMaster := master.GCIndexes(last)
	removedSlave := slave.GCIndexes(last)
	if removedMaster == 0 || removedSlave == 0 {
		t.Fatalf("gc removed %d/%d spans, want > 0 on both", removedMaster, removedSlave)
	}

	// Correctness after GC: reads at the low-water version still see the
	// exact state, on both master and slave.
	v := last.Get(tid)
	if !equalStates(stateAt(t, master, tid, v), stateAt(t, slave, tid, v)) {
		t.Fatal("states diverged after GC")
	}
	if !equalStates(indexStateAt(t, master, tid, v), indexStateAt(t, slave, tid, v)) {
		t.Fatal("index views diverged after GC")
	}
	// The surviving index exactly matches the live rows.
	liveRows := stateAt(t, master, tid, v)
	idx := indexStateAt(t, master, tid, v)
	if len(idx) != len(liveRows) {
		t.Fatalf("index entries = %d, rows = %d", len(idx), len(liveRows))
	}

	// A second GC finds nothing new.
	if again := master.GCIndexes(last); again != 0 {
		t.Fatalf("second gc removed %d spans", again)
	}
}

func TestIndexGCPreservesVisibleHistory(t *testing.T) {
	master, _, tid := buildPair(t, 0, 5)
	var v5, v10 vclock.Vector
	for i := 1; i <= 10; i++ {
		tx := master.BeginUpdate()
		rids, _ := tx.LookupEq(tid, 0, value.Row{value.NewInt(1)})
		row, _, _ := tx.Fetch(tid, rids[0])
		row[1] = value.NewInt(int64(i % 5))
		if err := tx.Update(tid, rids[0], row); err != nil {
			t.Fatal(err)
		}
		ver, err := tx.Commit(nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			v5 = ver
		}
		if i == 10 {
			v10 = ver
		}
	}
	before10 := indexStateAt(t, master, tid, v10.Get(tid))
	// GC at the OLD low-water v5: history visible at >= v5 must survive.
	master.GCIndexes(v5)
	after10 := indexStateAt(t, master, tid, v10.Get(tid))
	if !equalStates(before10, after10) {
		t.Fatalf("GC at low-water v5 corrupted the v10 view: %v vs %v", before10, after10)
	}
}

func TestRowLocationGC(t *testing.T) {
	master, slaves, tid := buildPair(t, 1, 20)
	slave := slaves[0]

	// Delete half the preloaded rows, replicating to the slave.
	var last vclock.Vector
	for i := 0; i < 10; i++ {
		tx := master.BeginUpdate()
		rids, _ := tx.LookupEq(tid, 0, value.Row{value.NewInt(int64(i))})
		if len(rids) != 1 {
			t.Fatalf("pk %d rids = %d", i, len(rids))
		}
		if err := tx.Delete(tid, rids[0]); err != nil {
			t.Fatal(err)
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { return slave.ApplyWriteSet(ws) })
		if err != nil {
			t.Fatal(err)
		}
		last = ver
	}

	for _, e := range []*Engine{master, slave} {
		// Materialize so the slave has applied the deletes, then GC.
		if err := e.MaterializeAll(last); err != nil {
			t.Fatal(err)
		}
		removed, err := e.GCRowLocations(last)
		if err != nil {
			t.Fatalf("gc: %v", err)
		}
		if removed != 10 {
			t.Fatalf("removed %d row locations, want 10", removed)
		}
		// Remaining rows still resolve.
		rtx := e.BeginRead(last)
		rids, _ := rtx.LookupEq(tid, 0, value.Row{value.NewInt(15)})
		if len(rids) != 1 {
			t.Fatalf("surviving row lost: %d rids", len(rids))
		}
		if _, ok, err := rtx.Fetch(tid, rids[0]); err != nil || !ok {
			t.Fatalf("fetch survivor: %v %v", ok, err)
		}
		// Idempotent.
		if again, _ := e.GCRowLocations(last); again != 0 {
			t.Fatalf("second gc removed %d", again)
		}
	}
}

func TestRowLocationGCKeepsPendingInserts(t *testing.T) {
	master, slaves, tid := buildPair(t, 1, 4)
	slave := slaves[0]
	// Insert a row; the slave buffers it lazily (not materialized).
	tx := master.BeginUpdate()
	if _, err := tx.Insert(tid, value.Row{value.NewInt(500), value.NewInt(1), value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	ver, err := tx.Commit(func(ws *WriteSet) error { return slave.ApplyWriteSet(ws) })
	if err != nil {
		t.Fatal(err)
	}
	// GC at the new low-water on the SLAVE without materializing: the
	// pending insert's row-location entry must survive.
	if _, err := slave.GCRowLocations(ver); err != nil {
		t.Fatal(err)
	}
	rtx := slave.BeginRead(ver)
	rids, _ := rtx.LookupEq(tid, 0, value.Row{value.NewInt(500)})
	if len(rids) != 1 {
		t.Fatalf("rids = %d", len(rids))
	}
	row, ok, err := rtx.Fetch(tid, rids[0])
	if err != nil || !ok {
		t.Fatalf("pending insert lost after GC: %v %v (%v)", ok, err, row)
	}
}
