//go:build !dmvdebug

package heap

// Write-set sanity assertions. Release builds compile these to nothing;
// build with -tags dmvdebug for the checked versions in debug_on.go.

func debugSealWriteSet(*WriteSet)  {}
func debugCheckWriteSet(*WriteSet) {}
