package heap

import (
	"fmt"
	"sync"

	"dmv/internal/page"
	"dmv/internal/rbtree"
	"dmv/internal/value"
)

// ikey orders index entries by key columns, then row id, making every tree
// node unique per (key, row) pair.
type ikey struct {
	key value.Row
	rid page.RowID
}

func cmpIKey(a, b ikey) int {
	if c := value.CompareRows(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.rid < b.rid:
		return -1
	case a.rid > b.rid:
		return 1
	}
	return 0
}

// span is one visibility interval of an index entry: visible at table
// versions v with add <= v and (del == 0 or v < del). Version-0 spans come
// from the initial load and are visible everywhere.
type span struct {
	add, del uint64
}

func visible(spans []span, v uint64) bool {
	for _, s := range spans {
		if s.add <= v && (s.del == 0 || v < s.del) {
			return true
		}
	}
	return false
}

// Index is a versioned secondary index. Entries are never removed while the
// database is live (garbage collection of dead spans is future work; the
// paper similarly keeps no old page versions but index history is what lets
// this implementation keep page application lazy while staying consistent
// for index scans at any version).
type Index struct {
	def  IndexDef
	mu   sync.RWMutex
	tree *rbtree.Tree[ikey, []span] // guarded by mu
}

func newIndex(def IndexDef) *Index {
	return &Index{def: def, tree: rbtree.New[ikey, []span](cmpIKey)}
}

// keyOf extracts the index key columns from a full row.
func (ix *Index) keyOf(row value.Row) value.Row {
	key := make(value.Row, len(ix.def.Cols))
	for i, c := range ix.def.Cols {
		if c < len(row) {
			key[i] = row[c]
		}
	}
	return key
}

// add makes (key,rid) visible from version ver on. For unique indexes it
// reports ErrDuplicateKey when another live row already carries the key at
// ver (checked against the latest state; the master serializes writers via
// page 2PL so this is exact on the update path).
func (ix *Index) add(key value.Row, rid page.RowID, ver uint64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.def.Unique {
		dup := false
		ix.tree.Ascend(ikey{key: key, rid: -1 << 62}, func(k ikey, spans []span) bool {
			if value.CompareRows(k.key, key) != 0 {
				return false
			}
			if k.rid != rid && visible(spans, VersionLatest) {
				dup = true
				return false
			}
			return true
		})
		if dup {
			return fmt.Errorf("%w: index %s key %v", ErrDuplicateKey, ix.def.Name, key)
		}
	}
	return ix.addLocked(key, rid, ver)
}

// addUnchecked makes (key,rid) visible from ver without the uniqueness
// check; commit publishes overlay entries validated at execution time, and
// write-set application replays decisions the master already made.
func (ix *Index) addUnchecked(key value.Row, rid page.RowID, ver uint64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked(key, rid, ver)
}

func (ix *Index) addLocked(key value.Row, rid page.RowID, ver uint64) error {
	k := ikey{key: key, rid: rid}
	spans, _ := ix.tree.Get(k)
	spans = append(spans, span{add: ver})
	ix.tree.Put(k, spans)
	return nil
}

// del ends the visibility of (key,rid) at version ver.
func (ix *Index) del(key value.Row, rid page.RowID, ver uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := ikey{key: key, rid: rid}
	spans, ok := ix.tree.Get(k)
	if !ok {
		return
	}
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].del == 0 {
			spans[i].del = ver
			break
		}
	}
	ix.tree.Put(k, spans)
}

// scan iterates entries with key >= from (nil from = whole index) visible at
// version v, in key order, until fn returns false.
//
// The index latch is NEVER held while fn runs: fn typically fetches pages,
// and a committing update transaction holds page latches while publishing
// index entries — holding the index latch across fn would create a classic
// index->page vs page->index deadlock. Entries are therefore collected in
// chunks under a shared latch and delivered latch-free. Entries inserted
// behind the cursor between chunks are invisible at the reader's version by
// construction (write-sets are acknowledged before the version is ever
// assigned to a reader).
func (ix *Index) scan(from value.Row, v uint64, fn func(key value.Row, rid page.RowID) bool) {
	const chunk = 256
	var resume *ikey
	buf := make([]ikey, 0, chunk)
	for {
		buf = buf[:0]
		start := ikey{rid: -1 << 62}
		if resume != nil {
			start = *resume
		} else if from != nil {
			start = ikey{key: from, rid: -1 << 62}
		}
		ix.mu.RLock()
		iter := func(k ikey, spans []span) bool {
			if resume != nil && cmpIKey(k, *resume) <= 0 {
				return true
			}
			if visible(spans, v) {
				buf = append(buf, ikey{key: k.key.Clone(), rid: k.rid})
			}
			return len(buf) < chunk
		}
		if resume == nil && from == nil {
			ix.tree.AscendAll(iter)
		} else {
			ix.tree.Ascend(start, iter)
		}
		ix.mu.RUnlock()
		for _, k := range buf {
			if !fn(k.key, k.rid) {
				return
			}
		}
		if len(buf) < chunk {
			return
		}
		last := buf[len(buf)-1]
		resume = &last
	}
}

// lookupEq collects the row ids whose key equals key exactly, visible at v.
func (ix *Index) lookupEq(key value.Row, v uint64) []page.RowID {
	var out []page.RowID
	ix.scan(key, v, func(k value.Row, rid page.RowID) bool {
		if value.CompareRows(k, key) != 0 {
			return false
		}
		out = append(out, rid)
		return true
	})
	return out
}

// entryCount returns the number of (key,row) pairs tracked (including dead
// spans); diagnostics only.
func (ix *Index) entryCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// discardAbove removes the effects of modifications with version > v:
// spans added after v are dropped and deletions after v are reopened. Used
// during master fail-over to purge eagerly-published index entries whose
// write-sets were only partially propagated and never acknowledged.
func (ix *Index) discardAbove(v uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	type patch struct {
		k     ikey
		spans []span
	}
	var patches []patch
	ix.tree.AscendAll(func(k ikey, spans []span) bool {
		changed := false
		kept := spans[:0:0]
		for _, s := range spans {
			if s.add > v {
				changed = true
				continue
			}
			if s.del > v {
				s.del = 0
				changed = true
			}
			kept = append(kept, s)
		}
		if changed {
			patches = append(patches, patch{k: k, spans: kept})
		}
		return true
	})
	for _, p := range patches {
		ix.tree.Put(p.k, p.spans)
	}
}

// gc removes spans that died at or before the low-water version lw (no
// reader at >= lw can see them) and deletes entries left with no spans.
// Returns the number of spans removed. This is the index-history garbage
// collection the paper leaves as future work for its page versions; index
// history is what this implementation retains, so it is what needs GC.
func (ix *Index) gc(lw uint64) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	type patch struct {
		k     ikey
		spans []span
	}
	var patches []patch
	var dead []ikey
	removed := 0
	ix.tree.AscendAll(func(k ikey, spans []span) bool {
		keep := spans[:0:0]
		for _, s := range spans {
			if s.del != 0 && s.del <= lw {
				removed++
				continue
			}
			keep = append(keep, s)
		}
		if len(keep) == len(spans) {
			return true
		}
		if len(keep) == 0 {
			dead = append(dead, k)
			return true
		}
		patches = append(patches, patch{k: k, spans: keep})
		return true
	})
	for _, p := range patches {
		ix.tree.Put(p.k, p.spans)
	}
	for _, k := range dead {
		ix.tree.Delete(k)
	}
	return removed
}

// reset discards all entries (used before an index rebuild during node
// reintegration).
func (ix *Index) reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.tree = rbtree.New[ikey, []span](cmpIKey)
}
