package heap

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dmv/internal/obs"
	"dmv/internal/page"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

// Txn is the storage-transaction interface consumed by the SQL executor.
// ReadTx and UpdateTx implement it.
type Txn interface {
	// Engine returns the owning engine (catalog access).
	Engine() *Engine
	// ReadOnly reports whether mutations are allowed.
	ReadOnly() bool
	// Fetch returns the row with the given id, if it exists in this
	// transaction's view.
	Fetch(table int, rid page.RowID) (value.Row, bool, error)
	// Scan iterates all rows of the table until fn returns false.
	Scan(table int, fn func(rid page.RowID, row value.Row) bool) error
	// IndexScan iterates index entries with key >= from (nil = all) in key
	// order until fn returns false.
	IndexScan(table, idx int, from value.Row, fn func(key value.Row, rid page.RowID) bool) error
	// LookupEq returns the row ids whose index key equals key.
	LookupEq(table, idx int, key value.Row) ([]page.RowID, error)
	// Insert adds a row, returning its id.
	Insert(table int, row value.Row) (page.RowID, error)
	// Update replaces the row with the given id.
	Update(table int, rid page.RowID, row value.Row) error
	// Delete removes the row with the given id.
	Delete(table int, rid page.RowID) error
}

// compile-time interface checks.
var (
	_ Txn = (*ReadTx)(nil)
	_ Txn = (*UpdateTx)(nil)
)

// errStopScan is a private sentinel used to break out of page.View scans.
var errStopScan = errors.New("heap: stop scan")

// ---------------------------------------------------------------------------
// Read-only transactions
// ---------------------------------------------------------------------------

// ReadTx is a read-only transaction pinned to a version vector. It takes no
// transaction-duration locks: every page it touches is materialized at the
// assigned version on demand. A nil vector means "latest" (stand-alone
// operation).
type ReadTx struct {
	e *Engine
	v vclock.Vector
}

// BeginRead starts a read-only transaction at version vector v (nil =
// latest materialized state).
func (e *Engine) BeginRead(v vclock.Vector) *ReadTx {
	return &ReadTx{e: e, v: v}
}

// Engine implements Txn.
func (tx *ReadTx) Engine() *Engine { return tx.e }

// ReadOnly implements Txn.
func (tx *ReadTx) ReadOnly() bool { return true }

// Version returns the transaction's assigned vector (nil = latest).
func (tx *ReadTx) Version() vclock.Vector { return tx.v }

func (tx *ReadTx) verFor(table int) uint64 {
	if tx.v == nil {
		return VersionLatest
	}
	return tx.v.Get(table)
}

// Fetch implements Txn.
func (tx *ReadTx) Fetch(table int, rid page.RowID) (value.Row, bool, error) {
	t, err := tx.e.table(table)
	if err != nil {
		return nil, false, err
	}
	pg := t.locate(rid)
	if pg == nil {
		return nil, false, nil
	}
	tx.e.observe(table, pg.ID())
	return pg.Get(rid, tx.verFor(table))
}

// Scan implements Txn.
func (tx *ReadTx) Scan(table int, fn func(rid page.RowID, row value.Row) bool) error {
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	v := tx.verFor(table)
	for _, pg := range t.pagesSnapshot() {
		if pg.CreateVersion() > v {
			continue
		}
		tx.e.observe(table, pg.ID())
		err := pg.View(v, func(rows map[page.RowID]value.Row) error {
			for rid, row := range rows {
				if !fn(rid, row.Clone()) {
					return errStopScan
				}
			}
			return nil
		})
		if errors.Is(err, errStopScan) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// IndexScan implements Txn.
func (tx *ReadTx) IndexScan(table, idx int, from value.Row, fn func(key value.Row, rid page.RowID) bool) error {
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	ix, err := t.index(idx)
	if err != nil {
		return err
	}
	ix.scan(from, tx.verFor(table), fn)
	return nil
}

// LookupEq implements Txn.
func (tx *ReadTx) LookupEq(table, idx int, key value.Row) ([]page.RowID, error) {
	t, err := tx.e.table(table)
	if err != nil {
		return nil, err
	}
	ix, err := t.index(idx)
	if err != nil {
		return nil, err
	}
	return ix.lookupEq(key, tx.verFor(table)), nil
}

// Insert implements Txn (always fails: read-only).
func (tx *ReadTx) Insert(int, value.Row) (page.RowID, error) { return 0, ErrReadOnly }

// Update implements Txn (always fails: read-only).
func (tx *ReadTx) Update(int, page.RowID, value.Row) error { return ErrReadOnly }

// Delete implements Txn (always fails: read-only).
func (tx *ReadTx) Delete(int, page.RowID) error { return ErrReadOnly }

// ---------------------------------------------------------------------------
// Update transactions
// ---------------------------------------------------------------------------

type undoOp struct {
	t      *Table
	pg     *page.Page
	kind   page.OpKind
	rid    page.RowID
	before value.Row
}

type idxOp struct {
	table int
	ix    *Index
	key   value.Row
	rid   page.RowID
	add   bool
}

// UpdateTx is an update transaction executing on a master database under
// strict two-phase page locking. It must be used by a single goroutine.
type UpdateTx struct {
	e      *Engine
	id     uint64
	locked map[*page.Page]struct{}
	order  []*page.Page
	undo   []undoOp
	recs   []Record
	tables map[int]struct{}
	ovl    []idxOp
	done   bool
	trace  obs.TraceContext
}

// SetTrace attaches the transaction's trace context; Commit stamps it into
// the broadcast write-set so replicas record their apply work as child
// spans. Call before Commit, from the transaction's own goroutine.
func (tx *UpdateTx) SetTrace(tc obs.TraceContext) {
	if tx == nil {
		return
	}
	tx.trace = tc
}

// BeginUpdate starts an update transaction.
func (e *Engine) BeginUpdate() *UpdateTx {
	return &UpdateTx{
		e:      e,
		id:     e.nextTxID(),
		locked: make(map[*page.Page]struct{}, 8),
		tables: make(map[int]struct{}, 4),
	}
}

// Engine implements Txn.
func (tx *UpdateTx) Engine() *Engine { return tx.e }

// ReadOnly implements Txn.
func (tx *UpdateTx) ReadOnly() bool { return false }

// lockPage acquires (or re-enters) the exclusive latch on pg, bounded by the
// engine lock timeout. Timeouts resolve deadlocks: the transaction aborts
// and the caller retries.
func (tx *UpdateTx) lockPage(pg *page.Page) error {
	if tx.done {
		return ErrTxDone
	}
	if _, held := tx.locked[pg]; held {
		return nil
	}
	if !pg.TryLockX() {
		start := time.Now()
		deadline := start.Add(tx.e.opts.LockTimeout)
		for {
			time.Sleep(20 * time.Microsecond)
			if pg.TryLockX() {
				break
			}
			if time.Now().After(deadline) {
				tx.e.met.lockTimeouts.Inc()
				tx.e.met.lockWaitUS.ObserveSince(start)
				return fmt.Errorf("%w (tx %d, %s)", ErrLockTimeout, tx.id, pg)
			}
		}
		tx.e.met.lockWaitUS.ObserveSince(start)
	}
	tx.locked[pg] = struct{}{}
	tx.order = append(tx.order, pg)
	tx.e.observe(pg.Table(), pg.ID())
	return nil
}

func (tx *UpdateTx) unlockAll() {
	for i := len(tx.order) - 1; i >= 0; i-- {
		tx.order[i].UnlockX()
	}
	tx.order = nil
	tx.locked = map[*page.Page]struct{}{}
}

// Fetch implements Txn: reads the latest state under an exclusive page
// latch held to commit (the transaction sees its own writes).
func (tx *UpdateTx) Fetch(table int, rid page.RowID) (value.Row, bool, error) {
	t, err := tx.e.table(table)
	if err != nil {
		return nil, false, err
	}
	pg := t.locate(rid)
	if pg == nil {
		return nil, false, nil
	}
	if err := tx.lockPage(pg); err != nil {
		return nil, false, err
	}
	row, ok := pg.XRows()[rid]
	if !ok {
		return nil, false, nil
	}
	return row.Clone(), true, nil
}

// Scan implements Txn: locks every page of the table (a serializable table
// scan; the TPC-W update transactions never do this on large tables).
func (tx *UpdateTx) Scan(table int, fn func(rid page.RowID, row value.Row) bool) error {
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	for _, pg := range t.pagesSnapshot() {
		if err := tx.lockPage(pg); err != nil {
			return err
		}
		for rid, row := range pg.XRows() {
			if !fn(rid, row.Clone()) {
				return nil
			}
		}
	}
	return nil
}

// overlayFor splits the transaction's pending index operations for one
// index into added entries (sorted) and a deleted-entry set.
func (tx *UpdateTx) overlayFor(ix *Index) (adds []ikey, dels map[string]struct{}) {
	for _, op := range tx.ovl {
		if op.ix != ix {
			continue
		}
		if op.add {
			adds = append(adds, ikey{key: op.key, rid: op.rid})
		} else {
			if dels == nil {
				dels = make(map[string]struct{}, 4)
			}
			dels[entryKey(op.key, op.rid)] = struct{}{}
		}
	}
	sort.Slice(adds, func(i, j int) bool { return cmpIKey(adds[i], adds[j]) < 0 })
	return adds, dels
}

func entryKey(key value.Row, rid page.RowID) string {
	return key.Key() + "#" + fmt.Sprint(rid)
}

// IndexScan implements Txn: merges the committed index state (latest
// versions) with this transaction's uncommitted overlay.
func (tx *UpdateTx) IndexScan(table, idx int, from value.Row, fn func(key value.Row, rid page.RowID) bool) error {
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	ix, err := t.index(idx)
	if err != nil {
		return err
	}
	adds, dels := tx.overlayFor(ix)
	// Skip overlay adds before `from`.
	i := 0
	if from != nil {
		lo := ikey{key: from, rid: -1 << 62}
		for i < len(adds) && cmpIKey(adds[i], lo) < 0 {
			i++
		}
	}
	stopped := false
	ix.scan(from, VersionLatest, func(k value.Row, rid page.RowID) bool {
		cur := ikey{key: k, rid: rid}
		for i < len(adds) && cmpIKey(adds[i], cur) < 0 {
			if !fn(adds[i].key, adds[i].rid) {
				stopped = true
				return false
			}
			i++
		}
		if dels != nil {
			if _, dead := dels[entryKey(k, rid)]; dead {
				return true
			}
		}
		if !fn(k, rid) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return nil
	}
	for ; i < len(adds); i++ {
		if !fn(adds[i].key, adds[i].rid) {
			return nil
		}
	}
	return nil
}

// LookupEq implements Txn.
func (tx *UpdateTx) LookupEq(table, idx int, key value.Row) ([]page.RowID, error) {
	var out []page.RowID
	err := tx.IndexScan(table, idx, key, func(k value.Row, rid page.RowID) bool {
		if value.CompareRows(k, key) != 0 {
			return false
		}
		out = append(out, rid)
		return true
	})
	return out, err
}

func (tx *UpdateTx) coerce(t *Table, row value.Row) value.Row {
	out := make(value.Row, len(t.def.Cols))
	for i := range t.def.Cols {
		if i < len(row) {
			out[i] = value.Coerce(row[i], t.def.Cols[i].Type)
		}
	}
	return out
}

// checkUnique verifies that no live row other than excludeRid carries key in
// a unique index, taking the transaction's own overlay into account.
func (tx *UpdateTx) checkUnique(table, idxOrd int, ix *Index, key value.Row, excludeRid page.RowID) error {
	if !ix.def.Unique {
		return nil
	}
	var dup bool
	err := tx.IndexScan(table, idxOrd, key, func(k value.Row, rid page.RowID) bool {
		if value.CompareRows(k, key) != 0 {
			return false
		}
		if rid != excludeRid {
			dup = true
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if dup {
		return fmt.Errorf("%w: index %s key %v", ErrDuplicateKey, ix.def.Name, key)
	}
	return nil
}

// Insert implements Txn.
func (tx *UpdateTx) Insert(table int, row value.Row) (page.RowID, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	t, err := tx.e.table(table)
	if err != nil {
		return 0, err
	}
	r := tx.coerce(t, row)
	indexes := t.allIndexes()
	rid := page.RowID(t.nextRowID.Add(1))
	for ord, ix := range indexes {
		if err := tx.checkUnique(table, ord, ix, ix.keyOf(r), rid); err != nil {
			return 0, err
		}
	}
	pg := t.reserveSlot()
	if err := tx.lockPage(pg); err != nil {
		return 0, err
	}
	pg.XApply(page.RowOp{Kind: page.OpInsert, Row: rid, Data: r})
	t.setLoc(rid, pg)
	tx.undo = append(tx.undo, undoOp{t: t, pg: pg, kind: page.OpInsert, rid: rid})
	tx.recs = append(tx.recs, Record{
		Table: table,
		Page:  pg.ID(),
		Op:    page.RowOp{Kind: page.OpInsert, Row: rid, Data: r},
	})
	for _, ix := range indexes {
		tx.ovl = append(tx.ovl, idxOp{table: table, ix: ix, key: ix.keyOf(r), rid: rid, add: true})
	}
	tx.tables[table] = struct{}{}
	return rid, nil
}

// Update implements Txn.
func (tx *UpdateTx) Update(table int, rid page.RowID, row value.Row) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	pg := t.locate(rid)
	if pg == nil {
		return fmt.Errorf("%w: table %s row %d", ErrRowNotFound, t.def.Name, rid)
	}
	if err := tx.lockPage(pg); err != nil {
		return err
	}
	before, ok := pg.XRows()[rid]
	if !ok {
		return fmt.Errorf("%w: table %s row %d", ErrRowNotFound, t.def.Name, rid)
	}
	r := tx.coerce(t, row)
	indexes := t.allIndexes()
	for ord, ix := range indexes {
		oldKey, newKey := ix.keyOf(before), ix.keyOf(r)
		if value.CompareRows(oldKey, newKey) == 0 {
			continue
		}
		if err := tx.checkUnique(table, ord, ix, newKey, rid); err != nil {
			return err
		}
	}
	beforeCopy := before.Clone()
	pg.XApply(page.RowOp{Kind: page.OpUpdate, Row: rid, Data: r})
	tx.undo = append(tx.undo, undoOp{t: t, pg: pg, kind: page.OpUpdate, rid: rid, before: beforeCopy})
	tx.recs = append(tx.recs, Record{
		Table: table,
		Page:  pg.ID(),
		Op:    page.RowOp{Kind: page.OpUpdate, Row: rid, Data: r},
		Old:   beforeCopy,
	})
	for _, ix := range indexes {
		oldKey, newKey := ix.keyOf(beforeCopy), ix.keyOf(r)
		if value.CompareRows(oldKey, newKey) == 0 {
			continue
		}
		tx.ovl = append(tx.ovl,
			idxOp{table: table, ix: ix, key: oldKey, rid: rid, add: false},
			idxOp{table: table, ix: ix, key: newKey, rid: rid, add: true})
	}
	tx.tables[table] = struct{}{}
	return nil
}

// Delete implements Txn.
func (tx *UpdateTx) Delete(table int, rid page.RowID) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.e.table(table)
	if err != nil {
		return err
	}
	pg := t.locate(rid)
	if pg == nil {
		return fmt.Errorf("%w: table %s row %d", ErrRowNotFound, t.def.Name, rid)
	}
	if err := tx.lockPage(pg); err != nil {
		return err
	}
	before, ok := pg.XRows()[rid]
	if !ok {
		return fmt.Errorf("%w: table %s row %d", ErrRowNotFound, t.def.Name, rid)
	}
	beforeCopy := before.Clone()
	pg.XApply(page.RowOp{Kind: page.OpDelete, Row: rid})
	tx.undo = append(tx.undo, undoOp{t: t, pg: pg, kind: page.OpDelete, rid: rid, before: beforeCopy})
	tx.recs = append(tx.recs, Record{
		Table: table,
		Page:  pg.ID(),
		Op:    page.RowOp{Kind: page.OpDelete, Row: rid},
		Old:   beforeCopy,
	})
	for _, ix := range t.allIndexes() {
		tx.ovl = append(tx.ovl, idxOp{table: table, ix: ix, key: ix.keyOf(beforeCopy), rid: rid, add: false})
	}
	tx.tables[table] = struct{}{}
	return nil
}

// Commit finishes the transaction, implementing the master pre-commit of
// Figure 2 in the paper: tick the version vector for the written tables,
// stamp the modified pages, publish the index entries, invoke broadcast with
// the write-set (the replication layer sends it to every replica and waits
// for acknowledgments), then release all page locks.
//
// broadcast may be nil (stand-alone operation). The returned write-set
// version is the new DBVersion the master piggybacks on its commit reply.
func (tx *UpdateTx) Commit(broadcast func(*WriteSet) error) (vclock.Vector, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if len(tx.recs) == 0 {
		tx.done = true
		tx.unlockAll()
		return nil, nil
	}
	tables := make([]int, 0, len(tx.tables))
	for t := range tx.tables {
		tables = append(tables, t)
	}
	sort.Ints(tables)
	ver := tx.e.clock.Tick(tables)

	// Stamp modified pages with their table's new version.
	stamped := make(map[*page.Page]struct{}, len(tx.recs))
	for _, rec := range tx.recs {
		t, err := tx.e.table(rec.Table)
		if err != nil {
			continue
		}
		pg := t.pageAt(rec.Page)
		if pg == nil {
			continue
		}
		if _, done := stamped[pg]; done {
			continue
		}
		stamped[pg] = struct{}{}
		v := ver.Get(rec.Table)
		pg.XStamp(v)
		pg.StampCreateVersion(v)
	}
	for _, tid := range tables {
		if t, err := tx.e.table(tid); err == nil {
			t.bumpVer(ver.Get(tid))
		}
	}
	// Publish index entries at the commit version.
	for _, op := range tx.ovl {
		v := ver.Get(op.table)
		if op.add {
			// Uniqueness was validated at execution time under 2PL.
			if err := op.ix.addUnchecked(op.key, op.rid, v); err != nil {
				return nil, err
			}
		} else {
			op.ix.del(op.key, op.rid, v)
		}
	}
	ws := &WriteSet{TxID: tx.id, Version: ver, Tables: tables, Records: tx.recs, Trace: tx.trace}
	debugSealWriteSet(ws)
	var bErr error
	if broadcast != nil {
		bErr = broadcast(ws)
	}
	if tx.e.opts.CommitDelay != nil {
		tx.e.opts.CommitDelay()
	}
	tx.done = true
	tx.unlockAll()
	tx.e.met.commits.Inc()
	tx.e.met.wsRecords.Add(int64(len(ws.Records)))
	if bErr != nil {
		return ver, fmt.Errorf("broadcast write-set: %w", bErr)
	}
	return ver, nil
}

// Rollback undoes every modification (before-images) and releases all locks.
func (tx *UpdateTx) Rollback() error {
	if tx.done {
		return nil
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case page.OpInsert:
			u.pg.XApply(page.RowOp{Kind: page.OpDelete, Row: u.rid})
		case page.OpUpdate, page.OpDelete:
			u.pg.XApply(page.RowOp{Kind: page.OpInsert, Row: u.rid, Data: u.before})
		}
	}
	tx.undo = nil
	tx.recs = nil
	tx.ovl = nil
	tx.done = true
	tx.unlockAll()
	return nil
}
