package heap

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dmv/internal/page"
	"dmv/internal/value"
	"dmv/internal/vclock"
)

func newTestEngine(t *testing.T) (*Engine, int) {
	t.Helper()
	e := NewEngine(Options{PageCap: 4})
	id, err := e.CreateTable(TableDef{
		Name: "item",
		Cols: []Column{
			{Name: "i_id", Type: value.TInt},
			{Name: "i_title", Type: value.TString},
			{Name: "i_stock", Type: value.TInt},
		},
	})
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if _, err := e.CreateIndex(id, IndexDef{Name: "pk_item", Cols: []int{0}, Unique: true}); err != nil {
		t.Fatalf("create index: %v", err)
	}
	if _, err := e.CreateIndex(id, IndexDef{Name: "ix_title", Cols: []int{1}}); err != nil {
		t.Fatalf("create index: %v", err)
	}
	return e, id
}

func loadItems(t *testing.T, e *Engine, table, n int) {
	t.Helper()
	rows := make([]value.Row, 0, n)
	for i := 1; i <= n; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("title-%03d", i)),
			value.NewInt(100),
		})
	}
	if err := e.Load(table, rows); err != nil {
		t.Fatalf("load: %v", err)
	}
}

func fetchByPK(t *testing.T, tx Txn, table int, pk int64) (value.Row, bool) {
	t.Helper()
	rids, err := tx.LookupEq(table, 0, value.Row{value.NewInt(pk)})
	if err != nil {
		t.Fatalf("lookup pk %d: %v", pk, err)
	}
	if len(rids) == 0 {
		return nil, false
	}
	if len(rids) > 1 {
		t.Fatalf("pk %d resolved to %d rows", pk, len(rids))
	}
	row, ok, err := tx.Fetch(table, rids[0])
	if err != nil {
		t.Fatalf("fetch pk %d: %v", pk, err)
	}
	return row, ok
}

func TestLoadAndReadLatest(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 10)

	tx := e.BeginRead(nil)
	row, ok := fetchByPK(t, tx, tbl, 7)
	if !ok {
		t.Fatal("pk 7 not found")
	}
	if got := row[1].AsString(); got != "title-007" {
		t.Fatalf("title = %q, want title-007", got)
	}
	count := 0
	if err := tx.Scan(tbl, func(page.RowID, value.Row) bool { count++; return true }); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if count != 10 {
		t.Fatalf("scan saw %d rows, want 10", count)
	}
}

func TestUpdateTxCommitAndWriteSet(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 5)

	tx := e.BeginUpdate()
	row, ok := fetchByPK(t, tx, tbl, 3)
	if !ok {
		t.Fatal("pk 3 not found")
	}
	rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(3)})
	row[2] = value.NewInt(42)
	if err := tx.Update(tbl, rids[0], row); err != nil {
		t.Fatalf("update: %v", err)
	}
	var captured *WriteSet
	ver, err := tx.Commit(func(ws *WriteSet) error { captured = ws; return nil })
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if ver.Get(tbl) != 1 {
		t.Fatalf("version = %v, want table entry 1", ver)
	}
	if captured == nil || len(captured.Records) != 1 {
		t.Fatalf("write-set = %+v, want 1 record", captured)
	}
	if captured.Records[0].Old == nil {
		t.Fatal("update record missing before-image")
	}

	rtx := e.BeginRead(nil)
	got, ok := fetchByPK(t, rtx, tbl, 3)
	if !ok || got[2].AsInt() != 42 {
		t.Fatalf("after commit stock = %v, want 42", got)
	}
}

func TestRollbackRestoresState(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 5)

	tx := e.BeginUpdate()
	rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(2)})
	if err := tx.Delete(tbl, rids[0]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := tx.Insert(tbl, value.Row{value.NewInt(99), value.NewString("new"), value.NewInt(1)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}

	rtx := e.BeginRead(nil)
	if _, ok := fetchByPK(t, rtx, tbl, 2); !ok {
		t.Fatal("pk 2 missing after rollback")
	}
	if _, ok := fetchByPK(t, rtx, tbl, 99); ok {
		t.Fatal("pk 99 visible after rollback")
	}
	n, err := e.RowCountAt(tbl, VersionLatest)
	if err != nil {
		t.Fatalf("row count: %v", err)
	}
	if n != 5 {
		t.Fatalf("row count = %d, want 5", n)
	}
}

func TestUniqueConstraint(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 3)

	tx := e.BeginUpdate()
	_, err := tx.Insert(tbl, value.Row{value.NewInt(2), value.NewString("dup"), value.NewInt(0)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("insert dup pk err = %v, want ErrDuplicateKey", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
}

// TestReplicationLazyApply drives the full master->slave path: the slave
// buffers write-sets and materializes them only when a reader shows up.
func TestReplicationLazyApply(t *testing.T) {
	master, tbl := newTestEngine(t)
	slaveE, _ := newTestEngine(t)
	loadItems(t, master, tbl, 8)
	loadItems(t, slaveE, tbl, 8)

	commitOne := func(pk, stock int64) vclock.Vector {
		tx := master.BeginUpdate()
		rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(pk)})
		row, _, err := tx.Fetch(tbl, rids[0])
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		row[2] = value.NewInt(stock)
		if err := tx.Update(tbl, rids[0], row); err != nil {
			t.Fatalf("update: %v", err)
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { return slaveE.ApplyWriteSet(ws) })
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		return ver
	}

	v1 := commitOne(1, 11)
	v2 := commitOne(1, 22)

	if got := slaveE.PendingMods(); got == 0 {
		t.Fatal("slave applied mods eagerly; want buffered (lazy)")
	}

	// A reader at v1 must abort: the only way to read v1 now requires the
	// page at version 1, but a reader at v2 may have (or will) upgrade it.
	// First materialize v2 via a reader, then check v1 aborts.
	rtx2 := e2reader(slaveE, v2)
	row, ok := fetchByPK(t, rtx2, tbl, 1)
	if !ok || row[2].AsInt() != 22 {
		t.Fatalf("slave read at v2 = %v, want stock 22", row)
	}

	rtx1 := e2reader(slaveE, v1)
	rids, _ := rtx1.LookupEq(tbl, 0, value.Row{value.NewInt(1)})
	_, _, err := rtx1.Fetch(tbl, rids[0])
	if !errors.Is(err, page.ErrVersionConflict) {
		t.Fatalf("stale read err = %v, want ErrVersionConflict", err)
	}
}

func e2reader(e *Engine, v vclock.Vector) *ReadTx { return e.BeginRead(v) }

// TestReplicationInsertVisibility checks that inserts (new rows, possibly
// new pages) become visible on the slave exactly at their commit version.
func TestReplicationInsertVisibility(t *testing.T) {
	master, tbl := newTestEngine(t)
	slaveE, _ := newTestEngine(t)
	loadItems(t, master, tbl, 2)
	loadItems(t, slaveE, tbl, 2)

	var vers []vclock.Vector
	for i := 0; i < 10; i++ {
		tx := master.BeginUpdate()
		pk := int64(100 + i)
		if _, err := tx.Insert(tbl, value.Row{value.NewInt(pk), value.NewString("x"), value.NewInt(pk)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { return slaveE.ApplyWriteSet(ws) })
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		vers = append(vers, ver)
	}

	// Read in increasing version order (readers of increasing versions may
	// coexist; decreasing would abort by design).
	for i, v := range vers {
		rtx := slaveE.BeginRead(v)
		pk := int64(100 + i)
		if _, ok := fetchByPK(t, rtx, tbl, pk); !ok {
			t.Fatalf("pk %d not visible at %v", pk, v)
		}
		// And a row inserted later must be invisible at this version.
		if i+1 < len(vers) {
			if _, ok := fetchByPK(t, rtx, tbl, int64(100+i+1)); ok {
				t.Fatalf("pk %d visible too early at %v", 100+i+1, v)
			}
		}
		n, err := slaveE.RowCountAt(tbl, v.Get(tbl))
		if err != nil {
			t.Fatalf("count at %v: %v", v, err)
		}
		if n != 2+i+1 {
			t.Fatalf("count at v%d = %d, want %d", i, n, 2+i+1)
		}
	}
}

func TestConcurrentUpdatersDisjointRows(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 64)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				pk := int64(w*8 + i%8 + 1)
				tx := e.BeginUpdate()
				rids, err := tx.LookupEq(tbl, 0, value.Row{value.NewInt(pk)})
				if err != nil || len(rids) != 1 {
					_ = tx.Rollback()
					errs <- fmt.Errorf("lookup pk %d: %v (%d rids)", pk, err, len(rids))
					return
				}
				row, _, err := tx.Fetch(tbl, rids[0])
				if err != nil {
					_ = tx.Rollback()
					errs <- err
					return
				}
				row[2] = value.NewInt(row[2].AsInt() + 1)
				if err := tx.Update(tbl, rids[0], row); err != nil {
					_ = tx.Rollback()
					if errors.Is(err, ErrLockTimeout) {
						continue
					}
					errs <- err
					return
				}
				if _, err := tx.Commit(nil); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}
}

func TestFuzzyCheckpointRestore(t *testing.T) {
	e, tbl := newTestEngine(t)
	loadItems(t, e, tbl, 20)

	// Mutate a few rows.
	for i := 1; i <= 5; i++ {
		tx := e.BeginUpdate()
		rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(int64(i))})
		row, _, _ := tx.Fetch(tbl, rids[0])
		row[2] = value.NewInt(int64(1000 + i))
		if err := tx.Update(tbl, rids[0], row); err != nil {
			t.Fatalf("update: %v", err)
		}
		if _, err := tx.Commit(nil); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}

	cp := e.FuzzyCheckpoint()
	blob, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cp2, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	fresh, _ := newTestEngine(t)
	if err := fresh.RestoreCheckpoint(cp2); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rtx := fresh.BeginRead(nil)
	row, ok := fetchByPK(t, rtx, tbl, 3)
	if !ok || row[2].AsInt() != 1003 {
		t.Fatalf("restored stock = %v, want 1003", row)
	}
	n, _ := fresh.RowCountAt(tbl, VersionLatest)
	if n != 20 {
		t.Fatalf("restored count = %d, want 20", n)
	}
}

func TestMigrationDelta(t *testing.T) {
	master, tbl := newTestEngine(t)
	support, _ := newTestEngine(t)
	stale, _ := newTestEngine(t)
	loadItems(t, master, tbl, 20)
	loadItems(t, support, tbl, 20)
	loadItems(t, stale, tbl, 20)

	// 30 commits reach the support slave but not the stale node.
	var last vclock.Vector
	for i := 0; i < 30; i++ {
		tx := master.BeginUpdate()
		pk := int64(i%20 + 1)
		rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(pk)})
		row, _, _ := tx.Fetch(tbl, rids[0])
		row[2] = value.NewInt(int64(i))
		if err := tx.Update(tbl, rids[0], row); err != nil {
			t.Fatalf("update: %v", err)
		}
		ver, err := tx.Commit(func(ws *WriteSet) error { return support.ApplyWriteSet(ws) })
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		last = ver
	}

	have := stale.PageVersions()
	delta, err := support.DeltaSince(have, last)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if len(delta) == 0 {
		t.Fatal("no delta pages; want >0")
	}
	if err := stale.InstallDelta(delta); err != nil {
		t.Fatalf("install: %v", err)
	}

	// The stale node must now serve reads at the master's latest vector.
	rtx := stale.BeginRead(last)
	row, ok := fetchByPK(t, rtx, tbl, int64(29%20+1))
	if !ok || row[2].AsInt() != 29 {
		t.Fatalf("reintegrated read = %v, want stock 29", row)
	}
	// And page shipping must have collapsed the 30 modifications: the delta
	// carries at most the number of distinct dirty pages.
	if len(delta) > 20/4+1 {
		t.Fatalf("delta shipped %d pages; want <= %d (collapsed chains)", len(delta), 20/4+1)
	}
}

func TestDiscardAboveCleansPartialPropagation(t *testing.T) {
	master, tbl := newTestEngine(t)
	slaveE, _ := newTestEngine(t)
	loadItems(t, master, tbl, 4)
	loadItems(t, slaveE, tbl, 4)

	// First commit fully propagated and acknowledged.
	tx := master.BeginUpdate()
	rids, _ := tx.LookupEq(tbl, 0, value.Row{value.NewInt(1)})
	row, _, _ := tx.Fetch(tbl, rids[0])
	row[2] = value.NewInt(7)
	if err := tx.Update(tbl, rids[0], row); err != nil {
		t.Fatalf("update: %v", err)
	}
	acked, err := tx.Commit(func(ws *WriteSet) error { return slaveE.ApplyWriteSet(ws) })
	if err != nil {
		t.Fatalf("commit: %v", err)
	}

	// Second commit reaches the slave, but the master dies before the
	// scheduler learns about it: the new scheduler rolls the tier back to
	// the last version it saw.
	tx2 := master.BeginUpdate()
	row2, _, _ := tx2.Fetch(tbl, rids[0])
	row2[2] = value.NewInt(8)
	if err := tx2.Update(tbl, rids[0], row2); err != nil {
		t.Fatalf("update2: %v", err)
	}
	if _, err := tx2.Commit(func(ws *WriteSet) error { return slaveE.ApplyWriteSet(ws) }); err != nil {
		t.Fatalf("commit2: %v", err)
	}

	slaveE.DiscardAbove(acked)
	rtx := slaveE.BeginRead(acked)
	got, ok := fetchByPK(t, rtx, tbl, 1)
	if !ok || got[2].AsInt() != 7 {
		t.Fatalf("after discard stock = %v, want 7", got)
	}
	if slaveE.PendingMods() != 0 {
		t.Fatalf("pending after discard = %d, want 0", slaveE.PendingMods())
	}
}
