package heap

import (
	"fmt"

	"dmv/internal/page"
	"dmv/internal/vclock"
)

// PageVersionMap records, per table id, the applied version of every page a
// node holds (indexed by page id). A reintegrating node sends this to its
// support slave, which replies with only the pages that changed since —
// pages that may have collapsed long chains of row modifications, making
// page shipping faster on average than log replay (Section 4.4).
type PageVersionMap map[int][]uint64

// PageVersions captures this node's page-version map.
func (e *Engine) PageVersions() PageVersionMap {
	out := make(PageVersionMap)
	for _, t := range e.allTables() {
		pages := t.pagesSnapshot()
		vers := make([]uint64, len(pages))
		for i, pg := range pages {
			vers[i] = pg.Applied()
		}
		out[t.id] = vers
	}
	return out
}

// DeltaSince serves a migration request on a support slave: materialize
// everything up to target, then return images of every page that is newer
// than the requester's recorded version (or that the requester does not have
// at all).
func (e *Engine) DeltaSince(have PageVersionMap, target vclock.Vector) ([]page.Image, error) {
	if err := e.MaterializeAll(target); err != nil {
		return nil, fmt.Errorf("materialize for migration: %w", err)
	}
	var out []page.Image
	for _, t := range e.allTables() {
		theirs := have[t.id]
		for i, pg := range t.pagesSnapshot() {
			var theirVer uint64
			known := i < len(theirs)
			if known {
				theirVer = theirs[i]
			}
			v := pg.Applied()
			if known && v <= theirVer {
				continue
			}
			if !known && v == 0 && pg.RowCount() == 0 {
				continue // empty placeholder neither side needs
			}
			out = append(out, pg.SnapshotBlocking())
		}
	}
	return out, nil
}

// InstallDelta installs migrated page images (newer-wins) and rebuilds the
// derived structures. Called on the reintegrating node after it has
// subscribed to the masters' replication streams, so that any write-set
// buffered while the migration was in flight applies cleanly on top (the
// per-group version guard in ApplyWriteSet skips what the images already
// cover).
func (e *Engine) InstallDelta(images []page.Image) error {
	for _, img := range images {
		t, err := e.table(img.Table)
		if err != nil {
			return fmt.Errorf("install delta: %w", err)
		}
		pg := t.ensurePage(img.Page, img.CreateVer)
		pg.Install(img)
	}
	return e.RebuildDerived()
}
