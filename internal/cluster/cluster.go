// Package cluster orchestrates a DMV in-memory database tier: node
// construction and initial load, heartbeat failure detection, master
// election, the three-stage fail-over pipeline (recovery -> data migration
// -> cache warm-up), spare-backup management with the paper's two warm-up
// schemes (1%-of-reads query execution and page-id transfer), periodic fuzzy
// checkpoints, and reintegration of recovered nodes.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/replica"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
	"dmv/internal/vclock"
)

// Errors surfaced by cluster operations.
var (
	// ErrUnknownNode reports an operation naming a node outside the cluster.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNoSupportSlave reports a reintegration with no live support slave.
	ErrNoSupportSlave = errors.New("cluster: no support slave available")
)

// SpareMode selects how a spare backup is maintained.
type SpareMode uint8

// Spare maintenance modes.
const (
	// SpareHot subscribes the spare to the replication stream (up to date at
	// fail-over; only the buffer cache may be cold).
	SpareHot SpareMode = iota + 1
	// SpareStale leaves the spare unsubscribed; it is refreshed only by
	// periodic data migration (the paper's 30-minute-stale backup).
	SpareStale
)

// Config describes the cluster to build.
type Config struct {
	// Slaves is the number of active read replicas (excluding masters).
	Slaves int
	// Spares is the number of spare backup nodes.
	Spares int
	// SpareMode selects hot (subscribed) or stale spares. Default SpareHot.
	SpareMode SpareMode
	// StaleRefresh, for stale spares, is the period between refreshes (the
	// paper's baseline refreshes every 30 minutes). Zero disables refresh.
	StaleRefresh time.Duration
	// Classes are the conflict classes; empty = single master for all
	// tables.
	Classes []scheduler.ConflictClass
	// SchemaDDL creates the schema on every node.
	SchemaDDL []string
	// Load populates one engine with the initial database image. It must be
	// deterministic: every node loads an identical image, modelling the
	// shared on-disk database every node mmaps at startup.
	Load func(e *heap.Engine) error
	// EngineOptions builds per-node engine options (wire a simdisk observer
	// here to model buffer caches). May be nil.
	EngineOptions func(nodeID string) heap.Options
	// DiskFor returns the node's buffer-cache simulator (the same one wired
	// into EngineOptions), or nil. May be nil.
	DiskFor func(nodeID string) *simdisk.Disk
	// HeartbeatInterval is the failure-detection probe period (default
	// 10ms; detection latency is about two intervals).
	HeartbeatInterval time.Duration
	// PingTimeout bounds each heartbeat probe so a gray-failed node (alive
	// but unresponsive) cannot stall the monitor. Default 4x the heartbeat
	// interval.
	PingTimeout time.Duration
	// SuspectAfter is the consecutive-miss count at which a node is
	// suspected and quarantined out of read placement (default 2). A miss
	// is a probe deadline or an RTT far outside the node's accrual band.
	SuspectAfter int
	// DeadAfter is the consecutive-miss count at which a suspect is
	// declared dead and fail-over starts (default 4, always > SuspectAfter).
	// Hard probe errors (fail-stop) skip the ladder and kill immediately.
	DeadAfter int
	// AckTimeout bounds each master's wait for a subscriber's write-set
	// acknowledgment (see replica.Options.AckTimeout). Zero waits forever.
	AckTimeout time.Duration
	// CheckpointPeriod starts a fuzzy-checkpoint thread per node (0 = off).
	CheckpointPeriod time.Duration
	// CheckpointDir persists checkpoints to files under this directory
	// (empty = in-memory stable-storage model).
	CheckpointDir string
	// WarmupShare routes this fraction of reads to spares (Section 4.5,
	// first scheme). 0 disables.
	WarmupShare float64
	// PageIDTransfer enables the second warm-up scheme: an active slave
	// ships its resident page ids to the spares on this period (0 = off).
	PageIDTransfer time.Duration
	// PageIDLimit bounds the shipped page-id set per transfer (0 = all).
	PageIDLimit int
	// IndexGCPeriod runs versioned-index garbage collection on every node
	// at this period, at the scheduler's reader low-water mark (0 = off).
	IndexGCPeriod time.Duration
	// OverloadThreshold activates a spare backup as an additional read
	// replica when the mean in-flight reads per slave stays above this
	// value (the paper keeps spares "for overflow in case of failures or
	// potentially overload of active replicas"). 0 disables.
	OverloadThreshold float64
	// OverloadWindow is how long the overload must persist before a spare
	// is activated (default 250ms).
	OverloadWindow time.Duration
	// ScrubInterval runs the anti-entropy scrubber on this period (0 = off):
	// every table's digest is cross-checked against its class master at a
	// common pinned frontier, diverged nodes are quarantined out of read
	// placement, repaired via changed-page shipping, and reintegrated
	// (DESIGN.md §15).
	ScrubInterval time.Duration
	// ScrubTables restricts the sweep to these table ids (nil = all).
	ScrubTables []int
	// Admission configures the primary scheduler's bounded admission queue
	// (Slots == 0 disables). Under overload the queue sheds work at begin
	// with ErrOverloaded instead of letting latency collapse, and its
	// pressure signal feeds spare activation alongside OverloadThreshold.
	Admission scheduler.AdmissionOptions
	// DefaultDeadline is applied by every node to transactions that carry
	// no caller deadline (0 = unbounded). Expired sessions abandon queued
	// statements and commit entry, never a commit already in flight.
	DefaultDeadline time.Duration
	// VersionAffinity enables same-version scheduling (default on; the
	// ablation turns it off).
	NoVersionAffinity bool
	// MaxRetries bounds scheduler retries.
	MaxRetries int
	// PeerSchedulers adds this many standby peer schedulers (Section 4.1:
	// the scheduler state is only the current version vector, so peers can
	// take over almost instantly). Fail the primary with KillScheduler.
	PeerSchedulers int
	// StatementService models each node's CPU: one statement occupies one
	// of ServiceWidth slots for this long (0 = unmodelled). See
	// replica.Options.ServicePerStmt.
	StatementService time.Duration
	// ServiceWidth is CPUs per node (default 2 when StatementService set).
	ServiceWidth int
	// UpdateStatementService is the per-statement CPU demand of update
	// transactions (default = StatementService).
	UpdateStatementService time.Duration
	// OnCommit receives committed update transactions (persistence tier).
	OnCommit func(scheduler.CommitRecord)
	// Seed seeds scheduler randomness.
	Seed int64
	// Obs, when set, receives every cluster metric, transaction trace span,
	// and lifecycle event: it is threaded into the schedulers, replicas, and
	// engines, the fail-over pipeline records its stage durations on the
	// registry's timeline, and the node buffer caches are exported as
	// gauges. Nil disables metrics (the event timeline still works).
	Obs *obs.Registry
	// Flight, when set, is the cluster's flight recorder: the failure
	// detector records health transitions into it and fail-over start /
	// suspicion escalation fire anomaly dumps. One recorder serves the
	// whole in-process cluster (the multiprocess deployment runs one per
	// daemon instead).
	Flight *flight.Recorder
}

// EventKind classifies cluster events. It aliases string so event kinds
// flow into the obs timeline unconverted.
type EventKind = string

// Event kinds.
const (
	EventNodeFailed      EventKind = "node-failed"
	EventMasterElected   EventKind = "master-elected"
	EventSpareActivated  EventKind = "spare-activated"
	EventRecoveryDone    EventKind = "recovery-done"
	EventMigrationDone   EventKind = "migration-done"
	EventReintegrated    EventKind = "reintegrated"
	EventNodeRestarted   EventKind = "node-restarted"
	EventSchedulerSwitch EventKind = "scheduler-switch"
	EventOverload        EventKind = "overload"
	EventNodeSuspect     EventKind = "node-suspect"
	EventNodeCleared     EventKind = "node-cleared"
	EventScrubDiverged   EventKind = "scrub-divergence"
	EventScrubRepaired   EventKind = "scrub-repaired"
)

// Event is one reconfiguration event with its duration where applicable.
// It aliases the obs timeline event so the cluster's log and the
// observability subsystem share one storage and one schema.
type Event = obs.Event

// Node health states tracked by the suspicion detector. The zero value
// (healthy) is the empty string so fresh nodeStates need no initialization.
const (
	healthSuspect = "suspect"
	healthDead    = "dead"
)

type nodeState struct {
	node    *replica.Node
	cp      *replica.Checkpointer
	isSpare bool
	classID int // >= 0 when master of that class

	// Suspicion-detector state; Cluster.mu protects every field below
	// (the guardedfield annotation cannot name a lock on another struct).
	health     string  // "" healthy, healthSuspect, healthDead
	misses     int     // consecutive missed or badly-late probes
	rttMean    float64 // EWMA of probe RTT, microseconds
	rttVar     float64 // EWMA of squared RTT deviation
	rttSamples int     // probes folded into the EWMA
	// fenced marks a node declared dead while still running (gray
	// failure): it is excluded from every topology computation even
	// though Alive() still reports true.
	fenced bool
}

// usable reports whether the node may participate in cluster topology:
// alive and not fenced off as a gray failure.
func (st *nodeState) usable() bool { return st.node.Alive() && !st.fenced }

// Cluster is a running in-memory tier.
type Cluster struct {
	cfg     Config
	scheds  []*scheduler.Scheduler
	primary atomic.Int32

	mu      sync.Mutex
	nodes   map[string]*nodeState // guarded by mu
	order   []string              // guarded by mu
	handled map[string]bool       // guarded by mu; failure handling is idempotent per node
	disks   []*simdisk.Disk       // guarded by mu; every node buffer cache, for gauge export

	// tl is the lifecycle event timeline (cfg.Obs's timeline when a
	// registry is configured, a private one otherwise). Never nil.
	tl *obs.Timeline

	// Suspicion-detector counters (nil-safe when no registry is set).
	metSuspicions      *obs.Counter
	metFalseSuspicions *obs.Counter

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// New builds and starts a cluster: NumClasses master nodes plus cfg.Slaves
// slaves plus cfg.Spares spares, all loaded with the same initial image.
func New(cfg Config) (*Cluster, error) {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = 4 * cfg.HeartbeatInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 2
	}
	if cfg.SpareMode == 0 {
		cfg.SpareMode = SpareHot
	}
	tl := cfg.Obs.Timeline()
	if tl == nil {
		tl = obs.NewTimeline()
	}
	c := &Cluster{
		cfg:                cfg,
		nodes:              make(map[string]*nodeState, 16),
		handled:            make(map[string]bool, 4),
		tl:                 tl,
		metSuspicions:      cfg.Obs.Counter(obs.ClusterSuspicions),
		metFalseSuspicions: cfg.Obs.Counter(obs.ClusterFalseSuspicions),
		stop:               make(chan struct{}),
		done:               make(chan struct{}),
	}
	c.registerMetrics()

	numClasses := len(cfg.Classes)
	if numClasses == 0 {
		numClasses = 1
	}

	// Build all engines and nodes.
	total := numClasses + cfg.Slaves + cfg.Spares
	var nodes []*replica.Node
	for i := 0; i < total; i++ {
		var id string
		switch {
		case i < numClasses:
			id = fmt.Sprintf("master%d", i)
		case i < numClasses+cfg.Slaves:
			id = fmt.Sprintf("slave%d", i-numClasses)
		default:
			id = fmt.Sprintf("spare%d", i-numClasses-cfg.Slaves)
		}
		n, err := c.buildNode(id)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}

	// Scheduler(s) over the schema of the first engine: one primary plus
	// cfg.PeerSchedulers standbys sharing the same topology.
	ref := nodes[0].Engine()
	for si := 0; si <= cfg.PeerSchedulers; si++ {
		opts := scheduler.Options{
			Classes:         cfg.Classes,
			VersionAffinity: !cfg.NoVersionAffinity,
			MaxRetries:      cfg.MaxRetries,
			WarmupShare:     cfg.WarmupShare,
			OnCommit:        cfg.OnCommit,
			OnPeerFailure:   func(id string) { go c.handleFailure(id) },
			Seed:            cfg.Seed + int64(si),
			Obs:             cfg.Obs,
			Flight:          cfg.Flight,
		}
		if si == 0 {
			// Only the primary admits traffic; standbys must not count
			// occupancy they never see, or a take-over would inherit a
			// queue full of ghosts.
			opts.Admission = cfg.Admission
		}
		sched, err := scheduler.New(opts, ref.NumTables(), ref.TableID)
		if err != nil {
			return nil, err
		}
		c.scheds = append(c.scheds, sched)
	}
	// Committed versions fan out to the standby schedulers: a standby's
	// merged vector must cover every acknowledged commit, or a take-over
	// followed by a master fail-over would roll acknowledged state back.
	for si, s := range c.scheds {
		peers := make([]*scheduler.Scheduler, 0, len(c.scheds)-1)
		for pi, p := range c.scheds {
			if pi != si {
				peers = append(peers, p)
			}
		}
		if len(peers) > 0 {
			s.SetVersionFanout(func(v vclock.Vector) {
				for _, p := range peers {
					p.ReportVersion(v)
				}
			})
		}
	}
	sched := c.scheds[0]
	_ = sched

	// Roles and topology (mirrored on every peer scheduler).
	for i, n := range nodes {
		st := c.nodes[n.ID()]
		switch {
		case i < numClasses:
			st.classID = i
			if err := n.Promote(sched.ClassTables(i)); err != nil {
				return nil, err
			}
			c.eachSched(func(s *scheduler.Scheduler) { s.SetMaster(st.classID, n) })
		case i < numClasses+cfg.Slaves:
			st.classID = -1
			c.eachSched(func(s *scheduler.Scheduler) { s.AddSlave(n) })
		default:
			st.classID = -1
			st.isSpare = true
			n.SetRole(replica.RoleSpare)
			c.eachSched(func(s *scheduler.Scheduler) { s.AddSpare(n) })
		}
	}
	c.rewireSubscribers()

	// Checkpoint threads.
	if cfg.CheckpointPeriod > 0 {
		c.mu.Lock()
		for _, st := range c.nodes {
			st.cp = st.node.StartCheckpointer(cfg.CheckpointPeriod)
		}
		c.mu.Unlock()
	}

	// Background loops.
	c.wg.Add(1)
	go c.monitor()
	if cfg.PageIDTransfer > 0 {
		c.wg.Add(1)
		go c.pageIDWarmupLoop()
	}
	if cfg.SpareMode == SpareStale && cfg.StaleRefresh > 0 {
		c.wg.Add(1)
		go c.staleRefreshLoop()
	}
	if cfg.IndexGCPeriod > 0 {
		c.wg.Add(1)
		go c.indexGCLoop()
	}
	if cfg.OverloadThreshold > 0 || cfg.Admission.Slots > 0 {
		c.wg.Add(1)
		go c.overloadLoop()
	}
	if cfg.ScrubInterval > 0 {
		c.wg.Add(1)
		go c.scrubLoop()
	}
	go func() {
		c.wg.Wait()
		close(c.done)
	}()
	return c, nil
}

func (c *Cluster) buildNode(id string) (*replica.Node, error) {
	var opts heap.Options
	if c.cfg.EngineOptions != nil {
		opts = c.cfg.EngineOptions(id)
	}
	if opts.Obs == nil {
		opts.Obs = c.cfg.Obs
	}
	if opts.NodeID == "" {
		opts.NodeID = id
	}
	eng := heap.NewEngine(opts)
	for _, ddl := range c.cfg.SchemaDDL {
		if err := exec.ExecDDL(eng, ddl); err != nil {
			return nil, fmt.Errorf("node %s: %w", id, err)
		}
	}
	if c.cfg.Load != nil {
		if err := c.cfg.Load(eng); err != nil {
			return nil, fmt.Errorf("load node %s: %w", id, err)
		}
	}
	var disk *simdisk.Disk
	if c.cfg.DiskFor != nil {
		disk = c.cfg.DiskFor(id)
	}
	n := replica.NewNode(replica.Options{
		ID:                   id,
		Engine:               eng,
		Disk:                 disk,
		OnPeerFailure:        func(peer string) { go c.handleFailure(peer) },
		OnPeerSuspect:        func(peer string) { go c.notePeerSuspect(peer) },
		AckTimeout:           c.cfg.AckTimeout,
		ServicePerStmt:       c.cfg.StatementService,
		ServiceWidth:         c.cfg.ServiceWidth,
		UpdateServicePerStmt: c.cfg.UpdateStatementService,
		DefaultDeadline:      c.cfg.DefaultDeadline,
		Obs:                  c.cfg.Obs,
	})
	c.mu.Lock()
	c.nodes[id] = &nodeState{node: n, classID: -1}
	c.order = append(c.order, id)
	if disk != nil {
		c.disks = append(c.disks, disk)
	}
	c.mu.Unlock()
	c.registerLagGauges(id, eng)
	return n, nil
}

// registerLagGauges exports the node's DMV staleness against the cluster
// commit frontier: one version-lag gauge per table (frontier minus the
// version the table's pages have actually applied) and one backlog gauge
// counting buffered, not-yet-applied modifications. Both read live engine
// state at snapshot time, so a scrape after reads forced lazy application
// reports zero without any bookkeeping in the apply path.
func (c *Cluster) registerLagGauges(id string, eng *heap.Engine) {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	for ti, name := range eng.TableNames() {
		ti := ti
		reg.GaugeFunc(obs.Labeled(obs.ReplicaVersionLag, "node", id, "table", name), func() float64 {
			frontier := c.frontier()
			applied := eng.AppliedVersions()
			if ti >= len(frontier) || ti >= len(applied) || frontier[ti] <= applied[ti] {
				return 0
			}
			return float64(frontier[ti] - applied[ti])
		})
	}
	reg.GaugeFunc(obs.Labeled(obs.ReplicaApplyBacklog, "node", id), func() float64 {
		return float64(eng.PendingMods())
	})
}

// frontier is the cluster commit frontier: the primary scheduler's merged
// version vector, which covers every acknowledged commit. Nil before the
// schedulers exist (gauge callbacks cannot fire that early, but snapshots
// taken from tests might).
func (c *Cluster) frontier() vclock.Vector {
	if len(c.scheds) == 0 {
		return nil
	}
	return c.Scheduler().Latest()
}

// ClusterSnapshot builds the aggregation-plane view of the in-process
// cluster: the commit frontier, every node's per-table version lag and
// apply backlog, and the metric/trace state. In-process nodes share one
// registry, so the merged snapshot is taken once — summing per-node
// snapshots (the multiprocess path in obs.MergeSnapshots) would multiply
// every counter by the node count.
func (c *Cluster) ClusterSnapshot() obs.ClusterSnapshot {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	nodes := make([]*replica.Node, 0, len(ids))
	healths := make([]string, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, c.nodes[id].node)
		h := c.nodes[id].health
		if h == "" {
			h = "healthy"
		}
		healths = append(healths, h)
	}
	c.mu.Unlock()

	frontier := c.frontier()
	cs := obs.ClusterSnapshot{TakenUnix: time.Now().Unix(), Frontier: frontier}
	for i, n := range nodes {
		nl := obs.NodeLag{Node: ids[i], Role: "down", Health: healths[i], StartUnix: n.StartTime().Unix()}
		if r, err := n.Role(); err == nil {
			nl.Role = r.String()
			applied := n.Engine().AppliedVersions()
			nl.Lag = make([]uint64, len(frontier))
			for t := range nl.Lag {
				if t < len(applied) && frontier[t] > applied[t] {
					nl.Lag[t] = frontier[t] - applied[t]
				}
			}
			nl.PendingMods = n.Engine().PendingMods()
		}
		cs.Nodes = append(cs.Nodes, nl)
	}
	if reg := c.cfg.Obs; reg != nil {
		cs.Merged = reg.Snapshot()
		cs.Spans = reg.Tracer().Dump()
	}
	return cs
}

// rewireSubscribers points every master's replication stream at every other
// live, subscribed node. Stale spares are intentionally left out.
func (c *Cluster) rewireSubscribers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var masters []*replica.Node
	var receivers []replica.Peer
	for _, id := range c.order {
		st := c.nodes[id]
		if st == nil || !st.usable() {
			continue
		}
		if st.classID >= 0 {
			masters = append(masters, st.node)
		}
		if st.isSpare && c.cfg.SpareMode == SpareStale {
			continue
		}
		receivers = append(receivers, st.node)
	}
	for _, m := range masters {
		subs := make([]replica.Peer, 0, len(receivers))
		for _, r := range receivers {
			if r.ID() != m.ID() {
				subs = append(subs, r)
			}
		}
		m.SetSubscribers(subs)
	}
}

// Scheduler returns the cluster's current primary scheduler (the
// transaction entry point).
func (c *Cluster) Scheduler() *scheduler.Scheduler {
	return c.scheds[c.primary.Load()]
}

// eachSched applies a topology mutation to every peer scheduler so a
// standby can take over with a current view.
func (c *Cluster) eachSched(fn func(*scheduler.Scheduler)) {
	for _, s := range c.scheds {
		fn(s)
	}
}

// KillScheduler fails the primary scheduler and promotes the next peer: the
// new primary runs the Section 4.1 take-over (masters abort transactions
// orphaned by the failed scheduler and report their highest versions).
// Returns the index of the new primary, or an error when no peer remains.
func (c *Cluster) KillScheduler() (int, error) {
	cur := int(c.primary.Load())
	next := cur + 1
	if next >= len(c.scheds) {
		return cur, errors.New("cluster: no peer scheduler left")
	}
	if err := c.scheds[next].TakeOver(); err != nil {
		return cur, err
	}
	c.primary.Store(int32(next))
	c.emit(Event{Kind: EventSchedulerSwitch, Node: fmt.Sprintf("scheduler%d", next)})
	return next, nil
}

// Run executes one transaction through the primary scheduler.
func (c *Cluster) Run(spec scheduler.TxnSpec, fn func(*scheduler.Txn) error) error {
	return c.Scheduler().Run(spec, fn)
}

// Node returns the named node (tests, fault injection).
func (c *Cluster) Node(id string) (*replica.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.nodes[id]
	if !ok {
		return nil, false
	}
	return st.node, true
}

// NodeIDs lists the nodes in creation order.
func (c *Cluster) NodeIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// MasterID returns the current master of conflict class ci.
func (c *Cluster) MasterID(ci int) string {
	m := c.Scheduler().Master(ci)
	if m == nil {
		return ""
	}
	return m.ID()
}

// Events returns a copy of the reconfiguration event log.
func (c *Cluster) Events() []Event { return c.tl.Events() }

// OnEvent installs a hook invoked for every event (harness timelines).
func (c *Cluster) OnEvent(fn func(Event)) { c.tl.OnEvent(fn) }

// Timeline exposes the lifecycle event timeline (never nil).
func (c *Cluster) Timeline() *obs.Timeline { return c.tl }

// Obs returns the configured metrics registry (nil when disabled).
func (c *Cluster) Obs() *obs.Registry { return c.cfg.Obs }

func (c *Cluster) emit(ev Event) { c.tl.Record(ev) }

// registerMetrics wires the timeline and node buffer caches into the
// configured registry: every lifecycle event counts, stage-completion
// events feed per-stage duration histograms, and cache hit/miss/fsync
// totals export as gauges summed across nodes.
func (c *Cluster) registerMetrics() {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	events := reg.Counter(obs.ClusterEvents)
	stageHist := map[string]*obs.Histogram{
		EventRecoveryDone:   reg.Histogram(obs.FailoverRecoveryUS),
		EventMigrationDone:  reg.Histogram(obs.FailoverMigrationUS),
		EventReintegrated:   reg.Histogram(obs.FailoverReintegrationUS),
		EventNodeRestarted:  reg.Histogram(obs.FailoverRestartUS),
		EventSpareActivated: reg.Histogram(obs.FailoverSpareUS),
	}
	c.tl.OnEvent(func(ev Event) {
		events.Add(1)
		if h := stageHist[ev.Kind]; h != nil && ev.Duration > 0 {
			h.Observe(ev.Duration.Microseconds())
		}
	})
	// Gauge callbacks run at snapshot time with no registry lock held, so
	// taking c.mu here is safe and keeps the disk list race-free.
	reg.GaugeFunc(obs.CacheHits, func() float64 {
		h, _, _ := c.cacheTotals()
		return float64(h)
	})
	reg.GaugeFunc(obs.CacheMisses, func() float64 {
		_, m, _ := c.cacheTotals()
		return float64(m)
	})
	reg.GaugeFunc(obs.CacheFsyncs, func() float64 {
		_, _, f := c.cacheTotals()
		return float64(f)
	})
	reg.GaugeFunc(obs.CacheHitRatio, func() float64 {
		h, m, _ := c.cacheTotals()
		if h+m == 0 {
			return 1
		}
		return float64(h) / float64(h+m)
	})
}

// cacheTotals sums buffer-cache stats over every node disk.
func (c *Cluster) cacheTotals() (hits, misses, fsyncs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.disks {
		st := d.Stats()
		hits += st.Hits.Load()
		misses += st.Misses.Load()
		fsyncs += st.Fsyncs.Load()
	}
	return hits, misses, fsyncs
}

// Close stops background loops and checkpoint threads.
func (c *Cluster) Close() {
	select {
	case <-c.stop:
		return // already closed
	default:
	}
	close(c.stop)
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.nodes {
		if st.cp != nil {
			st.cp.Stop()
			st.cp = nil
		}
	}
}

// --- fault injection ---------------------------------------------------------

// Kill fail-stops a node; the heartbeat monitor detects it and reconfigures.
func (c *Cluster) Kill(id string) error {
	c.mu.Lock()
	st, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	st.node.Kill()
	return nil
}

// KillMaster kills the master of class 0 (the worst-case fail-over).
func (c *Cluster) KillMaster() error { return c.Kill(c.MasterID(0)) }

// --- background loops ---------------------------------------------------------

// monitor is the suspicion-based failure detector. Each tick probes every
// unhandled node concurrently with a bounded ping, then classifies the
// results on a consecutive-miss ladder with an RTT-accrual band:
//
//	healthy --SuspectAfter misses--> suspect --DeadAfter misses--> dead
//
// A miss is a probe that hit its PingTimeout deadline, or one whose RTT
// fell far outside the node's EWMA band (a gray slowdown). Suspects are
// quarantined out of the version-aware read placement but stay in the
// replication topology; a recovered suspect is cleared (a false
// suspicion), unquarantined, and caught up with an incremental page-delta
// migration rather than a full state transfer. Hard probe errors
// (fail-stop: the node answered "down") skip the ladder entirely so
// crash detection keeps its two-interval latency.
func (c *Cluster) monitor() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.probeAll()
		}
	}
}

// probeAll runs one detector round: probe outside the cluster lock,
// classify under it, act outside it again.
func (c *Cluster) probeAll() {
	type probe struct {
		id  string
		n   *replica.Node
		rtt time.Duration
		err error
	}
	c.mu.Lock()
	var targets []*probe
	for _, id := range c.order {
		st := c.nodes[id]
		if st == nil || c.handled[id] {
			continue
		}
		targets = append(targets, &probe{id: id, n: st.node})
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range targets {
		wg.Add(1)
		go func(p *probe) {
			defer wg.Done()
			start := time.Now()
			p.err = c.pingBounded(p.n, c.cfg.PingTimeout)
			p.rtt = time.Since(start)
		}(p)
	}
	wg.Wait()

	for _, p := range targets {
		var act healthAction
		switch {
		case p.err == nil:
			act = c.noteSuccess(p.id, p.rtt)
		case errors.Is(p.err, replica.ErrPeerTimeout):
			act = c.noteMiss(p.id)
		default:
			// A hard error means the node itself answered that it is down
			// (fail-stop). No suspicion ladder: reconfigure immediately.
			act = actDead
		}
		c.applyHealth(p.id, act)
	}
}

// pingBounded probes a peer with a deadline so a stalled (gray) node
// cannot wedge the caller. The probe goroutine blocks until the peer
// unstalls or dies — bounded by the number of outstanding probes and
// released on heal, the standard cost of bounding an uncancellable call.
func (c *Cluster) pingBounded(p replica.Peer, d time.Duration) error {
	if d <= 0 {
		return p.Ping()
	}
	done := make(chan error, 1)
	go func() { done <- p.Ping() }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return fmt.Errorf("%w: ping %s after %v", replica.ErrPeerTimeout, p.ID(), d)
	}
}

// healthAction is a detector state transition computed under c.mu and
// applied outside it.
type healthAction int

const (
	actNone healthAction = iota
	actSuspect
	actClear
	actDead
)

// rttAlpha and rttWarmup parameterize the RTT accrual band: an EWMA of
// mean and squared deviation, consulted only after enough samples.
const (
	rttAlpha      = 0.2
	rttWarmup     = 8
	rttFloorUS    = 1000 // 1ms: never suspect inside this absolute slack
	rttDeviations = 4.0
)

// noteSuccess folds a successful probe into the node's RTT accrual state.
// An RTT far outside the band counts as a soft miss (it can raise
// suspicion but never kills on its own); a normal RTT resets the ladder
// and clears a standing suspicion.
func (c *Cluster) noteSuccess(id string, rtt time.Duration) healthAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.nodes[id]
	if st == nil || c.handled[id] || st.health == healthDead {
		return actNone
	}
	x := float64(rtt.Microseconds())
	slow := st.rttSamples >= rttWarmup &&
		x > st.rttMean+rttDeviations*math.Sqrt(st.rttVar)+rttFloorUS
	d := x - st.rttMean
	st.rttMean += rttAlpha * d
	st.rttVar = (1 - rttAlpha) * (st.rttVar + rttAlpha*d*d)
	st.rttSamples++
	if slow {
		st.misses++
		if st.misses >= c.cfg.SuspectAfter && st.health == "" {
			st.health = healthSuspect
			return actSuspect
		}
		return actNone
	}
	st.misses = 0
	if st.health == healthSuspect {
		st.health = ""
		return actClear
	}
	return actNone
}

// noteMiss records one missed probe (deadline hit) and walks the ladder.
func (c *Cluster) noteMiss(id string) healthAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.nodes[id]
	if st == nil || c.handled[id] || st.health == healthDead {
		return actNone
	}
	st.misses++
	if st.misses >= c.cfg.DeadAfter {
		return actDead
	}
	if st.misses >= c.cfg.SuspectAfter && st.health == "" {
		st.health = healthSuspect
		return actSuspect
	}
	return actNone
}

// notePeerSuspect is the replica-layer evidence path: a master abandoned
// a subscriber's write-set ack at its deadline. That is one miss worth of
// suspicion, never an instant death.
func (c *Cluster) notePeerSuspect(id string) {
	act := c.noteMiss(id)
	if act == actDead {
		c.confirmDead(id)
		return
	}
	c.applyHealth(id, act)
}

// applyHealth runs the side effects of a detector transition with no
// cluster lock held.
func (c *Cluster) applyHealth(id string, act healthAction) {
	switch act {
	case actSuspect:
		c.metSuspicions.Inc()
		c.setHealthGauge(id, healthSuspect)
		c.eachSched(func(s *scheduler.Scheduler) { s.SetQuarantined(id, true) })
		c.emit(Event{Kind: EventNodeSuspect, Node: id})
		c.cfg.Flight.RecordHealth(id, "healthy", healthSuspect)
		c.cfg.Flight.Trigger(flight.CauseSuspicion, id, "probe misses reached SuspectAfter")
	case actClear:
		c.metFalseSuspicions.Inc()
		c.setHealthGauge(id, "")
		c.eachSched(func(s *scheduler.Scheduler) { s.SetQuarantined(id, false) })
		c.emit(Event{Kind: EventNodeCleared, Node: id})
		c.cfg.Flight.RecordHealth(id, healthSuspect, "healthy")
		// While suspect the node may have missed write-sets (a master
		// abandons acks at the deadline); close the gap with the
		// incremental page-delta path — no full state transfer.
		c.mu.Lock()
		st := c.nodes[id]
		c.mu.Unlock()
		if st != nil && st.usable() {
			go func() { _, _ = c.refreshStale(st.node) }()
		}
	case actDead:
		c.confirmDead(id)
	}
}

// setHealthGauge exports the node's suspicion state as a labeled gauge.
func (c *Cluster) setHealthGauge(id, state string) {
	if c.cfg.Obs == nil {
		return
	}
	c.cfg.Obs.Gauge(obs.Labeled(obs.ClusterNodeHealth, "node", id)).Set(obs.HealthValue(state))
}

func (c *Cluster) pageIDWarmupLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.PageIDTransfer)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			slaves := c.Scheduler().SlaveList()
			spares := c.Scheduler().SpareList()
			if len(slaves) == 0 || len(spares) == 0 {
				continue
			}
			keys, err := slaves[0].ResidentPages(c.cfg.PageIDLimit)
			if err != nil || len(keys) == 0 {
				continue
			}
			for _, sp := range spares {
				_ = sp.WarmPages(keys)
			}
		}
	}
}

func (c *Cluster) staleRefreshLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.StaleRefresh)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			for _, sp := range c.Scheduler().SpareList() {
				c.mu.Lock()
				st := c.nodes[sp.ID()]
				c.mu.Unlock()
				if st == nil || !st.node.Alive() {
					continue
				}
				_, _ = c.refreshStale(st.node)
			}
		}
	}
}

// overloadLoop watches the scheduler's queue depth and activates one spare
// per sustained overload episode.
func (c *Cluster) overloadLoop() {
	defer c.wg.Done()
	window := c.cfg.OverloadWindow
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	tick := window / 5
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var over time.Duration
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			sched := c.Scheduler()
			hot := c.cfg.OverloadThreshold > 0 && sched.AvgOutstanding() > c.cfg.OverloadThreshold
			// A saturated admission queue is the earlier signal: it fills
			// before latency shows in AvgOutstanding, so spares come up
			// while the queue is still absorbing the burst.
			if sched.AdmissionPressure() >= 1 {
				hot = true
			}
			if hot {
				over += tick
			} else {
				over = 0
			}
			if over >= window {
				over = 0
				if len(sched.Spares()) > 0 {
					c.emit(Event{Kind: EventOverload, Detail: "activating spare"})
					c.activateSpare()
				}
			}
		}
	}
}

func (c *Cluster) indexGCLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.IndexGCPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			lw := c.Scheduler().LowWater()
			c.mu.Lock()
			nodes := make([]*replica.Node, 0, len(c.nodes))
			for _, st := range c.nodes {
				if st.node.Alive() {
					nodes = append(nodes, st.node)
				}
			}
			c.mu.Unlock()
			for _, n := range nodes {
				n.Engine().GCIndexes(lw)
				_, _ = n.Engine().GCRowLocations(lw)
			}
		}
	}
}

// refreshStale migrates the latest pages onto an unsubscribed spare without
// subscribing it (it goes right back to being stale, as the paper's
// periodically-updated backup does).
func (c *Cluster) refreshStale(n *replica.Node) (time.Duration, error) {
	start := time.Now()
	support := c.pickSupportSlave(n.ID())
	if support == nil {
		return 0, ErrNoSupportSlave
	}
	target, err := support.MaxVersions()
	if err != nil {
		return 0, err
	}
	have, err := n.PageVersions()
	if err != nil {
		return 0, err
	}
	delta, err := support.DeltaSince(have, target)
	if err != nil {
		return 0, err
	}
	if err := n.InstallDelta(delta); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// pickSupportSlave chooses a migration donor: a healthy, promptly-answering
// slave, or a master as fallback. Probes are bounded so a gray donor
// candidate cannot stall the reconfiguration that is trying to route
// around it, and suspects are skipped — a donor behind on write-sets
// would ship a stale delta.
func (c *Cluster) pickSupportSlave(exclude string) replica.Peer {
	sched := c.Scheduler()
	for _, p := range sched.SlaveList() {
		if p.ID() != exclude && c.healthyFor(p.ID()) && c.pingBounded(p, c.cfg.PingTimeout) == nil {
			return p
		}
	}
	// Fall back to a master (it has the full state too).
	for ci := 0; ci < sched.NumClasses(); ci++ {
		m := sched.Master(ci)
		if m != nil && m.ID() != exclude && c.healthyFor(m.ID()) && c.pingBounded(m, c.cfg.PingTimeout) == nil {
			return m
		}
	}
	return nil
}

// healthyFor reports whether the detector considers the node healthy
// (unknown nodes pass: remote peers outside c.nodes are vouched for by
// the bounded ping alone).
func (c *Cluster) healthyFor(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.nodes[id]
	if st == nil {
		return true
	}
	return st.health == "" && !st.fenced
}
