package cluster

import (
	"sync"
	"testing"
	"time"

	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/scheduler"
)

func TestSlaveFailoverWithoutSpare(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 20})
	if err := deposit(t, c, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill("slave0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.Scheduler().Slaves()) == 1
	}, "slave removal")
	// The tier degrades gracefully to one slave.
	for i := 0; i < 10; i++ {
		if bal := readBalance(t, c, 1); bal != 1001 {
			t.Fatalf("balance = %d", bal)
		}
	}
}

func TestSpareFailureJustRemoves(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 1, Spares: 1, MaxRetries: 20})
	if err := c.Kill("spare0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.Scheduler().Spares()) == 0
	}, "spare removal")
	// Normal operation continues.
	if err := deposit(t, c, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if bal := readBalance(t, c, 1); bal != 1001 {
		t.Fatalf("balance = %d", bal)
	}
}

func TestDoubleFailureMasterThenSlave(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 3, Spares: 1, MaxRetries: 40})
	for i := 1; i <= 5; i++ {
		if err := deposit(t, c, 1, 1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	oldMaster := c.MasterID(0)
	if err := c.Kill(oldMaster); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		m := c.MasterID(0)
		return m != "" && m != oldMaster
	}, "first election")

	// Kill the NEW master too: a second election must follow.
	second := c.MasterID(0)
	if err := c.Kill(second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		m := c.MasterID(0)
		return m != "" && m != second && m != oldMaster
	}, "second election")

	waitFor(t, 2*time.Second, func() bool {
		return deposit(t, c, 1, 1, 6) == nil
	}, "update after double failure")
	if bal := readBalance(t, c, 1); bal != 1006 {
		t.Fatalf("balance = %d, want 1006", bal)
	}
}

func TestIndexGCLoopRuns(t *testing.T) {
	c := newTestCluster(t, Config{
		Slaves:        2,
		MaxRetries:    20,
		IndexGCPeriod: 10 * time.Millisecond,
	})
	// Generate dead index history: repeated updates of the same rows.
	for i := 1; i <= 40; i++ {
		if err := deposit(t, c, int64(i%4+1), 1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain readers, then let GC land; afterwards reads still work and the
	// tier stays consistent.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if bal := readBalance(t, c, 1); bal != 1010 {
			t.Fatalf("balance after GC = %d, want 1010", bal)
		}
	}
	var cnt int64
	err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"audit"}}, func(tx *scheduler.Txn) error {
		v, err := tx.QueryInt(`SELECT COUNT(*) FROM audit`)
		cnt = v
		return err
	})
	if err != nil || cnt != 40 {
		t.Fatalf("audit count = %d (%v), want 40", cnt, err)
	}
}

func TestPageIDWarmupLoopShipsPages(t *testing.T) {
	diskFor := testDiskFor()
	c := newTestCluster(t, Config{
		Slaves:         1,
		Spares:         1,
		MaxRetries:     20,
		PageIDTransfer: 10 * time.Millisecond,
		EngineOptions: func(id string) heap.Options {
			return heap.Options{Observer: diskFor(id)}
		},
		DiskFor: diskFor,
	})
	// Generate read traffic so the active slave has resident pages.
	for i := 0; i < 20; i++ {
		_ = readBalance(t, c, int64(i%50+1))
	}
	spare, _ := c.Node("spare0")
	waitFor(t, 2*time.Second, func() bool {
		return spare.Disk() != nil && spare.Disk().ResidentCount() > 0
	}, "page ids shipped to spare")
}

func TestRestartUnknownNode(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 1})
	if err := c.Restart("nope"); err == nil {
		t.Fatal("restart of unknown node must fail")
	}
	if err := c.Restart("slave0"); err == nil {
		t.Fatal("restart of a live node must fail")
	}
}

func TestEventsAreOrderedAndTimestamped(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 20})
	if err := c.Kill("slave0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(c.Events()) >= 2 }, "events")
	evs := c.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if evs[0].Kind != EventNodeFailed {
		t.Fatalf("first event = %v", evs[0].Kind)
	}
}

func TestSchedulerFailoverToPeer(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 2, PeerSchedulers: 1, MaxRetries: 20})
	for i := 1; i <= 10; i++ {
		if err := deposit(t, c, 1, 1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	primaryBefore := c.Scheduler()

	// Leave an orphaned update transaction open on the master (the failed
	// scheduler's in-flight work), holding page locks.
	master, _ := c.Node(c.MasterID(0))
	orphan, err := master.TxBegin(false, nil, 0, obs.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := master.TxExec(orphan, `UPDATE account SET a_balance = 0 WHERE a_id = 2`, nil); err != nil {
		t.Fatal(err)
	}

	// Fail the primary scheduler; the peer takes over.
	idx, err := c.KillScheduler()
	if err != nil {
		t.Fatalf("kill scheduler: %v", err)
	}
	if idx != 1 || c.Scheduler() == primaryBefore {
		t.Fatalf("primary not switched: idx=%d", idx)
	}
	// The peer adopted the masters' version state.
	if got := c.Scheduler().Latest(); got.Get(0) == 0 {
		t.Fatalf("peer version state empty: %v", got)
	}
	// The orphaned transaction was aborted: its write is gone and its locks
	// are free (this update would otherwise deadlock).
	if err := deposit(t, c, 2, 5, 11); err != nil {
		t.Fatalf("update after take-over: %v", err)
	}
	if bal := readBalance(t, c, 2); bal != 1005 {
		t.Fatalf("balance = %d, want 1005 (orphan discarded, new deposit applied)", bal)
	}
	// Read-your-writes still holds through the peer.
	if err := deposit(t, c, 1, 1, 12); err != nil {
		t.Fatal(err)
	}
	if bal := readBalance(t, c, 1); bal != 1011 {
		t.Fatalf("balance = %d, want 1011", bal)
	}
	// Node fail-over still works under the peer scheduler.
	if err := c.Kill("slave0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.Scheduler().Slaves()) == 1
	}, "slave removal via peer scheduler")
}

func TestKillSchedulerWithoutPeerFails(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 1})
	if _, err := c.KillScheduler(); err == nil {
		t.Fatal("kill without peer must fail")
	}
}

func TestOverloadActivatesSpare(t *testing.T) {
	c := newTestCluster(t, Config{
		Slaves:            1,
		Spares:            1,
		MaxRetries:        20,
		OverloadThreshold: 2,
		OverloadWindow:    50 * time.Millisecond,
		// Slow statements so in-flight reads pile up on the single slave.
		StatementService: 5 * time.Millisecond,
		ServiceWidth:     1,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
					_, err := tx.Exec(`SELECT COUNT(*) FROM account`)
					return err
				})
			}
		}()
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, id := range c.Scheduler().Slaves() {
			if id == "spare0" {
				return true
			}
		}
		return false
	}, "overload spare activation")
	close(stop)
	wg.Wait()
	// The overload event was recorded.
	found := false
	for _, ev := range c.Events() {
		if ev.Kind == EventOverload {
			found = true
		}
	}
	if !found {
		t.Fatalf("no overload event: %v", c.Events())
	}
}
