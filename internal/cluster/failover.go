package cluster

import (
	"errors"
	"fmt"

	"dmv/internal/exec"
	"dmv/internal/heap"
	"dmv/internal/obs/flight"
	"dmv/internal/replica"
	"dmv/internal/scheduler"
	"dmv/internal/vclock"
)

// handleFailure is the entry point for failure reports from the
// scheduler and replica layers. The report is confirmed with a bounded
// probe: a healthy answer dismisses it, a hard error (fail-stop) kills
// the node immediately, and a probe deadline is gray evidence that feeds
// the suspicion ladder rather than triggering an instant fail-over.
func (c *Cluster) handleFailure(id string) {
	c.mu.Lock()
	st, ok := c.nodes[id]
	if !ok || c.handled[id] {
		c.mu.Unlock()
		return
	}
	n := st.node
	c.mu.Unlock()

	// Confirm outside the lock (a scheduler may report a transient error;
	// the probe may block up to the deadline).
	err := c.pingBounded(n, c.cfg.PingTimeout)
	if err == nil {
		return
	}
	if errors.Is(err, replica.ErrPeerTimeout) {
		c.applyHealth(id, c.noteMiss(id))
		return
	}
	c.confirmDead(id)
}

// confirmDead declares a node dead and reconfigures around it. It is
// idempotent and serialized per node via the handled map. A node that is
// still running when declared dead (a gray failure) is fenced: excluded
// from every topology computation and, best-effort, stripped of its
// subscribers and master role so it cannot keep mutating acknowledged
// state. A fenced node never rejoins on its own: reintegration requires
// killing it and running Restart.
func (c *Cluster) confirmDead(id string) {
	c.mu.Lock()
	st, ok := c.nodes[id]
	if !ok || c.handled[id] {
		c.mu.Unlock()
		return
	}
	c.handled[id] = true
	st.health = healthDead
	gray := st.node.Alive()
	if gray {
		st.fenced = true
	}
	classID := st.classID
	isSpare := st.isSpare
	c.mu.Unlock()

	c.setHealthGauge(id, healthDead)
	c.emit(Event{Kind: EventNodeFailed, Node: id})
	c.cfg.Flight.RecordHealth(id, healthSuspect, healthDead)
	c.cfg.Flight.Trigger(flight.CauseFailover, id, "node confirmed dead, reconfiguring")
	if gray {
		// The fence proper is the fenced flag; the node-side cleanup runs
		// asynchronously because a stalled node may sit on these calls.
		go func(n *replica.Node) {
			n.SetSubscribers(nil)
			_ = n.Demote(replica.RoleSpare)
		}(st.node)
	}

	switch {
	case classID >= 0:
		c.masterFailover(id, classID)
	case isSpare:
		c.eachSched(func(s *scheduler.Scheduler) { s.Remove(id) })
		c.rewireSubscribers()
	default:
		c.slaveFailover(id)
	}
}

// masterFailover handles the most complex case (Section 4.2): roll the tier
// back to the last version the scheduler acknowledged, elect a new master
// from the slaves, and backfill read capacity from a spare.
func (c *Cluster) masterFailover(failed string, classID int) {
	rec := c.tl.Start(EventRecoveryDone, failed)

	// Stage 1 — Recovery: discard partially propagated pre-commits beyond
	// the last version the scheduler has seen, then elect a new master.
	// The commit fence makes the rollback atomic against in-flight
	// commits: a commit either reports its version before the fence
	// closes (so lastSeen covers it and its write-sets survive the
	// discard) or runs entirely after and fails against the dead master.
	c.eachSched(func(s *scheduler.Scheduler) { s.BlockCommits() })
	lastSeen := c.Scheduler().Latest()
	for _, p := range c.livePeers(failed) {
		_ = p.DiscardAbove(lastSeen)
	}
	c.eachSched(func(s *scheduler.Scheduler) { s.ResetVersion(lastSeen) })
	c.eachSched(func(s *scheduler.Scheduler) { s.UnblockCommits() })

	newMaster := c.electMaster(failed)
	if newMaster == nil {
		rec.End("no candidate master")
		return
	}
	if err := newMaster.Promote(c.Scheduler().ClassTables(classID)); err != nil {
		rec.SetNode(newMaster.ID())
		rec.End("promote failed: " + err.Error())
		return
	}
	c.mu.Lock()
	if st := c.nodes[newMaster.ID()]; st != nil {
		st.classID = classID
		st.isSpare = false
	}
	c.mu.Unlock()
	c.eachSched(func(s *scheduler.Scheduler) {
		s.Remove(newMaster.ID()) // masters do not serve scheduled reads
		s.SetMaster(classID, newMaster)
	})
	c.rewireSubscribers()
	c.emit(Event{Kind: EventMasterElected, Node: newMaster.ID(), Duration: rec.Elapsed()})
	rec.End("")

	// Stage 2 — Data migration: activate a spare to replace the promoted
	// slave's read capacity.
	c.activateSpare()
}

// slaveFailover removes the failed slave and activates a spare in its place.
func (c *Cluster) slaveFailover(failed string) {
	rec := c.tl.Start(EventRecoveryDone, failed)
	c.eachSched(func(s *scheduler.Scheduler) { s.Remove(failed) })
	c.rewireSubscribers()
	rec.End("")
	c.activateSpare()
}

// electMaster picks the live slave with the highest versions (after the
// discard they are all equal, so this is effectively the first live slave).
func (c *Cluster) electMaster(failed string) *replica.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *replica.Node
	var bestVer vclock.Vector
	for _, id := range c.order {
		st := c.nodes[id]
		if id == failed || st == nil || !st.usable() || st.classID >= 0 || st.isSpare {
			continue
		}
		v, err := st.node.MaxVersions()
		if err != nil {
			continue
		}
		if best == nil || !bestVer.DominatesOrEqual(v) {
			best, bestVer = st.node, v
		}
	}
	return best
}

// activateSpare integrates one spare backup into the active slave set: data
// migration first (instant for hot spares, a page-delta transfer for stale
// ones), then the spare serves reads while its buffer cache warms up.
func (c *Cluster) activateSpare() {
	c.mu.Lock()
	var spare *replica.Node
	for _, id := range c.order {
		st := c.nodes[id]
		if st != nil && st.isSpare && st.usable() {
			spare = st.node
			break
		}
	}
	c.mu.Unlock()
	if spare == nil {
		return
	}

	act := c.tl.Start(EventSpareActivated, spare.ID())
	mig := c.tl.Start(EventMigrationDone, spare.ID())
	if c.cfg.SpareMode == SpareStale {
		if err := c.reintegrate(spare); err != nil {
			mig.End("failed: " + err.Error())
			return
		}
	}
	// Hot spares are already up to date (subscribed to the replication
	// stream); buffered modifications materialize lazily as readers arrive,
	// so activation is immediate — eagerly materializing here would fault
	// the spare's whole cold cache in before it serves a single read.
	migDur := mig.Elapsed()
	_ = spare.Demote(replica.RoleSlave)

	c.mu.Lock()
	if st := c.nodes[spare.ID()]; st != nil {
		st.isSpare = false
	}
	c.mu.Unlock()
	c.eachSched(func(s *scheduler.Scheduler) {
		if !s.PromoteSpare(spare.ID()) {
			s.AddSlave(spare)
		}
	})
	c.rewireSubscribers()
	c.emit(Event{Kind: EventMigrationDone, Node: spare.ID(), Duration: migDur})
	act.End("")
}

// reintegrate runs the data-migration protocol of Section 4.4 on a stale or
// recovered node: subscribe (buffering), fetch the page delta from a support
// slave, install it, then drain the buffer.
func (c *Cluster) reintegrate(n *replica.Node) error {
	join := c.tl.Start(EventReintegrated, n.ID())
	if err := n.StartJoin(); err != nil {
		return err
	}
	// Subscribe to every master so new write-sets are buffered.
	c.mu.Lock()
	for _, id := range c.order {
		st := c.nodes[id]
		if st != nil && st.classID >= 0 && st.usable() {
			st.node.AddSubscriber(n)
		}
	}
	c.mu.Unlock()

	support := c.pickSupportSlave(n.ID())
	if support == nil {
		return ErrNoSupportSlave
	}
	target, err := support.MaxVersions()
	if err != nil {
		return fmt.Errorf("reintegrate %s: %w", n.ID(), err)
	}
	have, err := n.PageVersions()
	if err != nil {
		return fmt.Errorf("reintegrate %s: %w", n.ID(), err)
	}
	delta, err := support.DeltaSince(have, target)
	if err != nil {
		return fmt.Errorf("reintegrate %s: delta from %s: %w", n.ID(), support.ID(), err)
	}
	if err := n.InstallDelta(delta); err != nil {
		return fmt.Errorf("reintegrate %s: install: %w", n.ID(), err)
	}
	if err := n.FinishJoin(); err != nil {
		return fmt.Errorf("reintegrate %s: %w", n.ID(), err)
	}
	join.End(fmt.Sprintf("%d pages", len(delta)))
	return nil
}

// Restart simulates a failed machine rebooting: a fresh node object is
// built, its state restored from the last fuzzy checkpoint found on local
// stable storage (or the initial image if none), and the node reintegrated
// into the workload as a slave.
func (c *Cluster) Restart(id string) error {
	c.mu.Lock()
	old, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if old.node.Alive() {
		return fmt.Errorf("cluster: node %s still alive", id)
	}
	cpBlob := old.node.LastCheckpoint()

	restart := c.tl.Start(EventNodeRestarted, id)
	var opts heap.Options
	if c.cfg.EngineOptions != nil {
		opts = c.cfg.EngineOptions(id)
	}
	if opts.Obs == nil {
		opts.Obs = c.cfg.Obs
	}
	eng := heap.NewEngine(opts)
	for _, ddl := range c.cfg.SchemaDDL {
		if err := exec.ExecDDL(eng, ddl); err != nil {
			return fmt.Errorf("restart %s: %w", id, err)
		}
	}
	if cpBlob != nil {
		cp, err := heap.DecodeCheckpoint(cpBlob)
		if err != nil {
			return fmt.Errorf("restart %s: %w", id, err)
		}
		if err := eng.RestoreCheckpoint(cp); err != nil {
			return fmt.Errorf("restart %s: %w", id, err)
		}
	} else if c.cfg.Load != nil {
		if err := c.cfg.Load(eng); err != nil {
			return fmt.Errorf("restart %s: %w", id, err)
		}
	}
	var disk = old.node.Disk()
	if disk != nil {
		disk.Drop() // the reboot loses the buffer cache
	}
	n := replica.NewNode(replica.Options{
		ID:                   id,
		Engine:               eng,
		Disk:                 disk,
		OnPeerFailure:        func(peer string) { go c.handleFailure(peer) },
		OnPeerSuspect:        func(peer string) { go c.notePeerSuspect(peer) },
		AckTimeout:           c.cfg.AckTimeout,
		ServicePerStmt:       c.cfg.StatementService,
		ServiceWidth:         c.cfg.ServiceWidth,
		UpdateServicePerStmt: c.cfg.UpdateStatementService,
		CheckpointDir:        c.cfg.CheckpointDir,
		Obs:                  c.cfg.Obs,
	})
	c.mu.Lock()
	c.nodes[id] = &nodeState{node: n, classID: -1}
	c.handled[id] = false
	if c.cfg.CheckpointPeriod > 0 {
		c.nodes[id].cp = n.StartCheckpointer(c.cfg.CheckpointPeriod)
	}
	c.mu.Unlock()
	c.setHealthGauge(id, "")

	if err := c.reintegrate(n); err != nil {
		return err
	}
	c.eachSched(func(s *scheduler.Scheduler) { s.AddSlave(n) })
	c.rewireSubscribers()
	restart.End("")
	return nil
}

// livePeers returns every live node except the excluded one.
func (c *Cluster) livePeers(exclude string) []replica.Peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []replica.Peer
	for _, id := range c.order {
		st := c.nodes[id]
		if id == exclude || st == nil || !st.usable() {
			continue
		}
		out = append(out, st.node)
	}
	return out
}
