package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dmv/internal/heap"
	"dmv/internal/scheduler"
	"dmv/internal/simdisk"
	"dmv/internal/value"
)

var testDDL = []string{
	`CREATE TABLE account (a_id INT PRIMARY KEY, a_owner VARCHAR(20), a_balance INT)`,
	`CREATE TABLE audit (x_id INT PRIMARY KEY, x_a_id INT, x_delta INT)`,
	`CREATE INDEX ix_audit_acct ON audit (x_a_id)`,
}

func testLoad(n int) func(e *heap.Engine) error {
	return func(e *heap.Engine) error {
		tid, ok := e.TableID("account")
		if !ok {
			return fmt.Errorf("no account table")
		}
		rows := make([]value.Row, 0, n)
		for i := 1; i <= n; i++ {
			rows = append(rows, value.Row{
				value.NewInt(int64(i)),
				value.NewString(fmt.Sprintf("owner-%d", i)),
				value.NewInt(1000),
			})
		}
		return e.Load(tid, rows)
	}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.SchemaDDL == nil {
		cfg.SchemaDDL = testDDL
	}
	if cfg.Load == nil {
		cfg.Load = testLoad(100)
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 5 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func deposit(t *testing.T, c *Cluster, acct, delta, auditID int64) error {
	t.Helper()
	return c.Run(scheduler.TxnSpec{Tables: []string{"account", "audit"}}, func(tx *scheduler.Txn) error {
		if _, err := tx.Exec(`UPDATE account SET a_balance = a_balance + ? WHERE a_id = ?`,
			value.NewInt(delta), value.NewInt(acct)); err != nil {
			return err
		}
		_, err := tx.Exec(`INSERT INTO audit (x_id, x_a_id, x_delta) VALUES (?, ?, ?)`,
			value.NewInt(auditID), value.NewInt(acct), value.NewInt(delta))
		return err
	})
}

func readBalance(t *testing.T, c *Cluster, acct int64) int64 {
	t.Helper()
	var bal int64
	err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
		v, err := tx.QueryInt(`SELECT a_balance FROM account WHERE a_id = ?`, value.NewInt(acct))
		if err != nil {
			return err
		}
		bal = v
		return nil
	})
	if err != nil {
		t.Fatalf("read balance: %v", err)
	}
	return bal
}

func TestClusterReadYourWrites(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 3})
	for i := 1; i <= 20; i++ {
		if err := deposit(t, c, 7, 10, int64(i)); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		// A read tagged with the new version must observe the deposit on
		// whichever slave it lands.
		if bal := readBalance(t, c, 7); bal != int64(1000+10*i) {
			t.Fatalf("after %d deposits balance = %d, want %d", i, bal, 1000+10*i)
		}
	}
	// All slaves hold the data (lazily); a scan-style read sums audits.
	var total int64
	err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"audit"}}, func(tx *scheduler.Txn) error {
		v, err := tx.QueryInt(`SELECT SUM(x_delta) FROM audit WHERE x_a_id = 7`)
		if err != nil {
			return err
		}
		total = v
		return nil
	})
	if err != nil {
		t.Fatalf("sum: %v", err)
	}
	if total != 200 {
		t.Fatalf("audit sum = %d, want 200", total)
	}
}

func TestClusterConcurrentWorkload(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 3, MaxRetries: 20})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	var auditSeq int64
	var seqMu sync.Mutex
	nextAudit := func() int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		auditSeq++
		return auditSeq
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				acct := int64(w*10 + i%10 + 1)
				if err := deposit(t, c, acct, 1, nextAudit()); err != nil {
					errCh <- fmt.Errorf("worker %d deposit: %w", w, err)
					return
				}
				if err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
					_, err := tx.Exec(`SELECT a_balance FROM account WHERE a_id = ?`, value.NewInt(acct))
					return err
				}); err != nil {
					errCh <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every replica must converge: total deposited = 200.
	var sum int64
	err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"audit"}}, func(tx *scheduler.Txn) error {
		v, err := tx.QueryInt(`SELECT COUNT(*) FROM audit`)
		if err != nil {
			return err
		}
		sum = v
		return nil
	})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if sum != 200 {
		t.Fatalf("audit count = %d, want 200", sum)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSlaveFailoverActivatesSpare(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 2, Spares: 1, MaxRetries: 20})
	if err := deposit(t, c, 1, 5, 1); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if err := c.Kill("slave0"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, id := range c.Scheduler().Slaves() {
			if id == "spare0" {
				return true
			}
		}
		return false
	}, "spare activation")
	// The tier keeps serving consistent reads.
	if bal := readBalance(t, c, 1); bal != 1005 {
		t.Fatalf("balance = %d, want 1005", bal)
	}
	// And the activated spare serves correct data when it is chosen.
	for i := 0; i < 20; i++ {
		if bal := readBalance(t, c, 1); bal != 1005 {
			t.Fatalf("balance after failover = %d, want 1005", bal)
		}
	}
}

func TestMasterFailoverElectsSlave(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 3, MaxRetries: 30})
	for i := 1; i <= 10; i++ {
		if err := deposit(t, c, 2, 1, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}
	oldMaster := c.MasterID(0)
	if err := c.Kill(oldMaster); err != nil {
		t.Fatalf("kill master: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		id := c.MasterID(0)
		return id != "" && id != oldMaster
	}, "master election")

	// Updates resume on the new master and reads still see everything.
	waitFor(t, 2*time.Second, func() bool {
		return deposit(t, c, 2, 1, 11) == nil
	}, "update after election")
	if bal := readBalance(t, c, 2); bal != 1011 {
		t.Fatalf("balance = %d, want 1011", bal)
	}
	// Committed state survived the fail-over (all 10 pre-failure deposits).
	var cnt int64
	err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"audit"}}, func(tx *scheduler.Txn) error {
		v, err := tx.QueryInt(`SELECT COUNT(*) FROM audit`)
		cnt = v
		return err
	})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if cnt != 11 {
		t.Fatalf("audit count = %d, want 11", cnt)
	}
}

func TestNodeRestartReintegrates(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 20, CheckpointPeriod: 20 * time.Millisecond})
	for i := 1; i <= 30; i++ {
		if err := deposit(t, c, 3, 1, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let a checkpoint land
	if err := c.Kill("slave1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.Scheduler().Slaves()) == 1
	}, "slave removal")

	// More commits while the node is down.
	for i := 31; i <= 40; i++ {
		if err := deposit(t, c, 3, 1, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}
	if err := c.Restart("slave1"); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(c.Scheduler().Slaves()) == 2
	}, "reintegration")

	// Force many reads so some land on the reintegrated node; all must see
	// the full history.
	for i := 0; i < 30; i++ {
		if bal := readBalance(t, c, 3); bal != 1040 {
			t.Fatalf("balance = %d, want 1040", bal)
		}
	}
}

func TestStaleSpareFailover(t *testing.T) {
	c := newTestCluster(t, Config{
		Slaves:     2,
		Spares:     1,
		SpareMode:  SpareStale,
		MaxRetries: 20,
	})
	for i := 1; i <= 25; i++ {
		if err := deposit(t, c, 4, 2, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}
	if err := c.Kill("slave0"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, id := range c.Scheduler().Slaves() {
			if id == "spare0" {
				return true
			}
		}
		return false
	}, "stale spare reintegration")
	for i := 0; i < 20; i++ {
		if bal := readBalance(t, c, 4); bal != 1050 {
			t.Fatalf("balance = %d, want 1050", bal)
		}
	}
	// The migration event must record shipped pages.
	found := false
	for _, ev := range c.Events() {
		if ev.Kind == EventReintegrated && ev.Node == "spare0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no reintegration event for spare0: %+v", c.Events())
	}
}

func TestVersionAffinityKeepsAbortsLow(t *testing.T) {
	c := newTestCluster(t, Config{Slaves: 3, MaxRetries: 50})
	var wg sync.WaitGroup
	stopWriters := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := int64(1)
		for {
			select {
			case <-stopWriters:
				return
			default:
			}
			_ = deposit(t, c, i%50+1, 1, 1000+i)
			i++
		}
	}()
	var readWG sync.WaitGroup
	for r := 0; r < 6; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for i := 0; i < 50; i++ {
				_ = c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
					_, err := tx.Exec(`SELECT COUNT(*) FROM account WHERE a_balance > 0`)
					return err
				})
			}
		}()
	}
	readWG.Wait()
	close(stopWriters)
	wg.Wait()

	st := c.Scheduler().Stats()
	reads := st.ReadTxns.Load()
	aborts := st.VersionAborts.Load()
	if reads == 0 {
		t.Fatal("no reads completed")
	}
	// The paper reports <2.5% aborts; allow slack for the tiny test DB.
	if float64(aborts) > 0.25*float64(reads)+5 {
		t.Fatalf("aborts = %d of %d reads; affinity not working", aborts, reads)
	}
}

// testEngineOptsWithDisk / testDiskFor wire shared per-node buffer caches
// into test clusters.
func testDiskFor() func(string) *simdisk.Disk {
	disks := map[string]*simdisk.Disk{}
	var mu sync.Mutex
	return func(id string) *simdisk.Disk {
		mu.Lock()
		defer mu.Unlock()
		if d, ok := disks[id]; ok {
			return d
		}
		d := simdisk.New(simdisk.CostModel{}, 256)
		disks[id] = d
		return d
	}
}

func testEngineOptsWithDisk() func(string) heap.Options {
	diskFor := testDiskFor()
	return func(id string) heap.Options {
		return heap.Options{Observer: diskFor(id)}
	}
}
