package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/heap"
	"dmv/internal/scheduler"
	"dmv/internal/value"
)

// TestMasterFailoverDoesNotDiscardAckedCommit pins the commit fence: a
// commit that has broadcast its write-set but not yet reported its version
// to the scheduler must not be rolled back by a concurrent master
// fail-over. The master's CommitDelay hook stalls one commit exactly in
// that window (post-broadcast, pre-report) while the master is killed;
// the fail-over rollback must wait for the commit's version report, so the
// acknowledged increment survives on the promoted slave.
func TestMasterFailoverDoesNotDiscardAckedCommit(t *testing.T) {
	var (
		armed    atomic.Bool
		inCommit = make(chan struct{})
		release  = make(chan struct{})
	)
	c := newTestCluster(t, Config{
		Slaves:     2,
		MaxRetries: 20,
		EngineOptions: func(nodeID string) heap.Options {
			if nodeID != "master0" {
				return heap.Options{}
			}
			return heap.Options{CommitDelay: func() {
				if armed.CompareAndSwap(true, false) {
					close(inCommit)
					<-release
				}
			}}
		},
	})

	// Warm-up commit so the victim is not the first version ever produced.
	if err := deposit(t, c, 1, 1, 1); err != nil {
		t.Fatalf("warm-up deposit: %v", err)
	}

	armed.Store(true)
	victimErr := make(chan error, 1)
	go func() {
		victimErr <- c.Run(scheduler.TxnSpec{Tables: []string{"account", "audit"}}, func(tx *scheduler.Txn) error {
			_, err := tx.Exec(`UPDATE account SET a_balance = a_balance + ? WHERE a_id = ?`,
				value.NewInt(10), value.NewInt(1))
			return err
		})
	}()

	// The victim has ticked the clock and broadcast its write-set; it is
	// stalled before returning to the scheduler. Kill the master now and
	// give the failure handler time to run its rollback — with the fence
	// it must block instead until the victim's version is reported.
	<-inCommit
	if err := c.Kill("master0"); err != nil {
		t.Fatalf("kill master: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	close(release)

	if err := <-victimErr; err != nil {
		t.Fatalf("victim commit not acknowledged: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		m := c.MasterID(0)
		return m != "" && m != "master0"
	}, "master election")

	// The acknowledged increment must be visible after fail-over.
	waitFor(t, 2*time.Second, func() bool {
		var bal int64
		err := c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
			v, err := tx.QueryInt(`SELECT a_balance FROM account WHERE a_id = ?`, value.NewInt(1))
			bal = v
			return err
		})
		return err == nil && bal == 1011
	}, "acked increment visible after fail-over")
}
