// Anti-entropy scrub loop (DESIGN.md §15): the cluster periodically runs a
// scheduler-driven digest sweep over every replica and turns the scrubber's
// callbacks into timeline events plus topology updates fanned out to every
// standby scheduler (the scrubber itself only touches the scheduler it was
// built from).
package cluster

import (
	"fmt"
	"time"

	"dmv/internal/scheduler"
)

func (c *Cluster) scrubLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.ScrubInterval)
	defer ticker.Stop()
	// One scrubber per primary scheduler, cached across ticks: the
	// scrubber's own mutex is what serializes sweeps, so rebuilding it
	// every tick would let a slow repair overlap the next sweep and
	// double-report the same divergence.
	var sc *scheduler.Scrubber
	var builtFor *scheduler.Scheduler
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			if cur := c.Scheduler(); sc == nil || cur != builtFor {
				sc = c.newScrubber(cur)
				builtFor = cur
			}
			sc.Sweep()
		}
	}
}

// newScrubber wires a scrubber over the given scheduler, translating its
// callbacks into timeline events and standby-scheduler topology updates.
func (c *Cluster) newScrubber(sched *scheduler.Scheduler) *scheduler.Scrubber {
	return sched.NewScrubber(scheduler.ScrubOptions{
		Tables:        c.cfg.ScrubTables,
		IncludeSpares: c.cfg.SpareMode == SpareHot,
		OnDiverged: func(node string, mms []scheduler.ScrubMismatch) {
			pages := 0
			for _, mm := range mms {
				pages += len(mm.Pages)
			}
			c.emit(Event{
				Kind:   EventScrubDiverged,
				Node:   node,
				Detail: fmt.Sprintf("tables=%d pages=%d", len(mms), pages),
			})
			// The scrubber quarantined its own scheduler; cover the
			// standbys too so a scheduler fail-over cannot resurrect the
			// diverged node into read placement mid-repair.
			c.eachSched(func(s *scheduler.Scheduler) { s.SetQuarantined(node, true) })
		},
		OnRepaired: func(node string, pages int, took time.Duration, ok bool) {
			detail := fmt.Sprintf("pages=%d ok=%t", pages, ok)
			c.emit(Event{Kind: EventScrubRepaired, Node: node, Detail: detail, Duration: took})
			if ok {
				c.eachSched(func(s *scheduler.Scheduler) { s.SetQuarantined(node, false) })
			}
		},
	})
}
