package cluster

import (
	"testing"
	"time"

	"dmv/internal/obs"
	"dmv/internal/scheduler"
)

// waitForEvent polls the cluster timeline until an event of the given kind
// for the given node appears (node "" matches any).
func waitForEvent(t *testing.T, c *Cluster, kind EventKind, node string, timeout time.Duration) Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, ev := range c.Events() {
			if ev.Kind == kind && (node == "" || ev.Node == node) {
				return ev
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no %s event for %q within %v; events: %+v", kind, node, timeout, c.Events())
	return Event{}
}

func quarantinedIDs(s *scheduler.Scheduler) map[string]bool {
	out := make(map[string]bool)
	for _, id := range s.Quarantined() {
		out[id] = true
	}
	return out
}

// TestSuspectQuarantineAndClear drives the gray-slowdown half of the
// detector: a stalled slave must be suspected and quarantined out of read
// placement (not killed), and once it recovers it must be cleared as a
// false suspicion and rejoin without a fail-over — the node is never
// removed from the topology, so no full state transfer happens.
func TestSuspectQuarantineAndClear(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{
		Slaves:            3,
		HeartbeatInterval: 5 * time.Millisecond,
		PingTimeout:       15 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         1000, // out of reach: this test must never kill
		AckTimeout:        20 * time.Millisecond,
		Obs:               reg,
	})

	for i := 1; i <= 5; i++ {
		if err := deposit(t, c, 1, 10, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}

	victim, ok := c.Node("slave0")
	if !ok {
		t.Fatal("no slave0")
	}
	victim.SetStalled(true)
	defer victim.SetStalled(false)

	waitForEvent(t, c, EventNodeSuspect, "slave0", 2*time.Second)
	if !quarantinedIDs(c.Scheduler())["slave0"] {
		t.Fatal("suspect slave0 not quarantined in the scheduler")
	}
	if got := reg.Snapshot().Gauges[obs.Labeled(obs.ClusterNodeHealth, "node", "slave0")]; got != 1 {
		t.Fatalf("health gauge for suspect = %v, want 1", got)
	}
	// Reads keep flowing around the suspect.
	if bal := readBalance(t, c, 1); bal != 1050 {
		t.Fatalf("balance during suspicion = %d, want 1050", bal)
	}

	// Recovery: the suspicion must clear, the quarantine lift, and the
	// node keep its identity (no node-failed, no restart).
	victim.SetStalled(false)
	waitForEvent(t, c, EventNodeCleared, "slave0", 2*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for quarantinedIDs(c.Scheduler())["slave0"] {
		if time.Now().After(deadline) {
			t.Fatal("quarantine not lifted after clear")
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.ClusterSuspicions] < 1 {
		t.Fatalf("suspicions = %d, want >= 1", snap.Counters[obs.ClusterSuspicions])
	}
	if snap.Counters[obs.ClusterFalseSuspicions] < 1 {
		t.Fatalf("false suspicions = %d, want >= 1", snap.Counters[obs.ClusterFalseSuspicions])
	}
	if got := snap.Gauges[obs.Labeled(obs.ClusterNodeHealth, "node", "slave0")]; got != 0 {
		t.Fatalf("health gauge after clear = %v, want 0", got)
	}
	for _, ev := range c.Events() {
		if ev.Kind == EventNodeFailed {
			t.Fatalf("false suspicion escalated to node-failed: %+v", ev)
		}
	}
	// The healed node serves committed state again.
	if bal := readBalance(t, c, 1); bal != 1050 {
		t.Fatalf("balance after clear = %d, want 1050", bal)
	}
}

// TestGrayMasterFailover stalls the master without killing it: the
// detector must walk it through suspect to dead, fence it out of the
// topology even though it still reports Alive, and run the commit-fence
// master fail-over with no acknowledged commit lost.
func TestGrayMasterFailover(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{
		Slaves:            2,
		Spares:            1,
		HeartbeatInterval: 5 * time.Millisecond,
		PingTimeout:       10 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         4,
		AckTimeout:        20 * time.Millisecond,
		Obs:               reg,
	})

	for i := 1; i <= 10; i++ {
		if err := deposit(t, c, 1, 10, int64(i)); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}

	oldMaster := c.MasterID(0)
	m, ok := c.Node(oldMaster)
	if !ok {
		t.Fatalf("no node %s", oldMaster)
	}
	m.SetStalled(true)
	defer m.SetStalled(false)

	waitForEvent(t, c, EventNodeSuspect, oldMaster, 2*time.Second)
	waitForEvent(t, c, EventNodeFailed, oldMaster, 2*time.Second)
	waitForEvent(t, c, EventMasterElected, "", 2*time.Second)

	deadline := time.Now().Add(2 * time.Second)
	for c.MasterID(0) == oldMaster || c.MasterID(0) == "" {
		if time.Now().After(deadline) {
			t.Fatalf("master never moved off %s", oldMaster)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Gray, not dead: the fenced ex-master still reports alive, but the
	// cluster routes around it.
	if !m.Alive() {
		t.Fatal("gray master should still be alive (that is the point)")
	}
	if got := reg.Snapshot().Gauges[obs.Labeled(obs.ClusterNodeHealth, "node", oldMaster)]; got != 2 {
		t.Fatalf("health gauge for dead = %v, want 2", got)
	}

	// Every acknowledged commit survived the fail-over.
	if bal := readBalance(t, c, 1); bal != 1100 {
		t.Fatalf("balance after gray fail-over = %d, want 1100", bal)
	}
	// And the new master takes writes.
	for i := 11; i <= 15; i++ {
		if err := deposit(t, c, 1, 10, int64(i)); err != nil {
			t.Fatalf("deposit after fail-over: %v", err)
		}
	}
	if bal := readBalance(t, c, 1); bal != 1150 {
		t.Fatalf("balance after post-fail-over deposits = %d, want 1150", bal)
	}
}

// TestFailStopStillFast: a killed node answers its probe with a hard
// error; that path must skip the suspicion ladder entirely and keep the
// crash-detection behavior of the plain heartbeat monitor.
func TestFailStopStillFast(t *testing.T) {
	c := newTestCluster(t, Config{
		Slaves:       2,
		SuspectAfter: 50, // a ladder walk would blow the event wait below
		DeadAfter:    100,
	})
	if err := c.Kill("slave1"); err != nil {
		t.Fatal(err)
	}
	waitForEvent(t, c, EventNodeFailed, "slave1", time.Second)
	for _, ev := range c.Events() {
		if ev.Kind == EventNodeSuspect {
			t.Fatalf("fail-stop took the suspicion ladder: %+v", ev)
		}
	}
}
