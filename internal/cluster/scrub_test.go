package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/heap"
	"dmv/internal/obs"
	"dmv/internal/obs/flight"
	"dmv/internal/scheduler"
	"dmv/internal/value"
)

// scrubDDL adds an archive table the OLTP load never touches: corruption
// injected there cannot be masked by a later write-set overwriting the
// damaged row, so detection is deterministic under load.
var scrubDDL = []string{
	`CREATE TABLE account (a_id INT PRIMARY KEY, a_owner VARCHAR(20), a_balance INT)`,
	`CREATE TABLE archive (r_id INT PRIMARY KEY, r_payload VARCHAR(32))`,
}

func scrubLoad(e *heap.Engine) error {
	if err := testLoad(100)(e); err != nil {
		return err
	}
	tid, ok := e.TableID("archive")
	if !ok {
		return fmt.Errorf("no archive table")
	}
	rows := make([]value.Row, 0, 64)
	for i := 1; i <= 64; i++ {
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("payload-%d", i)),
		})
	}
	return e.Load(tid, rows)
}

// scrubDumpDir resolves where the chaos run writes its flight dumps:
// DMV_FLIGHT_DIR (the check.sh scrub leg hands the artifact to dmv-doctor
// afterwards) or a test temp dir.
func scrubDumpDir(t *testing.T) string {
	base := os.Getenv("DMV_FLIGHT_DIR")
	if base == "" {
		base = t.TempDir()
	}
	return filepath.Join(base, "scrub")
}

// scrubEventLog filters the cluster timeline down to the scrub events in
// order, rendered without durations so two identically-seeded runs can be
// compared byte for byte.
func scrubEventLog(evs []Event) []string {
	var out []string
	for _, ev := range evs {
		if ev.Kind == EventScrubDiverged || ev.Kind == EventScrubRepaired {
			out = append(out, fmt.Sprintf("%s %s %s", ev.Kind, ev.Node, ev.Detail))
		}
	}
	return out
}

// runScrubChaos is one seeded divergence-and-repair episode: OLTP runs
// open-throttle against a 2-slave tier with the anti-entropy scrubber
// ticking, a deterministic bit flip silently diverges slave0's archive
// table, and the run must detect, quarantine, repair, verify, and
// reintegrate with zero acked-commit loss and zero failed reads. It returns
// the scrub event log for cross-run comparison.
func runScrubChaos(t *testing.T, dir string) []string {
	t.Helper()
	reg := obs.New()
	rec := flight.New(flight.Options{Node: "cluster", Reg: reg, Dir: dir})
	defer rec.Close()

	c := newTestCluster(t, Config{
		Slaves:        2,
		SchemaDDL:     scrubDDL,
		Load:          scrubLoad,
		ScrubInterval: 10 * time.Millisecond,
		MaxRetries:    20,
		Seed:          11,
		Obs:           reg,
		Flight:        rec,
	})

	// Open-throttle OLTP on the account table while the scrub runs. Acked
	// commits and read results are tracked so the end state can prove
	// nothing acknowledged was lost and reads never failed while the
	// diverged slave was quarantined.
	var (
		acked    atomic.Int64
		readErrs atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := c.Run(scheduler.TxnSpec{Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
				_, err := tx.Exec(`UPDATE account SET a_balance = a_balance + ? WHERE a_id = ?`,
					value.NewInt(10), value.NewInt(7))
				return err
			})
			if err == nil {
				acked.Add(1)
			}
			if bal := readBalance(t, c, 8); bal != 1000 {
				readErrs.Add(1)
			}
		}
	}()

	// Let a few clean sweeps pass, then silently flip one bit on slave0.
	// Page 0 of the archive table is always populated (64 loaded rows), so
	// the victim is identical on every run.
	time.Sleep(30 * time.Millisecond)
	slave, ok := c.Node("slave0")
	if !ok {
		t.Fatal("no slave0")
	}
	archiveTID, ok := slave.Engine().TableID("archive")
	if !ok {
		t.Fatal("no archive table id")
	}
	if _, err := slave.Engine().CorruptPage(archiveTID, 0, 12345); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	// The scrubber must detect the divergence, quarantine, repair, and
	// verify convergence — visible as the diverged/repaired event pair.
	waitEvent := func(kind string) Event {
		deadline := time.Now().Add(5 * time.Second)
		for {
			for _, ev := range c.Events() {
				if ev.Kind == kind && ev.Node == "slave0" {
					return ev
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no %s event for slave0; events: %+v", kind, c.Events())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	div := waitEvent(EventScrubDiverged)
	if div.Detail != "tables=1 pages=1" {
		t.Fatalf("diverged detail = %q, want tables=1 pages=1", div.Detail)
	}
	repaired := waitEvent(EventScrubRepaired)
	if repaired.Detail != "pages=1 ok=true" {
		t.Fatalf("repaired detail = %q, want pages=1 ok=true", repaired.Detail)
	}

	close(stop)
	wg.Wait()

	// Zero acked-commit loss: every acknowledged deposit is visible.
	if bal := readBalance(t, c, 7); bal != 1000+10*acked.Load() {
		t.Fatalf("balance = %d after %d acked deposits, want %d", bal, acked.Load(), 1000+10*acked.Load())
	}
	if readErrs.Load() != 0 {
		t.Fatalf("%d reads failed or returned wrong data during the episode", readErrs.Load())
	}

	// Final convergence proof at the scrubber's own bar: one more full
	// sweep over quiesced state finds nothing.
	rep := c.Scheduler().NewScrubber(scheduler.ScrubOptions{}).Sweep()
	if len(rep.Diverged) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("post-episode sweep still dirty: %+v", rep)
	}

	// Metrics moved: the repair is visible on the registry.
	snap := reg.Snapshot()
	if snap.Counters[obs.ScrubDivergences] == 0 || snap.Counters[obs.ScrubRepairs] == 0 {
		t.Fatalf("scrub counters never moved: %+v", snap.Counters)
	}

	return scrubEventLog(c.Events())
}

// TestScrubDivergenceRepair is the seeded scrub chaos episode, run twice:
// both runs must pass and produce identical scrub timelines (the injector,
// digests, and repair path are all deterministic), and the divergence must
// leave a flight dump behind for dmv-doctor to attribute.
func TestScrubDivergenceRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos episode")
	}
	dir := scrubDumpDir(t)

	first := runScrubChaos(t, dir)
	second := runScrubChaos(t, dir)
	if len(first) == 0 {
		t.Fatal("no scrub events recorded")
	}
	if len(first) != len(second) {
		t.Fatalf("runs produced different scrub timelines:\n  run1: %v\n  run2: %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("scrub timelines differ at %d:\n  run1: %s\n  run2: %s", i, first[i], second[i])
		}
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flight-*-"+flight.CauseDivergence+".json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no replica-divergence flight dump: matches=%v err=%v", matches, err)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.Parse(blob)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	if d.Trigger.Cause != flight.CauseDivergence {
		t.Fatalf("dump cause = %q, want %q", d.Trigger.Cause, flight.CauseDivergence)
	}
	if d.Trigger.Node != "slave0" {
		t.Fatalf("dump node = %q, want slave0", d.Trigger.Node)
	}
}

// TestScrubDuringReintegration is the reintegration blind-spot regression:
// a master fail-over (DiscardAbove on every survivor) followed by a stale
// spare joining through StartJoin/FinishJoin, all while scrub sweeps tick
// every few milliseconds. The scrubber must neither wedge the join nor
// leave any node diverged or permanently quarantined: once the dust
// settles, every audited replica digest-matches its master.
func TestScrubDuringReintegration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos episode")
	}
	c := newTestCluster(t, Config{
		Slaves:        2,
		Spares:        1,
		SpareMode:     SpareStale,
		SchemaDDL:     scrubDDL,
		Load:          scrubLoad,
		ScrubInterval: 5 * time.Millisecond,
		MaxRetries:    20,
		Seed:          3,
	})

	// Commit through the original master so the spare is genuinely stale.
	for i := 0; i < 20; i++ {
		if err := deposit2(t, c, int64(i%10+1), 5); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}

	// Master fail-over: survivors DiscardAbove the acked frontier, a slave
	// is promoted, and the stale spare reintegrates (StartJoin, page-delta
	// migration, FinishJoin) — all racing the 5ms scrub ticks.
	if err := c.KillMaster(); err != nil {
		t.Fatalf("kill master: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := false
		for _, ev := range c.Events() {
			if ev.Kind == EventMigrationDone && ev.Node == "spare0" {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spare never reintegrated; events: %+v", c.Events())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// More commits through the new master land on the freshly joined spare.
	for i := 0; i < 10; i++ {
		if err := deposit2(t, c, int64(i%10+1), 5); err != nil {
			t.Fatalf("post-failover deposit %d: %v", i, err)
		}
	}

	// The joined spare (now a slave) converges to a master-matching digest:
	// a quiesced sweep audits every replica, including the reintegrated one,
	// and must find nothing diverged and repair nothing.
	sc := c.Scheduler().NewScrubber(scheduler.ScrubOptions{})
	var rep scheduler.ScrubReport
	for attempt := 0; ; attempt++ {
		rep = sc.Sweep()
		if len(rep.Diverged) == 0 && len(rep.Failed) == 0 && rep.TablesChecked > 0 {
			break
		}
		if attempt >= 10 {
			t.Fatalf("replicas never converged after reintegration: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And reads still resolve everywhere.
	if bal := readBalance(t, c, 1); bal <= 1000 {
		t.Fatalf("balance = %d, want > 1000", bal)
	}
}

// deposit2 is deposit without the audit-table insert (the scrub tests use a
// schema without the audit table).
func deposit2(t *testing.T, c *Cluster, acct, delta int64) error {
	t.Helper()
	return c.Run(scheduler.TxnSpec{Tables: []string{"account"}}, func(tx *scheduler.Txn) error {
		_, err := tx.Exec(`UPDATE account SET a_balance = a_balance + ? WHERE a_id = ?`,
			value.NewInt(delta), value.NewInt(acct))
		return err
	})
}
