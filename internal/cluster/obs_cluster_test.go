package cluster

import (
	"testing"
	"time"

	"dmv/internal/obs"
	"dmv/internal/scheduler"
)

// scanAll full-scans both test tables in one read transaction, touching
// every page so the slave serving the read applies all its buffered mods.
func scanAll(t *testing.T, c *Cluster) error {
	t.Helper()
	return c.Run(scheduler.TxnSpec{ReadOnly: true, Tables: []string{"account", "audit"}}, func(tx *scheduler.Txn) error {
		if _, err := tx.Exec(`SELECT a_id FROM account`); err != nil {
			return err
		}
		_, err := tx.Exec(`SELECT x_id FROM audit`)
		return err
	})
}

// aliveLagTotal sums the version lag and apply backlog over every alive
// node in the snapshot.
func aliveLagTotal(cs obs.ClusterSnapshot) (lag uint64, pending int) {
	for _, n := range cs.Nodes {
		if n.Role == "down" {
			continue
		}
		for _, l := range n.Lag {
			lag += l
		}
		pending += n.PendingMods
	}
	return lag, pending
}

// TestStitchedTraceAcrossCluster is the tentpole acceptance test: one
// update flows scheduler -> master -> slaves, a read then forces lazy
// application, and the stitched trace holds the whole causal path — the
// scheduler's tagged root, the master commit, a ship/ack per slave, the
// per-slave receipt, and the lazy apply — under a single TraceID.
func TestStitchedTraceAcrossCluster(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 30, Obs: reg})

	if err := deposit(t, c, 4, 1, 1); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	traceID := reg.Tracer().LatestTraceID()
	if traceID == 0 {
		t.Fatal("no trace recorded for the update")
	}

	// Reads rotate over the slaves; keep scanning until every buffered mod
	// of the update has been pulled through a lazy apply.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := scanAll(t, c); err != nil {
			t.Fatalf("scan: %v", err)
		}
		if _, pending := aliveLagTotal(c.ClusterSnapshot()); pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("buffered mods never fully applied")
		}
	}

	stitched := obs.Stitch(reg.Tracer().Dump(), traceID)
	if len(stitched) == 0 {
		t.Fatal("empty stitched trace")
	}
	root := stitched[0]
	if root.Kind != "update" || root.ParentID != 0 {
		t.Fatalf("stitched trace must start at the scheduler's tagged root, got %+v", root)
	}
	counts := map[string]int{}
	shipped := map[string]bool{}
	for _, sp := range stitched {
		if sp.TraceID != traceID {
			t.Fatalf("span %q carries trace %d, want %d", sp.Kind, sp.TraceID, traceID)
		}
		counts[sp.Kind]++
		if sp.Kind == "ws-ship" {
			shipped[sp.Node] = true
			acked := false
			for _, st := range sp.Stages {
				if st.Name == "ack" {
					acked = true
				}
			}
			if !acked {
				t.Errorf("ws-ship to %s missing ack: %+v", sp.Node, sp.Stages)
			}
		}
	}
	if counts["master-commit"] != 1 {
		t.Errorf("master-commit spans = %d, want 1 (kinds: %v)", counts["master-commit"], counts)
	}
	if counts["ws-ship"] != 2 || counts["ws-recv"] != 2 {
		t.Errorf("ship/recv spans = %d/%d, want one pair per slave (kinds: %v)",
			counts["ws-ship"], counts["ws-recv"], counts)
	}
	if !shipped["slave0"] || !shipped["slave1"] {
		t.Errorf("ship targets = %v, want both slaves", shipped)
	}
	if counts["lazy-apply"] == 0 {
		t.Errorf("no lazy-apply span in the trace (kinds: %v)", counts)
	}
}

// TestClusterLagGauges drives updates with no reads so mods stay buffered
// on the slaves, asserts the /cluster snapshot and the labeled lag gauges
// report the staleness, then scans until lazy application drains it all.
func TestClusterLagGauges(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 30, Obs: reg})

	for i := 1; i <= 5; i++ {
		if err := deposit(t, c, 4, 1, int64(i)); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	cs := c.ClusterSnapshot()
	lag, pending := aliveLagTotal(cs)
	if lag == 0 || pending == 0 {
		t.Fatalf("lag = %d pending = %d, want both nonzero while mods are buffered", lag, pending)
	}
	if len(cs.Frontier) == 0 || cs.Frontier[0] == 0 {
		t.Fatalf("frontier = %v, want the committed versions", cs.Frontier)
	}
	// The same staleness surfaces on the labeled gauges of /metrics.
	snap := reg.Snapshot()
	gaugeLag := 0.0
	for _, id := range []string{"slave0", "slave1"} {
		gaugeLag += snap.Gauges[obs.Labeled(obs.ReplicaVersionLag, "node", id, "table", "account")]
		gaugeLag += snap.Gauges[obs.Labeled(obs.ReplicaVersionLag, "node", id, "table", "audit")]
	}
	if gaugeLag == 0 {
		t.Fatalf("labeled lag gauges all zero: %v", snap.Gauges)
	}
	if snap.Gauges[obs.Labeled(obs.ReplicaApplyBacklog, "node", "slave0")]+
		snap.Gauges[obs.Labeled(obs.ReplicaApplyBacklog, "node", "slave1")] == 0 {
		t.Fatal("apply-backlog gauges all zero while mods are buffered")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := scanAll(t, c); err != nil {
			t.Fatalf("scan: %v", err)
		}
		if lag, pending := aliveLagTotal(c.ClusterSnapshot()); lag == 0 && pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			lag, pending := aliveLagTotal(c.ClusterSnapshot())
			t.Fatalf("lag = %d pending = %d, want zero after reads forced application", lag, pending)
		}
	}
}

// TestLagConvergesAfterFailover kills the master mid-stream, lets the
// fail-over pipeline elect and migrate, then asserts the survivors'
// version-lag gauges converge back to zero once reads drain the buffers.
func TestLagConvergesAfterFailover(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 30, Obs: reg})

	for i := 1; i <= 5; i++ {
		if err := deposit(t, c, 4, 1, int64(i)); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	oldMaster := c.MasterID(0)
	if err := c.Kill(oldMaster); err != nil {
		t.Fatalf("kill master: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		id := c.MasterID(0)
		return id != "" && id != oldMaster
	}, "master election")
	waitFor(t, 2*time.Second, func() bool {
		return deposit(t, c, 4, 1, 100) == nil
	}, "update after election")

	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := scanAll(t, c); err != nil && time.Now().After(deadline) {
			t.Fatalf("scan: %v", err)
		}
		cs := c.ClusterSnapshot()
		lag, pending := aliveLagTotal(cs)
		if lag == 0 && pending == 0 {
			// The dead node stays visible, marked down.
			down := false
			for _, n := range cs.Nodes {
				if n.Node == oldMaster && n.Role == "down" {
					down = true
				}
			}
			if !down {
				t.Fatalf("failed node %s not reported down: %+v", oldMaster, cs.Nodes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag = %d pending = %d never converged after fail-over", lag, pending)
		}
	}
}
