package cluster

import (
	"strings"
	"testing"
	"time"

	"dmv/internal/obs"
)

// TestObsMetricsEnabled drives a metrics-enabled cluster through commits,
// tagged reads, and a master fail-over, then checks that every
// paper-relevant quantity surfaced on the shared registry: committed
// transactions and write-set traffic, lazy page application, the abort
// cause catalogue, fail-over stage durations, and the transaction trace
// ring. scripts/check.sh runs this test under -race as its "obs" leg.
func TestObsMetricsEnabled(t *testing.T) {
	reg := obs.New()
	c := newTestCluster(t, Config{Slaves: 2, MaxRetries: 30, Obs: reg})
	for i := 1; i <= 10; i++ {
		if err := deposit(t, c, 4, 1, int64(i)); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		if bal := readBalance(t, c, 4); bal != int64(1000+i) {
			t.Fatalf("balance = %d, want %d", bal, 1000+i)
		}
	}

	oldMaster := c.MasterID(0)
	if err := c.Kill(oldMaster); err != nil {
		t.Fatalf("kill master: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		id := c.MasterID(0)
		return id != "" && id != oldMaster
	}, "master election")
	waitFor(t, 2*time.Second, func() bool {
		return deposit(t, c, 4, 1, 11) == nil
	}, "update after election")

	snap := reg.Snapshot()
	for _, name := range []string{
		obs.SchedReadTxns,
		obs.SchedUpdateTxns,
		obs.NodeReadTxns,
		obs.NodeUpdateTxns,
		obs.NodeWriteSetsIn,
		obs.NodeWriteSetBytes,
		obs.HeapCommits,
		obs.HeapWriteSetRecords,
		obs.HeapModsEnqueued,
		obs.HeapPagesLazy,
		obs.HeapModsLazy,
		obs.ClusterEvents,
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if h := snap.Histograms[obs.SchedTxnUS]; h.Count < 1 {
		t.Errorf("%s count = %d, want >= 1", obs.SchedTxnUS, h.Count)
	}
	if h := snap.Histograms[obs.FailoverRecoveryUS]; h.Count < 1 {
		t.Errorf("%s count = %d, want >= 1 after master fail-over", obs.FailoverRecoveryUS, h.Count)
	}
	if got := reg.Tracer().Total(); got == 0 {
		t.Errorf("trace ring recorded no spans")
	}

	// The text exposition — what a running daemon serves on /metrics —
	// must name the abort-cause and lazy-apply series even at zero.
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, name := range []string{
		obs.SchedAbortVersion,
		obs.SchedAbortLockTimeout,
		obs.SchedAbortNodeDown,
		obs.HeapPagesLazy,
		obs.HeapModsLazy,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("text exposition missing %s", name)
		}
	}
}
