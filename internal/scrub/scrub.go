// Package scrub defines the anti-entropy state digests: deterministic,
// byte-stable hashes of heap state evaluated at a pinned version, arranged
// as a per-table Merkle tree whose leaves are page digests. Multiversioning
// is what makes the digest cheap to take online — the scan reads every page
// at one pinned version through the same snapshot path readers use, so a
// scrub never blocks writers and two nodes that applied the same write-sets
// hash to the same bytes regardless of whether they applied them eagerly or
// lazily.
//
// The byte layout is fixed and platform-independent (big-endian lengths and
// ids, the injective value.Row.Key encoding for rows), so digests compare
// across goos/goarch and across process boundaries. heap.Engine produces
// TableDigest values (it owns the page walk); this package owns the hash
// definition so every layer agrees on what "equal state" means.
package scrub

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"dmv/internal/page"
	"dmv/internal/value"
)

// Hash is one sha256 digest.
type Hash [sha256.Size]byte

// PageDigest is the Merkle leaf: one page's content hash at the pinned
// version. Pages that hold no rows at the pinned version produce no leaf at
// all, so page-directory length differences between nodes (trailing empty
// pages a master allocated but never shipped) do not diverge the root.
type PageDigest struct {
	Page page.ID
	Hash Hash
}

// TableDigest is one table's state digest at a pinned version: the Merkle
// root, and optionally the full leaf set for drill-down after a root
// mismatch.
type TableDigest struct {
	Table   int
	Version uint64
	Root    Hash
	Pages   []PageDigest // leaf hashes sorted by page id; nil unless requested
}

// HashPage computes the Merkle leaf for one page's rows as seen at the
// pinned version. Rows hash in ascending RowID order; each row contributes
// its id and the injective value.Row.Key encoding, both length-framed, so
// no two distinct row sets collide by concatenation.
func HashPage(table int, pg page.ID, rows map[page.RowID]value.Row) PageDigest {
	ids := make([]page.RowID, 0, len(rows))
	for rid := range rows {
		ids = append(ids, rid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(table))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(pg))
	h.Write(buf[:])
	for _, rid := range ids {
		binary.BigEndian.PutUint64(buf[:], uint64(rid))
		h.Write(buf[:])
		key := rows[rid].Key()
		binary.BigEndian.PutUint64(buf[:], uint64(len(key)))
		h.Write(buf[:])
		h.Write([]byte(key))
	}
	var pd PageDigest
	pd.Page = pg
	h.Sum(pd.Hash[:0])
	return pd
}

// Root folds the leaf digests into the Merkle root. Leaves must be sorted
// by page id (SortPages). The fold pairs adjacent nodes level by level; an
// odd node is carried up unchanged. An empty table hashes to a fixed
// sentinel so "no pages" is itself a comparable state.
func Root(pages []PageDigest) Hash {
	if len(pages) == 0 {
		return sha256.Sum256([]byte("dmv-scrub-empty"))
	}
	level := make([]Hash, len(pages))
	for i, p := range pages {
		level[i] = p.Hash
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var out Hash
			h.Sum(out[:0])
			next = append(next, out)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// SortPages orders leaves by page id, the canonical order Root expects.
func SortPages(pages []PageDigest) {
	sort.Slice(pages, func(i, j int) bool { return pages[i].Page < pages[j].Page })
}

// DiffPages returns the ids of pages whose leaves differ between two
// digests of the same table at the same version: hash mismatches plus pages
// present on only one side. Both inputs must carry their leaf sets.
func DiffPages(a, b TableDigest) []page.ID {
	am := make(map[page.ID]Hash, len(a.Pages))
	for _, p := range a.Pages {
		am[p.Page] = p.Hash
	}
	var out []page.ID
	seen := make(map[page.ID]bool, len(b.Pages))
	for _, p := range b.Pages {
		seen[p.Page] = true
		if h, ok := am[p.Page]; !ok || h != p.Hash {
			out = append(out, p.Page)
		}
	}
	for _, p := range a.Pages {
		if !seen[p.Page] {
			out = append(out, p.Page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
