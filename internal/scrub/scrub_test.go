package scrub

import (
	"testing"

	"dmv/internal/page"
	"dmv/internal/value"
)

func rows(kv map[page.RowID]int64) map[page.RowID]value.Row {
	out := make(map[page.RowID]value.Row, len(kv))
	for rid, v := range kv {
		out[rid] = value.Row{value.NewInt(v), value.NewString("x")}
	}
	return out
}

func TestHashPageStableUnderMapOrder(t *testing.T) {
	a := HashPage(1, 3, rows(map[page.RowID]int64{1: 10, 2: 20, 3: 30}))
	for i := 0; i < 50; i++ {
		// Fresh maps iterate in different orders; the digest must not care.
		b := HashPage(1, 3, rows(map[page.RowID]int64{3: 30, 1: 10, 2: 20}))
		if a.Hash != b.Hash {
			t.Fatal("hash depends on map iteration order")
		}
	}
}

func TestHashPageDiscriminates(t *testing.T) {
	base := HashPage(1, 3, rows(map[page.RowID]int64{1: 10, 2: 20}))
	cases := map[string]PageDigest{
		"different value": HashPage(1, 3, rows(map[page.RowID]int64{1: 10, 2: 21})),
		"different rid":   HashPage(1, 3, rows(map[page.RowID]int64{1: 10, 3: 20})),
		"different page":  HashPage(1, 4, rows(map[page.RowID]int64{1: 10, 2: 20})),
		"different table": HashPage(2, 3, rows(map[page.RowID]int64{1: 10, 2: 20})),
		"missing row":     HashPage(1, 3, rows(map[page.RowID]int64{1: 10})),
	}
	for name, got := range cases {
		if got.Hash == base.Hash {
			t.Errorf("%s: hash collided with base", name)
		}
	}
}

func TestRootFoldsAndDiscriminates(t *testing.T) {
	mk := func(vals ...int64) []PageDigest {
		out := make([]PageDigest, len(vals))
		for i, v := range vals {
			out[i] = HashPage(0, page.ID(i), rows(map[page.RowID]int64{1: v}))
		}
		return out
	}
	if Root(nil) != Root([]PageDigest{}) {
		t.Fatal("empty sentinel unstable")
	}
	if Root(mk(1, 2, 3)) != Root(mk(1, 2, 3)) {
		t.Fatal("root not deterministic")
	}
	if Root(mk(1, 2, 3)) == Root(mk(1, 2, 4)) {
		t.Fatal("root missed a leaf change")
	}
	if Root(mk(1, 2, 3)) == Root(mk(1, 2)) {
		t.Fatal("root missed a trailing leaf")
	}
	if Root(mk(1)) == Root(nil) {
		t.Fatal("one-leaf root equals empty sentinel")
	}
	// Odd leaf counts exercise the carry-up path.
	if Root(mk(1, 2, 3, 4, 5)) == Root(mk(1, 2, 3, 4)) {
		t.Fatal("root missed the carried odd leaf")
	}
}

func TestDiffPages(t *testing.T) {
	mkTD := func(pages map[page.ID]int64) TableDigest {
		td := TableDigest{Table: 0, Version: 9}
		for pg, v := range pages {
			td.Pages = append(td.Pages, HashPage(0, pg, rows(map[page.RowID]int64{1: v})))
		}
		SortPages(td.Pages)
		td.Root = Root(td.Pages)
		return td
	}
	a := mkTD(map[page.ID]int64{1: 10, 2: 20, 3: 30})
	b := mkTD(map[page.ID]int64{1: 10, 2: 99, 4: 40})
	diff := DiffPages(a, b)
	want := []page.ID{2, 3, 4} // 2 mismatched, 3 only in a, 4 only in b
	if len(diff) != len(want) {
		t.Fatalf("diff = %v, want %v", diff, want)
	}
	for i := range want {
		if diff[i] != want[i] {
			t.Fatalf("diff = %v, want %v", diff, want)
		}
	}
	if got := DiffPages(a, a); len(got) != 0 {
		t.Fatalf("self-diff = %v, want empty", got)
	}
}
