package obs

// Every metric name in the tree is declared here and nowhere else;
// scripts/check.sh greps for "dmv_..." string literals outside this file
// and fails the build on a hit. Keeping the catalogue in one place makes
// the exposition self-documenting and prevents two layers from silently
// registering near-duplicate names.
//
// Conventions: `_total` suffix for counters, `_us` for microsecond
// histograms, bare names for gauges. The DESIGN.md "Observability" section
// mirrors this catalogue with prose.
const (
	// --- name-family prefixes (dashboards filter on these) ------------------

	SchedPrefix   = "dmv_sched_"   // scheduler metric family
	NodePrefix    = "dmv_node_"    // replica metric family
	WalPrefix     = "dmv_wal_"     // write-ahead log metric family
	PersistPrefix = "dmv_persist_" // persistence tier metric family

	// --- scheduler (version-aware transaction router) -----------------------

	SchedReadTxns         = "dmv_sched_read_txns_total"           // committed read-only transactions
	SchedUpdateTxns       = "dmv_sched_update_txns_total"         // committed update transactions
	SchedAbortVersion     = "dmv_sched_aborts_version_total"      // aborts: required page version overwritten
	SchedAbortLockTimeout = "dmv_sched_aborts_lock_timeout_total" // aborts: page lock wait exceeded LockTimeout
	SchedAbortNodeDown    = "dmv_sched_aborts_node_down_total"    // aborts: executing replica failed mid-txn
	SchedAbortPeerTimeout = "dmv_sched_aborts_peer_timeout_total" // aborts: replica call exceeded its RPC deadline
	SchedRetriesExhausted = "dmv_sched_retries_exhausted_total"   // transactions given up after MaxRetries
	SchedFailovers        = "dmv_sched_failovers_total"           // node failures reported to the cluster
	SchedPickWaitUS       = "dmv_sched_reader_pick_wait_us"       // wait for a slave to reach the tagged version
	SchedTxnUS            = "dmv_sched_txn_us"                    // whole-transaction latency per attempt
	SchedVersionWaitUS    = "dmv_sched_version_wait_us"           // reader stalls waiting for any replica to reach its version
	SchedTakeovers        = "dmv_sched_takeovers_total"           // master take-overs executed by this scheduler

	// --- scheduler admission control (bounded queue in front of begin) ------

	SchedAdmitAdmitted     = "dmv_sched_admit_admitted_total"     // transactions admitted past the bounded queue
	SchedAdmitShed         = "dmv_sched_admit_shed_total"         // transactions fast-rejected with ErrOverloaded
	SchedAdmitQueueDepth   = "dmv_sched_admit_queue_depth"        // occupancy across all admission classes (gauge)
	SchedAdmitSojournUS    = "dmv_sched_admit_sojourn_us"         // queue sojourn time of admitted transactions
	SchedAdmitShedding     = "dmv_sched_admit_shedding"           // gauge: 1 while CoDel shed mode is active
	SchedDeadlineAbandoned = "dmv_sched_deadline_abandoned_total" // transactions abandoned pre-commit at the caller's deadline

	// --- replica (one DMV node) ---------------------------------------------

	NodeReadTxns          = "dmv_node_read_txns_total"              // read transactions executed across nodes
	NodeUpdateTxns        = "dmv_node_update_txns_total"            // update transactions executed across nodes
	NodeAborts            = "dmv_node_aborts_total"                 // node-side aborts (version conflicts)
	NodeWriteSetsIn       = "dmv_node_writesets_in_total"           // write-sets received from a master
	NodeWriteSetBytes     = "dmv_node_writeset_bytes_total"         // estimated bytes of write-sets received
	NodeBroadcastUS       = "dmv_node_broadcast_us"                 // master pre-commit broadcast until all acks
	NodeBroadcastAcks     = "dmv_node_broadcast_acks_total"         // successful per-subscriber acks
	NodeBroadcastFailures = "dmv_node_broadcast_failures_total"     // per-subscriber broadcast failures
	NodeBroadcastTimeouts = "dmv_node_broadcast_ack_timeouts_total" // subscriber acks abandoned at the AckTimeout deadline
	NodeRole              = "dmv_node_role"                         // labeled gauge: 0 slave, 1 master, 2 joining, 3 spare
	NodeStartTime         = "dmv_node_start_time_seconds"           // labeled gauge: unix start time of the node process
	BuildInfo             = "dmv_build_info"                        // labeled info gauge (go runtime version), value always 1
	ReplicaVersionLag     = "dmv_replica_version_lag"               // labeled gauge: commit frontier minus applied version, per node x table
	ReplicaApplyBacklog   = "dmv_replica_apply_backlog"             // labeled gauge: buffered (unapplied) row mods per node

	// --- heap (page-based storage engine) -----------------------------------

	HeapLockWaitUS      = "dmv_heap_lock_wait_us"              // contended page-latch waits (uncontended not recorded)
	HeapLockTimeouts    = "dmv_heap_lock_timeouts_total"       // page-latch waits that hit LockTimeout
	HeapCommits         = "dmv_heap_commits_total"             // master-side update commits
	HeapWriteSetRecords = "dmv_heap_writeset_records_total"    // row ops captured into broadcast write-sets
	HeapModsEnqueued    = "dmv_heap_mods_enqueued_total"       // row ops buffered into page pending queues
	HeapPagesLazy       = "dmv_heap_pages_lazy_applied_total"  // pages materialized on reader demand
	HeapModsLazy        = "dmv_heap_mods_lazy_applied_total"   // buffered mods applied on reader demand
	HeapPagesEager      = "dmv_heap_pages_eager_applied_total" // pages materialized eagerly (promotion/migration)
	HeapModsEager       = "dmv_heap_mods_eager_applied_total"  // buffered mods applied eagerly
	HeapModsDiscarded   = "dmv_heap_mods_discarded_total"      // buffered mods dropped by fail-over discard
	HeapModChainLen     = "dmv_heap_mod_chain_len"             // pending-mod chain length per page after enqueue
	HeapLazyApplyDist   = "dmv_heap_lazy_apply_dist"           // buffered mods drained per page on first read

	// --- buffer cache (simdisk cost model) ----------------------------------

	CacheHits     = "dmv_cache_hits_total"   // buffer-cache hits (gauge func, summed over disks)
	CacheMisses   = "dmv_cache_misses_total" // buffer-cache misses
	CacheFsyncs   = "dmv_cache_fsyncs_total" // commit fsyncs charged
	CacheHitRatio = "dmv_cache_hit_ratio"    // aggregate hit ratio in [0,1]

	// --- cluster fail-over timeline -----------------------------------------

	ClusterEvents           = "dmv_cluster_events_total"           // lifecycle events recorded on the timeline
	ClusterNodeHealth       = "dmv_cluster_node_health"            // labeled gauge: suspicion state per node (0 healthy, 1 suspect, 2 dead)
	ClusterSuspicions       = "dmv_cluster_suspicions_total"       // healthy->suspect transitions raised by the detector
	ClusterFalseSuspicions  = "dmv_cluster_false_suspicions_total" // suspects cleared after probes recovered (false alarms)
	FailoverRecoveryUS      = "dmv_failover_recovery_us"           // failure detection -> commits unblocked
	FailoverMigrationUS     = "dmv_failover_migration_us"          // spare data migration (page delta install)
	FailoverReintegrationUS = "dmv_failover_reintegration_us"      // stale-node page-delta reintegration
	FailoverRestartUS       = "dmv_failover_restart_us"            // checkpoint restore + rejoin of a dead node
	FailoverSpareUS         = "dmv_failover_spare_activation_us"   // whole spare activation (incl. migration)

	// --- anti-entropy scrub (DESIGN.md §15) ---------------------------------

	ScrubSweeps         = "dmv_scrub_sweeps_total"             // digest sweeps completed
	ScrubTablesChecked  = "dmv_scrub_tables_checked_total"     // per-table digest comparisons performed
	ScrubConflicts      = "dmv_scrub_frontier_conflicts_total" // digest attempts beaten by a racing commit (retried)
	ScrubSkipped        = "dmv_scrub_tables_skipped_total"     // table checks abandoned after frontier retries or peer errors
	ScrubDivergences    = "dmv_scrub_divergences_total"        // diverged (node, table) pairs detected
	ScrubRepairs        = "dmv_scrub_repairs_total"            // diverged nodes repaired and verified
	ScrubRepairFailures = "dmv_scrub_repair_failures_total"    // repair attempts that failed verification (node left quarantined)
	ScrubRepairPages    = "dmv_scrub_repaired_pages_total"     // page images shipped during repair
	ScrubSweepUS        = "dmv_scrub_sweep_us"                 // whole-sweep latency
	ScrubRepairUS       = "dmv_scrub_repair_us"                // quarantine -> verified-repair latency

	// --- persistence tier ----------------------------------------------------

	PersistLogged      = "dmv_persist_logged_total"          // update transactions appended to the query log
	PersistApplied     = "dmv_persist_applied_total"         // log entries applied to every on-disk backend
	PersistReplayed    = "dmv_persist_replayed_total"        // log entries replayed during Recover
	PersistErrors      = "dmv_persist_errors_total"          // backend apply errors
	PersistBacklog     = "dmv_persist_backlog"               // log entries not yet applied everywhere (gauge func)
	PersistQuarantined = "dmv_persist_backend_quarantined"   // labeled gauge: 1 while a backend is quarantined after an apply error
	PersistTruncations = "dmv_persist_log_truncations_total" // checkpoint-coordinated log truncations completed

	// --- write-ahead log (crash durability under the persistence tier) ------

	WalFsyncUS           = "dmv_wal_fsync_us"                 // fsync latency (group commit: one observation per batch)
	WalBytes             = "dmv_wal_bytes_total"              // framed record bytes appended
	WalSegments          = "dmv_wal_segments"                 // live segment files (gauge func)
	WalRecoveryTruncated = "dmv_wal_recovery_truncated_bytes" // torn-tail bytes discarded by recovery

	// --- transport (TCP peer RPC) -------------------------------------------

	TransportBytesIn  = "dmv_transport_bytes_in_total"  // bytes read from peer connections
	TransportBytesOut = "dmv_transport_bytes_out_total" // bytes written to peer connections
	TransportConns    = "dmv_transport_conns_total"     // peer connections accepted

	TransportRPCTimeouts = "dmv_transport_rpc_timeouts_total" // client calls abandoned at their deadline
	TransportRPCRetries  = "dmv_transport_rpc_retries_total"  // idempotent-call retry attempts after transport failures
	TransportRedials     = "dmv_transport_redials_total"      // client reconnects after a broken rpc.Client
	TransportRPCUS       = "dmv_transport_rpc_us"             // client-observed per-call latency (incl. timeouts)

	TransportRetryBudgetExhausted = "dmv_transport_retry_budget_exhausted_total" // idempotent retry loops stopped by the elapsed-time budget

	// --- obs self-observation ------------------------------------------------

	ObsRingDropped = "dmv_obs_ring_dropped_total" // labeled counter: entries evicted from a bounded ring (ring="trace"|"timeline"|"flight")

	// --- runtime health (per-process, sampled via runtime/metrics) ----------

	RuntimeGoroutines    = "dmv_runtime_goroutines"           // labeled gauge: live goroutines per node
	RuntimeHeapBytes     = "dmv_runtime_heap_bytes"           // labeled gauge: live heap object bytes per node
	RuntimeGCPauseLastUS = "dmv_runtime_gc_pause_last_us"     // labeled gauge: most recent GC stop-the-world pause
	RuntimeSchedLatP99US = "dmv_runtime_sched_latency_p99_us" // labeled gauge: p99 goroutine scheduling latency
	RuntimeGCPauseUS     = "dmv_runtime_gc_pause_us"          // histogram: GC stop-the-world pauses observed by the sampler

	// --- flight recorder (anomaly-triggered cluster dumps) ------------------

	FlightDumps      = "dmv_flight_dumps_total"               // labeled counter: cluster dumps written, per origin node
	FlightDumpErrors = "dmv_flight_dump_errors_total"         // dump serialization/write failures
	FlightTriggers   = "dmv_flight_triggers_total"            // anomaly triggers accepted
	FlightSuppressed = "dmv_flight_triggers_suppressed_total" // triggers dropped by cooldown or full queue
	FlightPeerErrors = "dmv_flight_peer_errors_total"         // peer ring gathers that failed or timed out

	// --- innodb-like on-disk baseline ---------------------------------------

	InnoCommits          = "dmv_inno_commits_total"        // tier update commits (write-all)
	InnoReplayedStmts    = "dmv_inno_replayed_stmts_total" // binlog statements replayed onto spares
	InnoFailoverReplayUS = "dmv_inno_failover_replay_us"   // binlog replay stage during tier fail-over
)
