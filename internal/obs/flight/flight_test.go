package flight

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmv/internal/obs"
)

// fakeClock is a deterministic, concurrency-safe clock: every read advances
// one microsecond, so timestamps are unique and runs are reproducible.
type fakeClock struct{ n int64 }

func (c *fakeClock) Now() time.Time {
	return time.Unix(0, atomic.AddInt64(&c.n, 1000))
}

// TestRingWraparoundConcurrent hammers the ring from many goroutines and
// checks the wrap bookkeeping: nothing lost silently, retention exactly the
// last ringCap entries in sequence order.
func TestRingWraparoundConcurrent(t *testing.T) {
	t.Parallel()
	const (
		cap     = 64
		writers = 16
		each    = 200
	)
	reg := obs.New()
	r := New(Options{Node: "n0", Reg: reg, RingCap: cap, Now: (&fakeClock{}).Now})
	defer r.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.RecordHealth(fmt.Sprintf("peer%d", w), "healthy", "suspect")
			}
		}(w)
	}
	wg.Wait()

	total, dropped := r.Stats()
	if want := uint64(writers * each); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if want := uint64(writers*each - cap); dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
	entries := r.Entries()
	if len(entries) != cap {
		t.Fatalf("retained %d entries, want %d", len(entries), cap)
	}
	// Seq is assigned under the same mutex as insertion, so the retained
	// window is the contiguous top of the sequence space, oldest first.
	for i, e := range entries {
		if want := uint64(writers*each-cap) + uint64(i); e.Seq != want {
			t.Fatalf("entry %d: seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got := reg.Snapshot().Counter(obs.Labeled(obs.ObsRingDropped, "ring", "flight")); got != int64(dropped) {
		t.Fatalf("drop counter = %d, want %d", got, dropped)
	}
}

// scriptRecorder replays one fixed sequence of ring activity and a trigger,
// returning the dump delivered via OnDump.
func scriptRecorder(t *testing.T, dir string) Dump {
	t.Helper()
	reg := obs.New()
	dumpCh := make(chan Dump, 1)
	r := New(Options{
		Node: "sched", Reg: reg, Dir: dir, RingCap: 32,
		Now:    (&fakeClock{}).Now,
		OnDump: func(_ string, d Dump) { dumpCh <- d },
	})
	reg.Counter(obs.FlightTriggers) // ensure a stable metric set
	r.RecordHealth("m", "healthy", "suspect")
	r.RecordEvent(obs.Event{Time: time.Unix(0, 1), Kind: "node-failed", Node: "m"})
	r.RecordSpan(obs.Span{TraceID: 7, SpanID: 9, Kind: "update", Node: "sched",
		Start: time.Unix(0, 2), Outcome: "commit", Total: 5 * time.Millisecond})
	r.RecordHealth("m", "suspect", "dead")
	r.Trigger(CauseFailover, "m", "node confirmed dead")
	r.Close()
	select {
	case d := <-dumpCh:
		return d
	default:
		t.Fatal("no dump produced")
		return Dump{}
	}
}

// TestDumpDeterminism runs the same scripted schedule twice and requires
// byte-identical dumps modulo Meta.
func TestDumpDeterminism(t *testing.T) {
	t.Parallel()
	d1 := StripMeta(scriptRecorder(t, t.TempDir()))
	d2 := StripMeta(scriptRecorder(t, t.TempDir()))
	b1, err := Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("dumps differ across identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	if d1.Trigger.Cause != CauseFailover || d1.Trigger.Node != "m" {
		t.Fatalf("trigger = %+v", d1.Trigger)
	}
}

// TestDumpWrittenAndParses checks the on-disk artifact: durably written,
// schema-checked by Parse, filename carries the cause.
func TestDumpWrittenAndParses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := scriptRecorder(t, dir)
	if d.Schema != SchemaVersion {
		t.Fatalf("schema = %d", d.Schema)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "flight-*-"+CauseFailover+".json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dump files = %v, err = %v", matches, err)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Trigger.Cause != CauseFailover {
		t.Fatalf("parsed trigger = %+v", parsed.Trigger)
	}
	if len(parsed.Nodes) != 1 || parsed.Nodes[0].Node != "sched" {
		t.Fatalf("nodes = %+v", parsed.Nodes)
	}
}

type fakePeer struct {
	id  string
	nd  NodeDump
	err error
}

func (p fakePeer) ID() string                  { return p.id }
func (p fakePeer) FlightDump() (NodeDump, error) { return p.nd, p.err }

// TestPeerGather checks dump assembly over a peer set: reachable rings are
// merged (sorted, deduped), unreachable peers land in Meta.PeerErrors
// instead of failing the dump.
func TestPeerGather(t *testing.T) {
	t.Parallel()
	reg := obs.New()
	dumpCh := make(chan Dump, 1)
	r := New(Options{
		Node: "sched", Reg: reg, Now: (&fakeClock{}).Now,
		OnDump: func(_ string, d Dump) { dumpCh <- d },
	})
	r.SetPeers([]Peer{
		fakePeer{id: "s1", nd: NodeDump{Node: "s1"}},
		fakePeer{id: "m", err: errors.New("connection refused")},
		fakePeer{id: "s1-dup", nd: NodeDump{Node: "s1"}}, // deduped by node id
	})
	r.Trigger(CauseSuspicion, "m", "probe misses")
	r.Close()
	d := <-dumpCh
	if len(d.Nodes) != 2 || d.Nodes[0].Node != "s1" || d.Nodes[1].Node != "sched" {
		t.Fatalf("nodes = %+v", d.Nodes)
	}
	if len(d.Meta.PeerErrors) != 1 || d.Meta.PeerErrors[0] != "m: connection refused" {
		t.Fatalf("peer errors = %v", d.Meta.PeerErrors)
	}
	if got := reg.Snapshot().Counter(obs.FlightPeerErrors); got != 1 {
		t.Fatalf("peer error counter = %d", got)
	}
}

// TestCooldownSuppression: a second trigger of the same cause inside the
// cooldown window is counted as suppressed and writes no dump.
func TestCooldownSuppression(t *testing.T) {
	t.Parallel()
	reg := obs.New()
	var dumps atomic.Int64
	r := New(Options{
		Node: "sched", Reg: reg, Now: (&fakeClock{}).Now,
		Cooldown: time.Hour,
		OnDump:   func(string, Dump) { dumps.Add(1) },
	})
	r.Trigger(CauseWALFatal, "", "fsync failed")
	r.Trigger(CauseWALFatal, "", "fsync failed again")
	r.Close()
	if got := dumps.Load(); got != 1 {
		t.Fatalf("dumps = %d, want 1 (cooldown)", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.FlightSuppressed); got != 1 {
		t.Fatalf("suppressed counter = %d, want 1", got)
	}
	// A different cause is admitted independently.
	if got := snap.Counter(obs.FlightTriggers); got != 2 {
		t.Fatalf("triggers counter = %d, want 2", got)
	}
}

// TestRegistryAutoCapture: spans finished on the registry tracer and events
// recorded on its timeline shadow into the ring without explicit wiring.
func TestRegistryAutoCapture(t *testing.T) {
	t.Parallel()
	reg := obs.New()
	r := New(Options{Node: "n0", Reg: reg, Now: (&fakeClock{}).Now})
	defer r.Close()
	sp := reg.Tracer().Begin("update")
	sp.Finish("commit", "")
	reg.Timeline().Record(obs.Event{Kind: "checkpoint", Node: "n0"})
	var spans, events int
	for _, e := range r.Entries() {
		switch e.Kind {
		case KindSpan:
			spans++
		case KindEvent:
			events++
		}
	}
	if spans != 1 || events != 1 {
		t.Fatalf("captured spans=%d events=%d, want 1/1", spans, events)
	}
}
