package flight

import (
	"math"
	"time"

	"runtime/metrics"

	"dmv/internal/obs"
)

// RuntimeSample is one point-in-time runtime-health reading, captured via
// runtime/metrics and embedded in every NodeDump so a post-mortem sees the
// process state (goroutine pileup, heap growth, GC stalls, scheduler
// starvation) around the anomaly.
type RuntimeSample struct {
	Goroutines    int64
	HeapBytes     int64 // live heap object bytes
	GCPauseLastUS int64 // most recent GC stop-the-world pause
	SchedLatP99US int64 // p99 goroutine scheduling latency
}

// runtime/metrics sample names read by the sampler.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// SampleRuntime takes one runtime-health reading: it updates the
// node-labeled dmv_runtime_* gauges, feeds newly observed GC pauses into
// the dmv_runtime_gc_pause_us histogram, records a metric-delta ring entry
// for counters that moved since the previous sample, and retains the sample
// for the next NodeDump. Exported (rather than only looping inside
// StartSampler) so tests can step it deterministically.
//
// Must not be called while holding any recorder or subsystem lock: it
// snapshots the registry, which evaluates gauge callbacks.
func (r *Recorder) SampleRuntime() RuntimeSample {
	if r == nil {
		return RuntimeSample{}
	}
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)

	var rt RuntimeSample
	if samples[0].Value.Kind() == metrics.KindUint64 {
		rt.Goroutines = int64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		rt.HeapBytes = int64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
		rt.GCPauseLastUS = r.observeNewPauses(samples[2].Value.Float64Histogram())
	}
	if samples[3].Value.Kind() == metrics.KindFloat64Histogram {
		rt.SchedLatP99US = histQuantileUS(samples[3].Value.Float64Histogram(), 0.99)
	}
	if rt.GCPauseLastUS == 0 {
		// No new pause this sample: keep exposing the last known pause.
		r.mu.Lock()
		rt.GCPauseLastUS = r.lastRT.GCPauseLastUS
		r.mu.Unlock()
	}

	// Counter deltas vs the previous sample become one ring entry, so a
	// dump shows which counters were moving in the window before the
	// anomaly. The snapshot is taken with no recorder lock held.
	var deltas map[string]int64
	var counters map[string]int64
	if r.reg != nil {
		counters = r.reg.Snapshot().Counters
	}

	if r.reg != nil {
		r.reg.Gauge(obs.Labeled(obs.RuntimeGoroutines, "node", r.node)).Set(rt.Goroutines)
		r.reg.Gauge(obs.Labeled(obs.RuntimeHeapBytes, "node", r.node)).Set(rt.HeapBytes)
		r.reg.Gauge(obs.Labeled(obs.RuntimeGCPauseLastUS, "node", r.node)).Set(rt.GCPauseLastUS)
		r.reg.Gauge(obs.Labeled(obs.RuntimeSchedLatP99US, "node", r.node)).Set(rt.SchedLatP99US)
	}

	r.mu.Lock()
	r.lastRT = rt
	if counters != nil {
		if r.prevCtr != nil {
			for name, v := range counters {
				if d := v - r.prevCtr[name]; d != 0 {
					if deltas == nil {
						deltas = make(map[string]int64, 8)
					}
					deltas[name] = d
				}
			}
		}
		r.prevCtr = counters
	}
	r.mu.Unlock()

	if deltas != nil {
		r.add(Entry{Kind: KindDelta, Node: r.node, Deltas: deltas})
	}
	return rt
}

// observeNewPauses feeds GC pauses that appeared since the previous sample
// into the pause histogram (bucket upper bounds, in µs — the runtime only
// exposes a histogram, so individual pause values are approximated by their
// bucket) and returns the largest new pause in µs (0 when none).
func (r *Recorder) observeNewPauses(h *metrics.Float64Histogram) int64 {
	r.mu.Lock()
	prev := r.prevGC
	if len(prev) != len(h.Counts) {
		prev = nil // first sample or runtime changed bucketing: baseline only
	}
	r.prevGC = append([]uint64(nil), h.Counts...)
	r.mu.Unlock()
	if prev == nil {
		return 0
	}
	var hist *obs.Histogram
	if r.reg != nil {
		hist = r.reg.Histogram(obs.RuntimeGCPauseUS)
	}
	var last int64
	for i, c := range h.Counts {
		d := int64(c) - int64(prev[i])
		if d <= 0 {
			continue
		}
		us := bucketUpperUS(h.Buckets, i)
		if us > last {
			last = us
		}
		// Cap per-bucket observations: a pathological GC storm between two
		// samples should not stall the sampler feeding the histogram.
		if d > 64 {
			d = 64
		}
		for k := int64(0); k < d; k++ {
			hist.Observe(us)
		}
	}
	return last
}

// histQuantileUS computes the q-quantile of a runtime/metrics histogram in
// microseconds, taking each bucket at its upper bound.
func histQuantileUS(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i, c := range h.Counts {
		acc += c
		if acc >= target {
			return bucketUpperUS(h.Buckets, i)
		}
	}
	return bucketUpperUS(h.Buckets, len(h.Counts)-1)
}

// bucketUpperUS returns bucket i's upper bound in µs, falling back to the
// finite lower bound when the upper edge is +Inf.
func bucketUpperUS(buckets []float64, i int) int64 {
	// Bucket i spans [buckets[i], buckets[i+1]).
	up := math.Inf(1)
	if i+1 < len(buckets) {
		up = buckets[i+1]
	}
	if math.IsInf(up, 1) && i < len(buckets) && !math.IsInf(buckets[i], -1) {
		up = buckets[i]
	}
	if math.IsInf(up, 1) || math.IsInf(up, -1) || math.IsNaN(up) {
		return 0
	}
	return int64(up * 1e6)
}

// StartSampler launches the periodic runtime-health sampler; it stops when
// the recorder is closed.
func (r *Recorder) StartSampler(every time.Duration) {
	if r == nil {
		return
	}
	if every <= 0 {
		every = time.Second
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				r.SampleRuntime()
			case <-r.stop:
				return
			}
		}
	}()
}
