package flight

import (
	"encoding/json"
	"fmt"

	"dmv/internal/obs"
)

// SchemaVersion is the dump schema version. Bump on any incompatible field
// change; dmv-doctor refuses dumps from a different version rather than
// misrendering them.
const SchemaVersion = 1

// Dump is one cluster-wide flight dump: the trigger that caused it, every
// reachable node's frozen ring, and write-time metadata. Serialization is
// byte-stable for a given value: encoding/json emits struct fields in
// declaration order and map keys sorted, so the same recorded state always
// marshals to the same bytes. Meta carries the only wall-clock-of-write
// fields; StripMeta zeroes it for byte-compare determinism checks.
type Dump struct {
	Schema  int
	Trigger Trigger
	Nodes   []NodeDump
	Meta    Meta
}

// Trigger identifies the anomaly that caused a dump.
type Trigger struct {
	Cause  string // one of the Cause* constants
	Node   string // node the anomaly concerns (suspect node, quarantined backend's node, ...)
	Detail string // free-form context (error text, miss counts, ...)
	TS     int64  // recorder-clock unix nanos at trigger time
}

// Meta is dump-assembly metadata: everything here may legitimately differ
// between two otherwise-identical runs (gather wall time, which peers were
// reachable), so determinism comparisons strip it.
type Meta struct {
	WrittenUnixNano int64
	Origin          string // node that assembled the dump
	GatherUS        int64  // peer-gather + assembly time
	PeerErrors      []string `json:",omitempty"`
}

// NodeDump is one node's frozen flight state inside a dump.
type NodeDump struct {
	Node    string
	Entries []Entry
	Metrics obs.Snapshot
	Runtime RuntimeSample
	Dropped uint64 // ring entries evicted before the freeze
}

// HealthTransition is one failure-detector state change.
type HealthTransition struct {
	Node string
	From string
	To   string
}

// Entry is one flight-ring record. Exactly one of Span/Event/Deltas/Health
// is set, matching Kind; trigger entries carry Cause/Detail inline.
type Entry struct {
	Seq    uint64
	TS     int64 // recorder-clock unix nanos
	Kind   string
	Node   string
	Span   *obs.Span         `json:",omitempty"`
	Event  *obs.Event        `json:",omitempty"`
	Deltas map[string]int64  `json:",omitempty"`
	Health *HealthTransition `json:",omitempty"`
	Cause  string            `json:",omitempty"`
	Detail string            `json:",omitempty"`
}

// Marshal renders a dump as indented JSON with a trailing newline. The
// output is byte-stable for a given dump value.
func Marshal(d Dump) ([]byte, error) {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("flight: marshal dump: %w", err)
	}
	return append(blob, '\n'), nil
}

// Parse decodes and version-checks a dump.
func Parse(blob []byte) (Dump, error) {
	var d Dump
	if err := json.Unmarshal(blob, &d); err != nil {
		return Dump{}, fmt.Errorf("flight: parse dump: %w", err)
	}
	if d.Schema != SchemaVersion {
		return Dump{}, fmt.Errorf("flight: dump schema %d, this build reads %d", d.Schema, SchemaVersion)
	}
	return d, nil
}

// StripMeta returns the dump with its assembly metadata zeroed, for
// byte-identical determinism comparisons across runs of one seed.
func StripMeta(d Dump) Dump {
	d.Meta = Meta{}
	return d
}
