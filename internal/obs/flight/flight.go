// Package flight is the always-on flight recorder: every node (and the
// scheduler) keeps a bounded, clock-stamped ring of recent trace spans,
// timeline events, metric-snapshot deltas, and node-health transitions.
// When an anomaly trigger fires — fail-over start, suspicion escalation,
// backend quarantine, a WAL sticky-fatal, ErrCommitUncertain — the recorder
// freezes its ring, gathers peer rings over the (deadline-bounded)
// Peer.FlightDump RPC, and writes one cluster-wide dump durably via
// wal.WriteFileDurable with a versioned, byte-stable JSON schema that
// cmd/dmv-doctor renders post mortem.
//
// The recorder is nil-safe throughout: a nil *Recorder no-ops on every
// method, so subsystems can thread an optional recorder unconditionally.
// The clock is injectable so seeded chaos runs produce deterministic dumps.
//
// Lock discipline: Recorder.mu and Recorder.peersMu sit in the obs band
// (level 70, innermost), so Trigger/Record* may be called while holding any
// subsystem lock. Dump assembly — which calls obs.Registry.Snapshot (level
// 10, gauge callbacks may take cluster locks) and peer RPCs — runs only on
// the recorder's own worker goroutine with no recorder lock held.
package flight

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dmv/internal/obs"
	"dmv/internal/wal"
)

// Ring entry kinds.
const (
	KindSpan    = "span"    // a trace span published to the obs tracer
	KindEvent   = "event"   // a timeline lifecycle event
	KindDelta   = "delta"   // counter deltas observed by the runtime sampler
	KindHealth  = "health"  // a failure-detector health transition
	KindTrigger = "trigger" // an anomaly trigger (also enqueues a dump)
)

// Anomaly trigger causes. These are the tokens dmv-doctor keys its causal
// analysis on; dump filenames embed them, so keep them path-safe.
const (
	CauseFailover        = "failover-start"       // fail-over began (cluster monitor or scheduler)
	CauseSuspicion       = "suspicion-escalation" // failure detector moved a node healthy->suspect
	CauseQuarantine      = "backend-quarantine"   // persistence tier quarantined a diverging backend
	CauseWALFatal        = "wal-sticky-fatal"     // WAL entered its sticky-fatal state (fsync failure)
	CauseCommitUncertain = "commit-uncertain"     // TxCommit outcome unknown (peer timeout mid-commit)
	CauseOverload        = "sustained-overload"   // admission control entered CoDel shed mode
	CauseDivergence      = "replica-divergence"   // anti-entropy scrub found a replica whose digest differs from the master
)

// Defaults.
const (
	DefaultRingCap  = 256             // retained ring entries per recorder
	DefaultCooldown = 5 * time.Second // minimum spacing between dumps of one cause
	triggerQueue    = 8               // pending-trigger buffer before suppression
)

// Peer is a remote node the recorder can gather a ring from at dump time.
// transport.RemoteNode implements it; FlightDump must be deadline-bounded
// (the transport client enforces its CallTimeout on every call).
type Peer interface {
	ID() string
	FlightDump() (NodeDump, error)
}

// Options configures a Recorder.
type Options struct {
	Node     string           // node id stamped on entries and dumps
	Reg      *obs.Registry    // metrics + span/event sources (nil: recorder still rings, no auto capture)
	Dir      string           // dump directory; "" = record-only, never writes
	FS       wal.FS           // filesystem for durable dump writes (nil: wal.OsFS)
	RingCap  int              // retained entries (0: DefaultRingCap)
	Cooldown time.Duration    // per-cause dump spacing (0: DefaultCooldown)
	Now      func() time.Time // injectable clock (nil: time.Now)
	// OnDump is invoked after each dump is assembled (and durably written
	// unless Dir is empty, in which case path is ""). Test hook.
	OnDump func(path string, d Dump)
}

// Recorder is one node's flight recorder. All exported methods are safe for
// concurrent use and no-op on a nil receiver.
type Recorder struct {
	node     string
	reg      *obs.Registry
	dir      string
	fs       wal.FS
	now      func() time.Time
	cooldown time.Duration
	onDump   func(string, Dump)

	// Pre-resolved metric handles (atomic; safe under any lock).
	triggers   *obs.Counter
	suppressed *obs.Counter
	dumps      *obs.Counter
	dumpErrs   *obs.Counter
	peerErrs   *obs.Counter
	drops      *obs.Counter

	mu       sync.Mutex
	ring     []Entry              // guarded by mu; grows to ringCap then wraps
	next     int                  // guarded by mu; overwrite cursor once at cap
	seq      uint64               // guarded by mu; entries ever recorded
	dropped  uint64               // guarded by mu; entries evicted by wrap
	ringCap  int                  // immutable after New
	dumpSeq  uint64               // guarded by mu; dump filename sequence
	lastDump map[string]time.Time // guarded by mu; per-cause last admit time
	lastRT   RuntimeSample        // guarded by mu; latest runtime sample
	prevCtr  map[string]int64     // guarded by mu; previous counter snapshot for deltas
	prevGC   []uint64             // guarded by mu; previous GC-pause bucket counts

	peersMu sync.Mutex
	peers   []Peer // guarded by peersMu

	trigCh    chan Trigger
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a recorder, subscribes it to the registry's tracer and
// timeline, and starts its dump worker. Call Close to flush pending
// triggers and stop the worker.
func New(o Options) *Recorder {
	r := &Recorder{
		node:     o.Node,
		reg:      o.Reg,
		dir:      o.Dir,
		fs:       o.FS,
		now:      o.Now,
		cooldown: o.Cooldown,
		onDump:   o.OnDump,
		ringCap:  o.RingCap,
		lastDump: make(map[string]time.Time, 4),
		trigCh:   make(chan Trigger, triggerQueue),
		stop:     make(chan struct{}),
	}
	if r.ringCap <= 0 {
		r.ringCap = DefaultRingCap
	}
	if r.cooldown <= 0 {
		r.cooldown = DefaultCooldown
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.fs == nil {
		r.fs = wal.OsFS{}
	}
	if o.Reg != nil {
		r.triggers = o.Reg.Counter(obs.FlightTriggers)
		r.suppressed = o.Reg.Counter(obs.FlightSuppressed)
		r.dumps = o.Reg.Counter(obs.Labeled(obs.FlightDumps, "node", r.node))
		r.dumpErrs = o.Reg.Counter(obs.FlightDumpErrors)
		r.peerErrs = o.Reg.Counter(obs.FlightPeerErrors)
		r.drops = o.Reg.Counter(obs.Labeled(obs.ObsRingDropped, "ring", "flight"))
		o.Reg.Tracer().OnSpan(r.RecordSpan)
		o.Reg.Timeline().OnEvent(r.RecordEvent)
	}
	r.wg.Add(1)
	go r.worker()
	return r
}

// SetPeers installs the peer set gathered into cluster-wide dumps.
func (r *Recorder) SetPeers(peers []Peer) {
	if r == nil {
		return
	}
	r.peersMu.Lock()
	defer r.peersMu.Unlock()
	r.peers = append([]Peer(nil), peers...)
}

// Close drains pending triggers (writing their dumps) and stops the worker
// and sampler goroutines. Idempotent.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// add stamps and appends one entry to the ring, evicting (and counting) the
// oldest entry once the ring is full. Safe under any caller lock: only
// Recorder.mu (level 70) and atomic counters are touched.
func (r *Recorder) add(e Entry) {
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if e.TS == 0 {
		e.TS = r.now().UnixNano()
	}
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, e)
	} else {
		r.dropped++
		r.drops.Inc()
		r.ring[r.next] = e
		r.next = (r.next + 1) % r.ringCap
	}
	r.mu.Unlock()
}

// RecordSpan shadows a finished trace span into the ring. Wired to
// obs.Tracer.OnSpan by New; exported so tests can script deterministic
// span streams directly.
func (r *Recorder) RecordSpan(sp obs.Span) {
	if r == nil {
		return
	}
	r.add(Entry{Kind: KindSpan, Node: sp.Node, Span: &sp})
}

// RecordEvent shadows a timeline event into the ring. Wired to
// obs.Timeline.OnEvent by New.
func (r *Recorder) RecordEvent(ev obs.Event) {
	if r == nil {
		return
	}
	r.add(Entry{Kind: KindEvent, Node: ev.Node, Event: &ev})
}

// RecordHealth records a failure-detector health transition for node.
func (r *Recorder) RecordHealth(node, from, to string) {
	if r == nil {
		return
	}
	r.add(Entry{Kind: KindHealth, Node: node, Health: &HealthTransition{Node: node, From: from, To: to}})
}

// Trigger reports an anomaly: the trigger is recorded in the ring and a
// cluster-wide dump is enqueued (asynchronously, so Trigger is safe to call
// from any lock context — it touches only the recorder's own innermost-band
// state). A full queue suppresses the dump, never blocks the caller.
func (r *Recorder) Trigger(cause, node, detail string) {
	if r == nil {
		return
	}
	t := Trigger{Cause: cause, Node: node, Detail: detail, TS: r.now().UnixNano()}
	r.add(Entry{Kind: KindTrigger, Node: node, Cause: cause, Detail: detail, TS: t.TS})
	select {
	case r.trigCh <- t:
		r.triggers.Inc()
	default:
		r.suppressed.Inc()
	}
}

// Entries returns a copy of the retained ring, oldest first.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retainedLocked()
}

func (r *Recorder) retainedLocked() []Entry {
	out := make([]Entry, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Stats reports entries ever recorded and entries evicted by ring wrap.
func (r *Recorder) Stats() (total, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.dropped
}

// NodeDump freezes this node's ring into a dump fragment: retained entries,
// a full metric snapshot, the latest runtime sample, and the eviction
// count. Called locally at dump time and remotely via the FlightDump RPC.
// Must not be called while holding the recorder's own locks (the registry
// snapshot evaluates gauge callbacks that may take subsystem locks).
func (r *Recorder) NodeDump() NodeDump {
	if r == nil {
		return NodeDump{}
	}
	r.mu.Lock()
	entries := r.retainedLocked()
	dropped := r.dropped
	rt := r.lastRT
	r.mu.Unlock()
	return NodeDump{
		Node:    r.node,
		Entries: entries,
		Metrics: r.reg.Snapshot(),
		Runtime: rt,
		Dropped: dropped,
	}
}

// worker serializes dump production: admit (per-cause cooldown), capture
// local state, gather peers, write durably. On Close it drains whatever is
// already queued so tests observe every admitted dump.
func (r *Recorder) worker() {
	defer r.wg.Done()
	for {
		select {
		case t := <-r.trigCh:
			r.handle(t)
		case <-r.stop:
			for {
				select {
				case t := <-r.trigCh:
					r.handle(t)
				default:
					return
				}
			}
		}
	}
}

// handle admits one trigger against the per-cause cooldown and produces its
// dump.
func (r *Recorder) handle(t Trigger) {
	now := r.now()
	r.mu.Lock()
	if last, ok := r.lastDump[t.Cause]; ok && now.Sub(last) < r.cooldown {
		r.mu.Unlock()
		r.suppressed.Inc()
		return
	}
	r.lastDump[t.Cause] = now
	r.dumpSeq++
	seq := r.dumpSeq
	r.mu.Unlock()

	start := r.now()
	local := r.NodeDump()

	r.peersMu.Lock()
	peers := append([]Peer(nil), r.peers...)
	r.peersMu.Unlock()

	nodes := []NodeDump{local}
	seen := map[string]bool{local.Node: true}
	var peerErrs []string
	for _, p := range peers {
		pd, err := p.FlightDump()
		if err != nil {
			r.peerErrs.Inc()
			peerErrs = append(peerErrs, fmt.Sprintf("%s: %v", p.ID(), err))
			continue
		}
		if pd.Node == "" || seen[pd.Node] {
			continue
		}
		seen[pd.Node] = true
		nodes = append(nodes, pd)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	sort.Strings(peerErrs)

	d := Dump{
		Schema:  SchemaVersion,
		Trigger: t,
		Nodes:   nodes,
		Meta: Meta{
			WrittenUnixNano: r.now().UnixNano(),
			Origin:          r.node,
			GatherUS:        r.now().Sub(start).Microseconds(),
			PeerErrors:      peerErrs,
		},
	}

	path := ""
	if r.dir != "" {
		path = filepath.Join(r.dir, fmt.Sprintf("flight-%06d-%s.json", seq, t.Cause))
		if err := r.write(path, d); err != nil {
			r.dumpErrs.Inc()
			path = ""
		} else {
			r.dumps.Inc()
		}
	}
	if r.onDump != nil {
		r.onDump(path, d)
	}
}

func (r *Recorder) write(path string, d Dump) error {
	blob, err := Marshal(d)
	if err != nil {
		return err
	}
	if err := r.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return wal.WriteFileDurable(r.fs, path, blob)
}
