// Package obs is the cluster-wide observability subsystem: a metrics
// registry (atomic counters, gauges, and fixed-bucket log-scale histograms
// with lock-free hot paths), per-transaction trace spans in a bounded ring
// buffer, and a structured event timeline for cluster lifecycle events
// (election, fail-over stages, reintegration, checkpoints, spare warm-up).
//
// Everything is nil-safe: a nil *Registry hands out nil handles, and every
// method on a nil handle is a no-op that allocates nothing, so
// instrumentation can stay unconditionally in hot paths and cost a single
// predictable branch when observability is disabled.
//
// Metric names are registered by constant only; every name lives in
// names.go (scripts/check.sh rejects dmv_-prefixed literals anywhere else).
//
// Lock discipline: obs locks sit at the innermost band of the declared
// hierarchy (level 70, below even the version clocks), so any layer may
// record a metric or event while holding its own locks. Timeline hooks are
// invoked after the timeline lock is released for the same reason.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultTraceCap is the span ring-buffer capacity used by New.
const DefaultTraceCap = 512

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter no-ops. Its API mirrors atomic.Int64 (Add/Load) so
// registry-backed counters can replace raw atomics in existing stats
// structs without touching consumers.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil Counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 for a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns every metric handle plus the tracer and timeline. Handle
// lookup takes the registry mutex; the handles themselves are lock-free, so
// callers resolve names once at construction and then record through
// atomics only.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter         // guarded by mu
	gauges   map[string]*Gauge           // guarded by mu
	hists    map[string]*Histogram       // guarded by mu
	funcs    map[string][]func() float64 // guarded by mu

	tracer   *Tracer
	timeline *Timeline
}

// New returns an empty registry with a tracer of DefaultTraceCap spans and
// a fresh timeline. Ring evictions in both are counted under
// dmv_obs_ring_dropped_total, labeled by ring.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter, 32),
		gauges:   make(map[string]*Gauge, 8),
		hists:    make(map[string]*Histogram, 16),
		funcs:    make(map[string][]func() float64, 8),
		tracer:   NewTracer(DefaultTraceCap),
		timeline: NewTimeline(),
	}
	r.tracer.setDrops(r.Counter(Labeled(ObsRingDropped, "ring", "trace")))
	r.timeline.setDrops(r.Counter(Labeled(ObsRingDropped, "ring", "timeline")))
	return r
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a callback evaluated at snapshot time. Multiple
// callbacks under one name are summed, so per-node sources (e.g. one buffer
// cache per replica) aggregate naturally.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = append(r.funcs[name], fn)
}

// Tracer returns the registry's span tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Timeline returns the registry's event timeline (nil on a nil registry).
func (r *Registry) Timeline() *Timeline {
	if r == nil {
		return nil
	}
	return r.timeline
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Counter returns the snapshotted counter value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Summary returns the quantile summary of the snapshotted histogram under
// name (the zero HistSummary if absent). Bench reporting reads latency
// quantiles through this single accessor.
func (s Snapshot) Summary(name string) HistSummary { return s.Histograms[name].Summary() }

// Snapshot captures every metric. The handle set is frozen under the
// registry mutex; atomic values are then loaded and gauge callbacks
// evaluated with no registry lock held, so callbacks may take their own
// locks freely.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string][]func() float64, len(r.funcs))
	for n, fs := range r.funcs {
		funcs[n] = fs
	}
	r.mu.Unlock()

	for n, c := range counters {
		snap.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		snap.Gauges[n] = float64(g.Load())
	}
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	for n, fs := range funcs {
		total := snap.Gauges[n]
		for _, fn := range fs {
			total += fn()
		}
		snap.Gauges[n] = total
	}
	return snap
}

// sortedKeys returns map keys in lexical order (stable exposition).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
