package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	// Each case lands exactly on a bucket edge: bucket i holds values in
	// [2^(i-1), 2^i - 1], bucket 0 holds v <= 0.
	cases := []struct {
		v     int64
		bound int64
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 3}, {3, 3},
		{4, 7}, {7, 7},
		{8, 15},
		{1 << 20, 1<<21 - 1},
		{1<<21 - 1, 1<<21 - 1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	want := map[int64]int64{}
	var sum int64
	for _, c := range cases {
		want[c.bound]++
		sum += c.v
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b.Bound] = b.Count
	}
	for bound, n := range want {
		if got[bound] != n {
			t.Errorf("bucket le=%d count = %d, want %d (all: %v)", bound, got[bound], n, s.Buckets)
		}
	}
	if len(got) != len(want) {
		t.Errorf("non-empty buckets = %v, want bounds %v", s.Buckets, want)
	}
}

func TestBucketBoundMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("BucketBound(%d) = %d, not above previous %d", i, b, prev)
		}
		prev = b
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	// Snapshot continuously while workers record; the race detector (the
	// check.sh obs leg runs this under -race) validates the hot paths.
	// Stopped after the workers drain — it cannot share their WaitGroup.
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.WriteText(&strings.Builder{})
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter(SchedReadTxns)
			h := r.Histogram(HeapLockWaitUS)
			g := r.Gauge(PersistBacklog)
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(int64(i))
				g.Set(int64(i))
				sp := r.Tracer().Begin("read")
				sp.Mark("tag")
				sp.Finish("commit", "")
				r.Timeline().Record(Event{Kind: "checkpoint", Node: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		// Concurrent handle lookups must return the same counter.
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter(SchedUpdateTxns).Add(1)
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	snap := r.Snapshot()
	if got := snap.Counter(SchedReadTxns); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := snap.Counter(SchedUpdateTxns); got != workers {
		t.Fatalf("shared-handle counter = %d, want %d", got, workers)
	}
	if got := snap.Histograms[HeapLockWaitUS].Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Tracer().Total(); got != workers*per {
		t.Fatalf("spans recorded = %d, want %d", got, workers*per)
	}
	// The timeline is bounded: every record is counted, retention caps at
	// DefaultTimelineCap and the overflow shows on the eviction counter.
	if got := r.Timeline().Total(); got != workers*per {
		t.Fatalf("timeline total = %d, want %d", got, workers*per)
	}
	wantRetained := workers * per
	if wantRetained > DefaultTimelineCap {
		wantRetained = DefaultTimelineCap
	}
	if got := len(r.Timeline().Events()); got != wantRetained {
		t.Fatalf("timeline events = %d, want %d", got, wantRetained)
	}
	if got := snap.Counter(Labeled(ObsRingDropped, "ring", "timeline")); got != int64(workers*per-wantRetained) {
		t.Fatalf("timeline drops = %d, want %d", got, workers*per-wantRetained)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Begin("update")
		sp.SetReplica(fmt.Sprintf("node%d", i))
		sp.Finish("commit", "")
	}
	spans := tr.Dump()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		wantID := uint64(6 + i) // the last 4 of 10, oldest first
		if sp.ID != wantID {
			t.Fatalf("span %d has ID %d, want %d (%v)", i, sp.ID, wantID, spans)
		}
		if sp.Replica != fmt.Sprintf("node%d", sp.ID) {
			t.Fatalf("span %d replica = %q", i, sp.Replica)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Begin("read").Finish("abort", "version-conflict")
	spans := tr.Dump()
	if len(spans) != 1 || spans[0].Cause != "version-conflict" {
		t.Fatalf("dump = %+v, want one aborted span", spans)
	}
}

func TestTimelineStageAndHooks(t *testing.T) {
	tl := NewTimeline()
	var mu sync.Mutex
	var hooked []Event
	tl.OnEvent(func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		hooked = append(hooked, ev)
	})
	st := tl.Start("recovery-done", "node1")
	time.Sleep(time.Millisecond)
	d := st.End("elected node2")
	if d <= 0 {
		t.Fatal("stage duration not positive")
	}
	tl.Record(Event{Kind: "checkpoint", Node: "node2"})
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != "recovery-done" || evs[0].Duration != d || evs[0].Detail != "elected node2" {
		t.Fatalf("stage event = %+v", evs[0])
	}
	if evs[1].Time.IsZero() {
		t.Fatal("Record did not stamp Time")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hooked) != 2 {
		t.Fatalf("hooks fired %d times, want 2", len(hooked))
	}
}

func TestGaugeFuncsSum(t *testing.T) {
	r := New()
	r.GaugeFunc(CacheHits, func() float64 { return 3 })
	r.GaugeFunc(CacheHits, func() float64 { return 4 })
	if got := r.Snapshot().Gauges[CacheHits]; got != 7 {
		t.Fatalf("summed gauge funcs = %g, want 7", got)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := New()
	r.Counter(HeapCommits).Add(5)
	r.Histogram(NodeBroadcastUS).Observe(3)
	r.Histogram(NodeBroadcastUS).Observe(900)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		HeapCommits + " 5\n",
		NodeBroadcastUS + "_count 2\n",
		NodeBroadcastUS + "_sum 903\n",
		NodeBroadcastUS + `_bucket{le="3"} 1` + "\n",
		NodeBroadcastUS + `_bucket{le="1023"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Counter(SchedReadTxns).Add(2)
	r.Tracer().Begin("read").Finish("commit", "")
	r.Timeline().Record(Event{Kind: "node-failed", Node: "node0"})
	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	for path, want := range map[string]string{
		"/metrics":  SchedReadTxns + " 2",
		"/trace":    `"Outcome": "commit"`,
		"/timeline": `"Kind": "node-failed"`,
	} {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s missing %q:\n%s", path, want, body)
		}
	}
}

// TestNilRegistryAllocationFree asserts the disabled fast path allocates
// nothing: every handle from a nil registry is nil and every method on a
// nil handle must be a branch-and-return.
func TestNilRegistryAllocationFree(t *testing.T) {
	var r *Registry
	if r.Counter(SchedReadTxns) != nil || r.Gauge(PersistBacklog) != nil ||
		r.Histogram(HeapLockWaitUS) != nil || r.Tracer() != nil || r.Timeline() != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c := r.Counter(SchedReadTxns)
		c.Add(1)
		c.Inc()
		_ = c.Load()
		g := r.Gauge(PersistBacklog)
		g.Set(7)
		g.Add(1)
		h := r.Histogram(HeapLockWaitUS)
		h.Observe(123)
		h.ObserveSince(time.Time{})
		sp := r.Tracer().Begin("update")
		sp.Mark("lock-wait")
		sp.SetReplica("node1")
		sp.Finish("commit", "")
		tl := r.Timeline()
		tl.Record(Event{Kind: "node-failed"})
		st := tl.Start("recovery-done", "node1")
		st.End("done")
		r.GaugeFunc(CacheHits, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-registry path allocates %v objects per op, want 0", allocs)
	}
}

// BenchmarkObsDisabled measures the nil-registry fast path; run with
// -benchmem to confirm 0 allocs/op.
func BenchmarkObsDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter(SchedReadTxns)
	h := r.Histogram(HeapLockWaitUS)
	tr := r.Tracer()
	tl := r.Timeline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(int64(i))
		sp := tr.Begin("read")
		sp.Mark("tag")
		sp.Finish("commit", "")
		tl.Record(Event{Kind: "overload"})
	}
}

// BenchmarkObsEnabled is the paired measurement with a live registry.
func BenchmarkObsEnabled(b *testing.B) {
	r := New()
	c := r.Counter(SchedReadTxns)
	h := r.Histogram(HeapLockWaitUS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(int64(i))
	}
}
