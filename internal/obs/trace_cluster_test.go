package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanIDsUniqueAndRooted(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if id == 0 {
			t.Fatal("span id 0 is reserved for \"no trace\"")
		}
		if seen[id] {
			t.Fatalf("duplicate span id %#x after %d draws", id, i)
		}
		seen[id] = true
	}
	tr := NewTracer(8)
	root := tr.Begin("update")
	if root.TraceID == 0 || root.TraceID != root.SpanID || root.ParentID != 0 {
		t.Fatalf("root span ids = trace=%d span=%d parent=%d, want trace==span, parent 0",
			root.TraceID, root.SpanID, root.ParentID)
	}
	if got := root.Context(); got.TraceID != root.TraceID || got.SpanID != root.SpanID {
		t.Fatalf("Context() = %+v, want the span's own ids", got)
	}
	if (TraceContext{}).Valid() {
		t.Fatal("zero TraceContext must be invalid")
	}
}

func TestBeginChildPropagation(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Begin("update")
	child := tr.BeginChild("ws-recv", root.Context())
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace = %d, want root's %d", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Fatalf("child parent = %d, want root span %d", child.ParentID, root.SpanID)
	}
	if child.SpanID == root.SpanID || child.SpanID == 0 {
		t.Fatalf("child span id %d must be fresh", child.SpanID)
	}
	// An invalid context starts a fresh root so untraced traffic still
	// records locally.
	orphan := tr.BeginChild("ws-recv", TraceContext{})
	if orphan.ParentID != 0 || orphan.TraceID == root.TraceID || orphan.TraceID == 0 {
		t.Fatalf("orphan = trace=%d parent=%d, want a fresh root", orphan.TraceID, orphan.ParentID)
	}
}

func TestStitchCausalOrder(t *testing.T) {
	tr := NewTracer(32)
	root := tr.Begin("update")
	shipA := tr.BeginChild("ws-ship", root.Context())
	shipB := tr.BeginChild("ws-ship", root.Context())
	apply := tr.BeginChild("lazy-apply", shipB.Context())
	other := tr.Begin("read")
	// Finish out of causal order: the ring order must not matter.
	apply.Finish("commit", "")
	other.Finish("commit", "")
	root.Finish("commit", "")
	shipB.Finish("commit", "")
	shipA.Finish("abort", "node-down")

	got := Stitch(tr.Dump(), root.TraceID)
	if len(got) != 4 {
		t.Fatalf("stitched %d spans, want 4 (other trace filtered): %+v", len(got), got)
	}
	pos := map[uint64]int{}
	for i, sp := range got {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %d from foreign trace %d", i, sp.TraceID)
		}
		pos[sp.SpanID] = i
	}
	if pos[root.SpanID] != 0 {
		t.Fatalf("root at position %d, want 0", pos[root.SpanID])
	}
	if pos[apply.SpanID] < pos[shipB.SpanID] {
		t.Fatalf("lazy-apply (pos %d) before its ws-ship parent (pos %d)",
			pos[apply.SpanID], pos[shipB.SpanID])
	}
	if Stitch(tr.Dump(), 0) != nil {
		t.Fatal("trace id 0 must stitch to nothing")
	}
	// A child whose parent was evicted surfaces as a root.
	partial := Stitch([]Span{{TraceID: 9, SpanID: 2, ParentID: 1, Start: time.Now()}}, 9)
	if len(partial) != 1 {
		t.Fatalf("orphaned child dropped: %+v", partial)
	}
}

func TestHistQuantileSummaryMerge(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket le=3
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket le=1023
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	sum := s.Summary()
	if sum.Count != 100 || sum.P50 != 3 || sum.P95 != 1023 || sum.P99 != 1023 {
		t.Fatalf("summary = %+v", sum)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Summary().Count != 0 {
		t.Fatal("empty histogram must summarize to zero")
	}

	h2 := &Histogram{}
	h2.Observe(3)
	merged := s.Merge(h2.Snapshot())
	if merged.Count != 101 || merged.Sum != s.Sum+3 {
		t.Fatalf("merge count=%d sum=%d, want 101/%d", merged.Count, merged.Sum, s.Sum+3)
	}
	var le3 int64
	for _, b := range merged.Buckets {
		if b.Bound == 3 {
			le3 = b.Count
		}
	}
	if le3 != 91 {
		t.Fatalf("merged le=3 bucket = %d, want 91", le3)
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled(ReplicaVersionLag, "node", "slave0", "table", "item"); got !=
		ReplicaVersionLag+`{node="slave0",table="item"}` {
		t.Fatalf("Labeled = %q", got)
	}
	if got := Labeled(NodeRole); got != NodeRole {
		t.Fatalf("label-free Labeled = %q, want the bare name", got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(node string, applied, maxv []uint64, pend int, reads int64) NodeSnapshot {
		r := New()
		r.Counter(NodeReadTxns).Add(reads)
		r.Gauge(PersistBacklog).Set(2)
		r.Histogram(NodeBroadcastUS).Observe(5)
		sp := r.Tracer().Begin("update")
		sp.Finish("commit", "")
		return NodeSnapshot{
			Node: node, Role: "slave", StartUnix: 10,
			Applied: applied, MaxVer: maxv, PendingMods: pend,
			Snap:  r.Snapshot(),
			Spans: r.Tracer().Dump(),
		}
	}
	a := mk("b-node", []uint64{5, 2}, []uint64{7, 2}, 3, 4)
	b := mk("a-node", []uint64{7, 2}, []uint64{7, 2}, 0, 6)
	cs := MergeSnapshots([]NodeSnapshot{a, b}, []uint64{6, 3})

	if cs.Frontier[0] != 7 || cs.Frontier[1] != 3 {
		t.Fatalf("frontier = %v, want [7 3] (max of MaxVers and floor)", cs.Frontier)
	}
	if cs.Nodes[0].Node != "a-node" || cs.Nodes[1].Node != "b-node" {
		t.Fatalf("nodes not sorted: %+v", cs.Nodes)
	}
	bl := cs.Nodes[1]
	if bl.Lag[0] != 2 || bl.Lag[1] != 1 || bl.PendingMods != 3 {
		t.Fatalf("b-node lag = %v pending = %d, want [2 1] / 3", bl.Lag, bl.PendingMods)
	}
	if cs.Merged.Counters[NodeReadTxns] != 10 {
		t.Fatalf("merged counter = %d, want 10", cs.Merged.Counters[NodeReadTxns])
	}
	if cs.Merged.Gauges[PersistBacklog] != 4 {
		t.Fatalf("merged gauge = %g, want 4", cs.Merged.Gauges[PersistBacklog])
	}
	if h := cs.Merged.Histograms[NodeBroadcastUS]; h.Count != 2 || h.Sum != 10 {
		t.Fatalf("merged hist = %+v, want count 2 sum 10", h)
	}
	if len(cs.Spans) != 2 {
		t.Fatalf("spans = %d, want the two rings concatenated", len(cs.Spans))
	}
}

func TestWriteTextQuantileLines(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		r.Histogram(SchedTxnUS).Observe(3)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	for _, want := range []string{
		SchedTxnUS + `{quantile="0.5"} 3`,
		SchedTxnUS + `{quantile="0.95"} 3`,
		SchedTxnUS + `{quantile="0.99"} 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestRegisterIdentityAndRoleValue(t *testing.T) {
	r := New()
	start := time.Unix(1234, 0)
	RegisterIdentity(r, "slave0", start)
	snap := r.Snapshot()
	if got := snap.Gauges[Labeled(NodeStartTime, "node", "slave0")]; got != 1234 {
		t.Fatalf("start-time gauge = %g, want 1234", got)
	}
	found := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, BuildInfo) && strings.Contains(name, `node="slave0"`) && v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("build-info gauge missing: %v", snap.Gauges)
	}
	RegisterIdentity(nil, "x", start) // must not panic
	for role, want := range map[string]int64{"slave": 0, "master": 1, "joining": 2, "spare": 3} {
		if got := RoleValue(role); got != want {
			t.Errorf("RoleValue(%s) = %d, want %d", role, got, want)
		}
	}
}

func TestClusterEndpointAndAggregator(t *testing.T) {
	r := New()
	root := r.Tracer().Begin("update")
	child := r.Tracer().BeginChild("ws-recv", root.Context())
	child.Finish("commit", "")
	root.Finish("commit", "")

	agg := &Aggregator{}
	agg.Update(ClusterSnapshot{
		Frontier: []uint64{4},
		Nodes:    []NodeLag{{Node: "slave0", Role: "slave", Lag: []uint64{1}, PendingMods: 2}},
		Merged:   Snapshot{Counters: map[string]int64{SchedReadTxns: 7}},
	})
	ln, err := ServeCluster("127.0.0.1:0", r, agg.Current)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	body := get("/cluster")
	for _, want := range []string{`"slave0"`, `"PendingMods": 2`, `"Frontier"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/cluster missing %q:\n%s", want, body)
		}
	}
	if text := get("/cluster?format=text"); !strings.Contains(text, SchedReadTxns+" 7") {
		t.Errorf("/cluster?format=text missing merged counter:\n%s", text)
	}
	// Default /stitch resolves the latest root trace and orders the child
	// after its parent.
	stitched := get("/stitch")
	ri := strings.Index(stitched, `"update"`)
	ci := strings.Index(stitched, `"ws-recv"`)
	if ri < 0 || ci < 0 || ci < ri {
		t.Errorf("/stitch order wrong (root at %d, child at %d):\n%s", ri, ci, stitched)
	}

	var nilAgg *Aggregator
	nilAgg.Update(ClusterSnapshot{}) // must not panic
	if cur := nilAgg.Current(); len(cur.Nodes) != 0 {
		t.Fatal("nil aggregator must return the zero snapshot")
	}
}
