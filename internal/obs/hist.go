package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]; bucket 0 holds v <= 0.
// 64 buckets cover the whole positive int64 range, so the histogram needs
// no configuration and recording is a shift-free array index.
const histBuckets = 64

// Histogram is a fixed-bucket log2-scale histogram. Recording is lock-free
// (three atomic adds); a nil Histogram no-ops. Units are chosen by the
// caller — every duration histogram in names.go records microseconds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// ObserveSince records the elapsed time since start, in microseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Microseconds())
}

// BucketBound returns the inclusive upper bound of bucket i (0 for bucket
// 0, 2^i - 1 otherwise).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// HistBucket is one non-empty bucket in a histogram snapshot.
type HistBucket struct {
	// Bound is the inclusive upper bound of the bucket.
	Bound int64
	Count int64
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []HistBucket // non-empty buckets, ascending by bound
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram state. Counts are loaded bucket-by-bucket
// without a lock, so a snapshot taken during concurrent recording is
// internally consistent per bucket but may straddle an observation.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Bound: BucketBound(i), Count: n})
		}
	}
	return s
}
