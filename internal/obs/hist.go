package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]; bucket 0 holds v <= 0.
// 64 buckets cover the whole positive int64 range, so the histogram needs
// no configuration and recording is a shift-free array index.
const histBuckets = 64

// Histogram is a fixed-bucket log2-scale histogram. Recording is lock-free
// (three atomic adds); a nil Histogram no-ops. Units are chosen by the
// caller — every duration histogram in names.go records microseconds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// ObserveSince records the elapsed time since start, in microseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Microseconds())
}

// BucketBound returns the inclusive upper bound of bucket i (0 for bucket
// 0, 2^i - 1 otherwise).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// HistBucket is one non-empty bucket in a histogram snapshot.
type HistBucket struct {
	// Bound is the inclusive upper bound of the bucket.
	Bound int64
	Count int64
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []HistBucket // non-empty buckets, ascending by bound
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the inclusive upper bound of the bucket containing the
// q-quantile observation (q in [0,1]), i.e. an upper estimate with log2
// resolution. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Bound
		}
	}
	return s.Buckets[len(s.Buckets)-1].Bound
}

// HistSummary carries the standard latency quantiles derived from the
// bucket layout, for exposition and dashboards. The JSON field names are
// part of the BENCH_*.json schema (internal/bench), so they are stable.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Summary computes count, mean, and p50/p95/p99 in one pass over the
// snapshot.
func (s HistSnapshot) Summary() HistSummary {
	return HistSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// Merge accumulates another snapshot into this one (bucket counts summed by
// bound), used when aggregating per-node registries into a cluster view.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	byBound := make(map[int64]int64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byBound[b.Bound] += b.Count
	}
	for _, b := range o.Buckets {
		byBound[b.Bound] += b.Count
	}
	for bound, n := range byBound {
		out.Buckets = append(out.Buckets, HistBucket{Bound: bound, Count: n})
	}
	sortBuckets(out.Buckets)
	return out
}

func sortBuckets(bs []HistBucket) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Bound < bs[j-1].Bound; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// Snapshot copies the histogram state. Counts are loaded bucket-by-bucket
// without a lock, so a snapshot taken during concurrent recording is
// internally consistent per bucket but may straddle an observation.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Bound: BucketBound(i), Count: n})
		}
	}
	return s
}
